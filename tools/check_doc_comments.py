#!/usr/bin/env python3
"""Enforce `///` doc-comment coverage on the public API headers.

Doxygen (see Doxyfile) renders whatever documentation exists; this
checker is what *fails CI* when a public declaration in the given
headers has no documentation at all.  A declaration counts as
documented when the nearest preceding non-blank, non-template line is
part of a `///` block (or the declaration carries a trailing `///<`).

Checked declaration kinds:
  * namespace-scope types (`struct` / `class` / `enum` / type aliases);
  * namespace-scope free functions and constants;
  * public member functions and data members inside classes/structs.

Deliberately skipped: private/protected sections, using-directives,
forward declarations, constructors named after the file's main class
when trivially defaulted, and anything inside a function body.

Usage: check_doc_comments.py HEADER [HEADER...]
Exits non-zero listing every undocumented declaration.
"""
import re
import sys

TYPE_RE = re.compile(r"^(template\s*<.*>\s*)?(struct|class|enum(\s+class)?|union)\s+\w+")
ALIAS_RE = re.compile(r"^using\s+\w+\s*=")
FUNC_RE = re.compile(r"^[\w:&<>,*~\[\]\s]+\s[\w~]+\s*\(")
CONST_RE = re.compile(r"^(inline\s+)?(constexpr|const)\s.*=")
ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")


def is_doc_line(line):
    stripped = line.strip()
    return stripped.startswith("///") or stripped.endswith("*/") or \
        stripped.startswith("*")


def has_doc_above(lines, index):
    """True when the declaration at lines[index] is preceded by a ///
    block (template lines are looked through)."""
    i = index - 1
    while i >= 0:
        stripped = lines[i].strip()
        if stripped.startswith("template") or stripped == "":
            i -= 1
            continue
        return is_doc_line(lines[i])
    return False


def check_header(path, errors):
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    depth = 0            # brace depth, namespaces not counted
    access_public = True  # current access level inside a class
    in_class_depth = None
    pending_class = False
    prev_code = ""       # previous non-blank code line (continuation check)

    for index, raw in enumerate(lines):
        line = raw.rstrip()
        stripped = line.strip()

        if ACCESS_RE.match(stripped):
            access_public = stripped.startswith("public")
            continue

        ns = stripped.startswith("namespace")
        at_namespace_scope = depth == 0 and not ns
        in_class_body = in_class_depth is not None and depth == in_class_depth

        # Continuation of a multi-line declaration (previous code line is
        # unterminated) or a constructor initializer list: not a new
        # declaration.
        continuation = prev_code.endswith((",", "(", "=", "&&", "||", "+")) \
            or stripped.startswith(":")
        if stripped and not stripped.startswith("//"):
            prev_code = stripped

        interesting = None
        if continuation:
            pass
        elif at_namespace_scope:
            if TYPE_RE.match(stripped) and not stripped.endswith(";"):
                interesting = "type"
            elif ALIAS_RE.match(stripped):
                interesting = "alias"
            elif (FUNC_RE.match(stripped) or CONST_RE.match(stripped)) and \
                    not stripped.startswith(("return", "if", "for", "while")):
                interesting = "function"
        elif in_class_body and access_public:
            if TYPE_RE.match(stripped) and not stripped.endswith(";"):
                interesting = "nested type"
            elif FUNC_RE.match(stripped) and "= delete" not in stripped \
                    and not re.match(r"^(virtual\s+)?~\w+\(\)\s*"
                                     r"(=\s*default)?\s*;", stripped):
                interesting = "member"
            elif re.match(r"^[\w:<>,\s*&]+\s+\w+(\s*=\s*[^=]+)?;$", stripped) \
                    and not stripped.startswith("using"):
                interesting = "field"

        if interesting and not has_doc_above(lines, index) and \
                "///<" not in line:
            errors.append(f"{path}:{index + 1}: undocumented {interesting}: "
                          f"{stripped[:70]}")

        # Track when we enter a class/struct body at namespace scope so
        # member checks know their depth; crude but sufficient for this
        # codebase's formatting (one declaration per line).
        if at_namespace_scope and TYPE_RE.match(stripped) and \
                not stripped.endswith(";"):
            pending_class = True
        opens = line.count("{")
        closes = line.count("}")
        if ns:
            continue  # namespaces do not add tracked depth
        if opens:
            if pending_class and in_class_depth is None:
                in_class_depth = depth + 1
                access_public = stripped.startswith("struct") or \
                    "struct" in stripped
                pending_class = False
        depth += opens - closes
        if in_class_depth is not None and depth < in_class_depth:
            in_class_depth = None
            access_public = True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for path in argv[1:]:
        check_header(path, errors)
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} header(s), every public declaration "
              "documented")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
