// resparc-verify: lints a serialized CompiledProgram blob from disk.
//
// Runs the full static verification pipeline (src/verify,
// docs/verification.md) over a .rcp blob without executing anything:
// parse, structural/capacity/consistency passes, and a bit-exact
// round-trip check.  The binding configuration is recovered from the
// blob's fingerprint (standard MCA 32/64/128/256 sweep) or pinned with
// --mca.
//
//   resparc-verify mnist.rcp            pretty-print the report
//   resparc-verify --json mnist.rcp     machine-readable JSON report
//   resparc-verify --mca 128 mnist.rcp  pin the configuration
//
// Exit status: 0 when the blob verifies clean (warnings allowed),
// 1 when any Error-severity diagnostic fired, 2 on usage/IO problems.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "verify/verifier.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--json] [--mca N] program.rcp\n"
            << "  --json   emit the report as JSON instead of text\n"
            << "  --mca N  bind to config_with_mca(N) instead of sweeping\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::size_t mca = 0;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--mca") {
      if (i + 1 >= argc) return usage(argv[0]);
      mca = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (mca == 0) return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "resparc-verify: cannot open \"" << path << "\"\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const resparc::verify::VerifyReport report =
      resparc::verify::verify_blob_auto(buffer.str(), mca);

  if (json)
    std::cout << report.to_json() << "\n";
  else
    std::cout << path << ":\n" << report.to_string();

  return report.ok() ? 0 : 1;
}
