// resparc-fleet: Monte-Carlo chip-yield sweeps from the shell.
//
// Samples a population of fault-seeded chip instances with the fleet
// harness (api/fleet.hpp): each chip compiles with the fault-aware
// repair pass, re-simulates the shared eval set on its perturbed
// network for accuracy, and replays the baseline traces for energy.
// Prints the yield at the accuracy floor plus the accuracy/energy
// distribution (docs/reliability.md).
//
//   resparc-fleet                                  200 pristine chips
//   resparc-fleet --chips 500 --stuck-off 0.002 --sigma 0.1
//   resparc-fleet --stuck-on 0.001 --bits 6 --floor 0.8
//   resparc-fleet --json                           machine-readable summary
//
// Exit status: 0 on success, 2 on usage errors, 1 on run failures.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/fleet.hpp"
#include "common/error.hpp"

namespace {

using namespace resparc;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --chips N         chip instances sampled        (default 200)\n"
      << "  --stuck-off R     stuck-at-G_min cell rate      (default 0)\n"
      << "  --stuck-on R      stuck-at-G_max cell rate      (default 0)\n"
      << "  --sigma S         lognormal programming sigma   (default 0)\n"
      << "  --read-noise S    lognormal read-noise sigma    (default 0)\n"
      << "  --bits N          conductance quantisation bits (default 0 = off)\n"
      << "  --failed-density D per-MCA stuck fraction that fails the slot\n"
      << "                    (default 0.05)\n"
      << "  --no-repair       disable the fault-aware repair pass\n"
      << "  --floor F         yield floor, fraction of baseline accuracy\n"
      << "                    (default 0.9)\n"
      << "  --mca N           MCA size                      (default 64)\n"
      << "  --strategy NAME   mapping strategy              (default paper)\n"
      << "  --images N        eval presentations per chip   (default 16)\n"
      << "  --timesteps N     presentation length           (default 8)\n"
      << "  --threads N       chip-level workers            (default all)\n"
      << "  --seed N          master seed                   (default 7)\n"
      << "  --json            print a JSON summary instead of the table\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  api::FleetOptions opts;
  std::size_t mca = 64;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--chips") opts.chips = std::strtoull(next(), nullptr, 10);
    else if (arg == "--stuck-off") opts.faults.stuck_off_rate = std::atof(next());
    else if (arg == "--stuck-on") opts.faults.stuck_on_rate = std::atof(next());
    else if (arg == "--sigma") opts.faults.programming_sigma = std::atof(next());
    else if (arg == "--read-noise") opts.faults.read_noise_sigma = std::atof(next());
    else if (arg == "--bits") opts.faults.weight_bits = std::atoi(next());
    else if (arg == "--failed-density") opts.faults.failed_density = std::atof(next());
    else if (arg == "--no-repair") opts.faults.repair = false;
    else if (arg == "--floor") opts.accuracy_floor = std::atof(next());
    else if (arg == "--mca") mca = std::strtoull(next(), nullptr, 10);
    else if (arg == "--strategy") opts.strategy = next();
    else if (arg == "--images") opts.images = std::strtoull(next(), nullptr, 10);
    else if (arg == "--timesteps") opts.timesteps = std::strtoull(next(), nullptr, 10);
    else if (arg == "--threads") opts.threads = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") opts.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--json") json = true;
    else if (arg == "--help" || arg == "-h") return usage(argv[0]);
    else {
      std::cerr << argv[0] << ": unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }

  try {
    opts.config = core::config_with_mca(mca);
    const api::FleetReport fleet = api::run_fleet(opts);

    std::size_t compile_failures = 0;
    std::size_t failed_mpes = 0;
    for (const api::FleetChip& chip : fleet.chips) {
      if (!chip.ok) ++compile_failures;
      failed_mpes += chip.failed_mpes;
    }

    if (json) {
      std::printf(
          "{\"chips\": %zu, \"yield\": %.6f, \"baseline_accuracy\": %.6f,\n"
          " \"acc_p05\": %.6f, \"acc_p50\": %.6f, \"acc_p95\": %.6f,\n"
          " \"baseline_energy_uj\": %.9f, \"energy_p50_uj\": %.9f,\n"
          " \"energy_p95_uj\": %.9f, \"compile_failures\": %zu,\n"
          " \"failed_mpes_total\": %zu}\n",
          fleet.chips.size(), fleet.yield, fleet.baseline_accuracy,
          fleet.acc_p05, fleet.acc_p50, fleet.acc_p95,
          fleet.baseline_energy_uj, fleet.energy_p50_uj, fleet.energy_p95_uj,
          compile_failures, failed_mpes);
      return 0;
    }

    std::printf("fleet: %zu chips, MCA-%zu/%s, floor %.0f%% of baseline\n",
                fleet.chips.size(), mca, opts.strategy.c_str(),
                100.0 * opts.accuracy_floor);
    std::printf("  faults: stuck-off %.4g stuck-on %.4g sigma %.4g "
                "read-noise %.4g bits %d repair %s\n",
                opts.faults.stuck_off_rate, opts.faults.stuck_on_rate,
                opts.faults.programming_sigma, opts.faults.read_noise_sigma,
                opts.faults.weight_bits, opts.faults.repair ? "on" : "off");
    std::printf("  baseline: accuracy %.4f, energy %.6f uJ/class\n",
                fleet.baseline_accuracy, fleet.baseline_energy_uj);
    std::printf("  yield:    %.1f%%  (%zu compile failures)\n",
                100.0 * fleet.yield, compile_failures);
    std::printf("  accuracy: p05 %.4f  p50 %.4f  p95 %.4f\n", fleet.acc_p05,
                fleet.acc_p50, fleet.acc_p95);
    std::printf("  energy:   p50 %.6f uJ  p95 %.6f uJ\n", fleet.energy_p50_uj,
                fleet.energy_p95_uj);
    return 0;
  } catch (const Error& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
}
