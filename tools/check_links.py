#!/usr/bin/env python3
"""Offline markdown link checker (the repo's lychee equivalent).

Checks every [text](target) and bare relative link in the given markdown
files:

  * relative file links must resolve to an existing file or directory
    (relative to the linking file);
  * intra-document anchors (#heading) must match a heading slug in the
    target document;
  * external http(s)/mailto links are syntax-checked only — CI stays
    deterministic with no network access.

Usage: check_links.py FILE.md [FILE.md...]
Exits non-zero listing every broken link.
"""
import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def heading_slugs(text):
    """GitHub-style anchor slugs for every heading in `text`."""
    slugs = set()
    for heading in HEADING_RE.findall(CODE_FENCE_RE.sub("", text)):
        slug = re.sub(r"[`*_]", "", heading.strip().lower())
        slug = re.sub(r"[^\w\s.-]", "", slug)
        slug = re.sub(r"[\s.]+", "-", slug).strip("-")
        slugs.add(slug)
    return slugs


def check_file(path, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        errors.append(f"{path}: unreadable: {exc}")
        return
    base = os.path.dirname(os.path.abspath(path))
    for match in LINK_RE.finditer(CODE_FENCE_RE.sub("", text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: syntax only (offline checker)
        if target.startswith("#"):
            if target[1:] not in heading_slugs(text):
                errors.append(f"{path}: broken anchor '{target}'")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link '{target}' "
                          f"(resolved {os.path.relpath(resolved)})")
            continue
        if anchor and os.path.isfile(resolved) and resolved.endswith(".md"):
            with open(resolved, encoding="utf-8") as handle:
                if anchor not in heading_slugs(handle.read()):
                    errors.append(
                        f"{path}: broken anchor '{target}' in "
                        f"{os.path.relpath(resolved)}")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for path in argv[1:]:
        check_file(path, errors)
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} markdown file(s), all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
