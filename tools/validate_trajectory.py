#!/usr/bin/env python3
"""Validate bench-trajectory JSON files against the documented schema.

Every tracked bench emits the envelope described in
bench/trajectory/README.md:

    {
      "bench": "<name>",            # bench identifier
      "schema_version": 1,
      "commit": "<sha or unknown>", # RESPARC_GIT_COMMIT at generation time
      "config": { ... },            # knobs the run was generated with
      "metrics": { "results": [ {row}, ... ] }
    }

The validator checks the envelope, the per-bench required row fields, and
(for bench_sparse_execution) the semantic acceptance properties: sparse
throughput rising with input sparsity (with slack for timing jitter) and
at least a 2x dense-to-sparse speedup somewhere in the >= 90%-sparsity
regime.

Usage: validate_trajectory.py FILE [FILE...]
Exits non-zero listing every violation.
"""
import json
import sys

# Required numeric fields per tracked bench (rows may carry more).
ROW_FIELDS = {
    "pipeline_throughput": ["threads", "simulate_tps", "execute_resparc_tps",
                            "execute_resparc_packed_tps", "execute_cmos_tps"],
    "ablation_mapping_strategy": ["mca", "utilization", "mcas", "neurocells",
                                  "bus_boundaries", "energy_uj", "latency_ns",
                                  "stall_cycles"],
    "bench_sparse_execution": ["rate", "input_sparsity", "mean_activity",
                               "dense_tps", "sparse_tps", "speedup"],
    "micro_kernels": ["items", "naive_ms", "kernel_ms", "speedup"],
    "bench_noc_contention": ["mca", "neurocells", "bus_boundaries",
                             "analytic_latency_ns", "event_latency_ns",
                             "event_serial_ns", "inflation", "stall_cycles",
                             "tree_hops", "mesh_hops", "bus_words"],
    "bench_serving": ["tenants", "requests", "throughput_rps", "p50_ns",
                      "p95_ns", "p99_ns", "max_ns"],
    "bench_fault_yield": ["chips", "stuck_rate", "sigma", "yield", "acc_p05",
                          "acc_p50", "acc_p95", "energy_p50_uj",
                          "energy_p95_uj", "baseline_accuracy"],
    "bench_search_mapping": ["energy_uj", "latency_ns", "stall_cycles",
                             "utilization", "mcas", "neurocells",
                             "bus_boundaries", "mixed_sizes"],
}

# Minimum chip instances a committed fault-yield sweep must aggregate
# across its fault populations (docs/reliability.md): a fleet Monte-Carlo
# estimate over fewer samples is too noisy to track.
FAULT_YIELD_MIN_CHIPS = 200

# The conv-forward kernel's acceptance floor.  The committed snapshot
# shows the real ratio (>= 3x, docs/performance.md); fresh CI runs keep a
# generous slack for shared-runner noise while still catching a
# de-vectorized or de-blocked kernel, which lands near 1x.
CONV_FORWARD_MIN_SPEEDUP = 2.0

# The packed-datapath accumulate floor (docs/performance.md): decoding
# set bits from 64-bit spike words must beat the byte-scan baseline by at
# least this ratio in the ~99%-sparse event-driven regime.  A kernel that
# regresses to per-row testing lands near 1x.
PACKED_ACCUMULATE_MIN_SPEEDUP = 2.0

# Fresh-run floor for the "+packed" batched replay relative to the
# sequential per-trace executor at the same thread count: batching
# amortizes program/route lookups, so it must never fall meaningfully
# below the sequential path.
PACKED_EXECUTE_MIN_RATIO = 0.8

# Fresh CI runs re-measure wall clock; allow this much dip before calling
# the sparse-throughput curve non-monotonic.
JITTER_SLACK = 0.8

# Search-based mapping acceptance (docs/compile.md): the annealed
# heterogeneous mix must beat the strongest one-shot baseline
# (greedy-pack) by at least 5% measured energy per classification AND
# stall strictly less on the event-fidelity NoC.  Energy and stall
# cycles are deterministic replay outputs at a pinned seed, so no
# jitter slack is needed.
SEARCH_MAX_ENERGY_RATIO = 0.95

# Multi-tenant serving acceptance floor: the >= 4-tenant aggregate
# throughput over the single-tenant interactive baseline.  The committed
# snapshot shows the real ratio (>= 2x, docs/serving.md: overlapped batch
# windows scale with the tenant count); fresh CI runs keep a generous
# floor for shared-runner noise while still catching a scheduler that
# serializes tenants, which lands near 1x.
SERVING_MIN_SCALING = 1.2


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def validate_envelope(doc, path, errors):
    for key, kind in (("bench", str), ("schema_version", int),
                      ("commit", str), ("config", dict), ("metrics", dict)):
        if key not in doc:
            fail(errors, path, f"missing top-level field '{key}'")
            return None
        if not isinstance(doc[key], kind):
            fail(errors, path,
                 f"field '{key}' should be {kind.__name__}, "
                 f"got {type(doc[key]).__name__}")
            return None
    if doc["schema_version"] != 1:
        fail(errors, path, f"unsupported schema_version {doc['schema_version']}")
        return None
    if not doc["commit"]:
        fail(errors, path, "empty commit field")
    results = doc["metrics"].get("results")
    if not isinstance(results, list) or not results:
        fail(errors, path, "metrics.results must be a non-empty list")
        return None
    return results


def validate_rows(doc, results, path, errors):
    required = ROW_FIELDS.get(doc["bench"])
    if required is None:
        # Unknown benches only need the envelope + results list of objects.
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                fail(errors, path, f"results[{i}] is not an object")
        return
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(errors, path, f"results[{i}] is not an object")
            continue
        for field in required:
            if field not in row:
                fail(errors, path, f"results[{i}] missing field '{field}'")
            elif not isinstance(row[field], (int, float)):
                fail(errors, path,
                     f"results[{i}].{field} is not a number")


def validate_sparse_semantics(results, path, errors):
    needed = ("input_sparsity", "sparse_tps", "speedup")
    rows = [r for r in results
            if isinstance(r, dict) and all(k in r for k in needed)]
    if len(rows) != len(results):
        return  # field errors were already reported by validate_rows
    rows = sorted(rows, key=lambda r: r["input_sparsity"])
    best_so_far = 0.0
    for row in rows:
        if row["sparse_tps"] < JITTER_SLACK * best_so_far:
            fail(errors, path,
                 f"sparse_tps not monotone in input_sparsity: "
                 f"{row['sparse_tps']} after {best_so_far} "
                 f"(sparsity {row['input_sparsity']})")
        best_so_far = max(best_so_far, row["sparse_tps"])
    if not any(r["input_sparsity"] >= 0.9 and r["speedup"] >= 2.0
               for r in rows):
        fail(errors, path,
             "no row with input_sparsity >= 0.9 reaches a 2x speedup")


def validate_noc_contention_semantics(results, path, errors):
    """The Ml-NoC acceptance properties (docs/noc.md): event fidelity only
    adds latency over analytic, congestion is present, and its magnitude
    separates the MCA configurations (latencies and hop counts are
    cycle-model outputs — deterministic, so no jitter slack is needed)."""
    needed = ("mca", "analytic_latency_ns", "event_latency_ns",
              "stall_cycles")
    rows = [r for r in results
            if isinstance(r, dict) and all(k in r for k in needed)]
    if len(rows) != len(results):
        return  # field errors were already reported by validate_rows
    for row in rows:
        if row["event_latency_ns"] < row["analytic_latency_ns"]:
            fail(errors, path,
                 f"MCA-{row['mca']}: event latency "
                 f"{row['event_latency_ns']} below analytic "
                 f"{row['analytic_latency_ns']}")
    if not any(r["stall_cycles"] > 0 for r in rows):
        fail(errors, path, "no row shows congestion (stall_cycles == 0)")
        return
    # Separation over ALL rows: a zero-stall config next to stalled ones
    # is maximal separation, not a failure.
    stalls = sorted(r["stall_cycles"] for r in rows)
    if len(stalls) >= 2 and stalls[-1] < 1.02 * stalls[0]:
        fail(errors, path,
             "stall_cycles do not separate the MCA configurations "
             f"(min {stalls[0]}, max {stalls[-1]})")


def validate_serving_semantics(results, path, errors):
    """The serving-layer acceptance properties (docs/serving.md): a
    single-tenant baseline row and a >= 4-tenant row exist, the latencies
    are sane tail-ordered percentiles, and the multi-tenant aggregate
    clears the scaling floor over the baseline."""
    needed = ("tenants", "throughput_rps", "p50_ns", "p95_ns", "p99_ns")
    rows = [r for r in results
            if isinstance(r, dict) and all(k in r for k in needed)]
    if len(rows) != len(results):
        return  # field errors were already reported by validate_rows
    for row in rows:
        if not 0 < row["p50_ns"] <= row["p95_ns"] <= row["p99_ns"]:
            fail(errors, path,
                 f"tenants={row['tenants']}: percentiles not ordered "
                 f"(p50 {row['p50_ns']}, p95 {row['p95_ns']}, "
                 f"p99 {row['p99_ns']})")
        if row["throughput_rps"] <= 0:
            fail(errors, path,
                 f"tenants={row['tenants']}: non-positive throughput")
    baseline = [r for r in rows if r["tenants"] == 1]
    multi = [r for r in rows if r["tenants"] >= 4]
    if not baseline:
        fail(errors, path, "no single-tenant baseline row")
        return
    if not multi:
        fail(errors, path, "no row with >= 4 concurrent tenants")
        return
    floor = SERVING_MIN_SCALING * baseline[0]["throughput_rps"]
    best = max(r["throughput_rps"] for r in multi)
    if best < floor:
        fail(errors, path,
             f"multi-tenant aggregate {best:.1f} req/s below "
             f"{SERVING_MIN_SCALING}x the single-tenant baseline "
             f"({baseline[0]['throughput_rps']:.1f} req/s)")


def validate_micro_kernel_semantics(results, path, errors):
    rows = [r for r in results if isinstance(r, dict)]
    conv = [r for r in rows if r.get("kernel") == "conv_forward"]
    if not conv:
        fail(errors, path, "micro_kernels must report a 'conv_forward' row")
        return
    if conv[0].get("speedup", 0.0) < CONV_FORWARD_MIN_SPEEDUP:
        fail(errors, path,
             f"conv_forward speedup {conv[0].get('speedup')} below the "
             f"{CONV_FORWARD_MIN_SPEEDUP}x floor")
    packed = [r for r in rows if r.get("kernel") == "masked_row_accumulate"]
    if not packed:
        fail(errors, path,
             "micro_kernels must report a 'masked_row_accumulate' row")
        return
    if packed[0].get("speedup", 0.0) < PACKED_ACCUMULATE_MIN_SPEEDUP:
        fail(errors, path,
             f"masked_row_accumulate speedup {packed[0].get('speedup')} "
             f"below the {PACKED_ACCUMULATE_MIN_SPEEDUP}x floor")


def validate_pipeline_semantics(results, path, errors):
    """The batched-replay acceptance property (docs/execution.md): the
    "+packed" executor amortizes per-trace route/program lookups, so its
    throughput must stay within PACKED_EXECUTE_MIN_RATIO of the
    sequential replay at every thread count."""
    needed = ("threads", "execute_resparc_tps", "execute_resparc_packed_tps")
    rows = [r for r in results
            if isinstance(r, dict) and all(k in r for k in needed)]
    if len(rows) != len(results):
        return  # field errors were already reported by validate_rows
    for row in rows:
        floor = PACKED_EXECUTE_MIN_RATIO * row["execute_resparc_tps"]
        if row["execute_resparc_packed_tps"] < floor:
            fail(errors, path,
                 f"threads={row['threads']}: packed replay "
                 f"{row['execute_resparc_packed_tps']:.1f} traces/s below "
                 f"{PACKED_EXECUTE_MIN_RATIO}x the sequential replay "
                 f"({row['execute_resparc_tps']:.1f} traces/s)")


def validate_fault_yield_semantics(results, path, errors):
    """The fleet-harness acceptance properties (docs/reliability.md): the
    sweep aggregates enough Monte-Carlo samples, every population reports
    ordered quantiles and a sane yield, and the zero-fault population is
    perfect — pristine chips must reproduce the baseline accuracy bit for
    bit (the fault layer's no-op guarantee, measured end to end)."""
    needed = ("chips", "stuck_rate", "sigma", "yield", "acc_p05", "acc_p50",
              "acc_p95", "energy_p50_uj", "energy_p95_uj",
              "baseline_accuracy")
    rows = [r for r in results
            if isinstance(r, dict) and all(k in r for k in needed)]
    if len(rows) != len(results):
        return  # field errors were already reported by validate_rows
    total = sum(r["chips"] for r in rows)
    if total < FAULT_YIELD_MIN_CHIPS:
        fail(errors, path,
             f"fleet sweep covers only {total} chip instances "
             f"(minimum {FAULT_YIELD_MIN_CHIPS})")
    for row in rows:
        label = f"stuck_rate={row['stuck_rate']}, sigma={row['sigma']}"
        if not 0.0 <= row["yield"] <= 1.0:
            fail(errors, path, f"{label}: yield {row['yield']} not in [0, 1]")
        if not row["acc_p05"] <= row["acc_p50"] <= row["acc_p95"]:
            fail(errors, path,
                 f"{label}: accuracy quantiles not ordered "
                 f"(p05 {row['acc_p05']}, p50 {row['acc_p50']}, "
                 f"p95 {row['acc_p95']})")
        if row["energy_p50_uj"] > row["energy_p95_uj"]:
            fail(errors, path,
                 f"{label}: energy quantiles not ordered "
                 f"(p50 {row['energy_p50_uj']}, p95 {row['energy_p95_uj']})")
    pristine = [r for r in rows
                if r["stuck_rate"] == 0 and r["sigma"] == 0]
    if not pristine:
        fail(errors, path, "no zero-fault population row")
        return
    for row in pristine:
        if row["yield"] != 1.0:
            fail(errors, path,
                 f"zero-fault population yield {row['yield']} != 1.0")
        if abs(row["acc_p50"] - row["baseline_accuracy"]) > 1e-9:
            fail(errors, path,
                 f"zero-fault acc_p50 {row['acc_p50']} deviates from the "
                 f"baseline accuracy {row['baseline_accuracy']}")


def validate_search_mapping_semantics(results, path, errors):
    """The search-strategy acceptance properties (docs/compile.md): a
    greedy-pack baseline row and an anneal row exist; anneal clears the
    energy floor over greedy-pack and stalls strictly less; and the
    searched row actually exercises heterogeneous MCA mixes."""
    needed = ("strategy", "energy_uj", "stall_cycles", "mixed_sizes")
    rows = [r for r in results
            if isinstance(r, dict) and all(k in r for k in needed)]
    if len(rows) != len(results):
        return  # field errors were already reported by validate_rows
    by_strategy = {r["strategy"]: r for r in rows}
    greedy = by_strategy.get("greedy-pack")
    anneal = by_strategy.get("anneal")
    if greedy is None or anneal is None:
        fail(errors, path,
             "bench_search_mapping needs 'greedy-pack' and 'anneal' rows")
        return
    floor = SEARCH_MAX_ENERGY_RATIO * greedy["energy_uj"]
    if anneal["energy_uj"] > floor:
        fail(errors, path,
             f"anneal energy {anneal['energy_uj']} uJ above "
             f"{SEARCH_MAX_ENERGY_RATIO}x greedy-pack "
             f"({greedy['energy_uj']} uJ)")
    if anneal["stall_cycles"] >= greedy["stall_cycles"]:
        fail(errors, path,
             f"anneal stall cycles {anneal['stall_cycles']} not strictly "
             f"below greedy-pack ({greedy['stall_cycles']})")
    if anneal["mixed_sizes"] < 1:
        fail(errors, path,
             "anneal row reports no heterogeneous MCA sizes "
             "(mixed_sizes == 0)")


def validate_file(path, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, path, f"unreadable: {exc}")
        return
    if not isinstance(doc, dict):
        fail(errors, path, "top level is not an object")
        return
    results = validate_envelope(doc, path, errors)
    if results is None:
        return
    validate_rows(doc, results, path, errors)
    if doc["bench"] == "bench_sparse_execution":
        validate_sparse_semantics(results, path, errors)
    if doc["bench"] == "pipeline_throughput":
        validate_pipeline_semantics(results, path, errors)
    if doc["bench"] == "micro_kernels":
        validate_micro_kernel_semantics(results, path, errors)
    if doc["bench"] == "bench_noc_contention":
        validate_noc_contention_semantics(results, path, errors)
    if doc["bench"] == "bench_serving":
        validate_serving_semantics(results, path, errors)
    if doc["bench"] == "bench_fault_yield":
        validate_fault_yield_semantics(results, path, errors)
    if doc["bench"] == "bench_search_mapping":
        validate_search_mapping_semantics(results, path, errors)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for path in argv[1:]:
        validate_file(path, errors)
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} trajectory file(s) valid")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
