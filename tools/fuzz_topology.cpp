// fuzz_topology: bulk driver of the differential test layer.
//
// Expands a range of seeds into random legal workloads (snn/fuzz.hpp)
// and, by default, pushes each through every execution engine and every
// replay path, demanding bit-for-bit agreement (api/differential.hpp).
// Used to hunt for divergences beyond what tests/test_differential.cpp
// sweeps per ctest run, and to pick seeds for the regression corpus
// (tests/data/corpus/): the printed one-line summaries show which
// features each seed covers.
//
//   fuzz_topology                          verify seeds 0..199
//   fuzz_topology --count 10000            a long overnight hunt
//   fuzz_topology --start 5000 --count 64  a disjoint seed window
//   fuzz_topology --list --count 50        print summaries, skip verify
//
// Exit status: 0 when every case agreed, 1 on the first divergence
// (printed with the seed so it can be added to the corpus), 2 on usage.
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/differential.hpp"
#include "snn/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--start N] [--count N] [--list]\n"
            << "  --start N  first seed (default 0)\n"
            << "  --count N  number of seeds (default 200)\n"
            << "  --list     print case summaries without verifying\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t start = 0;
  std::uint64_t count = 200;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--start" && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--count" && i + 1 < argc) {
      count = std::strtoull(argv[++i], nullptr, 10);
      if (count == 0) return usage(argv[0]);
    } else if (arg == "--list") {
      list_only = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::uint64_t checked = 0;
  for (std::uint64_t seed = start; seed < start + count; ++seed) {
    const resparc::snn::FuzzCase c = resparc::snn::make_fuzz_case(seed);
    if (list_only) {
      std::cout << c.summary() << "\n";
      continue;
    }
    const resparc::api::DifferentialResult r =
        resparc::api::check_differential(c);
    if (!r.ok) {
      std::cerr << "DIVERGENCE " << r.detail << "\n";
      return 1;
    }
    ++checked;
    if (checked % 50 == 0)
      std::cout << checked << "/" << count << " cases agreed (last: "
                << c.summary() << ")\n";
  }
  if (!list_only)
    std::cout << checked << " cases: dense == sparse == packed, "
              << "sequential == batched replay\n";
  return 0;
}
