// resparc-compile: compiles a bundled paper benchmark to a serialized
// CompiledProgram blob (.rcp) from the shell.
//
// Runs the full compiler pipeline — tile, place, optimize (for the search
// strategies), repair, route, cost, mandatory verify — and writes the
// blob to stdout or --out.  This is how the committed golden fixture
// (tests/data/golden_mnist_mlp_mca64.rcp) is regenerated after a format
// bump, and a convenient way to inspect what a strategy produces:
//
//   resparc-compile mnist-mlp                          blob on stdout
//   resparc-compile --strategy anneal mnist-cnn        searched mapping
//   resparc-compile --mca 128 --out m.rcp mnist-mlp    write to a file
//
// Benchmarks are named by topology (mnist-mlp, mnist-cnn, svhn-mlp,
// svhn-cnn, cifar-mlp, cifar-cnn).  Exit status: 0 on success, 1 when
// compilation fails (including a verifier rejection), 2 on usage errors.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "compile/compiler.hpp"
#include "compile/program.hpp"
#include "snn/benchmarks.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--strategy NAME] [--mca N] [--out FILE] benchmark\n"
            << "  --strategy NAME  mapping strategy (default \"paper\"; "
            << "\"auto\" picks the best)\n"
            << "  --mca N          crossbar size (default 64)\n"
            << "  --out FILE       write the blob to FILE instead of stdout\n"
            << "  benchmark        mnist-mlp | mnist-cnn | svhn-mlp | "
            << "svhn-cnn | cifar-mlp | cifar-cnn\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string strategy = "paper";
  std::string out_path;
  std::string benchmark;
  std::size_t mca = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strategy") {
      if (i + 1 >= argc) return usage(argv[0]);
      strategy = argv[++i];
    } else if (arg == "--mca") {
      if (i + 1 >= argc) return usage(argv[0]);
      mca = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (mca == 0) return usage(argv[0]);
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (benchmark.empty()) {
      benchmark = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (benchmark.empty()) return usage(argv[0]);

  try {
    const resparc::snn::Topology* topology = nullptr;
    const auto specs = resparc::snn::paper_benchmarks();
    for (const auto& spec : specs)
      if (spec.topology.name() == benchmark) topology = &spec.topology;
    if (topology == nullptr) {
      std::cerr << "resparc-compile: unknown benchmark \"" << benchmark
                << "\" (known:";
      for (const auto& spec : specs)
        std::cerr << " " << spec.topology.name();
      std::cerr << ")\n";
      return 2;
    }

    const resparc::compile::Compiler compiler(
        resparc::core::config_with_mca(mca));
    const resparc::compile::CompiledProgram program =
        compiler.compile(*topology, strategy);

    if (out_path.empty()) {
      program.save(std::cout);
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "resparc-compile: cannot open \"" << out_path << "\"\n";
        return 2;
      }
      program.save(out);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "resparc-compile: " << e.what() << "\n";
    return 1;
  }
}
