// resparc-serve: drive the multi-tenant serving layer from the shell.
//
// Builds a paper benchmark workload (synthetic dataset, calibrated
// network, recorded traces), binds N identical tenants on a
// serve::Server, replays the traces closed-loop from one producer per
// tenant, and prints the serving counters plus the per-stage latency
// table (docs/serving.md).
//
//   resparc-serve                          1 tenant, mnist-mlp defaults
//   resparc-serve --tenants 4 --requests 200
//   resparc-serve --benchmark cifar-mlp --backend resparc-128
//   resparc-serve --cache-dir /tmp/rcache  persist compiled programs
//   resparc-serve --json                   machine-readable summary
//
// Exit status: 0 on success, 2 on usage errors, 1 on serving failures.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "api/pipeline.hpp"
#include "serve/server.hpp"
#include "snn/benchmarks.hpp"

namespace {

using namespace resparc;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --benchmark NAME  paper benchmark topology (mnist-mlp, svhn-mlp,\n"
      << "                    cifar-mlp, mnist-cnn, svhn-cnn, cifar-cnn)\n"
      << "  --backend KEY     accelerator registry key (default resparc-64)\n"
      << "  --tenants N       concurrent tenants/producers   (default 1)\n"
      << "  --requests N      requests per tenant            (default 64)\n"
      << "  --replicas N      loaded replicas per tenant     (default 1)\n"
      << "  --batch-max N     max requests per batch         (default 8)\n"
      << "  --window-us N     batch window in microseconds   (default 100)\n"
      << "  --images N        distinct traces in the workload(default 8)\n"
      << "  --timesteps N     presentation length            (default 16)\n"
      << "  --seed N          server master seed             (default 7)\n"
      << "  --cache-dir PATH  persist compiled programs under PATH\n"
      << "  --json            print a JSON summary instead of tables\n";
  return 2;
}

const snn::BenchmarkSpec* find_benchmark(
    const std::vector<snn::BenchmarkSpec>& all, const std::string& name) {
  for (const auto& spec : all)
    if (spec.topology.name() == name) return &spec;
  return nullptr;
}

struct Options {
  std::string benchmark = "mnist-mlp";
  std::string backend = "resparc-64";
  std::size_t tenants = 1;
  std::size_t requests = 64;
  std::size_t replicas = 1;
  std::size_t batch_max = 8;
  std::size_t window_us = 100;
  std::size_t images = 8;
  std::size_t timesteps = 16;
  std::uint64_t seed = 7;
  std::string cache_dir;
  bool json = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](auto& out) {
      if (i + 1 >= argc) return false;
      const long v = std::atol(argv[++i]);
      if (v <= 0) return false;
      out = static_cast<std::remove_reference_t<decltype(out)>>(v);
      return true;
    };
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--benchmark" && i + 1 < argc) {
      opts.benchmark = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      opts.backend = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      opts.cache_dir = argv[++i];
    } else if (arg == "--tenants") {
      if (!next(opts.tenants)) return usage(argv[0]);
    } else if (arg == "--requests") {
      if (!next(opts.requests)) return usage(argv[0]);
    } else if (arg == "--replicas") {
      if (!next(opts.replicas)) return usage(argv[0]);
    } else if (arg == "--batch-max") {
      if (!next(opts.batch_max)) return usage(argv[0]);
    } else if (arg == "--window-us") {
      if (!next(opts.window_us)) return usage(argv[0]);
    } else if (arg == "--images") {
      if (!next(opts.images)) return usage(argv[0]);
    } else if (arg == "--timesteps") {
      if (!next(opts.timesteps)) return usage(argv[0]);
    } else if (arg == "--seed") {
      if (!next(opts.seed)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  const auto benchmarks = snn::paper_benchmarks();
  const snn::BenchmarkSpec* spec = find_benchmark(benchmarks, opts.benchmark);
  if (spec == nullptr) {
    std::cerr << "resparc-serve: unknown benchmark \"" << opts.benchmark
              << "\"\n";
    return usage(argv[0]);
  }

  try {
    api::PipelineOptions popt;
    popt.images = opts.images;
    popt.timesteps = opts.timesteps;
    popt.threads = 0;
    const api::Workload workload =
        api::Pipeline(popt).benchmark(*spec).run();

    serve::ServerConfig config;
    config.replicas = opts.replicas;
    config.dispatchers = std::max<std::size_t>(opts.tenants, 2);
    config.batch_max = opts.batch_max;
    config.batch_window = std::chrono::microseconds(opts.window_us);
    config.seed = opts.seed;
    config.cache.directory = opts.cache_dir;
    serve::Server server(config);

    serve::TenantSpec tenant;
    tenant.backend = opts.backend;
    tenant.topology = workload.topology();
    std::vector<serve::SessionId> sessions;
    for (std::size_t t = 0; t < opts.tenants; ++t) {
      const std::string name = "tenant-" + std::to_string(t);
      server.add_tenant(name, tenant);
      sessions.push_back(server.open_session(name));
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < opts.tenants; ++t) {
      producers.emplace_back([&, t] {
        std::deque<std::future<serve::Response>> inflight;
        for (std::size_t i = 0; i < opts.requests; ++i) {
          serve::Request request;
          request.trace = workload.traces[i % workload.traces.size()];
          inflight.push_back(server.submit(sessions[t], std::move(request)));
          if (inflight.size() >= 32) {
            inflight.front().get();
            inflight.pop_front();
          }
        }
        while (!inflight.empty()) {
          inflight.front().get();
          inflight.pop_front();
        }
      });
    }
    for (auto& p : producers) p.join();
    server.drain();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    const serve::ServerStats stats = server.stats();
    const auto& cache = server.program_cache().stats();
    const double rps =
        static_cast<double>(stats.completed) / std::max(seconds, 1e-9);
    if (opts.json) {
      std::cout << "{\"benchmark\": \"" << opts.benchmark << "\", \"backend\": \""
                << opts.backend << "\", \"tenants\": " << opts.tenants
                << ", \"completed\": " << stats.completed
                << ", \"rejected\": " << stats.rejected
                << ", \"batches\": " << stats.batches
                << ", \"max_batch\": " << stats.max_batch
                << ", \"throughput_rps\": " << rps
                << ", \"cache\": {\"memory_hits\": " << cache.memory_hits
                << ", \"disk_hits\": " << cache.disk_hits
                << ", \"misses\": " << cache.misses
                << ", \"corrupt_evictions\": " << cache.corrupt_evictions
                << "}, \"latency\": " << server.latency().to_json() << "}\n";
    } else {
      std::cout << "benchmark " << opts.benchmark << " on " << opts.backend
                << ": " << opts.tenants << " tenant(s) x " << opts.requests
                << " requests\n"
                << "completed " << stats.completed << " (" << stats.rejected
                << " rejected) in " << stats.batches << " batches (max "
                << stats.max_batch << ") — " << rps << " req/s\n"
                << "program cache: " << cache.memory_hits << " memory hits, "
                << cache.disk_hits << " disk hits, " << cache.misses
                << " misses\n\n"
                << server.latency().to_string();
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "resparc-serve: " << error.what() << "\n";
    return 1;
  }
}
