// Persistent worker pool behind the repo's indexed parallel-for.
//
// Workers are spawned once and parked on a condition variable between
// jobs, so a steady state of many small batches (api::Pipeline's per-
// presentation fan-out, the simulator's within-trace partitioning) costs
// no thread spawn/join per call.  Work items are claimed in contiguous
// chunks from a shared atomic cursor, so the assignment of indices to
// workers is nondeterministic — callers that need deterministic results
// must make each item independent (own RNG, own output slot) and reduce
// the pre-sized output sequentially afterwards.  That is exactly the
// contract api::Pipeline relies on for its thread-count-invariant runs
// (docs/performance.md).
//
// Cancellation is cooperative: the first exception thrown by any worker
// sets a job-wide stop flag that every claim loop checks per item, so the
// remaining workers stop promptly instead of draining the counter
// (tests/test_thread_pool.cpp pins this).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace resparc {

/// Number of workers actually used for `threads` requested (0 = all
/// hardware threads, always at least 1, never more than `count`).
inline std::size_t resolve_threads(std::size_t threads, std::size_t count) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > count) threads = count;
  return threads == 0 ? 1 : threads;
}

/// Persistent pool of parked worker threads executing indexed jobs.
///
/// One job runs at a time; concurrent callers serialize on an internal
/// ticket lock and are admitted in strict arrival order, so a producer
/// submitting a tight stream of small jobs cannot starve other callers
/// (condition-variable wakeups alone carry no ordering).  A call from
/// inside a worker (nested parallelism) degrades to inline serial
/// execution instead of deadlocking.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller of run() is the extra
  /// worker); 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers (any in-flight job must have completed).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers this pool can apply to one job, caller included.
  std::size_t width() const { return workers_.size() + 1; }

  /// Runs fn(index, worker) for every index in [0, count); `worker` is a
  /// stable id in [0, width()) for per-worker scratch (the caller is
  /// worker 0).  At most `max_workers` workers participate (0 = all).
  /// Blocks until every index ran or the job was cancelled by an
  /// exception; the first exception is rethrown on the caller.
  void run_indexed(std::size_t count, std::size_t max_workers,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// The process-wide pool (one worker per hardware thread), spawned on
  /// first use.  api::Pipeline and the simulator's within-trace
  /// partitioning run all their batched work on this instance.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;                       ///< job state shared with workers
  std::vector<std::thread> workers_; ///< parked worker threads
};

/// Runs fn(i) for every i in [0, count) on up to `threads` workers of the
/// global pool (capped at the pool width; results are thread-count
/// invariant by the independence contract above).  The first exception
/// thrown by any worker is rethrown on the caller after the job stops.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t threads, Fn&& fn) {
  if (count == 0) return;
  threads = resolve_threads(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::global().run_indexed(
      count, threads, [&fn](std::size_t i, std::size_t) { fn(i); });
}

}  // namespace resparc
