// Minimal indexed parallel-for used by the batched pipeline.
//
// Work items are claimed from a shared atomic counter, so the assignment of
// indices to workers is nondeterministic — callers that need deterministic
// results must make each item independent (own RNG, own output slot) and
// reduce the pre-sized output sequentially afterwards.  That is exactly the
// contract api::Pipeline relies on for its thread-count-invariant runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace resparc {

/// Number of workers actually used for `threads` requested (0 = all
/// hardware threads, always at least 1, never more than `count`).
inline std::size_t resolve_threads(std::size_t threads, std::size_t count) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > count) threads = count;
  return threads == 0 ? 1 : threads;
}

/// Runs fn(i) for every i in [0, count) on up to `threads` workers.
/// The first exception thrown by any worker is rethrown on the caller.
template <typename Fn>
void parallel_for(std::size_t count, std::size_t threads, Fn&& fn) {
  if (count == 0) return;
  threads = resolve_threads(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace resparc
