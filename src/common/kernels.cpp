#include "common/kernels.hpp"

#include <algorithm>
#include <cstring>

namespace resparc::kernels {

void accumulate_rows(const float* w, std::size_t stride, std::size_t cols,
                     std::span<const std::uint32_t> rows, float* acc) {
  std::size_t i = 0;
  // Fused groups of four: per output element the adds still happen in
  // ascending row order (see row_add4), so any grouping is bit-for-bit
  // identical to the plain per-row loop — the fusion is free to change
  // with no numeric effect.
  for (; i + 4 <= rows.size(); i += 4) {
    row_add4(acc, w + static_cast<std::size_t>(rows[i]) * stride,
             w + static_cast<std::size_t>(rows[i + 1]) * stride,
             w + static_cast<std::size_t>(rows[i + 2]) * stride,
             w + static_cast<std::size_t>(rows[i + 3]) * stride, cols);
  }
  for (; i < rows.size(); ++i)
    row_add(acc, w + static_cast<std::size_t>(rows[i]) * stride, cols);
}

void matvec_in_major(const float* w, std::size_t rows, std::size_t cols,
                     const float* x, float* out) {
  std::fill(out, out + cols, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float xv = x[r];
    if (xv == 0.0f) continue;  // event-driven: skip silent inputs
    axpy(out, xv, w + r * cols, cols);
  }
}

void matvec_out_major(const float* w, std::size_t rows, std::size_t cols,
                      const float* x, float* out) {
  for (std::size_t r = 0; r < rows; ++r) out[r] = dot(w + r * cols, x, cols);
}

void im2col(const float* in, std::size_t in_c, std::size_t in_h,
            std::size_t in_w, std::size_t k, std::size_t pad,
            std::size_t out_h, std::size_t out_w, float* col) {
  // Patch-row-major: row j = (c, ky, kx) holds that tap's value for every
  // output pixel, so each GEMM axpy streams one contiguous row.  For a
  // fixed (c, ky) the input pixels form contiguous runs per output row;
  // out-of-image taps are zero-filled.
  const std::size_t npix = out_h * out_w;
  std::size_t j = 0;
  for (std::size_t c = 0; c < in_c; ++c) {
    const float* plane = in + c * in_h * in_w;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx, ++j) {
        float* row = col + j * npix;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          float* dst = row + oy * out_w;
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                    static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
            std::fill(dst, dst + out_w, 0.0f);
            continue;
          }
          // ix = ox + kx - pad must lie in [0, in_w): valid ox range is
          // [x0, x1).
          const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kx) -
                                       static_cast<std::ptrdiff_t>(pad);
          const std::size_t x0 = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -shift));
          const std::size_t x1 = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
              static_cast<std::ptrdiff_t>(in_w) - shift, 0,
              static_cast<std::ptrdiff_t>(out_w)));
          std::fill(dst, dst + x0, 0.0f);
          if (x1 > x0) {
            const float* src = plane + static_cast<std::size_t>(iy) * in_w;
            std::memcpy(dst + x0, src + static_cast<std::size_t>(
                                            static_cast<std::ptrdiff_t>(x0) + shift),
                        (x1 - x0) * sizeof(float));
          }
          std::fill(dst + std::max(x0, x1), dst + out_w, 0.0f);
        }
      }
    }
  }
}

void conv2d_forward(const float* in, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, const float* w, std::size_t out_c,
                    std::size_t k, std::size_t pad, std::size_t out_h,
                    std::size_t out_w, float* out, Scratch& scratch) {
  const std::size_t npix = out_h * out_w;
  const std::size_t patch = in_c * k * k;
  scratch.ensure_col(patch * npix);
  float* col = scratch.col.data();
  im2col(in, in_c, in_h, in_w, k, pad, out_h, out_w, col);

  std::fill(out, out + out_c * npix, 0.0f);
  // Blocked GEMM: out (out_c x npix, CHW feature maps) += W^T * col.
  // Patch rows are processed in ascending blocks and ascending order
  // inside each block, so per output element the accumulation order is
  // plain ascending (c, ky, kx) — the naive loop nest's order.  The
  // block keeps ~jb rows of `col` hot in cache while every output
  // channel consumes them.
  constexpr std::size_t kPatchBlock = 48;
  for (std::size_t j0 = 0; j0 < patch; j0 += kPatchBlock) {
    const std::size_t j1 = std::min(patch, j0 + kPatchBlock);
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      float* dst = out + oc * npix;
      for (std::size_t j = j0; j < j1; ++j)
        axpy(dst, w[j * out_c + oc], col + j * npix, npix);
    }
  }
}

}  // namespace resparc::kernels
