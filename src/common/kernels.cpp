#include "common/kernels.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace resparc::kernels {

namespace {

/// Masks off the bits of `word` at and above `bits % 64` (no-op when
/// `bits` is word-aligned).
inline std::uint64_t tail_mask(std::uint64_t word, std::size_t bits) {
  const std::size_t rem = bits & 63;
  return rem == 0 ? word : word & ((std::uint64_t{1} << rem) - 1);
}

}  // namespace

std::size_t popcount_bits(const std::uint64_t* a, std::size_t bits) {
  std::size_t n = 0;
  const std::size_t full = bits >> 6;
  for (std::size_t i = 0; i < full; ++i)
    n += static_cast<std::size_t>(std::popcount(a[i]));
  if (bits & 63)
    n += static_cast<std::size_t>(std::popcount(tail_mask(a[full], bits)));
  return n;
}

std::size_t popcount_dot(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t bits) {
  std::size_t n = 0;
  const std::size_t full = bits >> 6;
  for (std::size_t i = 0; i < full; ++i)
    n += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  if (bits & 63)
    n += static_cast<std::size_t>(
        std::popcount(tail_mask(a[full] & b[full], bits)));
  return n;
}

void masked_row_accumulate(const float* w, std::size_t stride,
                           std::size_t cols, const std::uint64_t* mask,
                           std::size_t rows, float* acc) {
  // Decoded rows are buffered four at a time and flushed through
  // row_add4 — the same grouping accumulate_rows applies to its index
  // list, so per output element the additions happen in identical
  // ascending-row order (bit-for-bit parity is test-enforced,
  // tests/test_packed_kernels.cpp).
  const float* pending[4];
  std::size_t npending = 0;
  const std::size_t nwords = (rows + 63) / 64;
  for (std::size_t j = 0; j < nwords; ++j) {
    std::uint64_t word = mask[j];
    if (j + 1 == nwords) word = tail_mask(word, rows);
    while (word) {
      const std::size_t r = (j << 6) +
                            static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;  // clear the lowest set bit
      pending[npending++] = w + r * stride;
      if (npending == 4) {
        row_add4(acc, pending[0], pending[1], pending[2], pending[3], cols);
        npending = 0;
      }
    }
  }
  for (std::size_t i = 0; i < npending; ++i) row_add(acc, pending[i], cols);
}

void accumulate_rows(const float* w, std::size_t stride, std::size_t cols,
                     std::span<const std::uint32_t> rows, float* acc) {
  std::size_t i = 0;
  // Fused groups of four: per output element the adds still happen in
  // ascending row order (see row_add4), so any grouping is bit-for-bit
  // identical to the plain per-row loop — the fusion is free to change
  // with no numeric effect.
  for (; i + 4 <= rows.size(); i += 4) {
    row_add4(acc, w + static_cast<std::size_t>(rows[i]) * stride,
             w + static_cast<std::size_t>(rows[i + 1]) * stride,
             w + static_cast<std::size_t>(rows[i + 2]) * stride,
             w + static_cast<std::size_t>(rows[i + 3]) * stride, cols);
  }
  for (; i < rows.size(); ++i)
    row_add(acc, w + static_cast<std::size_t>(rows[i]) * stride, cols);
}

void matvec_in_major(const float* w, std::size_t rows, std::size_t cols,
                     const float* x, float* out) {
  std::fill(out, out + cols, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float xv = x[r];
    if (xv == 0.0f) continue;  // event-driven: skip silent inputs
    axpy(out, xv, w + r * cols, cols);
  }
}

void matvec_out_major(const float* w, std::size_t rows, std::size_t cols,
                      const float* x, float* out) {
  for (std::size_t r = 0; r < rows; ++r) out[r] = dot(w + r * cols, x, cols);
}

void im2col(const float* in, std::size_t in_c, std::size_t in_h,
            std::size_t in_w, std::size_t k, std::size_t pad,
            std::size_t out_h, std::size_t out_w, float* col) {
  // Patch-row-major: row j = (c, ky, kx) holds that tap's value for every
  // output pixel, so each GEMM axpy streams one contiguous row.  For a
  // fixed (c, ky) the input pixels form contiguous runs per output row;
  // out-of-image taps are zero-filled.
  const std::size_t npix = out_h * out_w;
  std::size_t j = 0;
  for (std::size_t c = 0; c < in_c; ++c) {
    const float* plane = in + c * in_h * in_w;
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx, ++j) {
        float* row = col + j * npix;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          float* dst = row + oy * out_w;
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                    static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
            std::fill(dst, dst + out_w, 0.0f);
            continue;
          }
          // ix = ox + kx - pad must lie in [0, in_w): valid ox range is
          // [x0, x1).
          const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kx) -
                                       static_cast<std::ptrdiff_t>(pad);
          const std::size_t x0 = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -shift));
          const std::size_t x1 = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
              static_cast<std::ptrdiff_t>(in_w) - shift, 0,
              static_cast<std::ptrdiff_t>(out_w)));
          std::fill(dst, dst + x0, 0.0f);
          if (x1 > x0) {
            const float* src = plane + static_cast<std::size_t>(iy) * in_w;
            std::memcpy(dst + x0, src + static_cast<std::size_t>(
                                            static_cast<std::ptrdiff_t>(x0) + shift),
                        (x1 - x0) * sizeof(float));
          }
          std::fill(dst + std::max(x0, x1), dst + out_w, 0.0f);
        }
      }
    }
  }
}

void conv2d_forward(const float* in, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, const float* w, std::size_t out_c,
                    std::size_t k, std::size_t pad, std::size_t out_h,
                    std::size_t out_w, float* out, Scratch& scratch) {
  const std::size_t npix = out_h * out_w;
  const std::size_t patch = in_c * k * k;
  scratch.ensure_col(patch * npix);
  float* col = scratch.col.data();
  im2col(in, in_c, in_h, in_w, k, pad, out_h, out_w, col);

  std::fill(out, out + out_c * npix, 0.0f);
  // Blocked GEMM: out (out_c x npix, CHW feature maps) += W^T * col.
  // Patch rows are processed in ascending blocks and ascending order
  // inside each block, so per output element the accumulation order is
  // plain ascending (c, ky, kx) — the naive loop nest's order.  The
  // block keeps ~jb rows of `col` hot in cache while every output
  // channel consumes them.
  constexpr std::size_t kPatchBlock = 48;
  for (std::size_t j0 = 0; j0 < patch; j0 += kPatchBlock) {
    const std::size_t j1 = std::min(patch, j0 + kPatchBlock);
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      float* dst = out + oc * npix;
      for (std::size_t j = j0; j < j1; ++j)
        axpy(dst, w[j * out_c + oc], col + j * npix, npix);
    }
  }
}

}  // namespace resparc::kernels
