// CSV emitter: the machine-readable twin of Table.
//
// Benches write one CSV per figure next to their stdout table so results can
// be re-plotted without re-running the simulation.
#pragma once

#include <string>
#include <vector>

namespace resparc {

/// Accumulates rows and writes an RFC-4180-ish CSV file.
class Csv {
 public:
  explicit Csv(std::vector<std::string> headers);

  /// Appends a row (quoted/escaped as needed on write).
  void add_row(std::vector<std::string> cells);

  /// Writes to `path`; returns false (without throwing) if the file cannot
  /// be opened — benches treat CSV output as best-effort.
  bool write(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace resparc
