// Physical-unit helpers.
//
// Energies are carried as double picojoules and times as double nanoseconds
// throughout the library; these constants and converters keep the exponents
// out of the model code.  (A full strong-unit type would obscure the simple
// arithmetic the cost models do; the naming convention *_pj / *_ns plus
// these helpers is the contract.)
#pragma once

namespace resparc {

// -- scale factors into the canonical units (pJ, ns) ------------------------

inline constexpr double kFemto_pJ = 1e-3;   ///< 1 fJ in pJ
inline constexpr double kPico_pJ = 1.0;     ///< 1 pJ in pJ
inline constexpr double kNano_pJ = 1e3;     ///< 1 nJ in pJ
inline constexpr double kMicro_pJ = 1e6;    ///< 1 uJ in pJ

inline constexpr double kPico_ns = 1e-3;    ///< 1 ps in ns
inline constexpr double kNano_ns = 1.0;     ///< 1 ns in ns
inline constexpr double kMicro_ns = 1e3;    ///< 1 us in ns
inline constexpr double kMilli_ns = 1e6;    ///< 1 ms in ns

// -- converters --------------------------------------------------------------

/// Watts dissipated over nanoseconds -> picojoules (1 W * 1 ns = 1 nJ = 1e3 pJ).
inline constexpr double watts_over_ns_to_pj(double watts, double ns) {
  return watts * ns * 1e3;
}

/// Clock frequency in MHz -> period in ns.
inline constexpr double mhz_to_period_ns(double mhz) { return 1e3 / mhz; }

/// Picojoules -> microjoules (for human-readable reports).
inline constexpr double pj_to_uj(double pj) { return pj * 1e-6; }

/// Nanoseconds -> microseconds (for human-readable reports).
inline constexpr double ns_to_us(double ns) { return ns * 1e-3; }

}  // namespace resparc
