// ASCII table emitter used by the benchmark harnesses.
//
// Every figure/table bench prints its rows through this class so the bench
// output stays uniform across figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace resparc {

/// Builds and renders a left/right-aligned ASCII table.
///
/// Usage:
///   Table t({"net", "energy (uJ)", "speedup"});
///   t.add_row({"MNIST-MLP", "1.23", "412x"});
///   t.print(std::cout);
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; pads/truncates to the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string num(double value, int precision = 3);

  /// Convenience: formats "NNNx" multiplier strings (e.g. speedups).
  static std::string factor(double value, int precision = 1);

  /// Renders with box-drawing separators to `os`.
  void print(std::ostream& os) const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace resparc
