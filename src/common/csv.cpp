#include "common/csv.hpp"

#include <fstream>

namespace resparc {
namespace {

std::string escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

Csv::Csv(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Csv::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

bool Csv::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << escape(row[i]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(out);
}

}  // namespace resparc
