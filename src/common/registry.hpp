// Thread-safe string-keyed factory registry.
//
// The backend registry (api/registry.cpp) and the mapping-strategy registry
// (compile/strategy.cpp) share this one implementation: a mutex-guarded
// sorted map whose lock covers only map access — factories run outside it,
// so a factory may itself consult a registry without deadlocking.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_safety.hpp"

namespace resparc {

template <typename Factory>
class NamedRegistry {
 public:
  /// Registers (or replaces) the factory under `name`.
  void set(const std::string& name, Factory factory) {
    MutexLock lock(mutex_);
    factories_[name] = std::move(factory);
  }

  /// The factory registered under `name`, or nullopt.
  std::optional<Factory> find(const std::string& name) const {
    MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const std::string& name) const {
    MutexLock lock(mutex_);
    return factories_.count(name) > 0;
  }

  /// Sorted names of every registered factory.
  std::vector<std::string> names() const {
    MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [key, unused] : factories_) out.push_back(key);
    return out;  // std::map iterates sorted
  }

 private:
  mutable Mutex mutex_;
  std::map<std::string, Factory> factories_ RESPARC_GUARDED_BY(mutex_);
};

/// "a, b, c" — for exception messages listing registered names.
inline std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace resparc
