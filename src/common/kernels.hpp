// Shared SIMD-friendly hot-loop kernels (docs/performance.md).
//
// Every hot inner loop of the repository — the trainer's dense/conv
// forward, the functional simulator's spike-driven row accumulate, the
// sparse engine's event scatter, and the crossbar/MCA read paths — is
// implemented exactly once here.  The kernels share three invariants:
//
//   * contiguous unit-stride inner loops over `__restrict` pointers, so
//     the compiler can auto-vectorize without runtime alias checks;
//   * a FIXED accumulation order: for every output element the floating-
//     point additions happen in one documented order that does not depend
//     on blocking, thread count, or call site.  Results are bit-for-bit
//     deterministic and thread-invariant, which is what keeps the dense
//     and sparse execution engines bit-identical (they call the same
//     kernels in the same order);
//   * no hidden allocation: kernels write into caller-provided buffers;
//     the only scratch (im2col) lives in a caller-owned Scratch arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace resparc::kernels {

/// acc[i] += row[i] for i in [0, n) — the spike-driven row accumulate.
/// One active input row of a crossbar/weight matrix is added onto the
/// output accumulator in ascending column order.
inline void row_add(float* __restrict acc, const float* __restrict row,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += row[i];
}

/// acc[i] += (((r0[i]) then r1[i]) then r2[i]) then r3[i] — four rows in
/// one pass.  Per element the additions happen strictly in r0..r3 order,
/// so the result is bit-for-bit identical to four row_add calls; the
/// fusion only saves three acc loads/stores per element (the dense
/// accumulate is memory-bound, so this is the cache-blocking lever).
inline void row_add4(float* __restrict acc, const float* __restrict r0,
                     const float* __restrict r1, const float* __restrict r2,
                     const float* __restrict r3, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    float v = acc[i];
    v += r0[i];
    v += r1[i];
    v += r2[i];
    v += r3[i];
    acc[i] = v;
  }
}

/// acc[i * stride] += row[i] for i in [0, n) — the conv scatter inner
/// loop (one kernel-tap weight row added across output channels, whose
/// feature maps are `stride` apart).
inline void row_add_strided(float* __restrict acc, std::size_t stride,
                            const float* __restrict row, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i * stride] += row[i];
}

/// y[i] += a * x[i] for i in [0, n).
inline void axpy(float* __restrict y, float a, const float* __restrict x,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// Single-accumulator dot product in ascending index order (the order the
/// scalar loops it replaced used, so gradients stay bit-for-bit).
inline float dot(const float* __restrict a, const float* __restrict b,
                 std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// acc[i] += v * row[i] for i in [0, n) — the crossbar read-current
/// accumulate (double precision: conductances are device-scale).
inline void scaled_row_add(double* __restrict acc, double v,
                           const double* __restrict row, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += v * row[i];
}

/// Adds weight rows `rows` of the input-major matrix starting at `w`
/// (row r begins at w + r*stride) onto `acc[0, cols)`: acc[c] += sum
/// over rows of w[r][c], accumulated in the given row order (groups of
/// four fused via row_add4 — bit-for-bit identical to one row_add per
/// row).  `cols <= stride` lets a caller accumulate a column slice of a
/// wider matrix (the simulator's within-trace partitioning).  This is
/// THE row accumulate both execution engines call: the dense simulator
/// passes the active-bit list of a SpikeVector, the sparse engine its
/// AER event list, so dense/sparse parity is structural.
void accumulate_rows(const float* w, std::size_t stride, std::size_t cols,
                     std::span<const std::uint32_t> rows, float* acc);

/// Number of set bits among the first `bits` bits of `a` (64-bit words,
/// little-endian bit order: bit i of word j = element j*64+i).  Bits of
/// the tail word at and above `bits` are masked off, so callers may pass
/// buffers whose trailing bits are stale.
std::size_t popcount_bits(const std::uint64_t* a, std::size_t bits);

/// popcount(a AND b) over the first `bits` bits — the inner product of
/// two binary vectors in packed form (the spike x mask dot product of the
/// packed datapath, docs/performance.md).  Tail bits at and above `bits`
/// are masked off in both operands; commutative and exact.
std::size_t popcount_dot(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t bits);

/// Packed-mask form of accumulate_rows: adds weight row r (starting at
/// w + r*stride) onto acc[0, cols) for every set bit r of `mask` (bit i
/// of word j = row j*64+i; bits at and above `rows` are ignored).  Rows
/// are decoded in ascending order and fused in groups of four via
/// row_add4 — exactly the grouping accumulate_rows uses — so the result
/// is bit-for-bit identical to accumulate_rows over the mask's
/// append_active() index list.  This is the dense-layer scatter of the
/// packed execution mode ("+packed", docs/execution.md).
void masked_row_accumulate(const float* w, std::size_t stride,
                           std::size_t cols, const std::uint64_t* mask,
                           std::size_t rows, float* acc);

/// out[c] = sum_r x[r] * w[r*cols + c] — input-major matvec (the layer
/// forward convention, paper Fig. 2).  Zero-fills `out`, skips zero
/// inputs (event-driven), accumulates rows in ascending order.
void matvec_in_major(const float* w, std::size_t rows, std::size_t cols,
                     const float* x, float* out);

/// out[r] = dot(w[r*cols ..], x) — output-major matvec (one contiguous
/// weight row per output), single-accumulator ascending order.
void matvec_out_major(const float* w, std::size_t rows, std::size_t cols,
                      const float* x, float* out);

/// Caller-owned scratch arena for kernels that need workspace (im2col).
/// Reused across calls: buffers only ever grow, so a warmed arena makes
/// the steady state allocation-free.
struct Scratch {
  std::vector<float> col;  ///< im2col patch matrix (pixels x inC*k*k)

  /// Grows `col` to at least `n` floats (never shrinks).
  void ensure_col(std::size_t n) {
    if (col.size() < n) col.resize(n);
  }
};

/// Dense NCHW conv2d forward via im2col + blocked GEMM.
///
/// `in` is (in_c, in_h, in_w) flat CHW; `w` is the im2col kernel matrix
/// (in_c*k*k rows x out_c cols, the layout snn::Network stores); `out`
/// is (out_c, out_h, out_w) flat CHW and is fully overwritten.  `pad` is
/// the symmetric zero padding (k/2 for "same", 0 for valid).
///
/// Accumulation order per output element is ascending patch index
/// (c, ky, kx) — identical to the naive 6-loop nest it replaced; padded
/// taps contribute an exact +/-0.0f, so results match the bounds-checked
/// scalar loop bit-for-bit (tests/test_kernels.cpp asserts equality).
void conv2d_forward(const float* in, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w, const float* w, std::size_t out_c,
                    std::size_t k, std::size_t pad, std::size_t out_h,
                    std::size_t out_w, float* out, Scratch& scratch);

/// Fills `col` (in_c*k*k rows x out_h*out_w cols, row-major: one
/// contiguous row per kernel tap, holding that tap's value for every
/// output pixel) with the im2col patches of `in`; out-of-image taps
/// become 0.0f.  Exposed for the kernel property tests.
void im2col(const float* in, std::size_t in_c, std::size_t in_h,
            std::size_t in_w, std::size_t k, std::size_t pad,
            std::size_t out_h, std::size_t out_w, float* col);

}  // namespace resparc::kernels
