// Clang thread-safety annotation macros (-Wthread-safety).
//
// Mutex-guarded state across the library is annotated so Clang's static
// thread-safety analysis proves lock discipline at compile time — the CI
// clang build compiles with -Wthread-safety -Werror.  On compilers
// without the attributes (GCC) every macro expands to nothing, so the
// annotations cost nothing outside the analysis build.
//
// Usage:
//   std::mutex mutex_;
//   std::size_t working_ RESPARC_GUARDED_BY(mutex_) = 0;
//   void drain() RESPARC_REQUIRES(mutex_);
//
// Only the subset the repo actually uses is defined; extend as needed
// (the full catalog is Clang's "Thread Safety Analysis" document).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RESPARC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RESPARC_THREAD_ANNOTATION
#define RESPARC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (shown as "mutex" in
/// diagnostics).
#define RESPARC_CAPABILITY(x) RESPARC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define RESPARC_SCOPED_CAPABILITY RESPARC_THREAD_ANNOTATION(scoped_lockable)

/// Marks a data member as protected by the given mutex: reads and writes
/// require the mutex to be held.
#define RESPARC_GUARDED_BY(x) RESPARC_THREAD_ANNOTATION(guarded_by(x))

/// Marks a pointer member whose *pointee* is protected by the mutex.
#define RESPARC_PT_GUARDED_BY(x) RESPARC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function must be called with the mutex held.
#define RESPARC_REQUIRES(...) \
  RESPARC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the mutex and returns with it held.
#define RESPARC_ACQUIRE(...) \
  RESPARC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the mutex.
#define RESPARC_RELEASE(...) \
  RESPARC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares that a function must be called with the mutex NOT held.
#define RESPARC_EXCLUDES(...) \
  RESPARC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Opts a function out of the analysis.  Reserved for code whose safety
/// rests on a publication protocol the analysis cannot see (e.g. the
/// ThreadPool's generation-stamped job publication) — always pair with a
/// comment explaining the protocol.
#define RESPARC_NO_THREAD_SAFETY_ANALYSIS \
  RESPARC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace resparc {

/// std::mutex with the capability annotation the analysis needs.
/// libstdc++'s std::mutex/std::lock_guard carry no thread-safety
/// attributes, so guarding members with a bare std::mutex makes every
/// properly-locked access a false positive under -Wthread-safety; this
/// wrapper (plus MutexLock) is what GUARDED_BY members should name.
class RESPARC_CAPABILITY("mutex") Mutex {
 public:
  /// Acquires the mutex.
  void lock() RESPARC_ACQUIRE() { m_.lock(); }
  /// Releases the mutex.
  void unlock() RESPARC_RELEASE() { m_.unlock(); }
  /// The wrapped std::mutex (for std::condition_variable waits).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Annotated scoped lock over Mutex (the std::unique_lock shape: manual
/// unlock()/lock() allowed, condition_variable-compatible via native()).
class RESPARC_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `m` for the lifetime of the guard.
  explicit MutexLock(Mutex& m) RESPARC_ACQUIRE(m) : lock_(m.native()) {}
  /// Releases the mutex if still held.
  ~MutexLock() RESPARC_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before the end of the scope.
  void unlock() RESPARC_RELEASE() { lock_.unlock(); }
  /// Re-acquires the mutex after an unlock().
  void lock() RESPARC_ACQUIRE() { lock_.lock(); }
  /// The underlying std::unique_lock (for condition_variable::wait).
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace resparc
