// Minimal CHW tensor shape and container used by the conv/pool layers.
//
// Images and feature maps are stored channel-major (C, H, W) in one
// contiguous buffer, which keeps the conv inner loops cache-friendly and
// maps directly onto the "flatten to connectivity matrix" step the crossbar
// mapper performs.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace resparc {

/// Shape of a (channels, height, width) tensor.
struct Shape3 {
  std::size_t c = 0;
  std::size_t h = 0;
  std::size_t w = 0;

  std::size_t size() const { return c * h * w; }
  friend bool operator==(const Shape3&, const Shape3&) = default;
};

/// Dense CHW tensor of float with value semantics.
class Tensor3 {
 public:
  Tensor3() = default;

  explicit Tensor3(Shape3 shape) : shape_(shape), data_(shape.size(), 0.0f) {}

  Tensor3(Shape3 shape, std::vector<float> flat)
      : shape_(shape), data_(std::move(flat)) {
    if (data_.size() != shape_.size())
      throw ShapeError("Tensor3: flat buffer size does not match shape");
  }

  const Shape3& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }

  /// Element access at (channel, row, col); asserted in debug builds.
  float& operator()(std::size_t c, std::size_t y, std::size_t x) {
    assert(c < shape_.c && y < shape_.h && x < shape_.w);
    return data_[(c * shape_.h + y) * shape_.w + x];
  }
  float operator()(std::size_t c, std::size_t y, std::size_t x) const {
    assert(c < shape_.c && y < shape_.h && x < shape_.w);
    return data_[(c * shape_.h + y) * shape_.w + x];
  }

  /// Flat row-major (C,H,W) view; the SNN input layer consumes this order.
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void fill(float value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Tensor3&, const Tensor3&) = default;

 private:
  Shape3 shape_{};
  std::vector<float> data_;
};

}  // namespace resparc
