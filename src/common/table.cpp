#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace resparc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::factor(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "x";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto rule = [&]() {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

}  // namespace resparc
