// Small integer helpers shared across the mapping and compile layers.
#pragma once

#include <cstddef>

namespace resparc {

/// ceil(a / b) for non-negative integers (b > 0).
inline constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace resparc
