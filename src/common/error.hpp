// Error types shared by all RESPARC modules.
//
// The library reports contract violations (bad configurations, impossible
// mappings) with exceptions derived from resparc::Error so callers can
// distinguish library failures from std:: failures.  An Error optionally
// carries a stable machine-readable code (e.g. the verifier's
// "RV-BLOB-TRAILING", docs/verification.md) so tests and tooling can
// assert on the *kind* of failure instead of matching message substrings.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace resparc {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, std::string code = {})
      : std::runtime_error(what), code_(std::move(code)) {}

  /// Stable machine-readable code ("" when the site predates codes).
  /// Codes follow the diagnostic catalog in docs/verification.md.
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Thrown when a configuration value is out of its documented domain
/// (e.g. a crossbar with zero rows, a negative supply voltage).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what, std::string code = {})
      : Error("config error: " + what, std::move(code)) {}
};

/// Thrown when a network cannot be placed onto the requested fabric
/// (e.g. a layer wider than the whole chip with spill disabled).
class MappingError : public Error {
 public:
  explicit MappingError(const std::string& what, std::string code = {})
      : Error("mapping error: " + what, std::move(code)) {}
};

/// Thrown on dimension mismatches between tensors/layers/traces.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what, std::string code = {})
      : Error("shape error: " + what, std::move(code)) {}
};

namespace detail {
[[noreturn]] inline void throw_config(const std::string& what,
                                      std::string code = {}) {
  throw ConfigError(what, std::move(code));
}
}  // namespace detail

/// Validates a configuration precondition; throws ConfigError on failure.
/// Used at public API boundaries (I.5/I.6: state and check preconditions).
/// `code` (optional) becomes Error::code() so callers can assert on the
/// failure kind rather than the message text.
inline void require(bool cond, const std::string& what,
                    std::string code = {}) {
  if (!cond) detail::throw_config(what, std::move(code));
}

/// Literal-message overload: defers the std::string construction to the
/// failure path, so a require() on a hot loop's entry costs no heap
/// allocation (the zero-allocation steady state depends on this —
/// string literals longer than the SSO buffer would otherwise allocate
/// on every successful check).
inline void require(bool cond, const char* what) {
  if (!cond) detail::throw_config(what);
}

/// Literal-message + code overload: same zero-allocation success path,
/// but the thrown ConfigError carries a machine-readable code.
inline void require(bool cond, const char* what, const char* code) {
  if (!cond) detail::throw_config(what, code);
}

}  // namespace resparc
