// Error types shared by all RESPARC modules.
//
// The library reports contract violations (bad configurations, impossible
// mappings) with exceptions derived from resparc::Error so callers can
// distinguish library failures from std:: failures.
#pragma once

#include <stdexcept>
#include <string>

namespace resparc {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration value is out of its documented domain
/// (e.g. a crossbar with zero rows, a negative supply voltage).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown when a network cannot be placed onto the requested fabric
/// (e.g. a layer wider than the whole chip with spill disabled).
class MappingError : public Error {
 public:
  explicit MappingError(const std::string& what) : Error("mapping error: " + what) {}
};

/// Thrown on dimension mismatches between tensors/layers/traces.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape error: " + what) {}
};

namespace detail {
[[noreturn]] inline void throw_config(const std::string& what) { throw ConfigError(what); }
}  // namespace detail

/// Validates a configuration precondition; throws ConfigError on failure.
/// Used at public API boundaries (I.5/I.6: state and check preconditions).
inline void require(bool cond, const std::string& what) {
  if (!cond) detail::throw_config(what);
}

/// Literal-message overload: defers the std::string construction to the
/// failure path, so a require() on a hot loop's entry costs no heap
/// allocation (the zero-allocation steady state depends on this —
/// string literals longer than the SSO buffer would otherwise allocate
/// on every successful check).
inline void require(bool cond, const char* what) {
  if (!cond) detail::throw_config(what);
}

}  // namespace resparc
