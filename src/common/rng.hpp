// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (dataset synthesis, weight
// initialisation, Poisson spike encoding) draws from this generator so that
// a run is reproducible from a single 64-bit seed.  The engine is
// xoshiro256** (Blackman & Vigna, 2018): fast, tiny state, and — unlike
// std::mt19937 — identical output across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <limits>

namespace resparc {

/// xoshiro256** engine with SplitMix64 seeding.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions, though the convenience members below cover all
/// library needs without libstdc++-specific distribution behaviour.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-seeds in place; the next draw after reseed(s) equals a fresh Rng(s).
  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion: decorrelates consecutive seeds.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  /// Next raw 64-bit draw.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.  Uses rejection to kill bias.
  std::uint64_t below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = radius * std::sin(theta);
    has_cached_ = true;
    return radius * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Deterministic sub-stream seed: one SplitMix64 finalisation over
/// (seed, index).  Streams for distinct indices are decorrelated, so one
/// master seed fans out into any number of independent Rng instances —
/// per-presentation spike encoding (api::presentation_seed delegates
/// here), per-MCA fault draws (tech::FaultModel), per-chip fleet
/// instances and the bench kernels all share this one discipline.
inline std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace resparc
