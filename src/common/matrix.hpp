// Dense row-major matrix of float.
//
// This is the weight container shared by the SNN substrate, the trainer and
// the crossbar mapper.  It is a concrete regular type (C.10/C.11): value
// semantics, bounds-checked element access in debug, contiguous storage so
// rows can be handed to crossbars as spans.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/kernels.hpp"

namespace resparc {

/// Row-major dense matrix of float with value semantics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from a flat row-major buffer; size must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> flat)
      : rows_(rows), cols_(cols), data_(std::move(flat)) {
    if (data_.size() != rows_ * cols_)
      throw ShapeError("Matrix: flat buffer size does not match rows*cols");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Element access (unchecked in release; asserted in debug).
  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws ShapeError when out of range.
  float& at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw ShapeError("Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw ShapeError("Matrix::at out of range");
    return data_[r * cols_ + c];
  }

  /// View of one row as a contiguous span.
  std::span<float> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Whole storage as a flat span (row-major).
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// Sets every element to `value`.
  void fill(float value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// y = W^T x convention used by layers: out[c] = sum_r x[r] * W(r, c).
/// W is stored input-major (rows = inputs, cols = outputs) to mirror how
/// connectivity matrices map onto crossbars (paper Fig. 2).
inline void matvec_in_major(const Matrix& w, std::span<const float> x,
                            std::span<float> out) {
  if (x.size() != w.rows() || out.size() != w.cols())
    throw ShapeError("matvec_in_major: dimension mismatch");
  kernels::matvec_in_major(w.flat().data(), w.rows(), w.cols(), x.data(),
                           out.data());
}

}  // namespace resparc
