#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>

#include "common/thread_safety.hpp"

namespace resparc {

namespace {
// Set while a thread executes inside a pool job; a nested run_indexed
// from such a thread runs inline instead of deadlocking on the job
// mutex.
thread_local bool t_inside_pool_job = false;
}  // namespace

struct ThreadPool::Impl {
  Mutex mutex;                      ///< guards job publication + working
  std::condition_variable cv_work;  ///< workers park here between jobs
  std::condition_variable cv_done;  ///< caller waits for completion here
  bool stop RESPARC_GUARDED_BY(mutex) = false;  ///< set once, in the dtor

  // --- the currently published job --------------------------------------
  // The scalar job fields are written under `mutex` before the generation
  // bump publishes them; workers read them lock-free inside work() after
  // observing the new generation under the mutex (see work()'s analysis
  // opt-out below).
  std::uint64_t generation RESPARC_GUARDED_BY(mutex) = 0;  ///< bumped per job
  std::size_t count RESPARC_GUARDED_BY(mutex) = 0;     ///< items in the job
  std::size_t chunk RESPARC_GUARDED_BY(mutex) = 1;     ///< indices per grab
  std::size_t worker_cap RESPARC_GUARDED_BY(mutex) = 0;  ///< workers allowed
  const std::function<void(std::size_t, std::size_t)>* fn
      RESPARC_GUARDED_BY(mutex) = nullptr;
  std::atomic<std::size_t> next{0};       ///< claim cursor
  std::atomic<std::size_t> joined{0};     ///< pool workers that took a slot
  std::atomic<bool> cancelled{false};     ///< first exception stops claims
  std::size_t working RESPARC_GUARDED_BY(mutex) = 0;  ///< workers in the job
  std::exception_ptr error RESPARC_GUARDED_BY(mutex);  ///< first exception

  // --- FIFO admission ----------------------------------------------------
  // Ticket lock over job submission: neither condition-variable wakeups
  // nor mutex acquisition carry any ordering, so without tickets a
  // tight-loop producer re-acquiring the mutex could win the admission
  // race every time and starve other submitters indefinitely
  // (tests/test_thread_pool.cpp stresses this with many small bursts
  // from competing producers).  The ticket is drawn from a lock-free
  // atomic BEFORE the mutex: a caller stuck behind a barging fast
  // resubmitter still claims its place in line, and the resubmitter's
  // next ticket parks it on the CV until the queue ahead has drained.
  std::atomic<std::uint64_t> next_ticket{0};
  std::uint64_t now_serving RESPARC_GUARDED_BY(mutex) = 0;

  /// Claims chunks and runs items until the job is drained or cancelled.
  /// `fn` is dereferenced only after a successful claim, so a worker
  /// arriving after teardown (the cursor is parked at `count`) never
  /// touches a dead job.
  ///
  /// Analysis opt-out: `fn`/`count`/`chunk` are read without the mutex.
  /// They are immutable for the lifetime of one generation and were
  /// published under the mutex before the participating worker observed
  /// that generation (worker_loop) or before the first claim (the
  /// caller), so the reads are ordered by the mutex even though no lock
  /// is held here — a protocol the static analysis cannot express.
  void work(std::size_t worker_id) RESPARC_NO_THREAD_SAFETY_ANALYSIS {
    for (;;) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      const auto& call = *fn;
      for (std::size_t i = begin; i < end; ++i) {
        // Per-item check keeps cancellation prompt even inside a chunk.
        if (cancelled.load(std::memory_order_relaxed)) return;
        try {
          call(i, worker_id);
        } catch (...) {
          MutexLock lock(mutex);
          if (!error) error = std::current_exception();
          cancelled.store(true, std::memory_order_relaxed);
          // Park the cursor so no further chunk can be claimed — after
          // the caller observes working == 0 the job can be torn down
          // with no worker able to reach `fn` again.
          next.store(count, std::memory_order_relaxed);
          return;
        }
      }
    }
  }

  /// Body of one parked worker thread.  A worker only participates in a
  /// job it observed `fn` for under the mutex, and announces itself in
  /// `working` first, so the caller's completion wait covers it; workers
  /// that never wake for a generation are simply not involved in it.
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      MutexLock lock(mutex);
      while (!stop && generation == seen) cv_work.wait(lock.native());
      if (stop) return;
      seen = generation;
      if (fn == nullptr) continue;  // woke after the job already ended
      ++working;
      const std::size_t cap = worker_cap;
      lock.unlock();

      // Participation slots are first-come; workers beyond the cap (or a
      // drained cursor) fall straight through.
      const std::size_t slot = joined.fetch_add(1, std::memory_order_relaxed);
      if (slot < cap) {
        t_inside_pool_job = true;
        work(slot + 1);  // the caller is worker 0
        t_inside_pool_job = false;
      }

      lock.lock();
      if (--working == 0) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t t = 1; t < threads; ++t)
    workers_.emplace_back([impl = impl_] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : workers_) w.join();
  delete impl_;
}

void ThreadPool::run_indexed(
    std::size_t count, std::size_t max_workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (max_workers == 0) max_workers = width();
  // Nested call from inside a job, or nothing to fan out to: run inline.
  if (t_inside_pool_job || workers_.empty() || max_workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  Impl& im = *impl_;
  // One job at a time, admitted strictly in ticket order: each caller
  // draws a ticket and waits until the previous job tore down AND its
  // number is up, so a burst-submitting producer cannot starve the rest.
  const std::uint64_t ticket =
      im.next_ticket.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(im.mutex);
  while (im.fn != nullptr || ticket != im.now_serving)
    im.cv_done.wait(lock.native());

  const std::size_t active = std::min(max_workers, width());
  im.count = count;
  // Chunked claiming: ~8 grabs per worker amortises the atomic without
  // starving the tail; the per-item cancel check keeps chunks
  // interruptible.
  im.chunk = std::max<std::size_t>(1, count / (active * 8));
  im.worker_cap = active - 1;  // caller occupies worker slot 0
  im.fn = &fn;
  im.next.store(0, std::memory_order_relaxed);
  im.joined.store(0, std::memory_order_relaxed);
  im.cancelled.store(false, std::memory_order_relaxed);
  im.error = nullptr;
  ++im.generation;
  const std::size_t wake = std::min(im.worker_cap, workers_.size());
  lock.unlock();
  // Wake only as many workers as the job can use — a small capped job on
  // a wide pool must not stampede every parked thread (the within-trace
  // path publishes one job per layer per timestep).
  for (std::size_t t = 0; t < wake; ++t) im.cv_work.notify_one();

  t_inside_pool_job = true;
  im.work(0);
  t_inside_pool_job = false;

  lock.lock();
  // Park the cursor (idempotent when the job drained normally) so any
  // worker waking from here on claims nothing, then wait out the workers
  // that did join.  Only they were ever counted — an idle pool thread
  // that never woke for this generation owes nothing.
  im.next.store(im.count, std::memory_order_relaxed);
  while (im.working != 0) im.cv_done.wait(lock.native());
  im.fn = nullptr;
  ++im.now_serving;  // admit the next ticket holder
  std::exception_ptr error = im.error;
  im.error = nullptr;
  lock.unlock();
  im.cv_done.notify_all();  // wake the queued callers; the next ticket wins
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace resparc
