#include "snn/neuron.hpp"

#include "common/error.hpp"

namespace resparc::snn {

std::size_t IfPopulation::step(std::span<const float> current,
                               std::span<std::uint8_t> spikes_out) {
  if (current.size() != membrane_.size() || spikes_out.size() != membrane_.size())
    throw ShapeError("IfPopulation::step: span size mismatch");
  const float vth = static_cast<float>(params_.v_threshold);
  const float vreset = static_cast<float>(params_.v_reset);
  const float leak = static_cast<float>(params_.leak_per_step);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < membrane_.size(); ++i) {
    float v = membrane_[i] + current[i];
    if (leak > 0.0f) v = v > leak ? v - leak : 0.0f;
    if (v >= vth) {
      spikes_out[i] = 1;
      ++fired;
      if (params_.subtractive_reset) {
        v -= vth;
        if (v < vreset) v = vreset;
      } else {
        v = vreset;
      }
    } else {
      spikes_out[i] = 0;
    }
    membrane_[i] = v;
  }
  return fired;
}

void IfPopulation::step_at(std::span<const std::uint32_t> indices,
                           std::span<const float> current,
                           std::vector<std::uint32_t>& fired_out,
                           std::vector<std::uint32_t>& hot_out) {
  if (current.size() != membrane_.size())
    throw ShapeError("IfPopulation::step_at: span size mismatch");
  const float vth = static_cast<float>(params_.v_threshold);
  const float vreset = static_cast<float>(params_.v_reset);
  for (const std::uint32_t i : indices) {
    // Same arithmetic as step(), minus the leak branch (callers guarantee
    // leak_per_step == 0, where skipping silent neurons is exact).
    float v = membrane_[i] + current[i];
    if (v >= vth) {
      fired_out.push_back(i);
      if (params_.subtractive_reset) {
        v -= vth;
        if (v < vreset) v = vreset;
      } else {
        v = vreset;
      }
      if (v >= vth) hot_out.push_back(i);
    }
    membrane_[i] = v;
  }
}

void IfPopulation::reset() {
  membrane_.assign(membrane_.size(), static_cast<float>(params_.v_reset));
}

}  // namespace resparc::snn
