#include "snn/neuron.hpp"

#include "common/error.hpp"

namespace resparc::snn {

std::size_t IfPopulation::step(std::span<const float> current,
                               std::span<std::uint8_t> spikes_out) {
  if (current.size() != membrane_.size() || spikes_out.size() != membrane_.size())
    throw ShapeError("IfPopulation::step: span size mismatch");
  const float vth = static_cast<float>(params_.v_threshold);
  const float vreset = static_cast<float>(params_.v_reset);
  const float leak = static_cast<float>(params_.leak_per_step);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < membrane_.size(); ++i) {
    float v = membrane_[i] + current[i];
    if (leak > 0.0f) v = v > leak ? v - leak : 0.0f;
    if (v >= vth) {
      spikes_out[i] = 1;
      ++fired;
      if (params_.subtractive_reset) {
        v -= vth;
        if (v < vreset) v = vreset;
      } else {
        v = vreset;
      }
    } else {
      spikes_out[i] = 0;
    }
    membrane_[i] = v;
  }
  return fired;
}

std::size_t IfPopulation::step_packed(std::span<const float> current,
                                      SpikeVector& out) {
  if (current.size() != membrane_.size() || out.size() != membrane_.size())
    throw ShapeError("IfPopulation::step_packed: size mismatch");
  const float vth = static_cast<float>(params_.v_threshold);
  const float vreset = static_cast<float>(params_.v_reset);
  const float leak = static_cast<float>(params_.leak_per_step);
  std::size_t fired = 0;
  const std::size_t n = membrane_.size();
  // Assemble each output word in a register and store it whole: the same
  // per-neuron arithmetic as step(), with the byte store replaced by one
  // bit OR (set_word masks the tail word, so the partial last word stays
  // clean).
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t chunk = std::min<std::size_t>(64, n - base);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < chunk; ++j) {
      const std::size_t i = base + j;
      float v = membrane_[i] + current[i];
      if (leak > 0.0f) v = v > leak ? v - leak : 0.0f;
      if (v >= vth) {
        word |= std::uint64_t{1} << j;
        ++fired;
        if (params_.subtractive_reset) {
          v -= vth;
          if (v < vreset) v = vreset;
        } else {
          v = vreset;
        }
      }
      membrane_[i] = v;
    }
    out.set_word(base >> 6, word);
  }
  return fired;
}

void IfPopulation::step_at(std::span<const std::uint32_t> indices,
                           std::span<const float> current,
                           std::vector<std::uint32_t>& fired_out,
                           std::vector<std::uint32_t>& hot_out) {
  if (current.size() != membrane_.size())
    throw ShapeError("IfPopulation::step_at: span size mismatch");
  const float vth = static_cast<float>(params_.v_threshold);
  const float vreset = static_cast<float>(params_.v_reset);
  for (const std::uint32_t i : indices) {
    // Same arithmetic as step(), minus the leak branch (callers guarantee
    // leak_per_step == 0, where skipping silent neurons is exact).
    float v = membrane_[i] + current[i];
    if (v >= vth) {
      fired_out.push_back(i);
      if (params_.subtractive_reset) {
        v -= vth;
        if (v < vreset) v = vreset;
      } else {
        v = vreset;
      }
      if (v >= vth) hot_out.push_back(i);
    }
    membrane_[i] = v;
  }
}

void IfPopulation::reset() {
  membrane_.assign(membrane_.size(), static_cast<float>(params_.v_reset));
}

}  // namespace resparc::snn
