#include "snn/trace.hpp"

#include <bit>

namespace resparc::snn {

SpikeVector SpikeVector::from_bytes(std::span<const std::uint8_t> bytes) {
  SpikeVector v(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i)
    if (bytes[i]) v.set(i);
  return v;
}

std::size_t SpikeVector::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool SpikeVector::none() const {
  for (auto w : words_)
    if (w) return false;
  return true;
}

std::size_t SpikeVector::count_range(std::size_t begin, std::size_t end) const {
  if (end > neurons_) end = neurons_;
  if (begin >= end) return 0;
  std::size_t n = 0;
  std::size_t first_word = begin >> 6;
  std::size_t last_word = (end - 1) >> 6;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    std::uint64_t word = words_[w];
    if (w == first_word) {
      const std::size_t shift = begin & 63;
      word &= ~std::uint64_t{0} << shift;
    }
    if (w == last_word) {
      const std::size_t top = end - (w << 6);  // bits used in the last word
      if (top < 64) word &= (std::uint64_t{1} << top) - 1;
    }
    n += static_cast<std::size_t>(std::popcount(word));
  }
  return n;
}

bool SpikeVector::none_in_range(std::size_t begin, std::size_t end) const {
  return count_range(begin, end) == 0;
}

void SpikeVector::append_active(std::vector<std::uint32_t>& out) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      out.push_back(static_cast<std::uint32_t>((w << 6) + bit));
      word &= word - 1;  // clear the lowest set bit
    }
  }
}

std::size_t SpikeTrace::layer_spike_count(std::size_t l) const {
  std::size_t n = 0;
  for (const auto& v : layers[l]) n += v.count();
  return n;
}

double SpikeTrace::layer_activity(std::size_t l) const {
  const auto& steps = layers[l];
  if (steps.empty() || steps.front().size() == 0) return 0.0;
  const double total =
      static_cast<double>(steps.front().size()) * static_cast<double>(steps.size());
  return static_cast<double>(layer_spike_count(l)) / total;
}

}  // namespace resparc::snn
