// Random-topology fuzz cases for the differential test layer.
//
// One seed deterministically expands into a complete, legal workload — a
// validated Topology (conv/pool/dense mixes with odd kernels, divisible
// pool windows and a dense classifier head), per-layer neuron parameters
// (random thresholds, occasional leak and hard-reset variants), an
// encoder configuration (Poisson or deterministic, variable max_rate as
// the sparsity lever) and one input image.  The differential harness
// (api/differential.hpp, tests/test_differential.cpp) runs each case
// through every execution engine and every replay path and demands
// bit-for-bit agreement; tools/fuzz_topology generates and verifies
// cases in bulk and prints the feature summary used to pick regression
// corpus seeds (tests/data/corpus/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snn/encoder.hpp"
#include "snn/network.hpp"
#include "snn/topology.hpp"

namespace resparc::snn {

/// Everything one differential run needs, expanded from a single seed.
struct FuzzCase {
  Topology topology;             ///< validated random layer stack
  std::uint64_t seed = 0;        ///< the generator seed (names the case)
  std::size_t timesteps = 6;     ///< presentation length
  std::size_t mca_size = 64;     ///< crossbar size of the replayed chip
  EncoderConfig encoder{};       ///< input encoding (max_rate = sparsity)
  std::vector<double> thresholds;  ///< per-layer v_threshold
  double leak = 0.0;             ///< leak_per_step of non-pool layers
  bool subtractive = true;       ///< reset style of every layer
  float init_scale = 1.0f;       ///< weight init scale
  std::vector<float> image;      ///< one input presentation, values in [0,1]

  /// One-line feature description ("seed=12 28x1x6x6 conv3+pool2+dense
  /// leak mca=128 T=7"), used by tools/fuzz_topology and the corpus notes.
  std::string summary() const;
};

/// Expands `seed` into a fuzz case.  Pure function of the seed: the same
/// seed always yields the same topology, parameters and image, so a seed
/// recorded in the regression corpus replays exactly.
FuzzCase make_fuzz_case(std::uint64_t seed);

/// Builds the runnable network of a case: random weights
/// (Network::init_random off a seed-derived stream) plus the case's
/// thresholds, leak and reset style applied per layer.
Network make_fuzz_network(const FuzzCase& c);

}  // namespace resparc::snn
