#include "snn/stats.hpp"

#include "common/error.hpp"

namespace resparc::snn {

PacketStats layer_packet_stats(const SpikeTrace& trace, std::size_t layer,
                               std::size_t packet_bits) {
  require(packet_bits > 0, "packet size must be positive");
  require(layer < trace.layer_count(), "layer out of range");
  PacketStats stats;
  stats.packet_bits = packet_bits;
  for (const auto& vec : trace.layers[layer]) {
    for (std::size_t begin = 0; begin < vec.size(); begin += packet_bits) {
      ++stats.packets;
      if (vec.none_in_range(begin, begin + packet_bits)) ++stats.zero_packets;
    }
  }
  return stats;
}

PacketStats trace_packet_stats(const SpikeTrace& trace, std::size_t packet_bits) {
  PacketStats stats;
  stats.packet_bits = packet_bits;
  for (std::size_t l = 0; l < trace.layer_count(); ++l) {
    const PacketStats s = layer_packet_stats(trace, l, packet_bits);
    stats.packets += s.packets;
    stats.zero_packets += s.zero_packets;
  }
  return stats;
}

double mean_activity(const SpikeTrace& trace) {
  std::size_t spikes = 0;
  std::size_t slots = 0;
  for (std::size_t l = 0; l < trace.layer_count(); ++l) {
    for (const auto& vec : trace.layers[l]) {
      spikes += vec.count();
      slots += vec.size();
    }
  }
  return slots ? static_cast<double>(spikes) / static_cast<double>(slots) : 0.0;
}

std::vector<double> layer_activities(const SpikeTrace& trace) {
  std::vector<double> acts;
  acts.reserve(trace.layer_count());
  for (std::size_t l = 0; l < trace.layer_count(); ++l)
    acts.push_back(trace.layer_activity(l));
  return acts;
}

}  // namespace resparc::snn
