#include "snn/scatter.hpp"

#include <algorithm>
#include <bit>

#include "common/kernels.hpp"

namespace resparc::snn {

namespace {

/// Even [begin, end) split of `n` elements for partition `part`/`parts`.
struct Slice {
  std::size_t begin;
  std::size_t end;
};

Slice slice_of(std::size_t n, std::size_t part, std::size_t parts) {
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t begin = part * base + std::min(part, extra);
  return {begin, begin + base + (part < extra ? 1 : 0)};
}

/// Event driver over an explicit ascending index list.
struct IndexEvents {
  std::span<const std::uint32_t> active;
  template <typename Fn>
  void operator()(Fn&& fn) const {
    for (const std::uint32_t idx : active) fn(idx);
  }
};

/// Event driver over a SpikeVector's packed words: decodes set bits in
/// ascending order — exactly the order append_active() emits — so both
/// drivers visit events identically.
struct PackedEvents {
  const SpikeVector& in;
  template <typename Fn>
  void operator()(Fn&& fn) const {
    const std::span<const std::uint64_t> words = in.words();
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t word = words[w];
      while (word) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
        fn(static_cast<std::uint32_t>((w << 6) + bit));
        word &= word - 1;  // clear the lowest set bit
      }
    }
  }
};

// The conv/pool scatter bodies are shared by both event drivers: ONE loop
// nest per layer kind regardless of how the events are delivered, so the
// index-list and packed paths cannot drift apart.

/// Scatter form of the convolution: input (c,y,x) feeds output
/// (oc, y-ky+pad, x-kx+pad) with kernel weight row (c*k+ky)*k+kx — one
/// weight per output channel, feature maps out.h*out.w apart.  Partition =
/// output-channel slice.
template <typename Events>
void scatter_conv(const LayerInfo& li, const Matrix& w, const Events& each,
                  std::span<float> current, std::size_t part,
                  std::size_t parts) {
  const Shape3 in_shape = li.in_shape;
  const Shape3 out = li.out_shape;
  const std::size_t k = li.spec.kernel;
  const std::size_t pad = li.spec.same_padding ? k / 2 : 0;
  const std::size_t plane = out.h * out.w;
  const auto [oc0, oc1] = slice_of(out.c, part, parts);
  if (oc1 == oc0) return;
  each([&](const std::uint32_t idx) {
    const std::size_t c = idx / (in_shape.h * in_shape.w);
    const std::size_t rem = idx % (in_shape.h * in_shape.w);
    const std::size_t y = rem / in_shape.w;
    const std::size_t x = rem % in_shape.w;
    for (std::size_t ky = 0; ky < k; ++ky) {
      const std::ptrdiff_t oy =
          static_cast<std::ptrdiff_t>(y + pad) - static_cast<std::ptrdiff_t>(ky);
      if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(out.h)) continue;
      for (std::size_t kx = 0; kx < k; ++kx) {
        const std::ptrdiff_t ox =
            static_cast<std::ptrdiff_t>(x + pad) - static_cast<std::ptrdiff_t>(kx);
        if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(out.w)) continue;
        const std::size_t wrow = (c * k + ky) * k + kx;
        const std::size_t base =
            static_cast<std::size_t>(oy) * out.w + static_cast<std::size_t>(ox);
        kernels::row_add_strided(current.data() + oc0 * plane + base, plane,
                                 w.row(wrow).data() + oc0, oc1 - oc0);
      }
    }
  });
}

/// Each event touches exactly one output; partition = output-index slice,
/// membership-checked per event.
template <typename Events>
void scatter_pool(const LayerInfo& li, const Events& each,
                  std::span<float> current, std::size_t part,
                  std::size_t parts) {
  const Shape3 in_shape = li.in_shape;
  const Shape3 out = li.out_shape;
  const std::size_t p = li.spec.pool;
  const float share = 1.0f / static_cast<float>(p * p);
  const auto [b, e] = slice_of(out.size(), part, parts);
  each([&](const std::uint32_t idx) {
    const std::size_t c = idx / (in_shape.h * in_shape.w);
    const std::size_t rem = idx % (in_shape.h * in_shape.w);
    const std::size_t y = rem / in_shape.w;
    const std::size_t x = rem % in_shape.w;
    const std::size_t at = (c * out.h + y / p) * out.w + x / p;
    if (at >= b && at < e) current[at] += share;
  });
}

}  // namespace

void scatter_accumulate(const LayerInfo& li, const Matrix& w,
                        std::span<const std::uint32_t> in_active,
                        std::span<float> current, std::size_t part,
                        std::size_t parts) {
  switch (li.spec.kind) {
    case LayerKind::kDense: {
      // Partition = column slice; every event drives every column, so the
      // slice just narrows the accumulate width.
      const auto [c0, c1] = slice_of(w.cols(), part, parts);
      kernels::accumulate_rows(w.flat().data() + c0, w.cols(), c1 - c0,
                               in_active, current.data() + c0);
      break;
    }
    case LayerKind::kConv:
      scatter_conv(li, w, IndexEvents{in_active}, current, part, parts);
      break;
    case LayerKind::kAvgPool:
      scatter_pool(li, IndexEvents{in_active}, current, part, parts);
      break;
  }
}

void scatter_accumulate(const LayerInfo& li, const Matrix& w,
                        const SpikeVector& in, std::span<float> current,
                        std::size_t part, std::size_t parts) {
  switch (li.spec.kind) {
    case LayerKind::kDense: {
      // masked_row_accumulate replicates accumulate_rows' row_add4
      // grouping over the packed words, so the column slice sees the
      // exact additions the index-list overload performs.
      const auto [c0, c1] = slice_of(w.cols(), part, parts);
      kernels::masked_row_accumulate(w.flat().data() + c0, w.cols(), c1 - c0,
                                     in.words().data(), in.size(),
                                     current.data() + c0);
      break;
    }
    case LayerKind::kConv:
      scatter_conv(li, w, PackedEvents{in}, current, part, parts);
      break;
    case LayerKind::kAvgPool:
      scatter_pool(li, PackedEvents{in}, current, part, parts);
      break;
  }
}

}  // namespace resparc::snn
