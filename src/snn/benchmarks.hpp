// The six SNN benchmarks of paper Fig. 10.
//
// Layer widths were reverse-engineered so that the topology's neuron total
// equals the paper's figure exactly (see docs/architecture.md for the
// derivation and for the synapse-count convention note):
//
//   MNIST  MLP  784-800-784-10                        2,378 neurons (incl. input)
//   SVHN   MLP  768-1000-1000-10                      2,778 neurons (incl. input)
//   CIFAR  MLP  768-1000-1000-1000-10                 3,778 neurons (incl. input)
//   MNIST  CNN  28x28-52c3-p2-64c3-p2-128-10         66,778 neurons (excl. input)
//   SVHN   CNN  32x32x3-92c3-p2-20c3v-p2-76c3v-10   124,570 neurons (excl. input)
//   CIFAR  CNN  32x32x3-172c3-p2-12c3-p2-196c3v-10  231,066 neurons (excl. input)
//
// SVHN/CIFAR MLPs consume a 16x16x3 (=768) downsampled input, consistent
// with the reported totals.  The SVHN/CIFAR CNN widths were selected (by
// exhaustive search) as the structures that reproduce the neuron totals
// exactly while keeping unrolled synapse counts nearest the paper's scale.
#pragma once

#include <string>
#include <vector>

#include "snn/topology.hpp"

namespace resparc::snn {

/// Which synthetic dataset feeds a benchmark.
enum class DatasetKind { kMnistLike, kSvhnLike, kCifarLike };

/// Human-readable name ("MNIST"/"SVHN"/"CIFAR-10").
std::string to_string(DatasetKind kind);

/// One row of paper Fig. 10, with both the reproduced topology and the
/// numbers the paper reports (for side-by-side tables).
struct BenchmarkSpec {
  std::string application;       ///< e.g. "Digit Recognition"
  DatasetKind dataset;           ///< synthetic dataset family
  Topology topology;             ///< the reproduced network shape
  std::size_t paper_layers;      ///< Fig. 10 "Layers"
  std::size_t paper_neurons;     ///< Fig. 10 "Neurons"
  std::size_t paper_synapses;    ///< Fig. 10 "Synapses"
  bool neurons_include_input;    ///< convention under which ours == paper's

  /// Our neuron count under the row's convention (== paper_neurons).
  std::size_t neuron_count() const {
    return topology.neuron_count(neurons_include_input);
  }
};

/// Individual benchmark constructors.
BenchmarkSpec mnist_mlp();
BenchmarkSpec svhn_mlp();
BenchmarkSpec cifar_mlp();
BenchmarkSpec mnist_cnn();
BenchmarkSpec svhn_cnn();
BenchmarkSpec cifar_cnn();

/// All six, in the paper's row order (SVHN, MNIST, CIFAR x MLP,CNN).
std::vector<BenchmarkSpec> paper_benchmarks();

/// Reduced-width variants (~1/4 linear size) used by the accuracy study
/// (Fig. 14a), where networks must be *trained*, and by the unit tests.
Topology small_mlp_topology(DatasetKind kind);
Topology small_cnn_topology(DatasetKind kind);

}  // namespace resparc::snn
