// Network topology intermediate representation.
//
// A topology is the *shape* of an SNN: an input shape plus an ordered list
// of layers (dense / convolution / average-pool).  It is consumed by three
// clients with one shared vocabulary:
//   * the functional simulator (src/snn/simulator) executes it,
//   * the trainer (src/train) trains an ANN of the same shape,
//   * the crossbar mapper (src/core/mapper) lowers each layer's
//     connectivity matrix onto MCAs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/tensor.hpp"

namespace resparc::snn {

/// Kind of a layer.
enum class LayerKind {
  kDense,    ///< fully connected: every output sees every input
  kConv,     ///< 2-D convolution, stride 1, 'same' or 'valid' padding
  kAvgPool,  ///< non-overlapping average pooling (window = stride)
};

/// Human-readable name of a layer kind ("dense"/"conv"/"avgpool").
std::string to_string(LayerKind kind);

/// Declarative description of one layer.  Only the fields relevant to
/// `kind` are meaningful; `validate()` checks consistency against the
/// incoming shape.
struct LayerSpec {
  LayerKind kind = LayerKind::kDense;

  // kDense
  std::size_t units = 0;     ///< number of output neurons

  // kConv
  std::size_t out_channels = 0;  ///< number of filters
  std::size_t kernel = 0;        ///< square kernel side k
  bool same_padding = true;      ///< 'same' (zero-pad) vs 'valid'

  // kAvgPool
  std::size_t pool = 0;          ///< window side (= stride)

  /// Convenience factories.
  static LayerSpec dense(std::size_t units);
  static LayerSpec conv(std::size_t out_channels, std::size_t kernel,
                        bool same_padding = true);
  static LayerSpec avg_pool(std::size_t pool);
};

/// Static facts about one layer once placed after a concrete input shape.
struct LayerInfo {
  LayerSpec spec;
  Shape3 in_shape;
  Shape3 out_shape;
  std::size_t fan_in = 0;    ///< inputs per output neuron (k*k*C for conv)
  std::size_t neurons = 0;   ///< output neurons
  std::size_t synapses = 0;  ///< unrolled connections = neurons * fan_in
  std::size_t unique_weights = 0;  ///< trainable parameters (shared for conv)
};

/// An input shape plus an ordered list of layers, with derived per-layer
/// shapes and connection counts.
class Topology {
 public:
  /// Builds and validates the topology; throws ConfigError/ShapeError when
  /// a layer cannot follow the previous one.
  Topology(std::string name, Shape3 input, std::vector<LayerSpec> layers);

  const std::string& name() const { return name_; }
  Shape3 input_shape() const { return input_; }

  /// Per-layer derived information, in network order.
  const std::vector<LayerInfo>& layers() const { return info_; }
  std::size_t layer_count() const { return info_.size(); }

  /// Number of input "neurons" (pixels); the paper's MLP rows count these.
  std::size_t input_neurons() const { return input_.size(); }

  /// Total neurons; `include_input` selects the counting convention
  /// (the paper includes the input layer for MLPs but not for CNNs).
  std::size_t neuron_count(bool include_input) const;

  /// Total unrolled synaptic connections (what hardware must map).
  std::size_t synapse_count() const;

  /// Total trainable parameters (conv kernels counted once).
  std::size_t unique_weight_count() const;

  /// True when any layer is a convolution (selects the paper's "CNN" rules
  /// for utilisation analysis).
  bool is_convolutional() const;

  /// Output class count (size of the last layer).
  std::size_t output_count() const;

  /// Compact description, e.g. "784-800-784-10" or "28x28-52c3-p2-...".
  std::string summary() const;

 private:
  std::string name_;
  Shape3 input_{};
  std::vector<LayerInfo> info_;
};

}  // namespace resparc::snn
