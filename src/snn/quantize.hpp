// Weight discretisation (paper section 5.4, Fig. 14).
//
// Memristive devices store a finite number of conductance levels; section
// 4.2 uses 16 levels (4 bits).  Quantisation here mirrors the device
// mapping in tech::Memristor: each layer's weights are scaled by the
// layer's max |w| and the normalised magnitude is rounded to one of
// 2^bits - 1 uniform steps per polarity (level 0 = zero weight).
#pragma once

#include "common/matrix.hpp"
#include "snn/network.hpp"

namespace resparc::snn {

/// Quantises one weight matrix in place to `bits` of magnitude resolution,
/// using `scale` as the full-range magnitude (weights are clamped to it).
void quantize_matrix(Matrix& weights, int bits, float scale);

/// Quantises every layer of the network in place, each with its own
/// max-|w| scale.  Pool layers (no stored weights) are untouched.
void quantize_network(Network& net, int bits);

/// Mean absolute quantisation error a matrix would suffer at `bits`
/// (without modifying it) — used by tests to check monotone improvement.
double quantization_mae(const Matrix& weights, int bits, float scale);

}  // namespace resparc::snn
