// Input spike encoding (rate coding).
//
// SNNs require analog inputs to be presented as spike trains (paper
// section 2.1).  Pixel intensity in [0,1] maps to a per-timestep firing
// probability; two generators are provided:
//   * Poisson  — independent Bernoulli per step (the common choice for
//     converted networks; adds sampling noise),
//   * uniform  — deterministic rate via phase accumulation (same mean rate,
//     zero encoder noise; useful for reproducible unit tests).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "snn/trace.hpp"

namespace resparc::snn {

/// Encoder configuration.
struct EncoderConfig {
  double max_rate = 1.0;  ///< spikes/step for a full-intensity pixel, in (0,1]
  bool poisson = true;    ///< Poisson (true) or deterministic-uniform (false)
};

/// Converts an intensity image into per-timestep spike vectors.
class RateEncoder {
 public:
  explicit RateEncoder(EncoderConfig config);

  const EncoderConfig& config() const { return config_; }

  /// Encodes `image` (values clamped to [0,1]) into `timesteps` spike
  /// vectors.  The deterministic mode ignores `rng`.
  std::vector<SpikeVector> encode(std::span<const float> image,
                                  std::size_t timesteps, Rng& rng);

  /// Allocation-free steady-state form of encode(): refills `out`
  /// (resized to `timesteps`), reusing its spike-vector storage and the
  /// encoder's internal scratch.  Identical spike trains and identical
  /// RNG consumption to encode() — the two are interchangeable
  /// mid-stream.  Not const (and not thread-safe per instance) because
  /// of the reused scratch; every simulator owns its own encoder.
  void encode_into(std::span<const float> image, std::size_t timesteps,
                   Rng& rng, std::vector<SpikeVector>& out);

 private:
  EncoderConfig config_;
  std::vector<double> probability_;  ///< per-pixel clamped rate, reused
  std::vector<double> phase_;        ///< deterministic-mode accumulator
};

}  // namespace resparc::snn
