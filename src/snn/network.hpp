// A concrete SNN: topology + trained weights + per-layer thresholds.
//
// Weight layouts are chosen to match how the crossbar mapper consumes them:
//   * dense:  Matrix (fan_in x units), input-major — exactly the
//     connectivity matrix of paper Fig. 2(b);
//   * conv:   Matrix (inC*k*k x out_channels) — the im2col kernel matrix;
//     the mapper unrolls it per output tile;
//   * pool:   no stored weights (fixed 1/p^2 averaging).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "snn/neuron.hpp"
#include "snn/topology.hpp"

namespace resparc::snn {

/// Weights and neuron parameters for one layer.
struct LayerParams {
  Matrix weights;     ///< layout per layer kind (see file comment); empty for pool
  IfParams neuron{};  ///< IF parameters of the layer's population
};

/// A runnable spiking network.
class Network {
 public:
  /// Builds a network with zero weights and unit thresholds.
  explicit Network(Topology topology);

  const Topology& topology() const { return topology_; }

  /// Mutable access to one layer's parameters (trainer / quantizer use).
  LayerParams& layer(std::size_t l) { return params_.at(l); }
  const LayerParams& layer(std::size_t l) const { return params_.at(l); }
  std::size_t layer_count() const { return params_.size(); }

  /// Largest |weight| across all layers (0 for an all-zero net).
  float max_abs_weight() const;

  /// Initialises weights i.i.d. normal(0, scale/sqrt(fan_in)) — used by the
  /// paper-scale energy benchmarks where trained weights are not needed,
  /// and as the trainer's starting point.
  void init_random(Rng& rng, float scale = 1.0f);

  /// Sets every layer's threshold so that the mean per-step input current
  /// under activity `input_activity` roughly balances: a crude analytic
  /// default; `calibrate_thresholds` in simulator.hpp does it empirically.
  void set_uniform_threshold(double v_threshold);

 private:
  Topology topology_;
  std::vector<LayerParams> params_;
};

/// Expected weight-matrix dimensions for a layer (rows = crossbar rows).
struct WeightShape {
  std::size_t rows;
  std::size_t cols;
};

/// Returns the stored-weight shape for the given layer info.
WeightShape weight_shape(const LayerInfo& li);

}  // namespace resparc::snn
