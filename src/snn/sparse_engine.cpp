#include "snn/sparse_engine.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "snn/scatter.hpp"

namespace resparc::snn {

SparseEngine::SparseEngine(const Network& net) : net_(net) {
  const Topology& topo = net.topology();
  state_.reserve(topo.layer_count());
  for (std::size_t l = 0; l < topo.layer_count(); ++l) {
    const LayerInfo& li = topo.layers()[l];
    const IfParams& p = net.layer(l).neuron;
    state_.emplace_back(li.neurons, p);
    LayerState& st = state_.back();
    // Any event into a fully connected layer drives every output column,
    // so per-column stamping is pure overhead there.
    st.all_touched = li.spec.kind == LayerKind::kDense;
    // Outside this regime a silent neuron still changes state (leak) or
    // can fire spontaneously (vth <= 0), so the population must be
    // stepped densely; accumulation stays sparse either way.
    st.dense_fallback = p.leak_per_step > 0.0 || p.v_threshold <= 0.0;
    // Byte scratch for the dense stepper, used by fallback layers every
    // step and by any layer on a saturated (full-drive) step.
    st.spike_bytes.assign(li.neurons, 0);
    switch (li.spec.kind) {
      case LayerKind::kDense:
        st.touches_per_event = li.neurons;
        break;
      case LayerKind::kConv:
        st.touches_per_event =
            li.spec.kernel * li.spec.kernel * li.out_shape.c;
        break;
      case LayerKind::kAvgPool:
        st.touches_per_event = 1;
        break;
    }
  }
}

template <bool Stamp>
void SparseEngine::accumulate(std::size_t l,
                              std::span<const std::uint32_t> in_active,
                              LayerState& st) {
  const LayerInfo& li = net_.topology().layers()[l];
  const LayerParams& lp = net_.layer(l);

  // The stamp-free (full-drive) form IS the dense engine's scatter: both
  // run the shared kernels in snn/scatter.cpp, so dense/sparse parity is
  // structural rather than maintained across two loop nests.
  if constexpr (!Stamp) {
    scatter_accumulate(li, lp.weights, in_active, st.current);
    return;
  }

  std::vector<float>& current = st.current;
  const std::uint32_t epoch = st.epoch;

  // Stamps `c` as touched.
  const auto touch = [&](std::size_t c) {
    if (st.stamp[c] != epoch) {
      st.stamp[c] = epoch;
      st.touched.push_back(static_cast<std::uint32_t>(c));
    }
  };

  // The loop bodies below mirror snn/scatter.cpp exactly — same event
  // order, same addition order — so the floating-point result is
  // bit-for-bit identical to the stamp-free path (each output element
  // sees one plain add per touching event either way).
  switch (li.spec.kind) {
    case LayerKind::kDense: {
      const Matrix& w = lp.weights;
      for (const std::uint32_t r : in_active) {
        const auto row = w.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) current[c] += row[c];
      }
      break;
    }
    case LayerKind::kConv: {
      const Matrix& w = lp.weights;  // (inC*k*k) x outC
      const Shape3 in_shape = li.in_shape;
      const Shape3 out = li.out_shape;
      const std::size_t k = li.spec.kernel;
      const std::size_t pad = li.spec.same_padding ? k / 2 : 0;
      for (const std::uint32_t idx : in_active) {
        const std::size_t c = idx / (in_shape.h * in_shape.w);
        const std::size_t rem = idx % (in_shape.h * in_shape.w);
        const std::size_t y = rem / in_shape.w;
        const std::size_t x = rem % in_shape.w;
        for (std::size_t ky = 0; ky < k; ++ky) {
          const std::ptrdiff_t oy =
              static_cast<std::ptrdiff_t>(y + pad) - static_cast<std::ptrdiff_t>(ky);
          if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(out.h)) continue;
          for (std::size_t kx = 0; kx < k; ++kx) {
            const std::ptrdiff_t ox =
                static_cast<std::ptrdiff_t>(x + pad) - static_cast<std::ptrdiff_t>(kx);
            if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(out.w)) continue;
            const std::size_t wrow = (c * k + ky) * k + kx;
            const auto kernels = w.row(wrow);
            const std::size_t base =
                static_cast<std::size_t>(oy) * out.w + static_cast<std::size_t>(ox);
            for (std::size_t oc = 0; oc < out.c; ++oc) {
              const std::size_t at = oc * out.h * out.w + base;
              touch(at);
              current[at] += kernels[oc];
            }
          }
        }
      }
      break;
    }
    case LayerKind::kAvgPool: {
      const Shape3 in_shape = li.in_shape;
      const Shape3 out = li.out_shape;
      const std::size_t p = li.spec.pool;
      const float share = 1.0f / static_cast<float>(p * p);
      for (const std::uint32_t idx : in_active) {
        const std::size_t c = idx / (in_shape.h * in_shape.w);
        const std::size_t rem = idx % (in_shape.h * in_shape.w);
        const std::size_t y = rem / in_shape.w;
        const std::size_t x = rem % in_shape.w;
        const std::size_t at = (c * out.h + y / p) * out.w + x / p;
        touch(at);
        current[at] += share;
      }
      break;
    }
  }
}

void SparseEngine::reset() {
  for (LayerState& st : state_) {
    st.pop.clear();
    // Only the bits named in `fired` can be set in `out` (step_layer
    // retires the previous step through the same list), so clearing via
    // the list restores the all-zero invariant without an O(words) wipe.
    for (const std::uint32_t i : st.fired) st.out.clear(i);
    st.fired.clear();
    st.hot.clear();
    st.touched.clear();
    // The all-zero `current` invariant already holds between steps, and
    // `stamp`/`epoch` are self-correcting (epoch strictly increases), so
    // nothing else needs touching.
  }
}

template void SparseEngine::accumulate<true>(
    std::size_t, std::span<const std::uint32_t>, LayerState&);
template void SparseEngine::accumulate<false>(
    std::size_t, std::span<const std::uint32_t>, LayerState&);

const SpikeVector& SparseEngine::step_layer(
    std::size_t l, std::span<const std::uint32_t> in_active,
    std::vector<std::uint32_t>& out_active, const SpikeVector* in_packed) {
  require(l < state_.size(), "sparse engine: layer out of range");
  LayerState& st = state_[l];
  ++st.epoch;

  // Retire the previous step's spikes so `out` can be rebuilt from the
  // fired list alone.
  for (const std::uint32_t i : st.fired) st.out.clear(i);
  st.fired.clear();
  st.touched.clear();
  out_active.clear();

  // A step saturates once the events' combined fan-out covers the
  // population: stamping would cost more than stepping everyone.
  const bool full_drive =
      !in_active.empty() &&
      (st.all_touched ||
       in_active.size() * st.touches_per_event >= st.current.size());
  if (!in_active.empty()) {
    if (full_drive) {
      // A saturated step visits every input event anyway; with the packed
      // words at hand, decode them inline (same ascending order as the
      // index list) instead of re-reading the AER indices.
      if (in_packed != nullptr)
        scatter_accumulate(net_.topology().layers()[l], net_.layer(l).weights,
                           *in_packed, st.current);
      else
        accumulate<false>(l, in_active, st);
    } else {
      accumulate<true>(l, in_active, st);
    }
  }

  if (st.dense_fallback || full_drive) {
    // Either every membrane evolves every step (leak / zero threshold) or
    // the events cover the population anyway: run the dense, vectorizable
    // update over the buffer — a busy step never costs more than the
    // dense path.
    st.pop.step(st.current, st.spike_bytes);
    const float vth = static_cast<float>(st.pop.params().v_threshold);
    st.hot.clear();
    for (std::size_t i = 0; i < st.spike_bytes.size(); ++i) {
      if (!st.spike_bytes[i]) continue;
      const std::uint32_t idx = static_cast<std::uint32_t>(i);
      st.fired.push_back(idx);
      st.out.set(idx);
      out_active.push_back(idx);
      // A subtractive reset can leave a fired membrane at or above
      // threshold; the next (possibly sparse) step must revisit it.
      if (st.pop.membrane(i) >= vth) st.hot.push_back(idx);
    }
  } else {
    // Step set = touched columns ∪ hot carry-overs (a subtractive reset
    // can leave the membrane at or above threshold, in which case the
    // neuron fires again next step with no input at all).
    st.step_set.assign(st.touched.begin(), st.touched.end());
    for (const std::uint32_t i : st.hot)
      if (st.stamp[i] != st.epoch) st.step_set.push_back(i);
    st.hot.clear();
    st.pop.step_at(st.step_set, st.current, st.fired, st.hot);
    st.step_set.clear();
    for (const std::uint32_t i : st.fired) st.out.set(i);
    st.out.append_active(out_active);
  }

  // Restore the all-zero current invariant, clearing only what was
  // written.
  if (full_drive) {
    std::fill(st.current.begin(), st.current.end(), 0.0f);
  } else {
    for (const std::uint32_t i : st.touched) st.current[i] = 0.0f;
  }
  return st.out;
}

}  // namespace resparc::snn
