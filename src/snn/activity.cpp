#include "snn/activity.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>

namespace resparc::snn {

namespace {

constexpr const char* kMagic = "resparc-activity-trace";
constexpr int kVersion = 1;

void expect_token(std::istream& is, const char* expect) {
  std::string tok;
  if (!(is >> tok) || tok != expect)
    throw ActivityError("expected \"" + std::string(expect) + "\", got \"" +
                        tok + "\"");
}

template <typename T>
T read_value(std::istream& is, const char* field) {
  T v{};
  if (!(is >> v))
    throw ActivityError("malformed field \"" + std::string(field) + "\"");
  return v;
}

std::size_t read_count(std::istream& is, const char* field, std::size_t max) {
  const auto v = read_value<std::size_t>(is, field);
  if (v > max)
    throw ActivityError("implausible count " + std::to_string(v) +
                        " in field \"" + std::string(field) + "\"");
  return v;
}

}  // namespace

std::uint64_t LayerActivityRaster::total_spikes() const {
  return std::accumulate(spikes_per_step.begin(), spikes_per_step.end(),
                         std::uint64_t{0});
}

double LayerActivityRaster::activity(std::size_t presentations) const {
  const double denom = static_cast<double>(neurons) *
                       static_cast<double>(spikes_per_step.size()) *
                       static_cast<double>(presentations);
  return denom > 0.0 ? static_cast<double>(total_spikes()) / denom : 0.0;
}

std::size_t LayerActivityRaster::silent_steps() const {
  std::size_t n = 0;
  for (const std::uint64_t s : spikes_per_step)
    if (s == 0) ++n;
  return n;
}

void ActivityTrace::add(const SpikeTrace& trace) {
  if (layers.empty()) {
    layers.resize(trace.layer_count());
    for (std::size_t l = 0; l < trace.layer_count(); ++l) {
      layers[l].neurons =
          trace.layers[l].empty() ? 0 : trace.layers[l].front().size();
      layers[l].spikes_per_step.assign(trace.layers[l].size(), 0);
    }
  }
  if (trace.layer_count() != layers.size())
    throw ActivityError("trace has " + std::to_string(trace.layer_count()) +
                        " layers, accumulator has " +
                        std::to_string(layers.size()));
  for (std::size_t l = 0; l < layers.size(); ++l) {
    LayerActivityRaster& raster = layers[l];
    const auto& steps = trace.layers[l];
    if (steps.size() != raster.spikes_per_step.size())
      throw ActivityError("trace layer " + std::to_string(l) + " has " +
                          std::to_string(steps.size()) +
                          " timesteps, accumulator has " +
                          std::to_string(raster.spikes_per_step.size()));
    for (std::size_t t = 0; t < steps.size(); ++t)
      raster.spikes_per_step[t] += steps[t].count();
  }
  ++presentations;
}

ActivityTrace ActivityTrace::from_trace(const SpikeTrace& trace) {
  ActivityTrace a;
  a.add(trace);
  return a;
}

double ActivityTrace::layer_activity(std::size_t l) const {
  if (l >= layers.size()) throw ActivityError("layer out of range");
  return layers[l].activity(presentations);
}

double ActivityTrace::mean_activity() const {
  // Slot-weighted like snn::mean_activity: total spikes over total
  // (neuron x timestep x presentation) slots, so large layers dominate.
  std::uint64_t spikes = 0;
  double slots = 0.0;
  for (const LayerActivityRaster& raster : layers) {
    spikes += raster.total_spikes();
    slots += static_cast<double>(raster.neurons) *
             static_cast<double>(raster.spikes_per_step.size()) *
             static_cast<double>(presentations);
  }
  return slots > 0.0 ? static_cast<double>(spikes) / slots : 0.0;
}

double ActivityTrace::input_sparsity() const {
  return layers.empty() ? 1.0 : 1.0 - layer_activity(0);
}

void ActivityTrace::save(std::ostream& os) const {
  os << kMagic << " v" << kVersion << "\n";
  os << "presentations " << presentations << "\n";
  os << "layers " << layers.size() << "\n";
  for (const LayerActivityRaster& raster : layers) {
    os << "layer " << raster.neurons << " " << raster.spikes_per_step.size();
    for (const std::uint64_t s : raster.spikes_per_step) os << " " << s;
    os << "\n";
  }
}

bool ActivityTrace::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

ActivityTrace ActivityTrace::load(std::istream& is) {
  ActivityTrace a;
  expect_token(is, kMagic);
  std::string version;
  // Two appends instead of `"v" + std::to_string(...)`: the
  // one-expression form trips GCC 12's -Wrestrict false positive under
  // -march=native inlining (breaks the -Werror native-arch CI job).
  std::string expected_version("v");
  expected_version += std::to_string(kVersion);
  if (!(is >> version) || version != expected_version)
    throw ActivityError("unsupported version \"" + version + "\"");
  expect_token(is, "presentations");
  a.presentations = read_value<std::size_t>(is, "presentations");
  expect_token(is, "layers");
  const std::size_t layers = read_count(is, "layer count", 1u << 20);
  a.layers.reserve(std::min<std::size_t>(layers, 4096));
  for (std::size_t l = 0; l < layers; ++l) {
    expect_token(is, "layer");
    LayerActivityRaster raster;
    raster.neurons = read_value<std::size_t>(is, "neurons");
    const std::size_t steps = read_count(is, "timestep count", 1u << 24);
    raster.spikes_per_step.reserve(std::min<std::size_t>(steps, 65536));
    for (std::size_t t = 0; t < steps; ++t)
      raster.spikes_per_step.push_back(
          read_value<std::uint64_t>(is, "spike count"));
    a.layers.push_back(std::move(raster));
  }
  return a;
}

ActivityTrace ActivityTrace::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ActivityError("cannot open \"" + path + "\"");
  return load(in);
}

}  // namespace resparc::snn
