#include "snn/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resparc::snn {
namespace {

float quantize_value(float w, float scale, float steps) {
  if (scale <= 0.0f) return 0.0f;
  const float m = std::clamp(std::abs(w) / scale, 0.0f, 1.0f);
  const float mq = std::round(m * steps) / steps;
  return std::copysign(mq * scale, w);
}

float layer_scale(const Matrix& w) {
  float s = 0.0f;
  for (float v : w.flat()) s = std::max(s, std::abs(v));
  return s;
}

}  // namespace

void quantize_matrix(Matrix& weights, int bits, float scale) {
  require(bits >= 1 && bits <= 8, "quantize: bits must be in [1,8]");
  const float steps = static_cast<float>((1 << bits) - 1);
  for (float& w : weights.flat()) w = quantize_value(w, scale, steps);
}

void quantize_network(Network& net, int bits) {
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    Matrix& w = net.layer(l).weights;
    if (w.empty()) continue;
    quantize_matrix(w, bits, layer_scale(w));
  }
}

double quantization_mae(const Matrix& weights, int bits, float scale) {
  require(bits >= 1 && bits <= 8, "quantize: bits must be in [1,8]");
  const float steps = static_cast<float>((1 << bits) - 1);
  double err = 0.0;
  for (float w : weights.flat())
    err += std::abs(static_cast<double>(w) -
                    static_cast<double>(quantize_value(w, scale, steps)));
  return weights.size() ? err / static_cast<double>(weights.size()) : 0.0;
}

}  // namespace resparc::snn
