// Spike-trace statistics.
//
// The event-driven energy levers of section 3.2 act on *packets*: a spike
// packet whose bits are all zero is never transferred (switch zero-check)
// or never broadcast (SRAM zero-check).  Section 5.3 observes that the
// probability of an all-zero packet falls as the packet (run) length grows
// — these functions measure exactly that from recorded traces.
#pragma once

#include <cstddef>
#include <vector>

#include "snn/trace.hpp"

namespace resparc::snn {

/// Zero-packet statistics for one packet size.
struct PacketStats {
  std::size_t packet_bits = 0;   ///< packet (run) length in bits
  std::size_t packets = 0;       ///< packets examined
  std::size_t zero_packets = 0;  ///< packets with every bit zero

  /// Fraction of packets that the zero-check logic would suppress.
  double zero_fraction() const {
    return packets ? static_cast<double>(zero_packets) / static_cast<double>(packets)
                   : 0.0;
  }
};

/// Scans one layer of a trace with packets of `packet_bits` consecutive
/// neurons (the hardware's packing order) and counts all-zero packets.
PacketStats layer_packet_stats(const SpikeTrace& trace, std::size_t layer,
                               std::size_t packet_bits);

/// Same scan across every layer of the trace.
PacketStats trace_packet_stats(const SpikeTrace& trace, std::size_t packet_bits);

/// Mean spiking activity (spikes per neuron per timestep) across all layers.
double mean_activity(const SpikeTrace& trace);

/// Per-layer activity vector (index 0 = input layer).
std::vector<double> layer_activities(const SpikeTrace& trace);

}  // namespace resparc::snn
