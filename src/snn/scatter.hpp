// Shared spike-event scatter: ONE implementation of "add the fan-out of
// these input events into the output current buffer" for every layer
// kind, built on the kernels layer (common/kernels.hpp).
//
// Both execution engines call these functions — the dense simulator with
// the active-bit list of the previous layer's SpikeVector, the sparse
// engine with its AER event list — so their floating-point results are
// bit-for-bit identical by construction, not by parallel maintenance of
// two loop nests (docs/performance.md).
//
// The `part/parts` pair partitions the OUTPUT space (dense columns, conv
// output channels, pool output indices) so the simulator can spread one
// big layer across pool workers: each output element is written by
// exactly one partition and sees its additions in the exact order the
// unpartitioned call would use, so results are partition-count
// invariant.
#pragma once

#include <cstdint>
#include <span>

#include "common/matrix.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::snn {

/// Scatters the fan-out of `in_active` (ascending input indices) of a
/// layer described by `li` with weight matrix `w` (empty for pool
/// layers) into `current`, writing only the output slice owned by
/// partition `part` of `parts`.  `current` is NOT zeroed — callers own
/// the all-zero (or carry-over) invariant.
void scatter_accumulate(const LayerInfo& li, const Matrix& w,
                        std::span<const std::uint32_t> in_active,
                        std::span<float> current, std::size_t part = 0,
                        std::size_t parts = 1);

/// Packed-spike form of scatter_accumulate: input events arrive as the
/// SpikeVector's 64-bit words instead of an index list, so no AER list is
/// materialized.  Set bits are decoded in ascending order — the order
/// append_active() emits — and dense layers run
/// kernels::masked_row_accumulate straight off the words, so the result
/// is bit-for-bit identical to the index-list overload on the same spike
/// pattern (tests/test_differential.cpp).  This is the scatter of the
/// "+packed" execution mode (docs/execution.md).
void scatter_accumulate(const LayerInfo& li, const Matrix& w,
                        const SpikeVector& in, std::span<float> current,
                        std::size_t part = 0, std::size_t parts = 1);

}  // namespace resparc::snn
