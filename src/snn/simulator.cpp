#include "snn/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "snn/sparse_engine.hpp"

namespace resparc::snn {

std::string to_string(ExecutionMode mode) {
  return mode == ExecutionMode::kSparse ? "sparse" : "dense";
}

bool parse_execution_mode(const std::string& text, ExecutionMode& out) {
  if (text == "dense") {
    out = ExecutionMode::kDense;
    return true;
  }
  if (text == "sparse") {
    out = ExecutionMode::kSparse;
    return true;
  }
  return false;
}

Simulator::Simulator(const Network& net, SimConfig config)
    : net_(net), config_(config), encoder_(config.encoder) {
  require(config_.timesteps > 0, "simulator needs timesteps > 0");
}

void Simulator::accumulate_current(std::size_t l, const SpikeVector& prev,
                                   std::span<float> current) const {
  const LayerInfo& li = net_.topology().layers()[l];
  const LayerParams& lp = net_.layer(l);
  std::fill(current.begin(), current.end(), 0.0f);

  switch (li.spec.kind) {
    case LayerKind::kDense: {
      const Matrix& w = lp.weights;
      for (std::size_t r = 0; r < prev.size(); ++r) {
        if (!prev.get(r)) continue;
        const auto row = w.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) current[c] += row[c];
      }
      break;
    }
    case LayerKind::kConv: {
      const Matrix& w = lp.weights;  // (inC*k*k) x outC
      const Shape3 in = li.in_shape;
      const Shape3 out = li.out_shape;
      const std::size_t k = li.spec.kernel;
      const std::size_t pad = li.spec.same_padding ? k / 2 : 0;
      for (std::size_t idx = 0; idx < prev.size(); ++idx) {
        if (!prev.get(idx)) continue;
        const std::size_t c = idx / (in.h * in.w);
        const std::size_t rem = idx % (in.h * in.w);
        const std::size_t y = rem / in.w;
        const std::size_t x = rem % in.w;
        // Input (c,y,x) feeds output (oc, y-ky+pad, x-kx+pad) with kernel
        // weight K[oc][c][ky][kx] (the scatter form of the convolution).
        for (std::size_t ky = 0; ky < k; ++ky) {
          const std::ptrdiff_t oy =
              static_cast<std::ptrdiff_t>(y + pad) - static_cast<std::ptrdiff_t>(ky);
          if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(out.h)) continue;
          for (std::size_t kx = 0; kx < k; ++kx) {
            const std::ptrdiff_t ox =
                static_cast<std::ptrdiff_t>(x + pad) - static_cast<std::ptrdiff_t>(kx);
            if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(out.w)) continue;
            const std::size_t wrow = (c * k + ky) * k + kx;
            const auto kernels = w.row(wrow);  // one weight per out channel
            const std::size_t base =
                static_cast<std::size_t>(oy) * out.w + static_cast<std::size_t>(ox);
            for (std::size_t oc = 0; oc < out.c; ++oc)
              current[oc * out.h * out.w + base] += kernels[oc];
          }
        }
      }
      break;
    }
    case LayerKind::kAvgPool: {
      const Shape3 in = li.in_shape;
      const Shape3 out = li.out_shape;
      const std::size_t p = li.spec.pool;
      const float share = 1.0f / static_cast<float>(p * p);
      for (std::size_t idx = 0; idx < prev.size(); ++idx) {
        if (!prev.get(idx)) continue;
        const std::size_t c = idx / (in.h * in.w);
        const std::size_t rem = idx % (in.h * in.w);
        const std::size_t y = rem / in.w;
        const std::size_t x = rem % in.w;
        current[(c * out.h + y / p) * out.w + x / p] += share;
      }
      break;
    }
  }
}

SimResult Simulator::run(std::span<const float> image, Rng& rng) {
  const Topology& topo = net_.topology();
  require(image.size() == topo.input_shape().size(),
          "simulator: image size does not match topology input");
  return config_.mode == ExecutionMode::kSparse ? run_sparse(image, rng)
                                                : run_dense(image, rng);
}

SimResult Simulator::run_dense(std::span<const float> image, Rng& rng) {
  const Topology& topo = net_.topology();

  // Per-layer populations and scratch buffers live for one presentation.
  std::vector<IfPopulation> pops;
  std::vector<std::vector<float>> currents;
  std::vector<std::vector<std::uint8_t>> spike_bytes;
  pops.reserve(topo.layer_count());
  for (std::size_t l = 0; l < topo.layer_count(); ++l) {
    const std::size_t n = topo.layers()[l].neurons;
    pops.emplace_back(n, net_.layer(l).neuron);
    currents.emplace_back(n, 0.0f);
    spike_bytes.emplace_back(n, std::uint8_t{0});
  }

  SimResult result;
  result.output_spike_counts.assign(topo.output_count(), 0);
  const std::size_t T = config_.timesteps;
  if (config_.record_trace) {
    result.trace.layers.resize(topo.layer_count() + 1);
    for (auto& lt : result.trace.layers) lt.reserve(T);
  }

  const auto input_spikes = encoder_.encode(image, T, rng);

  std::vector<SpikeVector> prev_holder;  // current spikes per layer, this step
  prev_holder.resize(topo.layer_count());

  for (std::size_t t = 0; t < T; ++t) {
    const SpikeVector* prev = &input_spikes[t];
    result.total_spikes += prev->count();
    if (config_.record_trace) result.trace.layers[0].push_back(*prev);

    for (std::size_t l = 0; l < topo.layer_count(); ++l) {
      accumulate_current(l, *prev, currents[l]);
      pops[l].step(currents[l], spike_bytes[l]);
      prev_holder[l] = SpikeVector::from_bytes(spike_bytes[l]);
      prev = &prev_holder[l];
      result.total_spikes += prev->count();
      if (config_.record_trace) result.trace.layers[l + 1].push_back(*prev);
    }

    const SpikeVector& out = prev_holder.back();
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out.get(i)) ++result.output_spike_counts[i];
  }

  result.predicted_class = static_cast<std::size_t>(std::distance(
      result.output_spike_counts.begin(),
      std::max_element(result.output_spike_counts.begin(),
                       result.output_spike_counts.end())));
  return result;
}

SimResult Simulator::run_sparse(std::span<const float> image, Rng& rng) {
  const Topology& topo = net_.topology();

  SimResult result;
  result.output_spike_counts.assign(topo.output_count(), 0);
  const std::size_t T = config_.timesteps;
  if (config_.record_trace) {
    result.trace.layers.resize(topo.layer_count() + 1);
    for (auto& lt : result.trace.layers) lt.reserve(T);
  }

  const auto input_spikes = encoder_.encode(image, T, rng);

  SparseEngine engine(net_);
  // Double-buffered AER lists: the input side of one layer is the output
  // side of the previous one.
  std::vector<std::uint32_t> active_in;
  std::vector<std::uint32_t> active_out;

  for (std::size_t t = 0; t < T; ++t) {
    active_in.clear();
    input_spikes[t].append_active(active_in);
    result.total_spikes += active_in.size();
    if (config_.record_trace) result.trace.layers[0].push_back(input_spikes[t]);

    for (std::size_t l = 0; l < topo.layer_count(); ++l) {
      const SpikeVector& out = engine.step_layer(l, active_in, active_out);
      active_in.swap(active_out);
      result.total_spikes += active_in.size();
      if (config_.record_trace) result.trace.layers[l + 1].push_back(out);
    }

    // active_in now holds the output layer's spikes for this step.
    for (const std::uint32_t i : active_in) ++result.output_spike_counts[i];
  }

  result.predicted_class = static_cast<std::size_t>(std::distance(
      result.output_spike_counts.begin(),
      std::max_element(result.output_spike_counts.begin(),
                       result.output_spike_counts.end())));
  return result;
}

void Simulator::observe_currents(std::span<const float> image, Rng& rng,
                                 std::size_t layer,
                                 std::vector<float>& samples_out) {
  const Topology& topo = net_.topology();
  require(layer < topo.layer_count(), "observe_currents: layer out of range");

  std::vector<IfPopulation> pops;
  std::vector<std::vector<float>> currents;
  std::vector<std::vector<std::uint8_t>> spike_bytes;
  for (std::size_t l = 0; l <= layer; ++l) {
    const std::size_t n = topo.layers()[l].neurons;
    pops.emplace_back(n, net_.layer(l).neuron);
    currents.emplace_back(n, 0.0f);
    spike_bytes.emplace_back(n, std::uint8_t{0});
  }

  const auto input_spikes = encoder_.encode(image, config_.timesteps, rng);
  std::vector<SpikeVector> prev_holder(layer + 1);

  for (std::size_t t = 0; t < config_.timesteps; ++t) {
    const SpikeVector* prev = &input_spikes[t];
    for (std::size_t l = 0; l <= layer; ++l) {
      accumulate_current(l, *prev, currents[l]);
      if (l == layer) {
        samples_out.insert(samples_out.end(), currents[l].begin(),
                           currents[l].end());
        break;
      }
      pops[l].step(currents[l], spike_bytes[l]);
      prev_holder[l] = SpikeVector::from_bytes(spike_bytes[l]);
      prev = &prev_holder[l];
    }
  }
}

std::vector<double> calibrate_thresholds(
    Network& net, std::span<const std::vector<float>> images,
    const SimConfig& config, Rng& rng, double target_activity) {
  require(target_activity > 0.0 && target_activity < 1.0,
          "target activity must be in (0,1)");
  require(!images.empty(), "calibration needs at least one image");

  std::vector<double> chosen;
  const std::size_t layer_count = net.topology().layer_count();
  for (std::size_t l = 0; l < layer_count; ++l) {
    // Pool layers keep their fixed semantics: fire when at least half the
    // window was active.  Their threshold is not calibrated.
    if (net.topology().layers()[l].spec.kind == LayerKind::kAvgPool) {
      net.layer(l).neuron.v_threshold = 0.5;
      chosen.push_back(0.5);
      continue;
    }
    std::vector<float> samples;
    Simulator sim(net, config);
    for (const auto& img : images) sim.observe_currents(img, rng, l, samples);

    // Keep strictly positive currents; a layer that never receives positive
    // drive keeps threshold 1 (it will stay silent, which is honest).
    std::vector<float> pos;
    pos.reserve(samples.size());
    for (float s : samples)
      if (s > 0.0f) pos.push_back(s);
    double vth = 1.0;
    if (!pos.empty()) {
      // The threshold acts on *accumulated* membrane, so a neuron whose mean
      // positive per-step current is c fires roughly every vth/c steps.
      // Setting vth to the (1-a) quantile of per-step currents yields a
      // per-step fire probability of ~a for the upper tail of neurons.
      const double q = 1.0 - target_activity;
      const std::size_t idx = std::min(
          pos.size() - 1, static_cast<std::size_t>(q * static_cast<double>(pos.size())));
      std::nth_element(pos.begin(), pos.begin() + static_cast<std::ptrdiff_t>(idx),
                       pos.end());
      vth = std::max(1e-6, static_cast<double>(pos[idx]));
    }
    net.layer(l).neuron.v_threshold = vth;
    chosen.push_back(vth);
  }
  return chosen;
}

double evaluate_accuracy(const Network& net, const SimConfig& config,
                         std::span<const std::vector<float>> images,
                         std::span<const int> labels, Rng& rng) {
  require(images.size() == labels.size(),
          "evaluate_accuracy: images/labels size mismatch");
  require(!images.empty(), "evaluate_accuracy: empty set");
  SimConfig cfg = config;
  cfg.record_trace = false;
  Simulator sim(net, cfg);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const SimResult r = sim.run(images[i], rng);
    if (static_cast<int>(r.predicted_class) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(images.size());
}

}  // namespace resparc::snn
