#include "snn/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "snn/scatter.hpp"
#include "snn/sparse_engine.hpp"

namespace resparc::snn {

std::string to_string(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSparse: return "sparse";
    case ExecutionMode::kPacked: return "packed";
    case ExecutionMode::kDense: break;
  }
  return "dense";
}

bool parse_execution_mode(const std::string& text, ExecutionMode& out) {
  if (text == "dense") {
    out = ExecutionMode::kDense;
    return true;
  }
  if (text == "sparse") {
    out = ExecutionMode::kSparse;
    return true;
  }
  if (text == "packed") {
    out = ExecutionMode::kPacked;
    return true;
  }
  return false;
}

Simulator::Simulator(const Network& net, SimConfig config)
    : net_(net), config_(config), encoder_(config.encoder) {
  require(config_.timesteps > 0, "simulator needs timesteps > 0");
  // One reusable pool job: run_indexed takes it by const reference, so
  // the pooled steady state allocates nothing per call.
  pool_fn_ = [this](std::size_t part, std::size_t /*worker*/) {
    scatter_accumulate(net_.topology().layers()[pool_job_layer_],
                       net_.layer(pool_job_layer_).weights, pool_job_active_,
                       pool_job_current_, part, pool_parts_);
  };
  pool_packed_fn_ = [this](std::size_t part, std::size_t /*worker*/) {
    scatter_accumulate(net_.topology().layers()[pool_job_layer_],
                       net_.layer(pool_job_layer_).weights, *pool_job_packed_,
                       pool_job_current_, part, pool_parts_);
  };
}

Simulator::~Simulator() = default;

void Simulator::set_pool(ThreadPool* pool, std::size_t parts,
                         std::size_t min_outputs) {
  pool_ = pool;
  pool_parts_ = pool == nullptr ? 1
               : parts == 0    ? pool->width()
                               : std::min(parts, pool->width());
  pool_min_outputs_ = min_outputs;
}

void Simulator::accumulate_active(std::size_t l,
                                  std::span<const std::uint32_t> active,
                                  std::span<float> current) {
  const LayerInfo& li = net_.topology().layers()[l];
  if (pool_ != nullptr && pool_parts_ > 1 && li.neurons >= pool_min_outputs_ &&
      !active.empty()) {
    pool_job_layer_ = l;
    pool_job_active_ = active;
    pool_job_current_ = current;
    pool_->run_indexed(pool_parts_, pool_parts_, pool_fn_);
    return;
  }
  scatter_accumulate(li, net_.layer(l).weights, active, current);
}

void Simulator::accumulate_packed(std::size_t l, const SpikeVector& in,
                                  std::span<float> current) {
  const LayerInfo& li = net_.topology().layers()[l];
  if (pool_ != nullptr && pool_parts_ > 1 && li.neurons >= pool_min_outputs_ &&
      !in.none()) {
    pool_job_layer_ = l;
    pool_job_packed_ = &in;
    pool_job_current_ = current;
    pool_->run_indexed(pool_parts_, pool_parts_, pool_packed_fn_);
    return;
  }
  scatter_accumulate(li, net_.layer(l).weights, in, current);
}

void Simulator::ensure_dense_state() {
  const Topology& topo = net_.topology();
  if (pops_.empty()) {
    pops_.reserve(topo.layer_count());
    currents_.resize(topo.layer_count());
    spike_bytes_.resize(topo.layer_count());
    prev_holder_.resize(topo.layer_count());
    for (std::size_t l = 0; l < topo.layer_count(); ++l) {
      const std::size_t n = topo.layers()[l].neurons;
      pops_.emplace_back(n, net_.layer(l).neuron);
      currents_[l].assign(n, 0.0f);
      spike_bytes_[l].assign(n, 0);
    }
  } else {
    // Reuse: identical to reconstruction (IfPopulation::clear zeroes the
    // membranes exactly like the constructor; currents/spike bytes are
    // overwritten every step before being read).
    for (auto& pop : pops_) pop.clear();
  }
}

SimResult Simulator::run(std::span<const float> image, Rng& rng) {
  SimResult result;
  run(image, rng, result);
  return result;
}

void Simulator::run(std::span<const float> image, Rng& rng, SimResult& out) {
  const Topology& topo = net_.topology();
  require(image.size() == topo.input_shape().size(),
          "simulator: image size does not match topology input");
  out.trace.layers.clear();
  out.output_spike_counts.assign(topo.output_count(), 0);
  out.predicted_class = 0;
  out.total_spikes = 0;
  if (config_.mode == ExecutionMode::kSparse)
    run_sparse(image, rng, out);
  else if (config_.mode == ExecutionMode::kPacked)
    run_packed(image, rng, out);
  else
    run_dense(image, rng, out);
  out.predicted_class = static_cast<std::size_t>(std::distance(
      out.output_spike_counts.begin(),
      std::max_element(out.output_spike_counts.begin(),
                       out.output_spike_counts.end())));
}

void Simulator::run_dense(std::span<const float> image, Rng& rng,
                          SimResult& result) {
  const Topology& topo = net_.topology();
  ensure_dense_state();

  const std::size_t T = config_.timesteps;
  if (config_.record_trace) {
    result.trace.layers.resize(topo.layer_count() + 1);
    for (auto& lt : result.trace.layers) lt.reserve(T);
  }

  encoder_.encode_into(image, T, rng, input_spikes_);

  for (std::size_t t = 0; t < T; ++t) {
    const SpikeVector* prev = &input_spikes_[t];
    result.total_spikes += prev->count();
    if (config_.record_trace) result.trace.layers[0].push_back(*prev);

    for (std::size_t l = 0; l < topo.layer_count(); ++l) {
      active_scratch_.clear();
      prev->append_active(active_scratch_);
      std::fill(currents_[l].begin(), currents_[l].end(), 0.0f);
      accumulate_active(l, active_scratch_, currents_[l]);
      pops_[l].step(currents_[l], spike_bytes_[l]);
      prev_holder_[l].assign_bytes(spike_bytes_[l]);
      prev = &prev_holder_[l];
      result.total_spikes += prev->count();
      if (config_.record_trace) result.trace.layers[l + 1].push_back(*prev);
    }

    const SpikeVector& out = prev_holder_.back();
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out.get(i)) ++result.output_spike_counts[i];
  }
}

void Simulator::run_packed(std::span<const float> image, Rng& rng,
                           SimResult& result) {
  const Topology& topo = net_.topology();
  ensure_dense_state();

  const std::size_t T = config_.timesteps;
  if (config_.record_trace) {
    result.trace.layers.resize(topo.layer_count() + 1);
    for (auto& lt : result.trace.layers) lt.reserve(T);
  }

  encoder_.encode_into(image, T, rng, input_spikes_);

  // Size the per-layer word buffers once per presentation; step_packed
  // fully overwrites every word each step, so reset() is only needed to
  // establish the size (reset on an already-sized vector reuses storage).
  for (std::size_t l = 0; l < topo.layer_count(); ++l)
    prev_holder_[l].reset(topo.layers()[l].neurons);

  for (std::size_t t = 0; t < T; ++t) {
    const SpikeVector* prev = &input_spikes_[t];
    result.total_spikes += prev->count();
    if (config_.record_trace) result.trace.layers[0].push_back(*prev);

    for (std::size_t l = 0; l < topo.layer_count(); ++l) {
      std::fill(currents_[l].begin(), currents_[l].end(), 0.0f);
      accumulate_packed(l, *prev, currents_[l]);
      pops_[l].step_packed(currents_[l], prev_holder_[l]);
      prev = &prev_holder_[l];
      result.total_spikes += prev->count();
      if (config_.record_trace) result.trace.layers[l + 1].push_back(*prev);
    }

    const SpikeVector& out = prev_holder_.back();
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out.get(i)) ++result.output_spike_counts[i];
  }
}

void Simulator::run_sparse(std::span<const float> image, Rng& rng,
                           SimResult& result) {
  const Topology& topo = net_.topology();

  const std::size_t T = config_.timesteps;
  if (config_.record_trace) {
    result.trace.layers.resize(topo.layer_count() + 1);
    for (auto& lt : result.trace.layers) lt.reserve(T);
  }

  encoder_.encode_into(image, T, rng, input_spikes_);

  if (!sparse_)
    sparse_ = std::make_unique<SparseEngine>(net_);
  else
    sparse_->reset();
  SparseEngine& engine = *sparse_;

  // Double-buffered AER lists: the input side of one layer is the output
  // side of the previous one.
  for (std::size_t t = 0; t < T; ++t) {
    active_in_.clear();
    input_spikes_[t].append_active(active_in_);
    result.total_spikes += active_in_.size();
    if (config_.record_trace)
      result.trace.layers[0].push_back(input_spikes_[t]);

    // Word-form view of the same spikes: saturated full-drive steps
    // scatter straight from these packed words (see step_layer).
    const SpikeVector* prev_vec = &input_spikes_[t];
    for (std::size_t l = 0; l < topo.layer_count(); ++l) {
      const SpikeVector& out =
          engine.step_layer(l, active_in_, active_out_, prev_vec);
      prev_vec = &out;
      active_in_.swap(active_out_);
      result.total_spikes += active_in_.size();
      if (config_.record_trace) result.trace.layers[l + 1].push_back(out);
    }

    // active_in_ now holds the output layer's spikes for this step.
    for (const std::uint32_t i : active_in_) ++result.output_spike_counts[i];
  }
}

void Simulator::observe_currents(std::span<const float> image, Rng& rng,
                                 std::size_t layer,
                                 std::vector<float>& samples_out) {
  const Topology& topo = net_.topology();
  require(layer < topo.layer_count(), "observe_currents: layer out of range");

  std::vector<IfPopulation> pops;
  std::vector<std::vector<float>> currents;
  std::vector<std::vector<std::uint8_t>> spike_bytes;
  for (std::size_t l = 0; l <= layer; ++l) {
    const std::size_t n = topo.layers()[l].neurons;
    pops.emplace_back(n, net_.layer(l).neuron);
    currents.emplace_back(n, 0.0f);
    spike_bytes.emplace_back(n, std::uint8_t{0});
  }

  const auto input_spikes = encoder_.encode(image, config_.timesteps, rng);
  std::vector<SpikeVector> prev_holder(layer + 1);
  std::vector<std::uint32_t> active;

  for (std::size_t t = 0; t < config_.timesteps; ++t) {
    const SpikeVector* prev = &input_spikes[t];
    for (std::size_t l = 0; l <= layer; ++l) {
      active.clear();
      prev->append_active(active);
      std::fill(currents[l].begin(), currents[l].end(), 0.0f);
      scatter_accumulate(topo.layers()[l], net_.layer(l).weights, active,
                         currents[l]);
      if (l == layer) {
        samples_out.insert(samples_out.end(), currents[l].begin(),
                           currents[l].end());
        break;
      }
      pops[l].step(currents[l], spike_bytes[l]);
      prev_holder[l] = SpikeVector::from_bytes(spike_bytes[l]);
      prev = &prev_holder[l];
    }
  }
}

std::vector<double> calibrate_thresholds(
    Network& net, std::span<const std::vector<float>> images,
    const SimConfig& config, Rng& rng, double target_activity) {
  require(target_activity > 0.0 && target_activity < 1.0,
          "target activity must be in (0,1)");
  require(!images.empty(), "calibration needs at least one image");

  std::vector<double> chosen;
  const std::size_t layer_count = net.topology().layer_count();
  for (std::size_t l = 0; l < layer_count; ++l) {
    // Pool layers keep their fixed semantics: fire when at least half the
    // window was active.  Their threshold is not calibrated.
    if (net.topology().layers()[l].spec.kind == LayerKind::kAvgPool) {
      net.layer(l).neuron.v_threshold = 0.5;
      chosen.push_back(0.5);
      continue;
    }
    std::vector<float> samples;
    Simulator sim(net, config);
    for (const auto& img : images) sim.observe_currents(img, rng, l, samples);

    // Keep strictly positive currents; a layer that never receives positive
    // drive keeps threshold 1 (it will stay silent, which is honest).
    std::vector<float> pos;
    pos.reserve(samples.size());
    for (float s : samples)
      if (s > 0.0f) pos.push_back(s);
    double vth = 1.0;
    if (!pos.empty()) {
      // The threshold acts on *accumulated* membrane, so a neuron whose mean
      // positive per-step current is c fires roughly every vth/c steps.
      // Setting vth to the (1-a) quantile of per-step currents yields a
      // per-step fire probability of ~a for the upper tail of neurons.
      const double q = 1.0 - target_activity;
      const std::size_t idx = std::min(
          pos.size() - 1, static_cast<std::size_t>(q * static_cast<double>(pos.size())));
      std::nth_element(pos.begin(), pos.begin() + static_cast<std::ptrdiff_t>(idx),
                       pos.end());
      vth = std::max(1e-6, static_cast<double>(pos[idx]));
    }
    net.layer(l).neuron.v_threshold = vth;
    chosen.push_back(vth);
  }
  return chosen;
}

double evaluate_accuracy(const Network& net, const SimConfig& config,
                         std::span<const std::vector<float>> images,
                         std::span<const int> labels, Rng& rng) {
  require(images.size() == labels.size(),
          "evaluate_accuracy: images/labels size mismatch");
  require(!images.empty(), "evaluate_accuracy: empty set");
  SimConfig cfg = config;
  cfg.record_trace = false;
  Simulator sim(net, cfg);
  SimResult r;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    sim.run(images[i], rng, r);
    if (static_cast<int>(r.predicted_class) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(images.size());
}

}  // namespace resparc::snn
