// Execution-mode vocabulary shared by the simulator, the executor and the
// api layer (docs/execution.md).
//
// Kept in its own tiny header so api/registry.hpp and core/executor.hpp
// can name the mode without pulling in the whole simulator stack.
#pragma once

#include <string>

namespace resparc::snn {

/// How spike workloads are evaluated.
enum class ExecutionMode {
  kDense,   ///< per-timestep dense buffers: every neuron visited every step
  kSparse,  ///< AER event path (snn/sparse_engine.hpp): cost scales with spikes
  kPacked,  ///< bit-packed word datapath + trace-per-lane batched replay
            ///< (popcount/mask kernels, docs/performance.md); results are
            ///< bit-for-bit identical to dense (test-enforced)
};

/// "dense" / "sparse" / "packed" — the names the api registry's "+<mode>"
/// key suffix and bench output use.
std::string to_string(ExecutionMode mode);

/// Parses "dense"/"sparse"/"packed"; returns false for anything else.
bool parse_execution_mode(const std::string& text, ExecutionMode& out);

}  // namespace resparc::snn
