// ActivityTrace: measured spike-sparsity statistics of a workload.
//
// A SpikeTrace records *which* neuron spiked when; an ActivityTrace
// distils one or many of them into the per-layer spike rasters the
// benches and docs report — spikes per layer per timestep, activity
// fractions, silent steps — without holding the full bit matrices.  It
// accumulates across presentations (one Workload = many traces) and
// serializes to the same versioned line-oriented text format as
// compile::CompiledProgram, so a measured sparsity profile can be
// committed next to the bench JSON that used it (docs/benchmarks.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "snn/trace.hpp"

namespace resparc::snn {

/// Thrown when a serialized activity trace is malformed.
class ActivityError : public Error {
 public:
  /// Wraps `what` with the "activity trace error:" prefix.
  explicit ActivityError(const std::string& what)
      : Error("activity trace error: " + what) {}
};

/// Spike raster of one layer, summed over the recorded presentations.
struct LayerActivityRaster {
  std::size_t neurons = 0;  ///< population size of the layer
  /// spikes_per_step[t]: spikes emitted at timestep t (summed over
  /// presentations).
  std::vector<std::uint64_t> spikes_per_step;

  /// Total spikes over all steps and presentations.
  std::uint64_t total_spikes() const;
  /// Mean spikes per neuron per timestep, given how many presentations
  /// were accumulated.
  double activity(std::size_t presentations) const;
  /// Steps at which the layer emitted no spike in any presentation.
  std::size_t silent_steps() const;
};

/// Per-layer spike rasters plus derived sparsity statistics for a set of
/// presentations (layer 0 = encoded input).
struct ActivityTrace {
  std::vector<LayerActivityRaster> layers;  ///< index 0 = encoded input
  std::size_t presentations = 0;            ///< traces accumulated

  /// Accumulates one presentation.  The first add() fixes the layer
  /// count, population sizes and timestep count; later traces must match
  /// (throws ActivityError otherwise).
  void add(const SpikeTrace& trace);

  /// Builds a trace from a single presentation.
  static ActivityTrace from_trace(const SpikeTrace& trace);

  /// Number of recorded layers (input layer included).
  std::size_t layer_count() const { return layers.size(); }
  /// Presentation length the rasters were recorded at.
  std::size_t timesteps() const {
    return layers.empty() ? 0 : layers.front().spikes_per_step.size();
  }

  /// Mean spikes per neuron per timestep of layer `l`.
  double layer_activity(std::size_t l) const;
  /// Slot-weighted mean activity — total spikes over total
  /// (neuron x timestep x presentation) slots, matching
  /// snn::mean_activity over the accumulated traces.
  double mean_activity() const;
  /// 1 - input-layer activity: the sparsity knob the event-driven
  /// hardware savings scale with (paper section 3.2).
  double input_sparsity() const;

  /// Writes the versioned text format (hexfloat-free: all counters are
  /// integers, so the round trip is trivially exact).
  void save(std::ostream& os) const;
  /// save() into `path`; false when the file cannot be opened/written.
  bool save_file(const std::string& path) const;

  /// Parses a serialized trace; throws ActivityError when malformed.
  static ActivityTrace load(std::istream& is);
  /// load() from a file; throws ActivityError when it cannot be opened.
  static ActivityTrace load_file(const std::string& path);
};

}  // namespace resparc::snn
