// Sparse, spike-event-driven execution engine (docs/execution.md).
//
// The dense simulator path touches every neuron of every layer on every
// timestep: it zero-fills a full current buffer, scans every input bit,
// steps the whole population and re-packs the spike bytes — O(neurons)
// fixed cost per layer per step even when almost nothing spiked.  This
// engine replaces that inner loop with an AER-style event path:
//
//   * the previous layer's spikes arrive as an ascending active-index
//     list (SpikeVector::append_active), so silent inputs are never
//     visited;
//   * accumulation scatters each event through the layer's connectivity,
//     stamping the output columns it touches;
//   * only touched columns — plus "hot" neurons whose membrane stayed at
//     or above threshold after a subtractive reset — are stepped
//     (IfPopulation::step_at); everything else is provably inert when
//     leak_per_step == 0;
//   * the touched entries of the current buffer are cleared afterwards,
//     keeping the all-zero invariant without a full refill.
//
// The arithmetic and its ordering are identical to the dense path, so the
// produced spike trains are bit-for-bit the same (tests/
// test_sparse_execution.cpp enforces this across every bundled topology);
// wall-clock cost scales with spike events instead of network size, which
// is the executable form of the paper's section 3.2 event-driven lever.
// Layers outside the provably-inert regime (leak > 0, or a non-positive
// threshold) transparently fall back to the dense population step while
// keeping the sparse accumulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snn/network.hpp"
#include "snn/trace.hpp"

namespace resparc::snn {

/// Event-driven executor for one presentation.  Construct per
/// presentation (like the dense path's per-run populations): the engine
/// snapshots the network's neuron parameters at construction, and the
/// network must outlive it.
class SparseEngine {
 public:
  /// Snapshots `net`'s neuron parameters and sizes the scratch state.
  explicit SparseEngine(const Network& net);

  /// Returns the engine to its just-constructed state (zero membranes,
  /// no pending spikes) without releasing any scratch storage — the
  /// allocation-free way to reuse one engine across presentations.
  /// Bit-for-bit equivalent to constructing a fresh engine.
  void reset();

  /// Runs one timestep of layer `l`.  `in_active` is the previous
  /// layer's ascending active-index list (its spikes in AER form); the
  /// returned vector (this layer's spikes) stays valid until the next
  /// step_layer call for the same layer.  `out_active` is cleared and
  /// refilled with the layer's ascending active list.  When `in_packed`
  /// names the same spikes in word form, a saturated (full-drive) step
  /// scatters straight from the packed words through the popcount/mask
  /// kernels (snn/scatter.hpp packed overload) instead of the index
  /// list — same event order, bit-for-bit identical currents.
  const SpikeVector& step_layer(std::size_t l,
                                std::span<const std::uint32_t> in_active,
                                std::vector<std::uint32_t>& out_active,
                                const SpikeVector* in_packed = nullptr);

  /// Spikes emitted by layer `l` in its most recent step.
  std::size_t last_fired(std::size_t l) const {
    return state_[l].fired.size();
  }

 private:
  struct LayerState {
    IfPopulation pop;                 ///< membranes (engine-owned)
    std::vector<float> current;       ///< all-zero between steps
    std::vector<std::uint32_t> touched;  ///< columns written this step
    std::vector<std::uint32_t> stamp;    ///< epoch marks backing `touched`
    std::vector<std::uint32_t> step_set;  ///< touched ∪ hot, deduplicated
    std::vector<std::uint32_t> fired;    ///< spikes of the latest step
    std::vector<std::uint32_t> hot;      ///< membrane >= vth after reset
    std::vector<std::uint8_t> spike_bytes;  ///< dense-fallback scratch
    SpikeVector out;                  ///< spikes of the latest step
    std::uint32_t epoch = 0;
    bool all_touched = false;  ///< dense layer: any event drives every column
    bool dense_fallback = false;  ///< leak > 0 or vth <= 0: step everyone
    /// Upper bound on columns one event can touch (kernel fan-out).  When
    /// events x touches would cover the population anyway, the engine
    /// saturates to a stamp-free full drive so a busy step never costs
    /// more than the dense path.
    std::size_t touches_per_event = 0;

    LayerState(std::size_t n, const IfParams& params)
        : pop(n, params), current(n, 0.0f), stamp(n, 0), out(n) {}
  };

  /// Scatters `in_active` through layer `l`'s connectivity into the
  /// current buffer.  Stamp=false is the full-drive variant (dense
  /// layers, or a saturated step): it compiles to the exact dense scatter
  /// loop with no per-write bookkeeping, so a busy step never pays for
  /// sparsity it does not have.
  template <bool Stamp>
  void accumulate(std::size_t l, std::span<const std::uint32_t> in_active,
                  LayerState& st);

  const Network& net_;
  std::vector<LayerState> state_;
};

}  // namespace resparc::snn
