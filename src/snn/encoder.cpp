#include "snn/encoder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resparc::snn {

RateEncoder::RateEncoder(EncoderConfig config) : config_(config) {
  require(config_.max_rate > 0.0 && config_.max_rate <= 1.0,
          "encoder max_rate must be in (0,1]");
}

std::vector<SpikeVector> RateEncoder::encode(std::span<const float> image,
                                             std::size_t timesteps,
                                             Rng& rng) const {
  std::vector<SpikeVector> out(timesteps, SpikeVector(image.size()));
  if (config_.poisson) {
    for (std::size_t t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < image.size(); ++i) {
        const double p =
            config_.max_rate * std::clamp(static_cast<double>(image[i]), 0.0, 1.0);
        if (p > 0.0 && rng.bernoulli(p)) out[t].set(i);
      }
    }
  } else {
    // Phase accumulation: pixel p spikes every 1/p steps on average with a
    // per-pixel phase offset so pixels do not all fire in step 0.
    std::vector<double> phase(image.size());
    for (std::size_t i = 0; i < image.size(); ++i)
      phase[i] = 0.5;  // common phase: deterministic and test-friendly
    for (std::size_t t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < image.size(); ++i) {
        const double p =
            config_.max_rate * std::clamp(static_cast<double>(image[i]), 0.0, 1.0);
        phase[i] += p;
        if (phase[i] >= 1.0) {
          phase[i] -= 1.0;
          out[t].set(i);
        }
      }
    }
  }
  return out;
}

}  // namespace resparc::snn
