#include "snn/encoder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resparc::snn {

RateEncoder::RateEncoder(EncoderConfig config) : config_(config) {
  require(config_.max_rate > 0.0 && config_.max_rate <= 1.0,
          "encoder max_rate must be in (0,1]");
}

std::vector<SpikeVector> RateEncoder::encode(std::span<const float> image,
                                             std::size_t timesteps,
                                             Rng& rng) {
  std::vector<SpikeVector> out;
  encode_into(image, timesteps, rng, out);
  return out;
}

void RateEncoder::encode_into(std::span<const float> image,
                              std::size_t timesteps, Rng& rng,
                              std::vector<SpikeVector>& out) {
  out.resize(timesteps);
  for (auto& v : out) v.reset(image.size());

  // Hoisted per-pixel rate: the clamp/multiply is loop-invariant across
  // timesteps.  The RNG is still drawn exactly like the historical
  // per-step loop (one draw per positive-rate pixel per step, in pixel
  // order), so spike trains are bit-for-bit unchanged.
  probability_.resize(image.size());
  for (std::size_t i = 0; i < image.size(); ++i)
    probability_[i] =
        config_.max_rate * std::clamp(static_cast<double>(image[i]), 0.0, 1.0);

  if (config_.poisson) {
    for (std::size_t t = 0; t < timesteps; ++t) {
      SpikeVector& step = out[t];
      for (std::size_t i = 0; i < image.size(); ++i) {
        const double p = probability_[i];
        if (p > 0.0 && rng.bernoulli(p)) step.set(i);
      }
    }
  } else {
    // Phase accumulation: pixel p spikes every 1/p steps on average with a
    // per-pixel phase offset so pixels do not all fire in step 0.
    phase_.assign(image.size(), 0.5);  // common phase: deterministic
    for (std::size_t t = 0; t < timesteps; ++t) {
      SpikeVector& step = out[t];
      for (std::size_t i = 0; i < image.size(); ++i) {
        phase_[i] += probability_[i];
        if (phase_[i] >= 1.0) {
          phase_[i] -= 1.0;
          step.set(i);
        }
      }
    }
  }
}

}  // namespace resparc::snn
