#include "snn/benchmarks.hpp"

#include "common/error.hpp"

namespace resparc::snn {

std::string to_string(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnistLike: return "MNIST";
    case DatasetKind::kSvhnLike: return "SVHN";
    case DatasetKind::kCifarLike: return "CIFAR-10";
  }
  return "unknown";
}

BenchmarkSpec mnist_mlp() {
  return BenchmarkSpec{
      .application = "Digit Recognition",
      .dataset = DatasetKind::kMnistLike,
      .topology = Topology("mnist-mlp", Shape3{1, 28, 28},
                           {LayerSpec::dense(800), LayerSpec::dense(784),
                            LayerSpec::dense(10)}),
      .paper_layers = 4,
      .paper_neurons = 2378,
      .paper_synapses = 1902400,
      .neurons_include_input = true,
  };
}

BenchmarkSpec svhn_mlp() {
  return BenchmarkSpec{
      .application = "House Number Recognition",
      .dataset = DatasetKind::kSvhnLike,
      // 16x16x3 = 768 downsampled input (see benchmarks.hpp header note).
      .topology = Topology("svhn-mlp", Shape3{3, 16, 16},
                           {LayerSpec::dense(1000), LayerSpec::dense(1000),
                            LayerSpec::dense(10)}),
      .paper_layers = 4,
      .paper_neurons = 2778,
      .paper_synapses = 2778000,
      .neurons_include_input = true,
  };
}

BenchmarkSpec cifar_mlp() {
  return BenchmarkSpec{
      .application = "Object Classification",
      .dataset = DatasetKind::kCifarLike,
      .topology = Topology("cifar-mlp", Shape3{3, 16, 16},
                           {LayerSpec::dense(1000), LayerSpec::dense(1000),
                            LayerSpec::dense(1000), LayerSpec::dense(10)}),
      .paper_layers = 5,
      .paper_neurons = 3778,
      .paper_synapses = 3778000,
      .neurons_include_input = true,
  };
}

BenchmarkSpec mnist_cnn() {
  return BenchmarkSpec{
      .application = "Digit Recognition",
      .dataset = DatasetKind::kMnistLike,
      .topology = Topology("mnist-cnn", Shape3{1, 28, 28},
                           {LayerSpec::conv(52, 3), LayerSpec::avg_pool(2),
                            LayerSpec::conv(64, 3), LayerSpec::avg_pool(2),
                            LayerSpec::dense(128), LayerSpec::dense(10)}),
      .paper_layers = 6,
      .paper_neurons = 66778,
      .paper_synapses = 1484288,
      .neurons_include_input = false,
  };
}

BenchmarkSpec svhn_cnn() {
  return BenchmarkSpec{
      .application = "House Number Recognition",
      .dataset = DatasetKind::kSvhnLike,
      .topology = Topology("svhn-cnn", Shape3{3, 32, 32},
                           {LayerSpec::conv(92, 3), LayerSpec::avg_pool(2),
                            LayerSpec::conv(20, 3, /*same=*/false),
                            LayerSpec::avg_pool(2),
                            LayerSpec::conv(76, 3, /*same=*/false),
                            LayerSpec::dense(10)}),
      .paper_layers = 6,
      .paper_neurons = 124570,
      .paper_synapses = 2941952,
      .neurons_include_input = false,
  };
}

BenchmarkSpec cifar_cnn() {
  return BenchmarkSpec{
      .application = "Object Classification",
      .dataset = DatasetKind::kCifarLike,
      .topology = Topology("cifar-cnn", Shape3{3, 32, 32},
                           {LayerSpec::conv(172, 3), LayerSpec::avg_pool(2),
                            LayerSpec::conv(12, 3), LayerSpec::avg_pool(2),
                            LayerSpec::conv(196, 3, /*same=*/false),
                            LayerSpec::dense(10)}),
      .paper_layers = 6,
      .paper_neurons = 231066,
      .paper_synapses = 5524480,
      .neurons_include_input = false,
  };
}

std::vector<BenchmarkSpec> paper_benchmarks() {
  return {svhn_mlp(), svhn_cnn(),  mnist_mlp(),
          mnist_cnn(), cifar_mlp(), cifar_cnn()};
}

Topology small_mlp_topology(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnistLike:
      return Topology("mnist-mlp-small", Shape3{1, 28, 28},
                      {LayerSpec::dense(128), LayerSpec::dense(64),
                       LayerSpec::dense(10)});
    case DatasetKind::kSvhnLike:
      return Topology("svhn-mlp-small", Shape3{3, 16, 16},
                      {LayerSpec::dense(128), LayerSpec::dense(64),
                       LayerSpec::dense(10)});
    case DatasetKind::kCifarLike:
      return Topology("cifar-mlp-small", Shape3{3, 16, 16},
                      {LayerSpec::dense(160), LayerSpec::dense(96),
                       LayerSpec::dense(10)});
  }
  throw ConfigError("unknown dataset kind");
}

Topology small_cnn_topology(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnistLike:
      return Topology("mnist-cnn-small", Shape3{1, 28, 28},
                      {LayerSpec::conv(8, 3), LayerSpec::avg_pool(2),
                       LayerSpec::conv(16, 3), LayerSpec::avg_pool(2),
                       LayerSpec::dense(64), LayerSpec::dense(10)});
    case DatasetKind::kSvhnLike:
      return Topology("svhn-cnn-small", Shape3{3, 32, 32},
                      {LayerSpec::conv(8, 3), LayerSpec::avg_pool(2),
                       LayerSpec::conv(16, 3), LayerSpec::avg_pool(2),
                       LayerSpec::dense(64), LayerSpec::dense(10)});
    case DatasetKind::kCifarLike:
      return Topology("cifar-cnn-small", Shape3{3, 32, 32},
                      {LayerSpec::conv(12, 3), LayerSpec::avg_pool(2),
                       LayerSpec::conv(24, 3), LayerSpec::avg_pool(2),
                       LayerSpec::dense(96), LayerSpec::dense(10)});
  }
  throw ConfigError("unknown dataset kind");
}

}  // namespace resparc::snn
