#include "snn/network.hpp"

#include <cmath>

namespace resparc::snn {

WeightShape weight_shape(const LayerInfo& li) {
  switch (li.spec.kind) {
    case LayerKind::kDense:
      return {li.fan_in, li.spec.units};
    case LayerKind::kConv:
      return {li.in_shape.c * li.spec.kernel * li.spec.kernel,
              li.spec.out_channels};
    case LayerKind::kAvgPool:
      return {0, 0};
  }
  return {0, 0};
}

Network::Network(Topology topology) : topology_(std::move(topology)) {
  params_.reserve(topology_.layer_count());
  for (const auto& li : topology_.layers()) {
    LayerParams p;
    const auto ws = weight_shape(li);
    if (ws.rows > 0) p.weights = Matrix(ws.rows, ws.cols);
    params_.push_back(std::move(p));
  }
}

float Network::max_abs_weight() const {
  float m = 0.0f;
  for (const auto& p : params_)
    for (float w : p.weights.flat()) m = std::max(m, std::abs(w));
  return m;
}

void Network::init_random(Rng& rng, float scale) {
  for (std::size_t l = 0; l < params_.size(); ++l) {
    auto& p = params_[l];
    if (p.weights.empty()) continue;
    const double stddev =
        scale / std::sqrt(static_cast<double>(p.weights.rows()));
    for (float& w : p.weights.flat())
      w = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void Network::set_uniform_threshold(double v_threshold) {
  for (auto& p : params_) p.neuron.v_threshold = v_threshold;
}

}  // namespace resparc::snn
