#include "snn/topology.hpp"

#include <sstream>

#include "common/error.hpp"

namespace resparc::snn {

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDense: return "dense";
    case LayerKind::kConv: return "conv";
    case LayerKind::kAvgPool: return "avgpool";
  }
  return "unknown";
}

LayerSpec LayerSpec::dense(std::size_t units) {
  LayerSpec s;
  s.kind = LayerKind::kDense;
  s.units = units;
  return s;
}

LayerSpec LayerSpec::conv(std::size_t out_channels, std::size_t kernel,
                          bool same_padding) {
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.out_channels = out_channels;
  s.kernel = kernel;
  s.same_padding = same_padding;
  return s;
}

LayerSpec LayerSpec::avg_pool(std::size_t pool) {
  LayerSpec s;
  s.kind = LayerKind::kAvgPool;
  s.pool = pool;
  return s;
}

namespace {

LayerInfo derive(const LayerSpec& spec, const Shape3& in) {
  LayerInfo li;
  li.spec = spec;
  li.in_shape = in;
  switch (spec.kind) {
    case LayerKind::kDense: {
      require(spec.units > 0, "dense layer needs units > 0");
      li.out_shape = Shape3{spec.units, 1, 1};
      li.fan_in = in.size();
      li.neurons = spec.units;
      li.synapses = li.neurons * li.fan_in;
      li.unique_weights = li.synapses;
      break;
    }
    case LayerKind::kConv: {
      require(spec.out_channels > 0, "conv layer needs out_channels > 0");
      require(spec.kernel > 0 && spec.kernel % 2 == 1,
              "conv kernel must be odd and positive");
      std::size_t oh, ow;
      if (spec.same_padding) {
        oh = in.h;
        ow = in.w;
      } else {
        require(in.h >= spec.kernel && in.w >= spec.kernel,
                "conv 'valid' kernel larger than input");
        oh = in.h - spec.kernel + 1;
        ow = in.w - spec.kernel + 1;
      }
      li.out_shape = Shape3{spec.out_channels, oh, ow};
      li.fan_in = in.c * spec.kernel * spec.kernel;
      li.neurons = li.out_shape.size();
      li.synapses = li.neurons * li.fan_in;
      li.unique_weights = spec.out_channels * li.fan_in;
      break;
    }
    case LayerKind::kAvgPool: {
      require(spec.pool > 1, "pool window must be > 1");
      require(in.h % spec.pool == 0 && in.w % spec.pool == 0,
              "pool window must divide the input size");
      li.out_shape = Shape3{in.c, in.h / spec.pool, in.w / spec.pool};
      li.fan_in = spec.pool * spec.pool;
      li.neurons = li.out_shape.size();
      li.synapses = li.neurons * li.fan_in;
      li.unique_weights = 0;  // fixed averaging weights, not trainable
      break;
    }
  }
  return li;
}

}  // namespace

Topology::Topology(std::string name, Shape3 input, std::vector<LayerSpec> layers)
    : name_(std::move(name)), input_(input) {
  require(input_.size() > 0, "topology input shape must be non-empty");
  require(!layers.empty(), "topology needs at least one layer");
  Shape3 current = input_;
  info_.reserve(layers.size());
  for (const auto& spec : layers) {
    info_.push_back(derive(spec, current));
    current = info_.back().out_shape;
  }
}

std::size_t Topology::neuron_count(bool include_input) const {
  std::size_t n = include_input ? input_.size() : 0;
  for (const auto& li : info_) n += li.neurons;
  return n;
}

std::size_t Topology::synapse_count() const {
  std::size_t n = 0;
  for (const auto& li : info_) n += li.synapses;
  return n;
}

std::size_t Topology::unique_weight_count() const {
  std::size_t n = 0;
  for (const auto& li : info_) n += li.unique_weights;
  return n;
}

bool Topology::is_convolutional() const {
  for (const auto& li : info_)
    if (li.spec.kind == LayerKind::kConv) return true;
  return false;
}

std::size_t Topology::output_count() const { return info_.back().neurons; }

std::string Topology::summary() const {
  std::ostringstream os;
  if (input_.c == 1 && input_.h == 1) {
    os << input_.w;
  } else if (input_.c == 1) {
    os << input_.h << "x" << input_.w;
  } else {
    os << input_.h << "x" << input_.w << "x" << input_.c;
  }
  for (const auto& li : info_) {
    os << "-";
    switch (li.spec.kind) {
      case LayerKind::kDense: os << li.spec.units; break;
      case LayerKind::kConv: os << li.spec.out_channels << "c" << li.spec.kernel; break;
      case LayerKind::kAvgPool: os << "p" << li.spec.pool; break;
    }
  }
  return os.str();
}

}  // namespace resparc::snn
