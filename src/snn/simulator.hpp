// Event-driven functional SNN simulator.
//
// Executes a Network for T timesteps on one encoded input and records the
// full spike trace.  Propagation is input-driven ("event-driven"): only
// spiking neurons scatter their fan-out, mirroring both the biological
// motivation and the architecture's zero-skipping (section 3.2) — and
// making paper-scale networks simulable on a laptop.
//
// The simulator is the single source of spike traces for BOTH architecture
// models (RESPARC and the CMOS baseline), which guarantees the two sides of
// every comparison saw identical workloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "snn/encoder.hpp"
#include "snn/execution.hpp"
#include "snn/network.hpp"
#include "snn/trace.hpp"

namespace resparc {
class ThreadPool;
}

namespace resparc::snn {

class SparseEngine;

/// Simulation configuration.
struct SimConfig {
  std::size_t timesteps = 32;  ///< presentation length per classification
  EncoderConfig encoder{};     ///< input spike encoding
  bool record_trace = true;    ///< keep the packed trace (off for accuracy-only runs)
  ExecutionMode mode = ExecutionMode::kDense;  ///< execution engine; all
                                               ///< modes are bit-for-bit
                                               ///< identical (test-enforced)
};

/// Result of one presentation.
struct SimResult {
  SpikeTrace trace;  ///< empty when record_trace is false
  std::vector<std::size_t> output_spike_counts;  ///< per output neuron
  std::size_t predicted_class = 0;  ///< argmax of output spike counts
  std::size_t total_spikes = 0;     ///< all layers, whole presentation
};

/// Runs a Network presentation-by-presentation.
class Simulator {
 public:
  /// The network must outlive the simulator.
  Simulator(const Network& net, SimConfig config);
  ~Simulator();

  const SimConfig& config() const { return config_; }

  /// Presents one image (flat CHW intensities in [0,1]) and returns spikes.
  SimResult run(std::span<const float> image, Rng& rng);

  /// Allocation-free steady-state form of run(): refills `out`, reusing
  /// its buffers.  A Simulator reused across presentations (with either
  /// overload) produces bit-for-bit the trace a freshly constructed one
  /// would; after a warm-up presentation, a record_trace=false run
  /// performs zero heap allocations (tests/test_allocation.cpp).
  void run(std::span<const float> image, Rng& rng, SimResult& out);

  /// Enables within-trace parallelism: layers with at least
  /// `min_outputs` neurons spread their event scatter over `parts`
  /// output partitions on `pool` (0 = pool width).  Results are
  /// bit-for-bit identical with any pool/parts value — each output
  /// element is written by exactly one partition in the serial order
  /// (docs/performance.md).  Pass nullptr to disable (the default).
  void set_pool(ThreadPool* pool, std::size_t parts = 0,
                std::size_t min_outputs = kMinPooledOutputs);

  /// Default set_pool() layer-size gate: paper-scale CNN feature maps
  /// qualify, MLP layers (where one presentation is already cheap) don't.
  static constexpr std::size_t kMinPooledOutputs = 8192;

  /// Collects per-neuron per-step input currents arriving at `layer` over
  /// one presentation (used by threshold calibration).  Layers after
  /// `layer` are not executed.
  void observe_currents(std::span<const float> image, Rng& rng,
                        std::size_t layer, std::vector<float>& samples_out);

 private:
  /// Scatters the active list of layer l's input into `current` —
  /// partitioned over the pool when enabled, serial otherwise.
  void accumulate_active(std::size_t l, std::span<const std::uint32_t> active,
                         std::span<float> current);

  /// Packed-word twin of accumulate_active: scatters straight from the
  /// input SpikeVector's words (no AER list), same pool partitioning.
  void accumulate_packed(std::size_t l, const SpikeVector& in,
                         std::span<float> current);

  /// Builds (first run) or clears (reuse) the dense per-layer state.
  void ensure_dense_state();

  /// run() body for ExecutionMode::kDense (the historical path).
  void run_dense(std::span<const float> image, Rng& rng, SimResult& out);
  /// run() body for ExecutionMode::kSparse (snn/sparse_engine.hpp).
  void run_sparse(std::span<const float> image, Rng& rng, SimResult& out);
  /// run() body for ExecutionMode::kPacked: dense stepping entirely on
  /// 64-bit spike words (packed scatter in, IfPopulation::step_packed
  /// out) — no per-step AER list or byte buffer.  Bit-for-bit identical
  /// traces to run_dense (tests/test_differential.cpp).
  void run_packed(std::span<const float> image, Rng& rng, SimResult& out);

  const Network& net_;
  SimConfig config_;
  RateEncoder encoder_;

  // Within-trace parallelism (set_pool).
  ThreadPool* pool_ = nullptr;
  std::size_t pool_parts_ = 1;
  std::size_t pool_min_outputs_ = kMinPooledOutputs;
  /// Pre-built pool job reading pool_job_*; reusing one std::function
  /// keeps the pooled steady state allocation-free.
  std::function<void(std::size_t, std::size_t)> pool_fn_;
  /// Packed twin of pool_fn_, scattering from pool_job_packed_ instead of
  /// the index list.
  std::function<void(std::size_t, std::size_t)> pool_packed_fn_;
  std::size_t pool_job_layer_ = 0;                 ///< layer being scattered
  std::span<const std::uint32_t> pool_job_active_; ///< its input events
  const SpikeVector* pool_job_packed_ = nullptr;   ///< packed-mode input
  std::span<float> pool_job_current_;              ///< its output buffer

  // Per-presentation scratch, hoisted so the steady state is
  // allocation-free (buffers only ever grow).
  std::vector<IfPopulation> pops_;                  ///< dense-path membranes
  std::vector<std::vector<float>> currents_;        ///< per-layer drive
  std::vector<std::vector<std::uint8_t>> spike_bytes_;  ///< dense step out
  std::vector<SpikeVector> prev_holder_;            ///< packed spikes
  std::vector<SpikeVector> input_spikes_;           ///< encoded input
  std::vector<std::uint32_t> active_scratch_;       ///< event list per layer
  std::unique_ptr<SparseEngine> sparse_;            ///< sparse-mode engine
  std::vector<std::uint32_t> active_in_;            ///< sparse AER buffers
  std::vector<std::uint32_t> active_out_;
};

/// Sets each layer's threshold to the (1 - target_activity) quantile of its
/// observed positive input currents, front to back, so every layer fires at
/// roughly `target_activity` — the regime the paper's energy numbers assume.
/// `images` are flat intensity vectors.  Returns the chosen thresholds.
std::vector<double> calibrate_thresholds(Network& net,
                                         std::span<const std::vector<float>> images,
                                         const SimConfig& config, Rng& rng,
                                         double target_activity);

/// Fraction of correct argmax classifications over the given image/label set.
double evaluate_accuracy(const Network& net, const SimConfig& config,
                         std::span<const std::vector<float>> images,
                         std::span<const int> labels, Rng& rng);

}  // namespace resparc::snn
