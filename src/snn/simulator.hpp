// Event-driven functional SNN simulator.
//
// Executes a Network for T timesteps on one encoded input and records the
// full spike trace.  Propagation is input-driven ("event-driven"): only
// spiking neurons scatter their fan-out, mirroring both the biological
// motivation and the architecture's zero-skipping (section 3.2) — and
// making paper-scale networks simulable on a laptop.
//
// The simulator is the single source of spike traces for BOTH architecture
// models (RESPARC and the CMOS baseline), which guarantees the two sides of
// every comparison saw identical workloads.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "snn/encoder.hpp"
#include "snn/execution.hpp"
#include "snn/network.hpp"
#include "snn/trace.hpp"

namespace resparc::snn {

/// Simulation configuration.
struct SimConfig {
  std::size_t timesteps = 32;  ///< presentation length per classification
  EncoderConfig encoder{};     ///< input spike encoding
  bool record_trace = true;    ///< keep the packed trace (off for accuracy-only runs)
  ExecutionMode mode = ExecutionMode::kDense;  ///< execution engine; the two
                                               ///< modes are bit-for-bit
                                               ///< identical (test-enforced)
};

/// Result of one presentation.
struct SimResult {
  SpikeTrace trace;  ///< empty when record_trace is false
  std::vector<std::size_t> output_spike_counts;  ///< per output neuron
  std::size_t predicted_class = 0;  ///< argmax of output spike counts
  std::size_t total_spikes = 0;     ///< all layers, whole presentation
};

/// Runs a Network presentation-by-presentation.
class Simulator {
 public:
  /// The network must outlive the simulator.
  Simulator(const Network& net, SimConfig config);

  const SimConfig& config() const { return config_; }

  /// Presents one image (flat CHW intensities in [0,1]) and returns spikes.
  SimResult run(std::span<const float> image, Rng& rng);

  /// Collects per-neuron per-step input currents arriving at `layer` over
  /// one presentation (used by threshold calibration).  Layers after
  /// `layer` are not executed.
  void observe_currents(std::span<const float> image, Rng& rng,
                        std::size_t layer, std::vector<float>& samples_out);

 private:
  /// Computes input current into layer l from the previous layer's spikes.
  void accumulate_current(std::size_t l, const SpikeVector& prev_spikes,
                          std::span<float> current_out) const;

  /// run() body for ExecutionMode::kDense (the historical path).
  SimResult run_dense(std::span<const float> image, Rng& rng);
  /// run() body for ExecutionMode::kSparse (snn/sparse_engine.hpp).
  SimResult run_sparse(std::span<const float> image, Rng& rng);

  const Network& net_;
  SimConfig config_;
  RateEncoder encoder_;
};

/// Sets each layer's threshold to the (1 - target_activity) quantile of its
/// observed positive input currents, front to back, so every layer fires at
/// roughly `target_activity` — the regime the paper's energy numbers assume.
/// `images` are flat intensity vectors.  Returns the chosen thresholds.
std::vector<double> calibrate_thresholds(Network& net,
                                         std::span<const std::vector<float>> images,
                                         const SimConfig& config, Rng& rng,
                                         double target_activity);

/// Fraction of correct argmax classifications over the given image/label set.
double evaluate_accuracy(const Network& net, const SimConfig& config,
                         std::span<const std::vector<float>> images,
                         std::span<const int> labels, Rng& rng);

}  // namespace resparc::snn
