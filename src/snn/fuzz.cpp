#include "snn/fuzz.hpp"

#include <sstream>

#include "common/rng.hpp"

namespace resparc::snn {

namespace {

/// Divisors > 1 of both h and w that a pool window may use.
std::vector<std::size_t> pool_choices(std::size_t h, std::size_t w) {
  std::vector<std::size_t> out;
  for (std::size_t p = 2; p <= h && p <= w; ++p)
    if (h % p == 0 && w % p == 0) out.push_back(p);
  return out;
}

}  // namespace

FuzzCase make_fuzz_case(std::uint64_t seed) {
  Rng rng(seed ^ 0xf0cca5eba5e0f22ull);
  // Input: small multi-channel planes keep conv/pool legal and every
  // engine's cost low enough for hundreds of cases per ctest run.
  const std::size_t c = static_cast<std::size_t>(rng.range(1, 3));
  const std::size_t h = static_cast<std::size_t>(rng.range(3, 8));
  const std::size_t w = h;  // square keeps pool divisibility simple
  Shape3 shape{c, h, w};

  std::vector<LayerSpec> layers;
  // Spatial phase: conv / pool while the plane is big enough, then an
  // all-dense tail (matching how real stacks and the mapper expect it).
  std::size_t cur_h = h;
  std::size_t cur_w = w;
  std::size_t cur_c = c;
  const std::size_t spatial = static_cast<std::size_t>(rng.range(0, 2));
  for (std::size_t i = 0; i < spatial; ++i) {
    const std::vector<std::size_t> pools = pool_choices(cur_h, cur_w);
    const bool try_pool = !pools.empty() && rng.bernoulli(0.4);
    if (try_pool) {
      const std::size_t p = pools[rng.below(pools.size())];
      layers.push_back(LayerSpec::avg_pool(p));
      cur_h /= p;
      cur_w /= p;
    } else {
      // Odd kernel no larger than the plane so 'valid' stays legal too.
      std::size_t k = 1 + 2 * static_cast<std::size_t>(rng.range(0, 2));
      while (k > cur_h || k > cur_w) k -= 2;
      const bool same = rng.bernoulli(0.5);
      const std::size_t oc = static_cast<std::size_t>(rng.range(1, 4));
      layers.push_back(LayerSpec::conv(oc, k, same));
      if (!same) {
        cur_h = cur_h - k + 1;
        cur_w = cur_w - k + 1;
      }
      cur_c = oc;
    }
    if (cur_h < 2 || cur_w < 2) break;
  }
  if (rng.bernoulli(0.5))
    layers.push_back(
        LayerSpec::dense(static_cast<std::size_t>(rng.range(4, 40))));
  const std::size_t classes = static_cast<std::size_t>(rng.range(2, 10));
  layers.push_back(LayerSpec::dense(classes));

  FuzzCase fc{Topology("fuzz-" + std::to_string(seed), shape,
                       std::move(layers))};
  fc.seed = seed;
  fc.timesteps = static_cast<std::size_t>(rng.range(4, 10));
  const std::size_t mca_choices[] = {64, 128, 256};
  fc.mca_size = mca_choices[rng.below(3)];
  fc.encoder.max_rate = rng.uniform(0.2, 1.0);
  fc.encoder.poisson = rng.bernoulli(0.85);
  for (const LayerInfo& li : fc.topology.layers())
    fc.thresholds.push_back(li.spec.kind == LayerKind::kAvgPool
                                ? 0.5
                                : rng.uniform(0.4, 2.5));
  // ~10% of cases exercise the leak regime (the sparse engine's dense
  // fallback and step_packed's leak branch).
  if (rng.bernoulli(0.1)) fc.leak = rng.uniform(0.05, 0.3);
  fc.subtractive = rng.bernoulli(0.8);
  fc.init_scale = static_cast<float>(rng.uniform(0.5, 2.0));
  fc.image.resize(fc.topology.input_shape().size());
  for (float& px : fc.image) px = static_cast<float>(rng.uniform());
  return fc;
}

Network make_fuzz_network(const FuzzCase& c) {
  Network net(c.topology);
  Rng rng(c.seed ^ 0x5eedb0b5ull);
  net.init_random(rng, c.init_scale);
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    IfParams& p = net.layer(l).neuron;
    p.v_threshold = c.thresholds[l];
    p.subtractive_reset = c.subtractive;
    if (c.topology.layers()[l].spec.kind != LayerKind::kAvgPool)
      p.leak_per_step = c.leak;
  }
  return net;
}

std::string FuzzCase::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << ' ' << topology.summary() << " T=" << timesteps
     << " mca=" << mca_size << " rate=" << encoder.max_rate
     << (encoder.poisson ? " poisson" : " uniform");
  if (leak > 0.0) os << " leak=" << leak;
  if (!subtractive) os << " hard-reset";
  return os.str();
}

}  // namespace resparc::snn
