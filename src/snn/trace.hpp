// Spike traces: the packed record of which neuron spiked when.
//
// A SpikeTrace is the contract between the functional simulator and the two
// architecture executors (RESPARC and the CMOS baseline): the executors
// replay the trace to count hardware events.  Spikes are bit-packed into
// 64-bit words — deliberately the same width as the architecture's flit —
// so zero-packet statistics (the event-driven lever of section 3.2) fall
// out of the representation for free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace resparc::snn {

/// One layer's spikes for one timestep, bit-packed little-endian
/// (bit i of word w = neuron w*64+i).
class SpikeVector {
 public:
  SpikeVector() = default;
  explicit SpikeVector(std::size_t neurons)
      : neurons_(neurons), words_((neurons + 63) / 64, 0) {}

  /// Builds from a 0/1 byte vector.
  static SpikeVector from_bytes(std::span<const std::uint8_t> bytes);

  /// Re-sizes to `neurons` and clears every bit, reusing the word buffer
  /// when it is already large enough — the allocation-free steady-state
  /// form of `*this = SpikeVector(neurons)`.
  void reset(std::size_t neurons) {
    neurons_ = neurons;
    words_.assign((neurons + 63) / 64, 0);
  }

  /// Re-fills from a 0/1 byte vector, reusing the word buffer like
  /// reset() — the allocation-free steady-state form of from_bytes().
  void assign_bytes(std::span<const std::uint8_t> bytes) {
    reset(bytes.size());
    for (std::size_t i = 0; i < bytes.size(); ++i)
      if (bytes[i]) set(i);
  }

  std::size_t size() const { return neurons_; }
  std::size_t word_count() const { return words_.size(); }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void clear(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Raw packed words (the trailing word's unused bits are zero).
  std::span<const std::uint64_t> words() const { return words_; }

  /// Overwrites packed word `w` (bits [w*64, w*64+64) of the vector) in
  /// one store — the word-granular producer of the packed datapath
  /// (docs/performance.md).  Bits at and above size() are masked off
  /// before the store, so a sloppy tail word can never plant stale bits
  /// that would leak into count()/append_active()
  /// (tests/test_trace.cpp enforces the tail invariant).
  void set_word(std::size_t w, std::uint64_t bits) {
    const std::size_t valid = neurons_ - (w << 6);  // bits in use in word w
    if (valid < 64) bits &= (std::uint64_t{1} << valid) - 1;
    words_[w] = bits;
  }

  /// 64-bit window starting at bit `begin`: bit j of the result is bit
  /// `begin + j` of the vector; bits past size() read as zero.  The
  /// unaligned word extraction the packed MCA read path uses (crossbar
  /// slices start at arbitrary input offsets).
  std::uint64_t window(std::size_t begin) const {
    const std::size_t w = begin >> 6;
    if (w >= words_.size()) return 0;
    const std::size_t s = begin & 63;
    std::uint64_t out = words_[w] >> s;
    if (s != 0 && w + 1 < words_.size()) out |= words_[w + 1] << (64 - s);
    return out;
  }

  /// Number of set bits.
  std::size_t count() const;

  /// Popcount over the packed words — identical to count(); the name the
  /// packed-datapath call sites use (docs/performance.md).
  std::size_t active_count() const { return count(); }

  /// True when no neuron spiked.
  bool none() const;

  /// Number of set bits within [begin, end) — the "active rows" of an MCA
  /// slice.  end is clamped to size().
  std::size_t count_range(std::size_t begin, std::size_t end) const;

  /// True when no bit is set within [begin, end).
  bool none_in_range(std::size_t begin, std::size_t end) const;

  /// Appends the index of every set bit to `out` in ascending order — the
  /// AER-style active-event list consumed by the sparse execution engine
  /// (snn/sparse_engine.hpp).  Zero words are skipped wholesale, so the
  /// cost is O(words + spikes) rather than O(neurons).
  void append_active(std::vector<std::uint32_t>& out) const;

 private:
  std::size_t neurons_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Spikes of every layer (index 0 = input layer) over all timesteps of one
/// input presentation: trace[layer][t].
struct SpikeTrace {
  /// layers[l][t]: spikes of layer l (l = 0 is the encoded input) at step t.
  std::vector<std::vector<SpikeVector>> layers;

  std::size_t timesteps() const {
    return layers.empty() ? 0 : layers.front().size();
  }
  std::size_t layer_count() const { return layers.size(); }

  /// Total spikes emitted by layer `l` over the presentation.
  std::size_t layer_spike_count(std::size_t l) const;

  /// Mean fraction of neurons of layer `l` spiking per timestep.
  double layer_activity(std::size_t l) const;
};

}  // namespace resparc::snn
