// Integrate-and-Fire neuron model (paper section 2.1, Fig. 1(c)).
//
// The neuron accumulates weighted input current onto its membrane potential
// and emits a spike when the potential crosses the threshold.  Reset is by
// threshold subtraction ("soft reset"), the variant the Diehl et al.
// conversion algorithm assumes, because it preserves rate proportionality
// across layers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snn/trace.hpp"

namespace resparc::snn {

/// Parameters of one layer's IF population.
struct IfParams {
  double v_threshold = 1.0;  ///< firing threshold
  double v_reset = 0.0;      ///< floor used when subtractive reset undershoots
  bool subtractive_reset = true;  ///< subtract vth on fire (vs reset to v_reset)
  double leak_per_step = 0.0;     ///< optional leak subtracted every step (>= 0)
};

/// State and update rule of a population of IF neurons.
class IfPopulation {
 public:
  IfPopulation(std::size_t size, IfParams params)
      : params_(params), membrane_(size, 0.0f) {}

  std::size_t size() const { return membrane_.size(); }
  const IfParams& params() const { return params_; }

  /// Integrates `current` (one value per neuron) and writes 0/1 spikes.
  /// Returns the number of neurons that fired.
  std::size_t step(std::span<const float> current,
                   std::span<std::uint8_t> spikes_out);

  /// Packed variant of step(): identical membrane update and firing
  /// decisions, but spikes go straight into `out`'s 64-bit words (one
  /// SpikeVector::set_word per 64 neurons) instead of a byte buffer —
  /// the producer side of the packed datapath (docs/performance.md).
  /// `out` must be sized to the population; every word is fully
  /// overwritten, so no stale bit survives from a previous step.
  /// Returns the number of neurons that fired.  Bit-for-bit the same
  /// spikes and membranes as step() (tests/test_differential.cpp).
  std::size_t step_packed(std::span<const float> current, SpikeVector& out);

  /// Sparse variant of step(): integrates `current` for just the neurons
  /// named in `indices` (which must be duplicate-free) and appends every
  /// firing index to `fired_out`.  A stepped neuron whose post-step
  /// membrane still sits at or above threshold is appended to `hot_out`:
  /// under subtractive reset it fires again next step even with zero
  /// input, so the sparse engine must re-step it.  Bit-for-bit equivalent
  /// to step() only when leak_per_step == 0 and v_threshold > 0 — the
  /// regime where un-stepped silent neurons are provably inert; callers
  /// (snn/sparse_engine.cpp) check that and fall back to step() otherwise.
  void step_at(std::span<const std::uint32_t> indices,
               std::span<const float> current,
               std::vector<std::uint32_t>& fired_out,
               std::vector<std::uint32_t>& hot_out);

  /// Resets all membranes to v_reset (between input presentations).
  void reset();

  /// Zeroes all membranes — the state a freshly constructed population
  /// starts from.  Reusing a population across presentations with
  /// clear() is bit-for-bit identical to constructing a new one (the
  /// allocation-free steady state relies on this).
  void clear() { membrane_.assign(membrane_.size(), 0.0f); }

  /// Membrane potential of neuron `i` (for tests and the examples).
  float membrane(std::size_t i) const { return membrane_[i]; }

 private:
  IfParams params_;
  std::vector<float> membrane_;
};

}  // namespace resparc::snn
