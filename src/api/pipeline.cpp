#include "api/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "snn/quantize.hpp"
#include "snn/stats.hpp"
#include "train/convert.hpp"

namespace resparc::api {

std::uint64_t presentation_seed(std::uint64_t seed, std::size_t index) {
  // SplitMix64 over the (seed, index) pair: decorrelated per-presentation
  // streams that do not depend on simulation order or thread schedule.
  // Delegates to the shared stream discipline in common/rng.hpp
  // (bit-identical to the historical inline expansion).
  return stream_seed(seed, static_cast<std::uint64_t>(index));
}

// ------------------------------------------------------------- comparison --

const ComparisonEntry* ComparisonReport::find(const std::string& backend) const {
  for (const auto& entry : entries)
    if (entry.backend == backend) return &entry;
  return nullptr;
}

void ComparisonReport::print(std::ostream& os) const {
  Table t({"Backend", "Energy/class (uJ)", "Latency (us)", "Throughput (1/s)",
           "Energy gain", "Speedup"});
  for (const auto& e : entries) {
    t.add_row({e.report.backend, Table::num(e.report.energy_pj * 1e-6, 4),
               Table::num(e.report.latency_ns * 1e-3, 3),
               Table::num(e.report.throughput_hz, 0),
               Table::factor(e.energy_gain, 1), Table::factor(e.speedup, 1)});
  }
  t.print(os);
}

// --------------------------------------------------------------- pipeline --

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {}

Pipeline& Pipeline::options(PipelineOptions options) {
  options_ = std::move(options);
  return *this;
}

Pipeline& Pipeline::benchmark(const snn::BenchmarkSpec& spec) {
  kind_ = spec.dataset;
  topology_ = spec.topology;
  network_.reset();
  return *this;
}

Pipeline& Pipeline::dataset(snn::DatasetKind kind) {
  kind_ = kind;
  return *this;
}

Pipeline& Pipeline::topology(snn::Topology topology) {
  topology_ = std::move(topology);
  network_.reset();
  return *this;
}

Pipeline& Pipeline::network(snn::Network network) {
  topology_ = network.topology();
  network_ = std::move(network);
  return *this;
}

data::Dataset Pipeline::synthesize(std::size_t count) const {
  require(kind_.has_value(), "pipeline: no dataset selected");
  require(topology_.has_value(), "pipeline: no topology selected");
  const data::SyntheticOptions opt{.count = count,
                                   .seed = options_.seed,
                                   .noise = options_.noise,
                                   .jitter_pixels = options_.jitter_pixels};
  // The SVHN/CIFAR MLP benchmarks consume the 16x16x3 downsampled input
  // (docs/architecture.md); any topology whose input matches the family's
  // native shape gets the native images.  A one-image probe picks the
  // variant without synthesising the full native set twice.
  const std::size_t want = topology_->input_shape().size();
  data::SyntheticOptions probe = opt;
  probe.count = 1;
  if (data::make_synthetic(*kind_, probe).shape.size() == want)
    return data::make_synthetic(*kind_, opt);
  data::Dataset down = data::make_synthetic_downsampled(*kind_, opt);
  require(down.shape.size() == want,
          "pipeline: topology input (" + std::to_string(want) +
              ") matches neither the native nor the downsampled shape of " +
              snn::to_string(*kind_));
  return down;
}

Workload Pipeline::run() {
  require(topology_.has_value() || network_.has_value(),
          "pipeline: no benchmark, topology or network selected");

  std::vector<snn::SpikeTrace> traces;
  std::vector<std::size_t> predicted;
  data::Dataset test;
  std::optional<train::TrainReport> training;
  double ann_test_accuracy = 0.0;

  // -- network construction -------------------------------------------------
  std::optional<snn::Network> net;
  if (options_.train) {
    require(!network_.has_value(),
            "pipeline: train and a caller-provided network are exclusive");
    const data::Dataset all =
        synthesize(options_.train_images + options_.images);
    const data::Dataset train_set = all.take(options_.train_images);
    test = all.drop(options_.train_images);

    train::Ann ann(*topology_);
    Rng rng(options_.seed + 1);
    ann.init_he(rng);
    training = train::train(ann, train_set, options_.train_config, rng);
    ann_test_accuracy = train::ann_accuracy(ann, test);
    net = train::convert_to_snn(ann, train_set.images);
    if (options_.weight_bits > 0)
      snn::quantize_network(*net, options_.weight_bits);
  } else if (network_.has_value()) {
    // Caller-prepared network: used as-is (already initialised/calibrated).
    // Copied, not consumed — run() must stay repeatable.
    test = synthesize(options_.images);
    net = *network_;
  } else {
    const data::Dataset ds =
        synthesize(std::max(options_.images, options_.calibration_images));
    test = ds.take(options_.images);
    net.emplace(*topology_);
    Rng rng(options_.seed + 1);
    net->init_random(rng, options_.init_scale);
    if (options_.weight_bits > 0)
      snn::quantize_network(*net, options_.weight_bits);
    snn::SimConfig calib_cfg;
    calib_cfg.timesteps = options_.timesteps;
    calib_cfg.encoder = options_.encoder;
    const std::size_t calib =
        std::min(options_.calibration_images, ds.images.size());
    if (calib > 0) {
      snn::calibrate_thresholds(
          *net,
          std::vector<std::vector<float>>(
              ds.images.begin(),
              ds.images.begin() + static_cast<std::ptrdiff_t>(calib)),
          calib_cfg, rng, options_.target_activity);
    }
  }

  // -- batched, deterministic trace simulation ------------------------------
  const std::size_t n = std::min(options_.images, test.images.size());
  require(n > 0, "pipeline: no images to present");
  if (options_.record_traces) {
    snn::SimConfig cfg;
    cfg.timesteps = options_.timesteps;
    cfg.encoder = options_.encoder;
    cfg.record_trace = true;
    cfg.mode = options_.execution;
    traces.resize(n);
    predicted.resize(n);
    const snn::Network& net_ref = *net;

    // Presentations fan out over the persistent pool with one REUSED
    // simulator per worker (a reused simulator is bit-for-bit a fresh
    // one, so results stay thread-count invariant).  When a single
    // presentation dominates latency (n == 1, the paper-scale CNN case)
    // the requested parallelism goes INSIDE the trace instead: the
    // simulator partitions each big layer's scatter over the pool.
    ThreadPool& pool = ThreadPool::global();
    const std::size_t requested = resolve_threads(options_.threads, n);
    std::vector<std::unique_ptr<snn::Simulator>> sims(pool.width());
    const auto present = [&](std::size_t i, std::size_t worker) {
      auto& sim = sims[worker];
      if (!sim) {
        sim = std::make_unique<snn::Simulator>(net_ref, cfg);
        if (n == 1 && options_.threads != 1)
          sim->set_pool(&pool, resolve_threads(options_.threads,
                                               pool.width()));
      }
      Rng rng(presentation_seed(options_.seed, i));
      snn::SimResult r = sim->run(test.images[i], rng);
      traces[i] = std::move(r.trace);
      predicted[i] = r.predicted_class;
    };
    if (requested <= 1)
      for (std::size_t i = 0; i < n; ++i) present(i, 0);
    else
      pool.run_indexed(n, requested, present);
  }

  // -- assemble -------------------------------------------------------------
  Workload w{std::move(*net)};
  w.traces = std::move(traces);
  w.predicted = std::move(predicted);
  w.labels.assign(test.labels.begin(),
                  test.labels.begin() + static_cast<std::ptrdiff_t>(n));
  w.test = std::move(test);
  w.training = std::move(training);
  w.ann_test_accuracy = ann_test_accuracy;

  if (!w.traces.empty()) {
    double activity = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      activity += snn::mean_activity(w.traces[i]);
      w.activity.add(w.traces[i]);
      if (static_cast<int>(w.predicted[i]) == w.labels[i]) ++correct;
    }
    w.mean_activity = activity / static_cast<double>(n);
    w.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  }
  return w;
}

// ------------------------------------------------------- batched execution --

namespace {

/// Reduces per-trace reports in presentation order, reproducing the exact
/// accumulate-then-divide arithmetic of the legacy sequential run_all().
ExecutionReport merge_reports(std::vector<ExecutionReport>& parts) {
  bool all_resparc = true;
  bool all_cmos = true;
  for (const auto& p : parts) {
    all_resparc = all_resparc && p.resparc.has_value();
    all_cmos = all_cmos && p.cmos.has_value();
  }

  if (all_resparc) {
    core::RunReport total;
    core::EventStream stream;
    bool all_streams = true;
    for (const auto& p : parts) {
      total.energy += p.resparc->energy;
      total.events += p.resparc->events;
      total.perf += p.resparc->perf;
      total.noc += p.resparc->noc;
      total.classifications += p.resparc->classifications;
      if (p.events.has_value())
        stream.merge(*p.events);
      else
        all_streams = false;
    }
    const double n = static_cast<double>(total.classifications);
    total.energy /= n;
    total.perf /= n;
    ExecutionReport merged =
        to_execution_report(total, parts.front().backend);
    // Sparse-mode parts each carry a per-presentation stream; the merged
    // report sums them, matching the sequential chip_.execute(traces).
    if (all_streams) merged.events = std::move(stream);
    return merged;
  }

  if (all_cmos) {
    cmos::CmosReport total;
    for (const auto& p : parts) {
      total.energy += p.cmos->energy;
      total.events += p.cmos->events;
      total.cycles += p.cmos->cycles;
      total.clock_mhz = p.cmos->clock_mhz;
      total.classifications += p.cmos->classifications;
    }
    const double n = static_cast<double>(total.classifications);
    total.energy /= n;
    total.cycles /= n;
    return to_execution_report(total, parts.front().backend);
  }

  // Third-party backend without a native report: classification-weighted
  // means of the unified fields.  A backend that never sets
  // classifications falls back to equal weights instead of dividing by
  // zero — the batched result must stay finite for any thread count.
  ExecutionReport out;
  out.backend = parts.front().backend;
  double n = 0.0;
  for (const auto& p : parts) n += static_cast<double>(p.classifications);
  for (const auto& p : parts) {
    const double w = n > 0.0
                         ? static_cast<double>(p.classifications) / n
                         : 1.0 / static_cast<double>(parts.size());
    out.classifications += p.classifications;
    out.energy_pj += w * p.energy_pj;
    out.latency_ns += w * p.latency_ns;
    for (const auto& [key, value] : p.energy_breakdown_pj) {
      auto it = std::find_if(out.energy_breakdown_pj.begin(),
                             out.energy_breakdown_pj.end(),
                             [&](const auto& kv) { return kv.first == key; });
      if (it == out.energy_breakdown_pj.end())
        out.energy_breakdown_pj.emplace_back(key, w * value);
      else
        it->second += w * value;
    }
  }
  out.throughput_hz = out.latency_ns > 0.0 ? 1e9 / out.latency_ns : 0.0;
  return out;
}

}  // namespace

ExecutionReport Pipeline::execute(const Accelerator& accelerator,
                                  std::span<const snn::SpikeTrace> traces,
                                  std::size_t threads) {
  require(!traces.empty(), "pipeline: no traces to execute");
  require(accelerator.loaded(), "pipeline: accelerator has no network loaded");
  if (resolve_threads(threads, traces.size()) <= 1)
    return accelerator.execute(traces);
  std::vector<ExecutionReport> parts;
  execute_each(accelerator, traces, parts, threads);
  return merge_reports(parts);
}

void Pipeline::execute_each(const Accelerator& accelerator,
                            std::span<const snn::SpikeTrace> traces,
                            std::vector<ExecutionReport>& out,
                            std::size_t threads) {
  require(accelerator.loaded(), "pipeline: accelerator has no network loaded");
  out.clear();
  if (traces.empty()) return;
  const std::size_t workers = resolve_threads(threads, traces.size());
  if (workers <= 1) {
    // One call covers the whole span so batched backends (packed mode)
    // replay every trace in a single route-table pass.
    accelerator.execute_each(traces, out);
    return;
  }
  // Contiguous per-worker chunks, each replayed through the accelerator's
  // execute_each: a batched backend amortizes within every chunk, and
  // stitching chunks back in index order keeps out[i] == execute(traces[i])
  // for any thread count (each lane's report is bit-for-bit the solo one).
  out.resize(traces.size());
  std::vector<std::vector<ExecutionReport>> chunks(workers);
  const std::size_t n = traces.size();
  parallel_for(workers, threads, [&](std::size_t c) {
    const std::size_t begin = c * n / workers;
    const std::size_t end = (c + 1) * n / workers;
    if (end > begin)
      accelerator.execute_each(traces.subspan(begin, end - begin), chunks[c]);
  });
  for (std::size_t c = 0; c < workers; ++c) {
    const std::size_t begin = c * n / workers;
    for (std::size_t i = 0; i < chunks[c].size(); ++i)
      out[begin + i] = std::move(chunks[c][i]);
  }
}

ComparisonReport Pipeline::compare(const snn::Topology& topology,
                                   std::span<const snn::SpikeTrace> traces,
                                   std::span<const std::string> backends,
                                   const BackendOptions& options,
                                   std::size_t threads) {
  require(!backends.empty(), "pipeline: no backends to compare");
  ComparisonReport report;
  report.entries.reserve(backends.size());
  for (const std::string& name : backends) {
    const auto accelerator = make_accelerator(name, options);
    accelerator->load(topology);
    ComparisonEntry entry;
    entry.backend = name;
    entry.report = execute(*accelerator, traces, threads);
    entry.metrics = accelerator->metrics();
    report.entries.push_back(std::move(entry));
  }
  const ExecutionReport& ref = report.entries.front().report;
  for (auto& entry : report.entries) {
    if (entry.report.energy_pj > 0.0)
      entry.energy_gain = ref.energy_pj / entry.report.energy_pj;
    if (entry.report.latency_ns > 0.0)
      entry.speedup = ref.latency_ns / entry.report.latency_ns;
  }
  return report;
}

}  // namespace resparc::api
