// Fleet Monte-Carlo yield harness (docs/reliability.md).
//
// A fault configuration describes a *population* of chips: every chip
// seed draws its own stuck cells and conductance variations from the
// device fault model (tech/nonideal.hpp).  run_fleet samples that
// population — hundreds of seeded chip instances, each compiled with the
// fault-aware repair pass, its network perturbed and re-simulated for
// accuracy, and the baseline workload replayed for energy — and reports
// the distribution: yield at an accuracy floor, accuracy quantiles,
// energy-per-classification spread.
//
//   api::FleetOptions opt;
//   opt.chips = 200;
//   opt.faults.stuck_off_rate = 0.002;
//   opt.faults.programming_sigma = 0.1;
//   api::FleetReport fleet = api::run_fleet(opt);
//   // fleet.yield, fleet.acc_p50, fleet.energy_p95_uj, ...
//
// Determinism: everything derives from FleetOptions::seed via SplitMix64
// streams — the eval images, per-presentation simulation RNG (shared by
// every chip, so a zero-fault chip reproduces the baseline accuracy bit
// for bit) and the per-chip fault seeds.  Identical options give an
// identical report for any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "snn/benchmarks.hpp"
#include "snn/topology.hpp"
#include "tech/nonideal.hpp"

namespace resparc::api {

/// Knobs of one fleet sweep.
struct FleetOptions {
  std::size_t chips = 200;      ///< chip instances sampled
  std::uint64_t seed = 7;       ///< master seed (workload + chip streams)
  std::size_t images = 16;      ///< eval presentations per chip
  std::size_t timesteps = 8;    ///< presentation length
  std::size_t threads = 0;      ///< chip-level workers (0 = all cores)
  /// A chip yields when its accuracy reaches `accuracy_floor *
  /// baseline_accuracy` (relative floor: independent of how good the
  /// random-init workload happens to be).
  double accuracy_floor = 0.9;
  /// Eval dataset the shared workload is synthesised from.
  snn::DatasetKind dataset = snn::DatasetKind::kMnistLike;
  /// Network shape (default: small_mlp_topology(dataset)).
  std::optional<snn::Topology> topology;
  /// Fabric configuration every chip compiles against.
  core::ResparcConfig config = core::config_with_mca(64);
  /// Mapping strategy of the compile (docs/compile.md).
  std::string strategy = "paper";
  /// Fault population template.  `enabled` and `chip_seed` are
  /// overridden per chip (chip c draws stream_seed(seed, c + 1)); the
  /// rates/sigmas/threshold describe the population.
  tech::FaultConfig faults{};
};

/// One sampled chip instance.
struct FleetChip {
  std::uint64_t chip_seed = 0;   ///< fault stream identity
  bool ok = false;               ///< compiled (repair found a placement)
  double accuracy = 0.0;         ///< eval accuracy of the perturbed network
  double energy_uj = 0.0;        ///< replay energy per classification
  std::size_t failed_mpes = 0;   ///< mPEs over the stuck-density threshold
  std::size_t stuck_cells = 0;   ///< stuck-at cells across scanned slots
};

/// Distribution summary of one fleet sweep.
struct FleetReport {
  FleetOptions options;           ///< the sweep's knobs (echoed)
  double baseline_accuracy = 0.0; ///< fault-free workload accuracy
  double baseline_energy_uj = 0.0;///< fault-free replay energy/classification
  std::vector<FleetChip> chips;   ///< per-chip samples, seed order
  double yield = 0.0;             ///< fraction over the accuracy floor
  double acc_p05 = 0.0;           ///< accuracy 5th percentile (nearest-rank)
  double acc_p50 = 0.0;           ///< accuracy median (nearest-rank)
  double acc_p95 = 0.0;           ///< accuracy 95th percentile (nearest-rank)
  double energy_p50_uj = 0.0;     ///< energy/classification median, uJ
  double energy_p95_uj = 0.0;     ///< energy/classification p95, uJ
};

/// Runs the sweep: builds the shared eval workload once, then samples
/// `options.chips` fault-seeded chip instances in parallel.  A chip
/// whose repair cannot place the network (MappingError) counts as a
/// yield failure with zero accuracy.  Throws ConfigError for invalid
/// options (zero chips/images, bad fault rates).
FleetReport run_fleet(const FleetOptions& options);

/// Nearest-rank quantile of an UNSORTED sample set (copies + sorts);
/// p in [0, 1].  Exposed for the bench/CLI table rendering.
double nearest_rank(std::vector<double> values, double p);

}  // namespace resparc::api
