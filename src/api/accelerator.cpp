#include "api/accelerator.hpp"

namespace resparc::api {

void Accelerator::execute_each(std::span<const snn::SpikeTrace> traces,
                               std::vector<ExecutionReport>& reports_out) const {
  reports_out.clear();
  reports_out.reserve(traces.size());
  for (const auto& trace : traces) reports_out.push_back(execute(trace));
}

}  // namespace resparc::api
