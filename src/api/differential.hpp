// Differential oracle of the execution stack (docs/execution.md).
//
// One fuzz case (snn/fuzz.hpp) is pushed through every path that claims
// bit-for-bit equivalence and the results are compared exactly:
//
//   * simulation — dense, sparse and packed Simulator runs must agree
//     spike-for-spike (full trace), on every output count and on the
//     total spike tally;
//   * replay — the "resparc-<mca>" accelerator's sequential execute()
//     and its "+packed" batched twin must produce identical reports,
//     field for field, including every native counter;
//   * per-trace replay — Accelerator::execute_each reports must equal
//     the per-trace execute() reports.
//
// check_differential returns the first divergence as a human-readable
// string naming the seed, the paths compared and the field that split,
// so a fuzz failure is directly actionable.  tests/test_differential.cpp
// sweeps random seeds plus the regression corpus
// (tests/data/corpus/seeds.txt); tools/fuzz_topology drives bulk hunts.
#pragma once

#include <string>

#include "snn/fuzz.hpp"

namespace resparc::api {

/// Outcome of one differential run.
struct DifferentialResult {
  bool ok = true;      ///< every compared path agreed exactly
  std::string detail;  ///< first divergence ("seed=.. dense vs packed ..");
                       ///< empty when ok
};

/// Runs `c` through every engine and replay path and compares exactly.
/// Deterministic: the same case always produces the same verdict.
DifferentialResult check_differential(const snn::FuzzCase& c);

}  // namespace resparc::api
