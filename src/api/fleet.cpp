#include "api/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "compile/compiler.hpp"
#include "core/fault_injection.hpp"
#include "snn/simulator.hpp"

namespace resparc::api {

namespace {

// Salt separating the fleet's chip-seed stream from presentation seeds
// and the fault model's own per-MCA streams.
constexpr std::uint64_t kChipStreamSalt = 0xF1EE7ull;

}  // namespace

double nearest_rank(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

FleetReport run_fleet(const FleetOptions& options) {
  require(options.chips > 0, "fleet: chips must be positive");
  require(options.images > 0, "fleet: images must be positive");
  require(options.timesteps > 0, "fleet: timesteps must be positive");
  require(options.accuracy_floor >= 0.0, "fleet: accuracy_floor must be >= 0");
  options.config.validate();
  options.faults.validate();

  FleetReport fleet;
  fleet.options = options;
  const snn::Topology topology =
      options.topology ? *options.topology
                       : snn::small_mlp_topology(options.dataset);

  // Shared eval workload: one calibrated network, one traced image set.
  // Every chip re-simulates the SAME images with the SAME per-
  // presentation seeds, so accuracy differences are purely the fault
  // perturbation — and a zero-fault chip reproduces the baseline bit
  // for bit (tests/test_faults.cpp).
  PipelineOptions po;
  po.images = options.images;
  po.timesteps = options.timesteps;
  po.seed = options.seed;
  po.threads = options.threads;
  const Workload workload =
      Pipeline(po).dataset(options.dataset).topology(topology).run();
  fleet.baseline_accuracy = workload.accuracy;

  {
    ResparcBackend baseline(options.config, options.strategy);
    baseline.load(topology);
    const ExecutionReport report =
        Pipeline::execute(baseline, workload.traces, 1);
    fleet.baseline_energy_uj = report.energy_pj * 1e-6;
  }

  const std::uint64_t chip_stream =
      stream_seed(options.seed, kChipStreamSalt);
  const std::size_t eval = workload.labels.size();
  fleet.chips.assign(options.chips, FleetChip{});

  // Chip instances are independent Monte-Carlo samples: fan them over
  // the pool (each slot is written by exactly one worker, so the report
  // is identical for any thread count).
  ThreadPool::global().run_indexed(
      options.chips, options.threads, [&](std::size_t c, std::size_t) {
        FleetChip& chip = fleet.chips[c];
        core::ResparcConfig config = options.config;
        config.faults = options.faults;
        config.faults.enabled = true;
        config.faults.chip_seed = stream_seed(chip_stream, c + 1);
        chip.chip_seed = config.faults.chip_seed;
        try {
          // Fault-aware compile: the repair pass re-places around this
          // chip instance's failed mPEs (or throws MappingError when
          // the chip cannot host the network at all).
          compile::Compiler compiler(config);
          compile::CompiledProgram program =
              compiler.compile(topology, options.strategy);

          // Accuracy: perturb a copy of the calibrated network with
          // this chip's materialized faults and re-simulate the shared
          // eval set under the shared presentation seeds.
          snn::Network net = workload.network;
          core::perturb_network(net, program.mapping);
          snn::SimConfig sim_config;
          sim_config.timesteps = options.timesteps;
          sim_config.record_trace = false;
          snn::Simulator simulator(net, sim_config);
          std::size_t correct = 0;
          for (std::size_t i = 0; i < eval; ++i) {
            Rng rng(presentation_seed(options.seed, i));
            const snn::SimResult r =
                simulator.run(workload.test.images[i], rng);
            if (static_cast<int>(r.predicted_class) == workload.labels[i])
              ++correct;
          }
          chip.accuracy =
              static_cast<double>(correct) / static_cast<double>(eval);

          // Energy: replay the baseline traces on the faulty chip (the
          // spike statistics are held fixed at the fault-free workload;
          // what varies is the per-cell read energy of this instance).
          ResparcBackend backend(config, options.strategy);
          backend.load_program(topology, program);
          const ExecutionReport report =
              Pipeline::execute(backend, workload.traces, 1);
          chip.energy_uj = report.energy_pj * 1e-6;
          if (report.faults) {
            chip.failed_mpes = report.faults->failed_mpes.size();
            chip.stuck_cells =
                report.faults->stuck_off_cells + report.faults->stuck_on_cells;
          }
          chip.ok = true;
        } catch (const Error&) {
          // Unrepairable chip: a hard yield failure.
          chip.ok = false;
          chip.accuracy = 0.0;
          chip.energy_uj = 0.0;
        }
      });

  // Distribution roll-up.  Failed chips stay in the accuracy sample (as
  // zeros — they ship nothing) but are excluded from the energy spread
  // (they never ran).
  std::vector<double> accuracies;
  std::vector<double> energies;
  accuracies.reserve(fleet.chips.size());
  std::size_t yielded = 0;
  const double floor = options.accuracy_floor * fleet.baseline_accuracy;
  for (const FleetChip& chip : fleet.chips) {
    accuracies.push_back(chip.accuracy);
    if (chip.ok) energies.push_back(chip.energy_uj);
    if (chip.ok && chip.accuracy >= floor) ++yielded;
  }
  fleet.yield =
      static_cast<double>(yielded) / static_cast<double>(fleet.chips.size());
  fleet.acc_p05 = nearest_rank(accuracies, 0.05);
  fleet.acc_p50 = nearest_rank(accuracies, 0.50);
  fleet.acc_p95 = nearest_rank(accuracies, 0.95);
  fleet.energy_p50_uj = nearest_rank(energies, 0.50);
  fleet.energy_p95_uj = nearest_rank(energies, 0.95);
  return fleet;
}

}  // namespace resparc::api
