// Built-in Accelerator adapters over the two architecture models.
//
// ResparcBackend wraps core::ResparcChip (memristive crossbar fabric,
// paper sections 3-5); CmosBackend wraps cmos::FalconAccelerator (the
// aggressively optimised digital baseline of section 4.1).  Both are
// normally obtained through api::make_accelerator (registry.hpp); the
// concrete types are public for callers that need architecture-specific
// accessors such as the crossbar Mapping.
#pragma once

#include <optional>

#include "api/accelerator.hpp"
#include "cmos/falcon.hpp"
#include "core/resparc.hpp"

namespace resparc::api {

/// The memristive RESPARC fabric behind the unified interface.
class ResparcBackend final : public Accelerator {
 public:
  explicit ResparcBackend(core::ResparcConfig config = core::default_config());

  std::string name() const override;  ///< config label, e.g. "RESPARC-64"
  void load(const snn::Topology& topology) override;
  bool loaded() const override { return chip_.loaded(); }
  ExecutionReport execute(
      std::span<const snn::SpikeTrace> traces) const override;
  AcceleratorMetrics metrics() const override;

  const core::ResparcConfig& config() const { return chip_.config(); }
  /// Crossbar mapping of the loaded network (throws when none is loaded).
  const core::Mapping& mapping() const { return chip_.mapping(); }

 private:
  core::ResparcChip chip_;
};

/// The digital CMOS baseline behind the unified interface.
class CmosBackend final : public Accelerator {
 public:
  explicit CmosBackend(cmos::FalconConfig config = {});

  std::string name() const override;  ///< "CMOS"
  void load(const snn::Topology& topology) override;
  bool loaded() const override { return accelerator_.has_value(); }
  ExecutionReport execute(
      std::span<const snn::SpikeTrace> traces) const override;
  AcceleratorMetrics metrics() const override;

  const cmos::FalconConfig& config() const { return config_; }

 private:
  cmos::FalconConfig config_;
  // FalconAccelerator holds a reference to its topology, so the backend
  // owns a stable copy for the accelerator to point into.
  std::optional<snn::Topology> topology_;
  std::optional<cmos::FalconAccelerator> accelerator_;
};

}  // namespace resparc::api
