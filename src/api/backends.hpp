// Built-in Accelerator adapters over the two architecture models.
//
// ResparcBackend wraps core::ResparcChip (memristive crossbar fabric,
// paper sections 3-5); CmosBackend wraps cmos::FalconAccelerator (the
// aggressively optimised digital baseline of section 4.1).  Both are
// normally obtained through api::make_accelerator (registry.hpp); the
// concrete types are public for callers that need architecture-specific
// accessors such as the crossbar Mapping.
#pragma once

#include <optional>
#include <string>

#include "api/accelerator.hpp"
#include "cmos/falcon.hpp"
#include "compile/program.hpp"
#include "core/resparc.hpp"
#include "noc/route.hpp"
#include "snn/execution.hpp"

namespace resparc::api {

/// The memristive RESPARC fabric behind the unified interface.  `load`
/// compiles the topology with the configured mapping strategy
/// (compile/strategy.hpp); a pre-compiled or deserialized
/// compile::CompiledProgram loads directly via load_program.
class ResparcBackend final : public Accelerator {
 public:
  /// Builds an unloaded backend for `config`; `strategy` picks the
  /// compile-layer mapping policy, `execution` the trace-replay mode and
  /// `noc` the Ml-NoC timing fidelity (docs/noc.md).
  explicit ResparcBackend(
      core::ResparcConfig config = core::default_config(),
      std::string strategy = "paper",
      snn::ExecutionMode execution = snn::ExecutionMode::kDense,
      noc::Fidelity noc = noc::Fidelity::kAnalytic);

  /// Config label, e.g. "RESPARC-64"; non-default strategies append
  /// `"/<strategy>"`, non-dense execution appends "+sparse"/"+packed" and
  /// event NoC fidelity appends "@event"
  /// ("RESPARC-64/greedy-pack+sparse@event").
  std::string name() const override;
  /// Compiles `topology` with the configured strategy and hosts it.
  void load(const snn::Topology& topology) override;
  /// True once a network is loaded.
  bool loaded() const override { return chip_.loaded(); }
  /// Replays the traces; in sparse mode the report additionally carries
  /// the merged per-timestep event stream (ExecutionReport::events) with
  /// headline numbers bit-for-bit identical to dense mode.  Packed mode
  /// replays all traces in one batched trace-per-lane pass
  /// (core::ResparcChip::execute_batched) — identical report, fewer
  /// route-table walks.
  ExecutionReport execute(
      std::span<const snn::SpikeTrace> traces) const override;
  /// Per-trace replay; packed mode batches all lanes through one pass
  /// (core::ResparcChip::execute_each), other modes use the base loop.
  /// Either way reports_out[i] is bit-for-bit execute(traces[i]).
  void execute_each(std::span<const snn::SpikeTrace> traces,
                    std::vector<ExecutionReport>& reports_out) const override;
  /// Fig. 8 metric roll-up of one NeuroCell at this configuration.
  AcceleratorMetrics metrics() const override;
  /// RESPARC compiles through the mapping-strategy layer.
  bool supports_mapping_strategies() const override { return true; }
  /// RESPARC honours BackendOptions::execution / `"+<mode>"` suffixes.
  bool supports_execution_modes() const override { return true; }

  /// The configured execution mode.
  snn::ExecutionMode execution() const { return execution_; }

  /// The configured Ml-NoC timing fidelity.
  noc::Fidelity noc_fidelity() const { return chip_.fidelity(); }

  /// Hosts a compiled artifact (fingerprint-checked against this config);
  /// strategy() and name() then reflect the program's strategy.
  void load_program(const snn::Topology& topology,
                    compile::CompiledProgram program);

  /// The chip configuration this backend was built with.
  const core::ResparcConfig& config() const { return chip_.config(); }
  /// Strategy of the loaded program; before any load, the configured
  /// policy ("auto" resolves to the winning strategy once loaded — the
  /// configured policy itself is immutable, so every load() re-selects).
  const std::string& strategy() const {
    return chip_.loaded() ? chip_.program().strategy : strategy_;
  }
  /// Crossbar mapping of the loaded network (throws when none is loaded).
  const core::Mapping& mapping() const { return chip_.mapping(); }
  /// Compiled program of the loaded network (throws when none is loaded).
  const compile::CompiledProgram& program() const { return chip_.program(); }

 private:
  core::ResparcChip chip_;
  std::string strategy_;
  snn::ExecutionMode execution_ = snn::ExecutionMode::kDense;
};

/// The digital CMOS baseline behind the unified interface.
class CmosBackend final : public Accelerator {
 public:
  /// Builds an unloaded baseline backend for `config` (validated).
  explicit CmosBackend(cmos::FalconConfig config = {});

  std::string name() const override;  ///< "CMOS"
  /// Copies `topology` and instantiates the FALCON accelerator over it.
  void load(const snn::Topology& topology) override;
  /// True once a network is loaded.
  bool loaded() const override { return accelerator_.has_value(); }
  /// Replays the traces through the digital baseline's cycle model.
  ExecutionReport execute(
      std::span<const snn::SpikeTrace> traces) const override;
  /// Fig. 9 metric roll-up of the baseline tile.
  AcceleratorMetrics metrics() const override;

  /// The baseline configuration this backend was built with.
  const cmos::FalconConfig& config() const { return config_; }

 private:
  cmos::FalconConfig config_;
  // FalconAccelerator holds a reference to its topology, so the backend
  // owns a stable copy for the accelerator to point into.
  std::optional<snn::Topology> topology_;
  std::optional<cmos::FalconAccelerator> accelerator_;
};

}  // namespace resparc::api
