// The unified accelerator surface (docs/architecture.md).
//
// Every architecture model this repo compares — the memristive RESPARC
// fabric, the CMOS FALCON-style baseline, and any future variant — is
// driven through the same three-call contract:
//
//   auto accel = api::make_accelerator("resparc", options);   // registry.hpp
//   accel->load(topology);                                    // place the SNN
//   api::ExecutionReport r = accel->execute(traces);          // replay spikes
//
// Backends consume identical snn::SpikeTrace workloads (the functional
// simulator is the single trace source), so an ExecutionReport from one
// backend is directly comparable with another's.  The report keeps both the
// unified headline numbers and, for the built-in backends, the native
// typed report so figure benches can reach architecture-specific detail
// (event counters, paper energy buckets) without downcasting accelerators.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cmos/falcon.hpp"
#include "core/energy.hpp"
#include "core/events.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::api {

/// Implementation-metric roll-up of one accelerator tile (paper Fig. 8/9).
struct AcceleratorMetrics {
  double area_mm2 = 0.0;       ///< silicon area of one tile
  double power_mw = 0.0;       ///< peak dynamic power at full activity
  double gate_count = 0.0;     ///< logic gates of the digital periphery
  double frequency_mhz = 0.0;  ///< operating clock
};

/// Backend-independent result of replaying traces.  Energy and latency are
/// per classification (averaged over the trace set).
struct ExecutionReport {
  std::string backend;               ///< Accelerator::name() of the producer
  std::size_t classifications = 0;   ///< presentations replayed
  double energy_pj = 0.0;            ///< total energy per classification
  double latency_ns = 0.0;           ///< steady-state latency per classification
  double throughput_hz = 0.0;        ///< classifications per second

  /// Named energy buckets (paper Fig. 12 style), backend-defined:
  /// RESPARC reports neuron/crossbar/peripherals, CMOS reports
  /// core/memory_access/memory_leakage.
  std::vector<std::pair<std::string, double>> energy_breakdown_pj;

  /// Named latency buckets (ns per classification, serial decomposition):
  /// the RESPARC backend reports compute / transport / noc_stall from the
  /// Ml-NoC model (docs/noc.md; stall is 0 in analytic fidelity).
  /// Backends without a transport model leave it empty.
  std::vector<std::pair<std::string, double>> latency_breakdown_ns;

  /// Realised device-fault manifest of the chip instance the replay ran
  /// on (RESPARC backend with ResparcConfig::faults enabled); absent on
  /// fault-free runs and non-RESPARC backends (docs/reliability.md).
  std::optional<tech::FaultManifest> faults;

  /// Native typed report when the producer is the RESPARC backend.
  std::optional<core::RunReport> resparc;
  /// Native typed report when the producer is the CMOS baseline backend.
  std::optional<cmos::CmosReport> cmos;

  /// Per-timestep, per-stage hardware event record, summed over the
  /// replayed presentations.  Populated by backends executing in sparse
  /// mode ("+sparse" registry keys / BackendOptions::execution); the
  /// headline numbers are identical either way — the stream adds
  /// timestep resolution, not different totals.
  std::optional<core::EventStream> events;

  /// Value of one named breakdown bucket (0 when absent).
  double bucket_pj(const std::string& name) const {
    for (const auto& [key, value] : energy_breakdown_pj)
      if (key == name) return value;
    return 0.0;
  }

  /// Value of one named latency bucket (0 when absent).
  double bucket_ns(const std::string& name) const {
    for (const auto& [key, value] : latency_breakdown_ns)
      if (key == name) return value;
    return 0.0;
  }
};

/// Abstract accelerator: anything that can host an SNN topology and replay
/// spike traces against it.  Implementations must keep execute() const and
/// thread-safe so the batched pipeline can replay traces concurrently.
class Accelerator {
 public:
  virtual ~Accelerator() = default;

  /// Display name, e.g. "RESPARC-64" or "CMOS".
  virtual std::string name() const = 0;

  /// Places `topology` onto the fabric, replacing any previous network.
  virtual void load(const snn::Topology& topology) = 0;

  /// True once a network is loaded.
  virtual bool loaded() const = 0;

  /// Replays a set of traces against the loaded network; energy and
  /// latency in the report are averaged per classification.
  virtual ExecutionReport execute(
      std::span<const snn::SpikeTrace> traces) const = 0;

  /// Convenience: replay a single trace.
  ExecutionReport execute(const snn::SpikeTrace& trace) const {
    return execute(std::span<const snn::SpikeTrace>(&trace, 1));
  }

  /// Replays every trace separately: `reports_out` is cleared and
  /// refilled with one report per trace, in trace order, each bit-for-bit
  /// identical to execute(traces[i]).  The default loops the single-trace
  /// execute(); backends with a batched datapath (RESPARC in packed mode)
  /// override it to replay all traces in one pass over their route
  /// tables (docs/execution.md).  Must stay const and thread-safe like
  /// execute().
  virtual void execute_each(std::span<const snn::SpikeTrace> traces,
                            std::vector<ExecutionReport>& reports_out) const;

  /// Implementation metrics of one tile (area/power/gates/frequency).
  virtual AcceleratorMetrics metrics() const = 0;

  /// True when this backend compiles topologies through the mapping-
  /// strategy layer (honours BackendOptions::strategy and `"/<strategy>"`
  /// registry-key suffixes).  The registry rejects a strategy suffix on
  /// backends that return false instead of silently ignoring it.
  virtual bool supports_mapping_strategies() const { return false; }

  /// True when this backend honours BackendOptions::execution (the
  /// `"+<mode>"` registry-key suffix).  As with strategies, the registry
  /// rejects a mode suffix on backends that return false.
  virtual bool supports_execution_modes() const { return false; }
};

/// Converts a native RESPARC report to the unified form.
ExecutionReport to_execution_report(const core::RunReport& report,
                                    std::string backend);
/// Converts a native CMOS baseline report to the unified form.
ExecutionReport to_execution_report(const cmos::CmosReport& report,
                                    std::string backend);

}  // namespace resparc::api
