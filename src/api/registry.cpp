#include "api/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "api/backends.hpp"

namespace resparc::api {
namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, BackendFactory> factories;
};

Registry& registry() {
  static Registry instance;
  static std::once_flag once;
  std::call_once(once, [] {
    Registry& r = instance;
    r.factories["resparc"] = [](const BackendOptions& o) {
      return std::make_unique<ResparcBackend>(o.resparc);
    };
    for (const std::size_t mca : {32u, 64u, 128u, 256u}) {
      r.factories["resparc-" + std::to_string(mca)] =
          [mca](const BackendOptions& o) {
            core::ResparcConfig config = o.resparc;
            config.mca_size = mca;
            return std::make_unique<ResparcBackend>(config);
          };
    }
    const BackendFactory cmos = [](const BackendOptions& o) {
      return std::make_unique<CmosBackend>(o.cmos);
    };
    r.factories["cmos"] = cmos;
    r.factories["falcon"] = cmos;
  });
  return instance;
}

}  // namespace

std::unique_ptr<Accelerator> make_accelerator(const std::string& name,
                                              const BackendOptions& options) {
  Registry& r = registry();
  BackendFactory factory;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      std::string known;
      for (const auto& [key, unused] : r.factories) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      throw BackendError("unknown backend \"" + name +
                         "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(options);
}

void register_backend(const std::string& name, BackendFactory factory) {
  require(!name.empty(), "register_backend: empty name");
  require(static_cast<bool>(factory), "register_backend: null factory");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_backends() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [key, unused] : r.factories) names.push_back(key);
  return names;  // std::map iterates sorted
}

}  // namespace resparc::api
