#include "api/registry.hpp"

#include <mutex>
#include <optional>

#include "api/backends.hpp"
#include "common/registry.hpp"
#include "compile/strategy.hpp"

namespace resparc::api {
namespace {

NamedRegistry<BackendFactory>& registry() {
  static NamedRegistry<BackendFactory> instance;
  static std::once_flag once;
  std::call_once(once, [] {
    instance.set("resparc", [](const BackendOptions& o) {
      return std::make_unique<ResparcBackend>(o.resparc, o.strategy,
                                              o.execution, o.noc);
    });
    for (const std::size_t mca : {32u, 64u, 128u, 256u}) {
      instance.set("resparc-" + std::to_string(mca),
                   [mca](const BackendOptions& o) {
                     core::ResparcConfig config = o.resparc;
                     config.mca_size = mca;
                     return std::make_unique<ResparcBackend>(config, o.strategy,
                                                             o.execution, o.noc);
                   });
    }
    const BackendFactory cmos = [](const BackendOptions& o) {
      return std::make_unique<CmosBackend>(o.cmos);
    };
    instance.set("cmos", cmos);
    instance.set("falcon", cmos);
  });
  return instance;
}

std::string strategies_list() {
  return join_names(compile::registered_strategies()) + ", auto";
}

constexpr const char* kModesList = "dense, sparse, packed";

}  // namespace

std::unique_ptr<Accelerator> make_accelerator(const std::string& name,
                                              const BackendOptions& options) {
  NamedRegistry<BackendFactory>& r = registry();

  // An exactly registered name always wins (register_backend places no
  // restriction on '/' or '+' in names); otherwise split the optional
  // suffixes in canonical order "base/<strategy>+<mode>":
  // "resparc-64/greedy-pack+sparse".
  std::optional<BackendFactory> factory = r.find(name);
  std::string strategy;  // suffix override; empty = honour options.strategy
  std::optional<snn::ExecutionMode> mode;  // suffix override
  if (!factory) {
    std::string rest = name;
    const std::size_t plus = rest.rfind('+');
    if (plus != std::string::npos) {
      const std::string mode_text = rest.substr(plus + 1);
      rest = rest.substr(0, plus);
      snn::ExecutionMode parsed;
      if (!snn::parse_execution_mode(mode_text, parsed))
        throw BackendError("unknown execution mode \"" + mode_text +
                           "\" in \"" + name + "\" (modes: " +
                           std::string(kModesList) + ")");
      mode = parsed;
    }
    const std::size_t slash = rest.find('/');
    const std::string base = rest.substr(0, slash);
    strategy = slash == std::string::npos ? std::string() : rest.substr(slash + 1);
    if (slash != std::string::npos && strategy.empty())
      throw BackendError("empty mapping strategy in \"" + name +
                         "\" (strategies: " + strategies_list() + ")");
    factory = r.find(base);
    if (!factory)
      throw BackendError("unknown backend \"" + base + "\" (registered: " +
                         join_names(r.names()) +
                         "; strategies: " + strategies_list() +
                         "; modes: " + std::string(kModesList) + ")");
  }

  // Whichever channel chose the strategy (suffix or options), a typo must
  // surface here as BackendError, not later at load() time.
  const std::string& effective = strategy.empty() ? options.strategy : strategy;
  if (effective.empty())
    throw BackendError("empty options.strategy for \"" + name +
                       "\" (strategies: " + strategies_list() + ")");
  if (effective != "auto" && !compile::strategy_exists(effective))
    throw BackendError("unknown mapping strategy \"" + effective +
                       "\" in \"" + name +
                       "\" (strategies: " + strategies_list() + ")");

  if (strategy.empty() && !mode) return (*factory)(options);

  BackendOptions with_suffixes = options;
  if (!strategy.empty()) with_suffixes.strategy = strategy;
  if (mode) with_suffixes.execution = *mode;
  auto accelerator = (*factory)(with_suffixes);
  // A suffix on a backend that cannot honour it would be silently
  // ignored — reject it instead.
  if (!strategy.empty() && !accelerator->supports_mapping_strategies())
    throw BackendError("backend \"" + name.substr(0, name.find('/')) +
                       "\" does not support mapping strategies (\"" + name +
                       "\")");
  if (mode && !accelerator->supports_execution_modes())
    throw BackendError("backend \"" + name.substr(0, name.find('+')) +
                       "\" does not support execution modes (\"" + name +
                       "\")");
  return accelerator;
}

void register_backend(const std::string& name, BackendFactory factory) {
  require(!name.empty(), "register_backend: empty name");
  require(static_cast<bool>(factory), "register_backend: null factory");
  registry().set(name, std::move(factory));
}

std::vector<std::string> registered_backends() { return registry().names(); }

}  // namespace resparc::api
