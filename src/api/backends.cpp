#include "api/backends.hpp"

#include <utility>

#include "common/error.hpp"
#include "compile/compiler.hpp"

namespace resparc::api {

ExecutionReport to_execution_report(const core::RunReport& report,
                                    std::string backend) {
  ExecutionReport out;
  out.backend = std::move(backend);
  out.classifications = report.classifications;
  out.energy_pj = report.energy.total_pj();
  out.latency_ns = report.perf.latency_pipelined_ns();
  out.throughput_hz = report.perf.throughput_hz();
  out.energy_breakdown_pj = {
      {"neuron", report.energy.neuron_pj},
      {"crossbar", report.energy.crossbar_pj},
      {"peripherals", report.energy.peripherals_pj()},
  };
  const double ns_per_cycle = report.perf.clock_mhz > 0.0
                                  ? 1e3 / report.perf.clock_mhz
                                  : 0.0;
  out.latency_breakdown_ns = {
      {"compute", report.perf.cycles_compute * ns_per_cycle},
      {"transport", report.perf.cycles_transport * ns_per_cycle},
      {"noc_stall", report.perf.cycles_stall * ns_per_cycle},
  };
  out.faults = report.faults;
  out.resparc = report;
  return out;
}

ExecutionReport to_execution_report(const cmos::CmosReport& report,
                                    std::string backend) {
  ExecutionReport out;
  out.backend = std::move(backend);
  out.classifications = report.classifications;
  out.energy_pj = report.energy.total_pj();
  out.latency_ns = report.latency_ns();
  out.throughput_hz = report.throughput_hz();
  out.energy_breakdown_pj = {
      {"core", report.energy.core_pj},
      {"memory_access", report.energy.memory_access_pj},
      {"memory_leakage", report.energy.memory_leakage_pj},
  };
  out.cmos = report;
  return out;
}

// ----------------------------------------------------------------- RESPARC --

ResparcBackend::ResparcBackend(core::ResparcConfig config, std::string strategy,
                               snn::ExecutionMode execution,
                               noc::Fidelity noc)
    : chip_(std::move(config), noc),
      strategy_(std::move(strategy)),
      execution_(execution) {
  require(!strategy_.empty(), "ResparcBackend: empty strategy name");
}

std::string ResparcBackend::name() const {
  const std::string& s = strategy();  // the loaded program's, once loaded
  std::string name = s == "paper" ? chip_.config().label()
                                  : chip_.config().label() + "/" + s;
  if (execution_ != snn::ExecutionMode::kDense)
    name += "+" + snn::to_string(execution_);
  if (chip_.fidelity() == noc::Fidelity::kEvent) name += "@event";
  return name;
}

void ResparcBackend::load(const snn::Topology& topology) {
  chip_.load(topology,
             compile::Compiler(chip_.config()).compile(topology, strategy_));
}

void ResparcBackend::load_program(const snn::Topology& topology,
                                  compile::CompiledProgram program) {
  chip_.load(topology, std::move(program));
}

ExecutionReport ResparcBackend::execute(
    std::span<const snn::SpikeTrace> traces) const {
  require(loaded(), "ResparcBackend: no network loaded");
  if (execution_ == snn::ExecutionMode::kPacked)
    // Trace-per-lane batched replay: bit-for-bit the sequential report
    // from one pass over the route table (core/executor.hpp).
    return to_execution_report(chip_.execute_batched(traces), name());
  if (execution_ != snn::ExecutionMode::kSparse)
    return to_execution_report(chip_.execute(traces), name());
  core::EventStream stream;
  ExecutionReport report =
      to_execution_report(chip_.execute(traces, &stream), name());
  report.events = std::move(stream);
  return report;
}

void ResparcBackend::execute_each(
    std::span<const snn::SpikeTrace> traces,
    std::vector<ExecutionReport>& reports_out) const {
  require(loaded(), "ResparcBackend: no network loaded");
  if (execution_ != snn::ExecutionMode::kPacked) {
    Accelerator::execute_each(traces, reports_out);
    return;
  }
  std::vector<core::RunReport> native(traces.size());
  chip_.execute_each(traces, native);
  reports_out.clear();
  reports_out.reserve(traces.size());
  const std::string label = name();
  for (core::RunReport& r : native)
    reports_out.push_back(to_execution_report(r, label));
}

AcceleratorMetrics ResparcBackend::metrics() const {
  const core::NeuroCellMetrics m = core::neurocell_metrics(chip_.config());
  return {.area_mm2 = m.area_mm2,
          .power_mw = m.power_mw,
          .gate_count = m.gate_count,
          .frequency_mhz = m.frequency_mhz};
}

// -------------------------------------------------------------------- CMOS --

CmosBackend::CmosBackend(cmos::FalconConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

std::string CmosBackend::name() const { return "CMOS"; }

void CmosBackend::load(const snn::Topology& topology) {
  accelerator_.reset();  // drop the reference into topology_ first
  topology_ = topology;
  accelerator_.emplace(*topology_, config_);
}

ExecutionReport CmosBackend::execute(
    std::span<const snn::SpikeTrace> traces) const {
  require(loaded(), "CmosBackend: no network loaded");
  return to_execution_report(accelerator_->run_all(traces), name());
}

AcceleratorMetrics CmosBackend::metrics() const {
  const cmos::BaselineMetrics m = cmos::baseline_metrics(config_);
  return {.area_mm2 = m.area_mm2,
          .power_mw = m.power_mw,
          .gate_count = m.gate_count,
          .frequency_mhz = m.frequency_mhz};
}

}  // namespace resparc::api
