// String-keyed backend registry: the factory seam of the API layer.
//
// Callers name the architecture they want and get an abstract Accelerator:
//
//   auto resparc = api::make_accelerator("resparc-64");
//   auto greedy  = api::make_accelerator("resparc-64/greedy-pack");
//   auto cmos    = api::make_accelerator("cmos");
//
// Built-in names (registered on first use):
//   "resparc"                  RESPARC at the paper's default operating
//                              point, honouring options.resparc verbatim
//   "resparc-32/-64/-128/-256" RESPARC with the MCA size overridden
//   "cmos", "falcon"           the digital baseline (options.cmos)
//
// Any RESPARC key accepts a "/<strategy>" suffix selecting the mapping
// strategy the compile layer uses (compile/strategy.hpp: "paper",
// "greedy-pack", "balanced", "auto", plus anything added through
// compile::register_strategy) and a "+<mode>" suffix selecting the
// execution mode ("dense"/"sparse"/"packed", docs/execution.md):
//
//   auto sparse = api::make_accelerator("resparc-64/greedy-pack+sparse");
//   auto packed = api::make_accelerator("resparc-64+packed");
//
// The same choices are available programmatically through
// BackendOptions::strategy and BackendOptions::execution.
//
// Future variants (analog-noise crossbars, sharded multi-chip, ...) plug in
// via register_backend without touching any caller.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/accelerator.hpp"
#include "cmos/falcon.hpp"
#include "common/error.hpp"
#include "core/config.hpp"
#include "noc/route.hpp"
#include "snn/execution.hpp"

namespace resparc::api {

/// Thrown for unknown backend names; the message lists what is registered.
class BackendError : public Error {
 public:
  /// Wraps `what` with the "backend error:" prefix.
  explicit BackendError(const std::string& what)
      : Error("backend error: " + what) {}
};

/// Configuration handed to backend factories.  Each backend reads the slice
/// it understands and ignores the rest, so one options object can configure
/// a whole comparison.
struct BackendOptions {
  core::ResparcConfig resparc = core::default_config();  ///< RESPARC slice
  cmos::FalconConfig cmos{};                             ///< CMOS slice
  /// Mapping strategy for crossbar backends ("paper", "greedy-pack",
  /// "balanced", "auto", ...).  A `"/<strategy>"` key suffix overrides this.
  /// Backends without a compile step (the CMOS baseline) ignore it.
  std::string strategy = "paper";
  /// Execution mode for backends that support it (the RESPARC fabric):
  /// kSparse makes execute() record the per-timestep hardware event
  /// streams into ExecutionReport::events; kPacked replays trace batches
  /// lane-per-trace through one route-table pass.  Headline numbers are
  /// bit-for-bit identical to dense either way.  A `"+<mode>"` key suffix
  /// overrides this.  Backends without mode support ignore it.
  snn::ExecutionMode execution = snn::ExecutionMode::kDense;
  /// Ml-NoC timing fidelity for the RESPARC fabric (docs/noc.md):
  /// kAnalytic reproduces the flat per-word transfer charges bit-for-bit;
  /// kEvent drives switch-FIFO queues and adds hop pipeline-fill plus
  /// congestion stall latency.  Backends without a NoC model ignore it.
  noc::Fidelity noc = noc::Fidelity::kAnalytic;
};

/// Factory signature: build an accelerator from shared options.
using BackendFactory =
    std::function<std::unique_ptr<Accelerator>(const BackendOptions&)>;

/// Creates the backend registered under `name`; optional suffixes select
/// the mapping strategy and execution mode, in the canonical order
/// `"base/<strategy>+<mode>"` (e.g. "resparc-64/greedy-pack+sparse").
/// Throws BackendError for unknown backend names, strategies or modes —
/// the message lists what is registered.
std::unique_ptr<Accelerator> make_accelerator(const std::string& name,
                                              const BackendOptions& options = {});

/// Registers (or replaces) a backend under `name`.  Thread-safe.
void register_backend(const std::string& name, BackendFactory factory);

/// Sorted names of every registered backend.
std::vector<std::string> registered_backends();

}  // namespace resparc::api
