// Pipeline: the one front-end that owns the paper's whole workflow.
//
// Every experiment in this repo is the same sequence — pick a dataset,
// build a network (random-init or offline-trained + Diehl-converted),
// calibrate thresholds, simulate spiking presentations, record traces,
// replay them on one or more accelerators.  Pipeline packages that
// sequence behind a builder so benches, examples and tests stop hand-
// wiring it:
//
//   api::Workload w = api::Pipeline().benchmark(snn::mnist_mlp()).run();
//   auto accel = api::make_accelerator("resparc-64");
//   accel->load(w.topology());
//   api::ExecutionReport r = api::Pipeline::execute(*accel, w.traces);
//
// Trace simulation is batched over presentations on a thread pool with a
// deterministic per-presentation RNG seed, so a run is bit-identical for
// every thread count (docs/execution.md).  Batched execute() reduces
// per-trace native reports in presentation order, reproducing the legacy
// sequential run_all() aggregation exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/accelerator.hpp"
#include "api/registry.hpp"
#include "data/dataset.hpp"
#include "snn/activity.hpp"
#include "snn/benchmarks.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "train/trainer.hpp"

namespace resparc::api {

/// Knobs of the workflow; every field has the benches' historical default.
struct PipelineOptions {
  std::size_t images = 3;            ///< presentations simulated and traced
  std::size_t timesteps = 32;        ///< presentation length
  std::uint64_t seed = 7;            ///< master seed (data, weights, spikes)
  std::size_t threads = 0;           ///< simulation/executor workers (0 = all)
  bool record_traces = true;         ///< false: skip trace simulation (network
                                     ///< + test-set-only workloads)
  double target_activity = 0.10;     ///< per-layer calibration target
  std::size_t calibration_images = 2;  ///< images driving calibration
  int weight_bits = 0;               ///< device quantisation (0 = keep float)
  float init_scale = 1.0f;           ///< random-init weight scale
  double noise = 0.03;               ///< synthetic dataset pixel noise
  double jitter_pixels = 1.5;        ///< synthetic dataset glyph jitter
  snn::EncoderConfig encoder{};      ///< input spike encoding
  /// Simulation engine: kDense (historical path), kSparse (AER event
  /// path, snn/sparse_engine.hpp) or kPacked (64-bit word datapath,
  /// docs/performance.md).  Bit-for-bit identical traces in every mode;
  /// sparse wall-clock scales with spike count instead of network size
  /// (docs/execution.md).
  snn::ExecutionMode execution = snn::ExecutionMode::kDense;
  bool train = false;                ///< offline ANN training + conversion
  std::size_t train_images = 120;    ///< training split size (train = true)
  train::TrainConfig train_config{
      .epochs = 30, .batch_size = 10, .learning_rate = 0.02};
};

/// Product of Pipeline::run(): a network plus everything recorded while
/// presenting the traced image set.
struct Workload {
  /// Wraps the presented network (moved in by Pipeline::run()).
  explicit Workload(snn::Network net) : network(std::move(net)) {}

  snn::Network network;                  ///< the simulated (calibrated) SNN
  std::vector<snn::SpikeTrace> traces;   ///< one per presentation
  std::vector<int> labels;               ///< label of each presentation
  std::vector<std::size_t> predicted;    ///< simulator argmax per presentation
  double mean_activity = 0.0;            ///< spikes/neuron/step over traces
  /// Per-layer spike rasters + sparsity stats over the traced set (empty
  /// when record_traces is off); what benches report as measured sparsity.
  snn::ActivityTrace activity;
  double accuracy = 0.0;                 ///< argmax accuracy over traces
  data::Dataset test;                    ///< the traced (held-out) image set
  std::optional<train::TrainReport> training;  ///< set when options.train
  double ann_test_accuracy = 0.0;        ///< pre-conversion ANN accuracy

  /// Shape of the presented network.
  const snn::Topology& topology() const { return network.topology(); }
};

/// One backend's row of a comparison.
struct ComparisonEntry {
  std::string backend;        ///< registry key the entry was built from
  ExecutionReport report;     ///< replay result on this backend
  AcceleratorMetrics metrics; ///< tile implementation metrics
  double energy_gain = 1.0;   ///< reference energy / this energy
  double speedup = 1.0;       ///< reference latency / this latency
};

/// The same traces through a set of backends; ratios are relative to the
/// first entry (the reference baseline).
struct ComparisonReport {
  std::vector<ComparisonEntry> entries;  ///< one row per backend key

  /// The baseline entry every ratio is relative to (the first backend).
  const ComparisonEntry& reference() const { return entries.front(); }
  /// Entry built from registry key `backend` (nullptr when absent).
  const ComparisonEntry* find(const std::string& backend) const;
  /// Two-line-per-backend human-readable summary.
  void print(std::ostream& os) const;
};

/// Builder for the dataset -> network -> traces workflow.
class Pipeline {
 public:
  /// Builds a pipeline with the given option block.
  explicit Pipeline(PipelineOptions options = {});

  /// Replaces the option block (builder style).
  Pipeline& options(PipelineOptions options);
  /// In-place access to the option block (for single-field tweaks).
  PipelineOptions& mutable_options() { return options_; }

  /// Workload of one paper benchmark: its dataset family (downsampled for
  /// the SVHN/CIFAR MLP rows, docs/architecture.md) and its topology.
  Pipeline& benchmark(const snn::BenchmarkSpec& spec);

  /// Selects the synthetic dataset family explicitly.
  Pipeline& dataset(snn::DatasetKind kind);

  /// Random-init network of this shape (calibrated before tracing).
  Pipeline& topology(snn::Topology topology);

  /// Uses a caller-prepared network as-is (no init, no calibration).
  Pipeline& network(snn::Network network);

  /// Executes the workflow.  Deterministic in options.seed for any value
  /// of options.threads, and repeatable: the builder state is not
  /// consumed, so run() twice yields identical workloads.
  Workload run();

  /// Replays traces through a loaded accelerator, batched over
  /// presentations; the result is bit-identical to accel.execute(traces).
  static ExecutionReport execute(const Accelerator& accelerator,
                                 std::span<const snn::SpikeTrace> traces,
                                 std::size_t threads = 0);

  /// Replays each trace individually into `out[i]` (resized to
  /// traces.size()), fanning contiguous chunks over the global pool when
  /// threads != 1; each chunk goes through Accelerator::execute_each, so
  /// batched backends ("+packed") amortize route lookups across their
  /// chunk.  The execute-into form the serving layer batches over:
  /// per-trace reports survive, so callers can attribute latency/energy
  /// to individual requests instead of a merged aggregate.  out[i] is
  /// bit-for-bit execute(traces[i]) for any thread count.
  static void execute_each(const Accelerator& accelerator,
                           std::span<const snn::SpikeTrace> traces,
                           std::vector<ExecutionReport>& out,
                           std::size_t threads = 0);

  /// Runs the same traces through every named backend (first = reference
  /// baseline for the ratio columns).  Backend names accept the registry's
  /// `"/<strategy>"` suffix ("resparc-64/greedy-pack"), so one comparison
  /// can pit mapping strategies against each other as easily as
  /// architectures; options.strategy selects the default for keys without
  /// a suffix.
  static ComparisonReport compare(const snn::Topology& topology,
                                  std::span<const snn::SpikeTrace> traces,
                                  std::span<const std::string> backends,
                                  const BackendOptions& options = {},
                                  std::size_t threads = 0);

 private:
  data::Dataset synthesize(std::size_t count) const;

  PipelineOptions options_;
  std::optional<snn::DatasetKind> kind_;
  std::optional<snn::Topology> topology_;
  std::optional<snn::Network> network_;
};

/// Deterministic per-presentation RNG seed: SplitMix64 over (seed, index),
/// shared by the threaded and sequential paths.
std::uint64_t presentation_seed(std::uint64_t seed, std::size_t index);

}  // namespace resparc::api
