#include "api/differential.hpp"

#include <vector>

#include "api/registry.hpp"
#include "common/rng.hpp"
#include "snn/simulator.hpp"

namespace resparc::api {

namespace {

/// Names an execution mode for failure messages.
const char* mode_name(snn::ExecutionMode m) {
  switch (m) {
    case snn::ExecutionMode::kSparse: return "sparse";
    case snn::ExecutionMode::kPacked: return "packed";
    case snn::ExecutionMode::kDense: break;
  }
  return "dense";
}

std::string diverged(const snn::FuzzCase& c, const std::string& what) {
  return c.summary() + ": " + what;
}

bool same_vector(const snn::SpikeVector& a, const snn::SpikeVector& b) {
  if (a.size() != b.size()) return false;
  const auto wa = a.words();
  const auto wb = b.words();
  for (std::size_t i = 0; i < wa.size(); ++i)
    if (wa[i] != wb[i]) return false;
  return true;
}

/// Exact comparison of two simulation results; fills `why` on divergence.
bool same_sim(const snn::SimResult& a, const snn::SimResult& b,
              std::string& why) {
  if (a.total_spikes != b.total_spikes) {
    why = "total_spikes " + std::to_string(a.total_spikes) + " vs " +
          std::to_string(b.total_spikes);
    return false;
  }
  if (a.predicted_class != b.predicted_class) {
    why = "predicted_class";
    return false;
  }
  if (a.output_spike_counts != b.output_spike_counts) {
    why = "output_spike_counts";
    return false;
  }
  if (a.trace.layers.size() != b.trace.layers.size()) {
    why = "trace layer count";
    return false;
  }
  for (std::size_t l = 0; l < a.trace.layers.size(); ++l) {
    if (a.trace.layers[l].size() != b.trace.layers[l].size()) {
      why = "trace timesteps at layer " + std::to_string(l);
      return false;
    }
    for (std::size_t t = 0; t < a.trace.layers[l].size(); ++t)
      if (!same_vector(a.trace.layers[l][t], b.trace.layers[l][t])) {
        why = "spikes at layer " + std::to_string(l) + " step " +
              std::to_string(t);
        return false;
      }
  }
  return true;
}

/// Exact comparison of two replay reports (unified fields, energy and
/// latency buckets, plus every native counter).
bool same_report(const ExecutionReport& a, const ExecutionReport& b,
                 std::string& why) {
  if (a.classifications != b.classifications) {
    why = "classifications";
    return false;
  }
  if (a.energy_pj != b.energy_pj) {
    why = "energy_pj";
    return false;
  }
  if (a.latency_ns != b.latency_ns) {
    why = "latency_ns";
    return false;
  }
  if (a.throughput_hz != b.throughput_hz) {
    why = "throughput_hz";
    return false;
  }
  if (a.energy_breakdown_pj != b.energy_breakdown_pj) {
    why = "energy_breakdown_pj";
    return false;
  }
  if (a.latency_breakdown_ns != b.latency_breakdown_ns) {
    why = "latency_breakdown_ns";
    return false;
  }
  if (a.resparc.has_value() != b.resparc.has_value()) {
    why = "native report presence";
    return false;
  }
  if (a.resparc) {
    const core::RunReport& ra = *a.resparc;
    const core::RunReport& rb = *b.resparc;
    const core::EnergyBreakdown &ea = ra.energy, &eb = rb.energy;
    if (ea.neuron_pj != eb.neuron_pj || ea.crossbar_pj != eb.crossbar_pj ||
        ea.buffer_pj != eb.buffer_pj || ea.control_pj != eb.control_pj ||
        ea.comm_pj != eb.comm_pj || ea.leakage_pj != eb.leakage_pj) {
      why = "native energy breakdown";
      return false;
    }
    const core::EventCounts &va = ra.events, &vb = rb.events;
    if (va.mca_activations != vb.mca_activations ||
        va.mca_skips != vb.mca_skips ||
        va.neuron_integrations != vb.neuron_integrations ||
        va.neuron_fires != vb.neuron_fires ||
        va.buffer_bits != vb.buffer_bits ||
        va.switch_flits != vb.switch_flits ||
        va.switch_skips != vb.switch_skips || va.bus_words != vb.bus_words ||
        va.bus_skips != vb.bus_skips ||
        va.ccu_transfers != vb.ccu_transfers ||
        va.sram_reads != vb.sram_reads || va.sram_writes != vb.sram_writes) {
      why = "native event counters";
      return false;
    }
    if (ra.perf.cycles_pipelined != rb.perf.cycles_pipelined ||
        ra.perf.cycles_serial != rb.perf.cycles_serial ||
        ra.perf.cycles_compute != rb.perf.cycles_compute ||
        ra.perf.cycles_transport != rb.perf.cycles_transport ||
        ra.perf.cycles_stall != rb.perf.cycles_stall ||
        ra.perf.clock_mhz != rb.perf.clock_mhz) {
      why = "native perf counters";
      return false;
    }
    const auto same_level = [](const noc::LevelStats& x,
                               const noc::LevelStats& y) {
      return x.words == y.words && x.hops == y.hops && x.drops == y.drops &&
             x.stall_cycles == y.stall_cycles &&
             x.busy_cycles == y.busy_cycles && x.queue_peak == y.queue_peak;
    };
    if (!same_level(ra.noc.mesh, rb.noc.mesh) ||
        !same_level(ra.noc.tree, rb.noc.tree) ||
        !same_level(ra.noc.bus, rb.noc.bus)) {
      why = "native noc counters";
      return false;
    }
    if (ra.classifications != rb.classifications) {
      why = "native classifications";
      return false;
    }
  }
  return true;
}

}  // namespace

DifferentialResult check_differential(const snn::FuzzCase& c) {
  DifferentialResult out;
  const snn::Network net = snn::make_fuzz_network(c);

  // -- simulation: dense is the oracle; sparse and packed must match it --
  snn::SimConfig cfg;
  cfg.timesteps = c.timesteps;
  cfg.encoder = c.encoder;
  cfg.record_trace = true;

  snn::SimResult results[3];
  const snn::ExecutionMode modes[] = {snn::ExecutionMode::kDense,
                                      snn::ExecutionMode::kSparse,
                                      snn::ExecutionMode::kPacked};
  for (std::size_t m = 0; m < 3; ++m) {
    cfg.mode = modes[m];
    snn::Simulator sim(net, cfg);
    // Same seed per mode: the encoder consumes identical random streams,
    // so any divergence is the engine's, not the input's.
    Rng rng(c.seed ^ 0xd1ffe8e47ull);
    results[m] = sim.run(c.image, rng);
  }
  for (std::size_t m = 1; m < 3; ++m) {
    std::string why;
    if (!same_sim(results[0], results[m], why)) {
      out.ok = false;
      out.detail = diverged(
          c, std::string("dense vs ") + mode_name(modes[m]) + ": " + why);
      return out;
    }
  }

  // -- replay: sequential dense executor vs the "+packed" batched path --
  const std::string base = "resparc-" + std::to_string(c.mca_size);
  const auto dense_accel = make_accelerator(base);
  const auto packed_accel = make_accelerator(base + "+packed");
  dense_accel->load(c.topology);
  packed_accel->load(c.topology);

  // Two presentations (the same trace twice) exercise the multi-lane path
  // even though one fuzz case yields one trace.
  const std::vector<snn::SpikeTrace> traces = {results[0].trace,
                                               results[0].trace};
  const ExecutionReport ref = dense_accel->execute(traces);
  ExecutionReport batched = packed_accel->execute(traces);
  // The backend label legitimately differs ("+packed"); align it so
  // same_report compares only the numbers.
  batched.backend = ref.backend;
  std::string why;
  if (!same_report(ref, batched, why)) {
    out.ok = false;
    out.detail = diverged(c, "executor dense vs batched: " + why);
    return out;
  }

  // -- per-trace replay: execute_each lanes vs solo execute() ----------
  std::vector<ExecutionReport> each;
  packed_accel->execute_each(traces, each);
  if (each.size() != traces.size()) {
    out.ok = false;
    out.detail = diverged(c, "execute_each report count");
    return out;
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    ExecutionReport solo = dense_accel->execute(traces[i]);
    each[i].backend = solo.backend;
    if (!same_report(solo, each[i], why)) {
      out.ok = false;
      out.detail = diverged(c, "execute_each lane " + std::to_string(i) +
                                   " vs solo execute: " + why);
      return out;
    }
  }
  return out;
}

}  // namespace resparc::api
