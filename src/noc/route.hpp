// Routes through the hierarchical Ml-NoC (paper Fig. 6/7, docs/noc.md).
//
// A Route describes the path one layer-boundary transfer takes through
// the multi-level fabric: within a NeuroCell it crosses the programmable
// switch mesh; between NeuroCells it climbs an H-tree of switch levels to
// the serial global bus at the root and descends to the destination
// cells.  The compiler's routing pass (compile::Compiler) emits one Route
// per boundary into the CompiledProgram, and both the analytic cost model
// and the executor's NoC transport consume the same table — routing can
// no longer drift between compile-time ranking and measured replay.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/mapper.hpp"

namespace resparc::noc {

/// Timing fidelity of the fabric model (docs/noc.md).
enum class Fidelity {
  kAnalytic,  ///< flat per-word cycle charges; reproduces the pre-NoC totals
  kEvent,     ///< event-driven FIFO queues: adds hop fill + congestion stalls
};

/// "analytic" / "event" — the names BackendOptions::noc and bench output use.
std::string to_string(Fidelity fidelity);

/// Parses "analytic"/"event"; returns false for anything else.
bool parse_fidelity(const std::string& text, Fidelity& out);

/// The path of one layer-boundary transfer through the fabric.  Boundary b
/// carries the spikes *into* layer b (b = 0 is the input broadcast from
/// the SRAM); boundary layer_count() is the final-layer egress.
struct Route {
  std::size_t boundary = 0;      ///< boundary index (0 = input broadcast)
  /// Source NeuroCell.  The input broadcast has no source cell (the SRAM
  /// sits at the root), so boundary 0 mirrors the first destination cell
  /// here; distinguish it by `boundary == 0`, not by this field.
  std::size_t src_nc = 0;
  std::size_t dst_nc_first = 0;  ///< first destination NeuroCell
  std::size_t dst_nc_last = 0;   ///< last destination NeuroCell
  /// True when the transfer leaves its NeuroCell: it must climb the
  /// inter-cell hierarchy and cross the serial global bus at the root.
  bool uses_bus = false;
  /// Switch-mesh hops per word inside the (shared) NeuroCell; 0 for bus
  /// routes.
  std::size_t mesh_hops = 0;
  /// H-tree switch levels traversed per word (ascent + descent around the
  /// turning level); 0 for intra-cell routes.
  std::size_t tree_hops = 0;
  /// Height of the lowest common ancestor of the source and destination
  /// subtrees (0 = same NeuroCell).  A transfer only climbs this far: it
  /// contends for its LCA subtree's link, and only routes whose LCA is
  /// the root serialize on the global bus (paper Fig. 7(a)'s multi-level
  /// hierarchy).  Input broadcast and egress always turn at the root.
  std::size_t lca_height = 0;
  /// Source NeuroCells the transfer gathers from.  Each source cell
  /// streams its share of the words up its own H-tree uplink in
  /// parallel, so a layer spread across more cells injects faster —
  /// the event model's gather (ascent) time is ceil(words / src_span).
  std::size_t src_span = 1;

  /// Destination NeuroCells covered (broadcast width on descent) —
  /// derived from the stored destination range, not serialized state.
  std::size_t fanout() const { return dst_nc_last - dst_nc_first + 1; }
};

/// Per-boundary route table of one compiled network: layer_count() + 1
/// routes, indexed by boundary.
struct RouteTable {
  std::vector<Route> boundaries;  ///< boundary b's route at index b

  /// True when no routes have been computed (legacy artifacts).
  bool empty() const { return boundaries.empty(); }
  /// Routes carried (layer boundaries + input broadcast + egress).
  std::size_t size() const { return boundaries.size(); }
  /// Route of boundary `b` (bounds-checked; throws ConfigError).
  const Route& at(std::size_t b) const;
};

/// Depth of the balanced binary H-tree spanning `neurocells` cells
/// (0 when the network fits one NeuroCell).
std::size_t tree_depth(std::size_t neurocells);

/// Height of the lowest common ancestor of leaves `a` and `b` in the
/// balanced binary H-tree (0 when a == b).  Exposed so the static
/// verifier (src/verify) recomputes route heights with the exact
/// definition the routing pass used.
std::size_t lca_height_of(std::size_t a, std::size_t b);

/// The routing pass: derives the per-boundary route table from a placed
/// mapping.  Deterministic; `uses_bus` agrees with
/// Mapping::boundary_uses_bus for every in-range boundary, so analytic
/// costs are unchanged by construction.
RouteTable compute_routes(const core::Mapping& mapping);

}  // namespace resparc::noc
