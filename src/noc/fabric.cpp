#include "noc/fabric.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resparc::noc {

namespace {

/// Service time of one transfer on its bottleneck resource — identical in
/// both fidelities so the event model's latency is the analytic service
/// plus explicitly accounted fill and stall, never a different base.
double service_cycles(const Route& route, std::size_t sent,
                      const core::ResparcConfig& config) {
  if (route.uses_bus) return kBusCyclesPerWord * static_cast<double>(sent);
  return std::ceil(static_cast<double>(sent) /
                   static_cast<double>(config.nc_dim));
}

}  // namespace

Transport analytic_transfer(const Route& route, std::size_t sent,
                            std::size_t zeros,
                            const core::ResparcConfig& config,
                            NocStats& stats) {
  Transport t;
  t.cycles = service_cycles(route, sent, config);
  if (route.uses_bus) {
    stats.bus.words += sent;
    stats.bus.hops += sent;  // one serial bus crossing per word
    stats.bus.drops += zeros;
    stats.bus.busy_cycles += t.cycles;
    stats.tree.words += sent;
    stats.tree.hops += sent * route.tree_hops;
  } else {
    stats.mesh.words += sent;
    stats.mesh.hops += sent * route.mesh_hops;
    stats.mesh.drops += zeros;
    stats.mesh.busy_cycles += t.cycles;
  }
  return t;
}

Fabric::Fabric(const core::ResparcConfig& config, std::size_t neurocells)
    : config_(config),
      root_(0, config.event_driven) {
  require(neurocells > 0, "fabric: need at least one NeuroCell");
  const std::size_t depth = tree_depth(neurocells);
  mesh_.reserve(neurocells);
  for (std::size_t nc = 0; nc < neurocells; ++nc)
    mesh_.emplace_back(static_cast<std::uint16_t>(nc + 1),
                       config.event_driven);
  tree_.reserve(depth);
  for (std::size_t level = 0; level < depth; ++level)
    tree_.emplace_back(static_cast<std::uint16_t>(neurocells + 1 + level),
                       config.event_driven);
  mesh_free_.assign(neurocells, 0.0);
  node_free_.resize(depth);
  for (std::size_t h = 1; h <= depth; ++h)
    node_free_[h - 1].assign((neurocells >> h) + 1, 0.0);
}

void Fabric::begin_step() {
  std::fill(mesh_free_.begin(), mesh_free_.end(), 0.0);
  for (auto& level : node_free_) std::fill(level.begin(), level.end(), 0.0);
  bus_free_ = 0.0;
}

std::size_t Fabric::pump(core::ProgrammableSwitch& sw, std::size_t sent,
                         std::size_t zeros) {
  core::SpikePacket packet;
  packet.dst_switch = sw.id();
  packet.payload = 0;
  for (std::size_t w = 0; w < zeros; ++w) (void)sw.offer(packet);
  packet.payload = 1;  // non-zero flit: survives the zero-check
  for (std::size_t w = 0; w < sent; ++w) (void)sw.offer(packet);
  std::size_t traversed = 0;
  while (sw.pending()) {
    (void)sw.deliver();
    ++traversed;
  }
  return traversed;
}

Transport Fabric::transfer(const Route& route, std::size_t sent,
                           std::size_t zeros, double arrival) {
  Transport t;
  // A fully zero-checked transfer costs nothing beyond the drop
  // accounting — the zero-activity floor of docs/execution.md holds in
  // event fidelity too.
  if (sent == 0) {
    if (zeros > 0) {
      if (route.uses_bus) {
        const std::size_t depth = tree_.size();
        core::ProgrammableSwitch& entry =
            tree_.empty()
                ? root_
                : tree_[std::min(route.lca_height > 0 ? route.lca_height : 1,
                                 depth) - 1];
        (void)pump(entry, 0, zeros);
        stats_.bus.drops += zeros;  // same attribution as analytic_transfer
      } else if (route.dst_nc_first < mesh_.size()) {
        (void)pump(mesh_[route.dst_nc_first], 0, zeros);
        stats_.mesh.drops += zeros;
      }
    }
    return t;
  }
  const double service = service_cycles(route, sent, config_);

  if (route.uses_bus) {
    // Zero words are checked (and dropped) at injection; surviving words
    // climb the tree — each source cell streams its share up its own
    // uplink in parallel (the gather), so a layer spread across more
    // cells injects faster.  The transfer then serializes (FIFO) on the
    // link above its LCA subtree: only routes turning at the root
    // contend for the serial global bus; neighbouring cells share a
    // local subtree link instead (the Ml-NoC's locality lever), and
    // finally broadcast-descend to every destination cell.
    const std::size_t depth = tree_.size();
    const std::size_t h =
        std::min(route.lca_height > 0 ? route.lca_height : 1,
                 depth > 0 ? depth : 1);
    const bool at_root = depth == 0 || route.lca_height >= depth;
    core::ProgrammableSwitch& entry = tree_.empty() ? root_ : tree_[h - 1];
    const std::size_t offered = pump(entry, sent, zeros);
    const std::size_t span = route.src_span > 0 ? route.src_span : 1;
    const double ascent =
        std::ceil(static_cast<double>(sent) / static_cast<double>(span));
    double& link =
        at_root ? bus_free_
                : node_free_[h - 1][std::min(route.src_nc,
                                             route.dst_nc_first) >> h];
    const double at_link = arrival + ascent;
    const double start = std::max(at_link, link);
    t.stall_cycles = start - at_link;
    link = start + service;
    t.cycles = t.stall_cycles + ascent + service +
               static_cast<double>(route.tree_hops);

    // Traffic counters (words/hops/drops) attribute exactly like the
    // analytic model — they describe the route, not the timing — so
    // per-level traffic is fidelity-independent.  Only busy/stall/queue
    // land on the level whose resource actually arbitrated the transfer.
    stats_.bus.words += offered;
    stats_.bus.hops += offered;
    stats_.bus.drops += zeros;
    stats_.tree.words += offered;
    stats_.tree.hops += offered * route.tree_hops;
    LevelStats& level = at_root ? stats_.bus : stats_.tree;
    level.busy_cycles += service;
    level.stall_cycles += t.stall_cycles;
    level.queue_peak =
        std::max(level.queue_peak, entry.counters().buffered_max);
    if (at_root) stats_.tree.busy_cycles += ascent;
  } else {
    require(route.dst_nc_first < mesh_.size(),
            "fabric: route destination outside the fabric");
    core::ProgrammableSwitch& entry = mesh_[route.dst_nc_first];
    const std::size_t offered = pump(entry, sent, zeros);
    double& lane = mesh_free_[route.dst_nc_first];
    const double start = std::max(arrival, lane);
    t.stall_cycles = start - arrival;
    lane = start + service;
    t.cycles =
        t.stall_cycles + service + static_cast<double>(route.mesh_hops);

    stats_.mesh.words += offered;
    stats_.mesh.hops += offered * route.mesh_hops;
    stats_.mesh.drops += zeros;
    stats_.mesh.busy_cycles += service;
    stats_.mesh.stall_cycles += t.stall_cycles;
    stats_.mesh.queue_peak =
        std::max(stats_.mesh.queue_peak, entry.counters().buffered_max);
  }
  return t;
}

core::SwitchCounters Fabric::switch_totals() const {
  core::SwitchCounters total;
  auto fold = [&total](const core::ProgrammableSwitch& sw) {
    total.forwarded += sw.counters().forwarded;
    total.dropped_zero += sw.counters().dropped_zero;
    total.buffered_max = std::max(total.buffered_max,
                                  sw.counters().buffered_max);
  };
  for (const auto& sw : mesh_) fold(sw);
  for (const auto& sw : tree_) fold(sw);
  fold(root_);
  return total;
}

void Fabric::reset() {
  for (auto& sw : mesh_) sw.reset_counters();
  for (auto& sw : tree_) sw.reset_counters();
  root_.reset_counters();
  mesh_free_.assign(mesh_free_.size(), 0.0);
  for (auto& level : node_free_) std::fill(level.begin(), level.end(), 0.0);
  bus_free_ = 0.0;
  stats_ = NocStats{};
}

}  // namespace resparc::noc
