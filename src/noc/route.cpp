#include "noc/route.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resparc::noc {

std::string to_string(Fidelity fidelity) {
  return fidelity == Fidelity::kAnalytic ? "analytic" : "event";
}

bool parse_fidelity(const std::string& text, Fidelity& out) {
  if (text == "analytic") {
    out = Fidelity::kAnalytic;
    return true;
  }
  if (text == "event") {
    out = Fidelity::kEvent;
    return true;
  }
  return false;
}

const Route& RouteTable::at(std::size_t b) const {
  require(b < boundaries.size(), "route table: boundary out of range");
  return boundaries[b];
}

std::size_t tree_depth(std::size_t neurocells) {
  std::size_t depth = 0;
  std::size_t span = 1;
  while (span < neurocells) {
    span *= 2;
    ++depth;
  }
  return depth;
}

std::size_t lca_height_of(std::size_t a, std::size_t b) {
  std::size_t h = 0;
  while ((a >> h) != (b >> h)) ++h;
  return h;
}

RouteTable compute_routes(const core::Mapping& mapping) {
  const std::size_t layers = mapping.layers.size();
  require(layers > 0, "compute_routes: empty mapping");
  const std::size_t depth = tree_depth(mapping.total_neurocells);
  // Representative mesh path inside a NeuroCell: a word entering the
  // nc_dim x nc_dim mPE grid crosses one switch column per grid step,
  // i.e. nc_dim - 1 switches of the (nc_dim-1)^2 mesh (Fig. 6).
  const std::size_t mesh = mapping.config.nc_dim - 1;

  RouteTable table;
  table.boundaries.reserve(layers + 2);

  for (std::size_t b = 0; b <= layers; ++b) {
    Route r;
    r.boundary = b;
    if (b == 0) {
      // Input broadcast: SRAM at the root descends to layer 0's cells.
      const core::LayerMapping& dst = mapping.layers[0];
      r.src_nc = dst.first_nc;
      r.dst_nc_first = dst.first_nc;
      r.dst_nc_last = dst.last_nc;
      r.uses_bus = true;
      r.tree_hops = depth;
      r.lca_height = depth;  // the SRAM hangs off the root
      r.src_span = 1;        // ... as one serial port
    } else if (b == layers) {
      // Final-layer egress: climb from the last layer's cells to the root.
      const core::LayerMapping& src = mapping.layers[layers - 1];
      r.src_nc = src.last_nc;
      r.dst_nc_first = src.last_nc;
      r.dst_nc_last = src.last_nc;
      r.uses_bus = true;
      r.tree_hops = depth;
      r.lca_height = depth;  // results leave through the root port
      r.src_span = src.last_nc - src.first_nc + 1;
    } else {
      const core::LayerMapping& src = mapping.layers[b - 1];
      const core::LayerMapping& dst = mapping.layers[b];
      r.src_nc = src.last_nc;
      r.dst_nc_first = dst.first_nc;
      r.dst_nc_last = dst.last_nc;
      r.uses_bus = mapping.boundary_uses_bus(b);
      if (r.uses_bus) {
        // The transfer climbs only to the lowest level whose subtree
        // covers both endpoint ranges (the Ml-NoC's locality lever:
        // neighbouring cells never touch the root).
        const std::size_t span_min = std::min(src.first_nc, r.dst_nc_first);
        const std::size_t span_max = std::max(src.last_nc, r.dst_nc_last);
        r.lca_height = std::max<std::size_t>(
            1, lca_height_of(span_min, span_max));
        r.tree_hops = 2 * r.lca_height;  // ascent + descent
      } else {
        r.mesh_hops = mesh;
      }
      r.src_span = src.last_nc - src.first_nc + 1;
    }
    table.boundaries.push_back(r);
  }
  return table;
}

}  // namespace resparc::noc
