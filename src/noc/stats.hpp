// Per-level traffic counters of the hierarchical Ml-NoC (docs/noc.md).
//
// The fabric model resolves every transfer into the three hierarchy
// levels of paper Fig. 7 — the switch mesh inside a NeuroCell, the
// H-tree between NeuroCells, and the serial global bus at the root —
// and counts words, hops, zero-check drops and congestion per level.
// Kept include-free of the fabric so core::RunReport can embed the
// counters without pulling the whole NoC model into every consumer.
#pragma once

#include <cstddef>

namespace resparc::noc {

/// Counters of one hierarchy level, summed over a run.
struct LevelStats {
  std::size_t words = 0;        ///< words that traversed this level
  std::size_t hops = 0;         ///< word-hops (words x switches crossed)
  std::size_t drops = 0;        ///< all-zero words dropped by the zero-check
  double stall_cycles = 0.0;    ///< cycles waited on a busy resource (FIFO)
  double busy_cycles = 0.0;     ///< cycles the level's bottleneck was occupied
  std::size_t queue_peak = 0;   ///< high-water mark of the level's FIFOs

  LevelStats& operator+=(const LevelStats& other) {
    words += other.words;
    hops += other.hops;
    drops += other.drops;
    stall_cycles += other.stall_cycles;
    busy_cycles += other.busy_cycles;
    queue_peak = other.queue_peak > queue_peak ? other.queue_peak : queue_peak;
    return *this;
  }
};

/// Whole-fabric roll-up: one LevelStats per hierarchy level.  Summed over
/// a trace set (like core::EventCounts), never averaged.
struct NocStats {
  LevelStats mesh;  ///< intra-NeuroCell programmable-switch mesh
  LevelStats tree;  ///< inter-NeuroCell H-tree switch levels
  LevelStats bus;   ///< serial global bus + input SRAM staging at the root

  /// Total word-hops across every level.
  std::size_t total_hops() const { return mesh.hops + tree.hops + bus.hops; }
  /// Total congestion stall cycles across every level.
  double total_stall_cycles() const {
    return mesh.stall_cycles + tree.stall_cycles + bus.stall_cycles;
  }
  /// Total zero-check drops across every level.
  std::size_t total_drops() const {
    return mesh.drops + tree.drops + bus.drops;
  }

  NocStats& operator+=(const NocStats& other) {
    mesh += other.mesh;
    tree += other.tree;
    bus += other.bus;
    return *this;
  }
};

}  // namespace resparc::noc
