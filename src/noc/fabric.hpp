// Cycle-approximate hierarchical Ml-NoC fabric model (docs/noc.md).
//
// Models the three-level interconnect of paper Fig. 6/7 that carries
// spike words between pipeline stages:
//
//   level 0  switch mesh inside each NeuroCell ((nc_dim-1)^2 switches)
//   level 1  H-tree of ProgrammableSwitch levels between NeuroCells
//   level 2  serial global bus + input SRAM staging at the root
//
// Two timing fidelities share one hop/word/drop accounting:
//
//   * analytic_transfer() — the flat per-word charges the executor has
//     always used (kBusCyclesPerWord per bus word, ceil(words/nc_dim)
//     through the mesh).  Allocation-free, reproduces the pre-NoC energy
//     and latency totals bit-for-bit.
//   * Fabric — event-driven: every transfer is offered to real
//     ProgrammableSwitch FIFOs (the zero-check drops all-zero words at
//     injection), arbitration is FIFO across senders, shared resources
//     (the root bus, each cell's mesh) serialize contending transfers and
//     the wait shows up as per-level stall cycles.  Event fidelity adds
//     hop pipeline-fill and congestion latency on top of the analytic
//     service time — it never reports less.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/switch.hpp"
#include "noc/route.hpp"
#include "noc/stats.hpp"

namespace resparc::noc {

/// Cycles to move one word across the global bus: SRAM staging write plus
/// a broadcast read (Fig. 7(b): serial transfer through the shared bus).
/// Shared by the analytic cost model, the analytic transfer charges and
/// the event fabric's bus service time, so the three cannot drift.
inline constexpr double kBusCyclesPerWord = 2.0;

/// Timing of one transfer through the fabric.
struct Transport {
  double cycles = 0.0;        ///< total transport latency (incl. stalls)
  double stall_cycles = 0.0;  ///< cycles spent waiting on busy resources
};

/// Flat (pre-NoC) transfer charges with per-level accounting: service is
/// `kBusCyclesPerWord * sent` on bus routes and `ceil(sent / nc_dim)`
/// through the mesh; no queueing, no hop fill, no stalls.  `zeros` words
/// were suppressed by the zero-check before injection and are recorded as
/// drops on the route's injection level.  Allocation-free.
Transport analytic_transfer(const Route& route, std::size_t sent,
                            std::size_t zeros,
                            const core::ResparcConfig& config,
                            NocStats& stats);

/// The event-driven fabric: per-step FIFO queues over ProgrammableSwitch
/// levels.  One instance models one chip; create it per replay (it keeps
/// per-resource clocks, switch queues and cumulative NocStats).
class Fabric {
 public:
  /// Builds the fabric for `config` spanning `neurocells` cells.  The
  /// switches' zero-check is driven by `config.event_driven` — the same
  /// flag the executor's event accounting uses, not a parallel notion.
  Fabric(const core::ResparcConfig& config, std::size_t neurocells);

  /// Hierarchy depth of the inter-NeuroCell H-tree.
  std::size_t depth() const { return tree_.size(); }

  /// Starts a new timestep: every per-resource clock rewinds to zero
  /// (resources are busy *within* a step; steps are synchronization
  /// barriers).
  void begin_step();

  /// Transfers `sent` non-zero words (plus `zeros` all-zero words that
  /// the zero-check may drop) along `route`, arriving at `arrival`
  /// cycles into the current step.  Words are offered to the route's
  /// switch FIFOs, resources serialize in FIFO order, and the returned
  /// latency includes service, hop pipeline-fill and congestion stall.
  Transport transfer(const Route& route, std::size_t sent, std::size_t zeros,
                     double arrival);

  /// Cumulative per-level counters since construction (or reset()).
  const NocStats& stats() const { return stats_; }

  /// Aggregate ProgrammableSwitch counters over every level: forwarded /
  /// dropped_zero feed the executor's switch-flit accounting, and
  /// buffered_max is the fabric-wide FIFO high-water mark.
  core::SwitchCounters switch_totals() const;

  /// Clears stats, switch counters and resource clocks.
  void reset();

 private:
  /// Offers `sent` + `zeros` words to `sw` and drains it, tallying
  /// forwarded/dropped counters; returns the words that traversed.
  std::size_t pump(core::ProgrammableSwitch& sw, std::size_t sent,
                   std::size_t zeros);

  core::ResparcConfig config_;
  std::vector<core::ProgrammableSwitch> mesh_;  ///< entry switch per NeuroCell
  std::vector<core::ProgrammableSwitch> tree_;  ///< one switch per H-tree level
  core::ProgrammableSwitch root_;               ///< bus port at the tree root
  std::vector<double> mesh_free_;  ///< per-cell mesh clock within the step
  /// Per-subtree link clocks: node_free_[h-1][node] is the uplink above
  /// H-tree node `node` at height h — the resource a transfer turning at
  /// height h contends for.
  std::vector<std::vector<double>> node_free_;
  double bus_free_ = 0.0;          ///< root bus clock within the step
  NocStats stats_;
};

}  // namespace resparc::noc
