#include "data/dataset.hpp"

#include "common/error.hpp"

namespace resparc::data {

Dataset Dataset::take(std::size_t n) const {
  require(n <= size(), "Dataset::take: not enough samples");
  Dataset out;
  out.shape = shape;
  out.classes = classes;
  out.images.assign(images.begin(), images.begin() + static_cast<std::ptrdiff_t>(n));
  out.labels.assign(labels.begin(), labels.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

Dataset Dataset::drop(std::size_t n) const {
  require(n <= size(), "Dataset::drop: not enough samples");
  Dataset out;
  out.shape = shape;
  out.classes = classes;
  out.images.assign(images.begin() + static_cast<std::ptrdiff_t>(n), images.end());
  out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(n), labels.end());
  return out;
}

}  // namespace resparc::data
