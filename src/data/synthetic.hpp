// Synthetic stand-ins for MNIST, SVHN and CIFAR-10.
//
// The real datasets are not available in this offline environment, so each
// family is replaced by a procedural generator that preserves the two
// properties the paper's experiments actually consume (docs/architecture.md):
//
//   1. *Spike statistics.*  MNIST-like images are bright glyph strokes on a
//      black background — long zero runs, the driver of the event-driven
//      savings in Fig. 13.  SVHN-like images are digit glyphs over bright
//      coloured backgrounds and CIFAR-like images are textured colour
//      blobs — few zero runs, matching the paper's observation that CNN
//      inputs "typically comprise foreground pixels".
//   2. *Class separability.*  Ten distinct procedural prototypes per family
//      with pose/noise jitter give a learnable 10-class problem, so the
//      accuracy-vs-bit-precision trend of Fig. 14(a) is measurable.
//
// All generation is deterministic in (kind, seed, index).
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::data {

/// Options controlling generation.
struct SyntheticOptions {
  std::size_t count = 256;       ///< number of samples
  std::uint64_t seed = 1;        ///< generator seed
  double noise = 0.05;           ///< additive pixel noise std-dev
  double jitter_pixels = 2.0;    ///< max |translation| applied to the glyph
};

/// Generates a dataset of the given family at its native shape
/// (MNIST-like 1x28x28, SVHN/CIFAR-like 3x32x32).
Dataset make_synthetic(snn::DatasetKind kind, const SyntheticOptions& options);

/// Same content downsampled (channel-preserving 2x2 mean) to 3x16x16 —
/// the MLP benchmarks' 768-dimensional input.
Dataset make_synthetic_downsampled(snn::DatasetKind kind,
                                   const SyntheticOptions& options);

/// Draws the class-`label` glyph/object prototype (no jitter, no noise)
/// at the family's native shape; exposed for tests.
Tensor3 class_prototype(snn::DatasetKind kind, int label);

}  // namespace resparc::data
