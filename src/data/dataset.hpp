// Labelled image dataset container.
//
// Images are flat CHW float vectors in [0,1], the exact form the spike
// encoder consumes.  The container is deliberately dumb — generation logic
// lives in synthetic.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "common/tensor.hpp"

namespace resparc::data {

/// A set of images with integer class labels.
struct Dataset {
  Shape3 shape{};                          ///< shape of every image
  std::vector<std::vector<float>> images;  ///< flat CHW intensities in [0,1]
  std::vector<int> labels;                 ///< class index per image
  int classes = 0;                         ///< number of classes

  std::size_t size() const { return images.size(); }

  /// Splits off the first `n` samples as a new dataset (train/test split
  /// helper; generation already shuffles).
  Dataset take(std::size_t n) const;

  /// Remaining samples after the first `n`.
  Dataset drop(std::size_t n) const;
};

}  // namespace resparc::data
