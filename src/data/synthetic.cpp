#include "data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace resparc::data {
namespace {

using resparc::snn::DatasetKind;

// ---------------------------------------------------------------------------
// Seven-segment digit glyphs (classes 0..9 of the MNIST/SVHN families).
// Segment layout (unit square):   A top, G middle, D bottom horizontals;
// F/B upper-left/right, E/C lower-left/right verticals.
// ---------------------------------------------------------------------------

struct Segment {
  float x0, y0, x1, y1;
};

constexpr std::array<Segment, 7> kSegments{{
    {0.25f, 0.15f, 0.75f, 0.15f},  // A
    {0.75f, 0.15f, 0.75f, 0.50f},  // B
    {0.75f, 0.50f, 0.75f, 0.85f},  // C
    {0.25f, 0.85f, 0.75f, 0.85f},  // D
    {0.25f, 0.50f, 0.25f, 0.85f},  // E
    {0.25f, 0.15f, 0.25f, 0.50f},  // F
    {0.25f, 0.50f, 0.75f, 0.50f},  // G
}};

// Bitmask of segments per digit, bit i = segment i (A..G).
constexpr std::array<unsigned, 10> kDigitSegments{
    0b0111111,  // 0: ABCDEF
    0b0000110,  // 1: BC
    0b1011011,  // 2: ABDEG
    0b1001111,  // 3: ABCDG
    0b1100110,  // 4: BCFG
    0b1101101,  // 5: ACDFG
    0b1111101,  // 6: ACDEFG
    0b0000111,  // 7: ABC
    0b1111111,  // 8: all
    0b1101111,  // 9: ABCDFG
};

/// Distance from point (px,py) to the segment (x0,y0)-(x1,y1).
float point_segment_distance(float px, float py, const Segment& s) {
  const float dx = s.x1 - s.x0;
  const float dy = s.y1 - s.y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0f ? ((px - s.x0) * dx + (py - s.y0) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = s.x0 + t * dx;
  const float cy = s.y0 + t * dy;
  return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

/// Renders the digit's segments into every channel with intensity
/// `value`, anti-aliased by distance, translated by (dx,dy) pixels.
void draw_digit(Tensor3& img, int digit, float value, float dx, float dy,
                float stroke = 0.055f) {
  const auto& sh = img.shape();
  const unsigned mask = kDigitSegments[static_cast<std::size_t>(digit)];
  for (std::size_t y = 0; y < sh.h; ++y) {
    for (std::size_t x = 0; x < sh.w; ++x) {
      const float px = (static_cast<float>(x) - dx) / static_cast<float>(sh.w - 1);
      const float py = (static_cast<float>(y) - dy) / static_cast<float>(sh.h - 1);
      float best = 1e9f;
      for (std::size_t s = 0; s < kSegments.size(); ++s)
        if (mask & (1u << s))
          best = std::min(best, point_segment_distance(px, py, kSegments[s]));
      if (best < stroke) {
        const float alpha = std::clamp((stroke - best) / stroke * 2.0f, 0.0f, 1.0f);
        for (std::size_t c = 0; c < sh.c; ++c) {
          float& pixel = img(c, y, x);
          pixel = std::max(pixel, value * alpha);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CIFAR-like object prototypes: 10 colour/shape combinations.
// ---------------------------------------------------------------------------

struct Rgb {
  float r, g, b;
};

constexpr std::array<Rgb, 10> kObjectColors{{
    {0.95f, 0.20f, 0.15f},  // 0 red
    {0.15f, 0.85f, 0.25f},  // 1 green
    {0.20f, 0.35f, 0.95f},  // 2 blue
    {0.95f, 0.90f, 0.20f},  // 3 yellow
    {0.90f, 0.25f, 0.85f},  // 4 magenta
    {0.20f, 0.90f, 0.90f},  // 5 cyan
    {0.95f, 0.55f, 0.15f},  // 6 orange
    {0.55f, 0.25f, 0.85f},  // 7 purple
    {0.92f, 0.92f, 0.92f},  // 8 white
    {0.15f, 0.60f, 0.55f},  // 9 teal
}};

/// Signed "inside-ness" of the class shape at normalised coords (u,v)
/// centred on (0.5,0.5); > 0 means inside.
float object_shape(int label, float u, float v) {
  const float cu = u - 0.5f;
  const float cv = v - 0.5f;
  const float r = std::sqrt(cu * cu + cv * cv);
  switch (label) {
    case 0: return 0.32f - r;                                   // disc
    case 1: return 0.28f - std::max(std::abs(cu), std::abs(cv)); // square
    case 2: return (cv + 0.25f) - 1.8f * std::abs(cu) >= 0.0f && cv < 0.28f
                 ? 0.1f : -0.1f;                                 // triangle
    case 3: return std::sin(v * 18.0f) > 0.2f ? 0.1f : -0.1f;    // h-stripes
    case 4: return std::sin(u * 18.0f) > 0.2f ? 0.1f : -0.1f;    // v-stripes
    case 5: return (std::sin(u * 12.0f) * std::sin(v * 12.0f)) > 0.0f
                 ? 0.1f : -0.1f;                                 // checker
    case 6: return std::sin((u + v) * 14.0f) > 0.2f ? 0.1f : -0.1f; // diagonal
    case 7: return 0.06f - std::abs(r - 0.26f);                  // ring
    case 8: return (std::abs(cu) < 0.08f || std::abs(cv) < 0.08f) && r < 0.38f
                 ? 0.1f : -0.1f;                                 // cross
    default: return 0.30f - (std::abs(cu) + std::abs(cv));       // diamond
  }
}

void draw_object(Tensor3& img, int label, float dx, float dy) {
  const auto& sh = img.shape();
  const Rgb color = kObjectColors[static_cast<std::size_t>(label)];
  const std::array<float, 3> rgb{color.r, color.g, color.b};
  for (std::size_t y = 0; y < sh.h; ++y) {
    for (std::size_t x = 0; x < sh.w; ++x) {
      const float u = (static_cast<float>(x) - dx) / static_cast<float>(sh.w - 1);
      const float v = (static_cast<float>(y) - dy) / static_cast<float>(sh.h - 1);
      if (object_shape(label, u, v) > 0.0f) {
        for (std::size_t c = 0; c < std::min<std::size_t>(3, sh.c); ++c)
          img(c, y, x) = rgb[c];
      }
    }
  }
}

/// Fills the image with a dense textured background (for SVHN/CIFAR-like
/// families): per-channel base tone plus low-frequency ripple.
void fill_background(Tensor3& img, Rng& rng, float lo, float hi) {
  const auto& sh = img.shape();
  for (std::size_t c = 0; c < sh.c; ++c) {
    const float base = static_cast<float>(rng.uniform(lo, hi));
    const float fx = static_cast<float>(rng.uniform(0.05, 0.2));
    const float fy = static_cast<float>(rng.uniform(0.05, 0.2));
    for (std::size_t y = 0; y < sh.h; ++y)
      for (std::size_t x = 0; x < sh.w; ++x)
        img(c, y, x) = std::clamp(
            base + 0.08f * std::sin(fx * static_cast<float>(x) +
                                    fy * static_cast<float>(y)),
            0.0f, 1.0f);
  }
}

void add_noise_and_clamp(Tensor3& img, Rng& rng, double noise) {
  for (float& v : img.flat()) {
    if (noise > 0.0) v += static_cast<float>(rng.normal(0.0, noise));
    v = std::clamp(v, 0.0f, 1.0f);
  }
}

Shape3 native_shape(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMnistLike: return Shape3{1, 28, 28};
    case DatasetKind::kSvhnLike: return Shape3{3, 32, 32};
    case DatasetKind::kCifarLike: return Shape3{3, 32, 32};
  }
  throw ConfigError("unknown dataset kind");
}

Tensor3 render_sample(DatasetKind kind, int label, Rng& rng,
                      const SyntheticOptions& opt) {
  Tensor3 img(native_shape(kind));
  const float dx = static_cast<float>(rng.uniform(-opt.jitter_pixels, opt.jitter_pixels));
  const float dy = static_cast<float>(rng.uniform(-opt.jitter_pixels, opt.jitter_pixels));
  switch (kind) {
    case DatasetKind::kMnistLike: {
      // Bright stroke on black background: sparse image, long zero runs.
      draw_digit(img, label, 1.0f, dx, dy);
      add_noise_and_clamp(img, rng, opt.noise);
      // Real MNIST backgrounds are exactly zero; noise must not leave a
      // faint pedestal or the zero-run statistics (Fig. 13) disappear.
      for (float& v : img.flat())
        if (v < 0.08f) v = 0.0f;
      return img;
    }
    case DatasetKind::kSvhnLike:
      // Bright glyph over a mid-tone colour background: dense image.
      fill_background(img, rng, 0.25f, 0.55f);
      draw_digit(img, label, 0.98f, dx, dy, 0.07f);
      break;
    case DatasetKind::kCifarLike:
      fill_background(img, rng, 0.2f, 0.5f);
      draw_object(img, label, dx, dy);
      break;
  }
  add_noise_and_clamp(img, rng, opt.noise);
  return img;
}

}  // namespace

Tensor3 class_prototype(DatasetKind kind, int label) {
  require(label >= 0 && label < 10, "class label must be in [0,10)");
  Tensor3 img(native_shape(kind));
  switch (kind) {
    case DatasetKind::kMnistLike:
      draw_digit(img, label, 1.0f, 0.0f, 0.0f);
      break;
    case DatasetKind::kSvhnLike:
      img.fill(0.4f);
      draw_digit(img, label, 0.98f, 0.0f, 0.0f, 0.07f);
      break;
    case DatasetKind::kCifarLike:
      img.fill(0.35f);
      draw_object(img, label, 0.0f, 0.0f);
      break;
  }
  return img;
}

Dataset make_synthetic(DatasetKind kind, const SyntheticOptions& options) {
  require(options.count > 0, "synthetic dataset needs count > 0");
  Rng rng(options.seed);
  Dataset ds;
  ds.shape = native_shape(kind);
  ds.classes = 10;
  ds.images.reserve(options.count);
  ds.labels.reserve(options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    // Cycle labels then shuffle-by-construction via the jitter RNG; cycling
    // guarantees near-perfect class balance for any count.
    const int label = static_cast<int>(i % 10);
    Tensor3 img = render_sample(kind, label, rng, options);
    ds.images.push_back(std::vector<float>(img.flat().begin(), img.flat().end()));
    ds.labels.push_back(label);
  }
  return ds;
}

Dataset make_synthetic_downsampled(DatasetKind kind,
                                   const SyntheticOptions& options) {
  Dataset native = make_synthetic(kind, options);
  const Shape3 in = native.shape;
  require(in.h % 2 == 0 && in.w % 2 == 0, "downsample needs even dimensions");
  const Shape3 out{in.c, in.h / 2, in.w / 2};
  Dataset ds;
  ds.shape = out;
  ds.classes = native.classes;
  ds.labels = native.labels;
  ds.images.reserve(native.size());
  for (const auto& img : native.images) {
    std::vector<float> small(out.size());
    for (std::size_t c = 0; c < out.c; ++c)
      for (std::size_t y = 0; y < out.h; ++y)
        for (std::size_t x = 0; x < out.w; ++x) {
          const auto at = [&](std::size_t yy, std::size_t xx) {
            return img[(c * in.h + yy) * in.w + xx];
          };
          small[(c * out.h + y) * out.w + x] =
              0.25f * (at(2 * y, 2 * x) + at(2 * y, 2 * x + 1) +
                       at(2 * y + 1, 2 * x) + at(2 * y + 1, 2 * x + 1));
        }
    ds.images.push_back(std::move(small));
  }
  return ds;
}

}  // namespace resparc::data
