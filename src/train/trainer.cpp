#include "train/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace resparc::train {

TrainReport train(Ann& ann, const data::Dataset& ds, const TrainConfig& config,
                  Rng& rng) {
  require(!ds.images.empty(), "train: empty dataset");
  require(config.batch_size > 0, "train: batch size must be positive");

  TrainReport report;
  std::vector<std::size_t> order(ds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::vector<Matrix> velocity = ann.make_grad_buffers();
  double lr = config.learning_rate;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher–Yates reshuffle from our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::vector<Matrix> grads = ann.make_grad_buffers();

    for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
      const std::size_t end = std::min(order.size(), start + config.batch_size);
      for (auto& g : grads) g.fill(0.0f);
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t s = order[i];
        const ForwardPass pass = ann.forward(ds.images[s]);
        loss_sum += ann.backward(pass, ds.labels[s], grads);
        const auto& out = pass.output();
        const int pred = static_cast<int>(std::distance(
            out.begin(), std::max_element(out.begin(), out.end())));
        if (pred == ds.labels[s]) ++correct;
      }
      const float scale =
          static_cast<float>(lr / static_cast<double>(end - start));
      for (std::size_t l = 0; l < grads.size(); ++l) {
        if (grads[l].empty()) continue;
        auto v = velocity[l].flat();
        auto g = grads[l].flat();
        auto w = ann.weights(l).flat();
        const float mu = static_cast<float>(config.momentum);
        for (std::size_t k = 0; k < w.size(); ++k) {
          v[k] = mu * v[k] - scale * g[k];
          w[k] += v[k];
        }
      }
    }
    report.epoch_loss.push_back(loss_sum / static_cast<double>(ds.size()));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(ds.size()));
    lr *= config.lr_decay;
  }
  report.final_accuracy = report.epoch_accuracy.back();
  return report;
}

double ann_accuracy(const Ann& ann, const data::Dataset& ds) {
  require(!ds.images.empty(), "ann_accuracy: empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i)
    if (ann.predict(ds.images[i]) == ds.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace resparc::train
