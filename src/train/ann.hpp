// Minimal analog (rate-based) neural network for offline training.
//
// The paper assumes SNNs are "trained offline using supervised training
// algorithms" [Diehl et al., IJCNN'15]: train a conventional ReLU network,
// then balance weights/thresholds into an IF spiking network.  This class
// is that conventional network.  It reuses the snn::Topology IR and stores
// weights in exactly the layout snn::Network uses, so conversion is a
// scale-and-copy.
//
// Supported: dense / conv (stride 1) / average-pool layers, ReLU on every
// hidden layer, linear output, softmax cross-entropy loss, no biases
// (bias-free networks convert to IF neurons without auxiliary bias spikes).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/kernels.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "snn/topology.hpp"

namespace resparc::train {

/// Activations of every layer for one input (index 0 = input itself).
struct ForwardPass {
  std::vector<std::vector<float>> activations;
  const std::vector<float>& output() const { return activations.back(); }
};

/// Trainable rate-based network mirroring an snn::Topology.
class Ann {
 public:
  explicit Ann(snn::Topology topology);

  const snn::Topology& topology() const { return topology_; }

  /// Weight matrix of layer l (same layout as snn::Network: dense =
  /// fan_in x units; conv = inC*k*k x outC; pool layers have an empty matrix).
  Matrix& weights(std::size_t l) { return weights_.at(l); }
  const Matrix& weights(std::size_t l) const { return weights_.at(l); }

  /// He-normal initialisation of all trainable layers.
  void init_he(Rng& rng);

  /// Runs the network, returning all intermediate activations
  /// (post-ReLU for hidden layers, linear for the output layer).
  ForwardPass forward(std::span<const float> input) const;

  /// Logits for an input (last activations of forward()).
  std::vector<float> logits(std::span<const float> input) const;

  /// Predicted class (argmax of logits).
  int predict(std::span<const float> input) const;

  /// Back-propagates softmax cross-entropy loss for `label` through a
  /// recorded pass, ADDING gradients into `grads` (one Matrix per layer,
  /// shapes matching weights()).  Returns the sample loss.
  double backward(const ForwardPass& pass, int label,
                  std::vector<Matrix>& grads) const;

  /// Allocates a zeroed gradient accumulator matching the weights.
  std::vector<Matrix> make_grad_buffers() const;

 private:
  void layer_forward(std::size_t l, std::span<const float> in,
                     std::span<float> out) const;
  void layer_backward(std::size_t l, std::span<const float> in,
                      std::span<const float> out,
                      std::span<const float> dout, std::span<float> din,
                      Matrix& dw) const;

  snn::Topology topology_;
  std::vector<Matrix> weights_;
  /// im2col workspace for the conv forward kernel; reused across calls,
  /// so concurrent forward() calls on ONE Ann are not supported (each
  /// trainer/evaluation thread owns its own Ann).
  mutable kernels::Scratch scratch_;
};

}  // namespace resparc::train
