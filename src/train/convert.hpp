// ANN -> SNN conversion by weight/threshold balancing.
//
// Implements the data-based normalisation of Diehl et al. (IJCNN'15), the
// training flow the paper cites as reference [4]: after training a ReLU
// network, rescale each trainable layer by the ratio of the maximum
// activations seen on a calibration set, so that an IF neuron with
// threshold 1 spikes at a rate proportional to the ReLU activation.
#pragma once

#include <span>
#include <vector>

#include "snn/network.hpp"
#include "train/ann.hpp"

namespace resparc::train {

/// Conversion options.
struct ConvertConfig {
  /// Activation percentile treated as "max" during normalisation; 1.0 is
  /// the strict Diehl rule, slightly lower (0.999) is robust to outliers.
  double percentile = 1.0;
  /// Threshold assigned to every converted (non-pool) layer.
  double v_threshold = 1.0;
};

/// Converts a trained ANN into a spiking Network.  `calibration` images
/// (flat, same shape as the topology input) drive the activation scan.
snn::Network convert_to_snn(const Ann& ann,
                            std::span<const std::vector<float>> calibration,
                            const ConvertConfig& config = {});

/// Per-layer maximum (or percentile) activations of the ANN over a set —
/// exposed for tests of the normalisation rule.
std::vector<double> max_activations(const Ann& ann,
                                    std::span<const std::vector<float>> images,
                                    double percentile);

}  // namespace resparc::train
