#include "train/convert.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resparc::train {

using snn::LayerKind;

std::vector<double> max_activations(const Ann& ann,
                                    std::span<const std::vector<float>> images,
                                    double percentile) {
  require(!images.empty(), "max_activations: need at least one image");
  require(percentile > 0.0 && percentile <= 1.0,
          "max_activations: percentile in (0,1]");
  const std::size_t layers = ann.topology().layer_count();
  // Collect per-layer activation samples (positive part only; IF rates
  // cannot be negative).
  std::vector<std::vector<float>> samples(layers);
  for (const auto& img : images) {
    const ForwardPass pass = ann.forward(img);
    for (std::size_t l = 0; l < layers; ++l)
      for (float a : pass.activations[l + 1])
        if (a > 0.0f) samples[l].push_back(a);
  }
  std::vector<double> maxima(layers, 1.0);
  for (std::size_t l = 0; l < layers; ++l) {
    if (samples[l].empty()) continue;  // silent layer: keep scale 1
    auto& v = samples[l];
    const std::size_t idx = std::min(
        v.size() - 1,
        static_cast<std::size_t>(percentile * static_cast<double>(v.size() - 1)));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                     v.end());
    maxima[l] = std::max(1e-9, static_cast<double>(v[idx]));
  }
  return maxima;
}

snn::Network convert_to_snn(const Ann& ann,
                            std::span<const std::vector<float>> calibration,
                            const ConvertConfig& config) {
  const auto maxima = max_activations(ann, calibration, config.percentile);
  snn::Network net(ann.topology());

  // Diehl weight normalisation: lambda_prev carries the running input
  // scale.  Layer l's weights become W * lambda_{l-1} / lambda_l so that a
  // unit-threshold IF neuron's rate approximates activation / lambda_l.
  double lambda_prev = 1.0;  // inputs are already in [0,1]
  for (std::size_t l = 0; l < ann.topology().layer_count(); ++l) {
    const auto& li = ann.topology().layers()[l];
    auto& lp = net.layer(l);
    if (li.spec.kind == LayerKind::kAvgPool) {
      // Pool neurons receive mean window drive m per step (weights sum to
      // 1); with subtractive reset and threshold 1 their long-run rate is
      // exactly m — rate-preserving, as the trained network assumes.
      lp.neuron.v_threshold = 1.0;
      continue;  // lambda unchanged: pooling preserves rate scale
    }
    const double lambda_l = maxima[l];
    const double scale = lambda_prev / lambda_l;
    const Matrix& src = ann.weights(l);
    lp.weights = src;
    for (float& w : lp.weights.flat())
      w = static_cast<float>(static_cast<double>(w) * scale);
    lp.neuron.v_threshold = config.v_threshold;
    lp.neuron.subtractive_reset = true;
    lambda_prev = lambda_l;
  }
  return net;
}

}  // namespace resparc::train
