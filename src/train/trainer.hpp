// Mini-batch SGD trainer for the rate-based network.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "train/ann.hpp"

namespace resparc::train {

/// Training hyper-parameters.
struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double lr_decay = 0.95;  ///< multiplicative per-epoch decay
};

/// Per-epoch training record.
struct TrainReport {
  std::vector<double> epoch_loss;      ///< mean sample loss per epoch
  std::vector<double> epoch_accuracy;  ///< training accuracy per epoch
  double final_accuracy = 0.0;         ///< last epoch training accuracy
};

/// Trains `ann` in place on `ds` with SGD + momentum; deterministic given
/// the Rng state (sample order is reshuffled each epoch from `rng`).
TrainReport train(Ann& ann, const data::Dataset& ds, const TrainConfig& config,
                  Rng& rng);

/// Argmax accuracy of the rate-based network on a dataset.
double ann_accuracy(const Ann& ann, const data::Dataset& ds);

}  // namespace resparc::train
