#include "train/ann.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "snn/network.hpp"

namespace resparc::train {

using snn::LayerInfo;
using snn::LayerKind;

Ann::Ann(snn::Topology topology) : topology_(std::move(topology)) {
  weights_.reserve(topology_.layer_count());
  for (const auto& li : topology_.layers()) {
    const auto ws = snn::weight_shape(li);
    weights_.emplace_back(ws.rows, ws.cols);
  }
}

void Ann::init_he(Rng& rng) {
  for (auto& w : weights_) {
    if (w.empty()) continue;
    const double stddev = std::sqrt(2.0 / static_cast<double>(w.rows()));
    for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void Ann::layer_forward(std::size_t l, std::span<const float> in,
                        std::span<float> out) const {
  const LayerInfo& li = topology_.layers()[l];
  const Matrix& w = weights_[l];
  std::fill(out.begin(), out.end(), 0.0f);
  switch (li.spec.kind) {
    case LayerKind::kDense: {
      matvec_in_major(w, in, out);
      break;
    }
    case LayerKind::kConv: {
      const Shape3 is = li.in_shape;
      const Shape3 os = li.out_shape;
      const std::size_t k = li.spec.kernel;
      const std::size_t pad = li.spec.same_padding ? k / 2 : 0;
      kernels::conv2d_forward(in.data(), is.c, is.h, is.w, w.flat().data(),
                              os.c, k, pad, os.h, os.w, out.data(), scratch_);
      break;
    }
    case LayerKind::kAvgPool: {
      const Shape3 is = li.in_shape;
      const Shape3 os = li.out_shape;
      const std::size_t p = li.spec.pool;
      const float share = 1.0f / static_cast<float>(p * p);
      for (std::size_t c = 0; c < is.c; ++c)
        for (std::size_t y = 0; y < is.h; ++y)
          for (std::size_t x = 0; x < is.w; ++x)
            out[(c * os.h + y / p) * os.w + x / p] +=
                share * in[(c * is.h + y) * is.w + x];
      break;
    }
  }
}

ForwardPass Ann::forward(std::span<const float> input) const {
  require(input.size() == topology_.input_shape().size(),
          "Ann::forward: input size mismatch");
  ForwardPass pass;
  pass.activations.reserve(topology_.layer_count() + 1);
  pass.activations.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l < topology_.layer_count(); ++l) {
    const LayerInfo& li = topology_.layers()[l];
    std::vector<float> out(li.neurons, 0.0f);
    layer_forward(l, pass.activations.back(), out);
    const bool hidden = l + 1 < topology_.layer_count();
    if (hidden && li.spec.kind != LayerKind::kAvgPool)
      for (float& v : out) v = std::max(v, 0.0f);  // ReLU
    pass.activations.push_back(std::move(out));
  }
  return pass;
}

std::vector<float> Ann::logits(std::span<const float> input) const {
  return forward(input).activations.back();
}

int Ann::predict(std::span<const float> input) const {
  const auto out = logits(input);
  return static_cast<int>(std::distance(
      out.begin(), std::max_element(out.begin(), out.end())));
}

void Ann::layer_backward(std::size_t l, std::span<const float> in,
                         std::span<const float> /*out*/,
                         std::span<const float> dout, std::span<float> din,
                         Matrix& dw) const {
  const LayerInfo& li = topology_.layers()[l];
  const Matrix& w = weights_[l];
  std::fill(din.begin(), din.end(), 0.0f);
  switch (li.spec.kind) {
    case LayerKind::kDense: {
      // Split of the historical fused loop: per element the arithmetic
      // and its order are unchanged (axpy accumulates grow in ascending
      // c; din is the out-major matvec W * dout, each row reduced in
      // ascending c), but each pass is unit-stride and vectorizable.
      for (std::size_t r = 0; r < w.rows(); ++r)
        kernels::axpy(dw.row(r).data(), in[r], dout.data(), w.cols());
      kernels::matvec_out_major(w.flat().data(), w.rows(), w.cols(),
                                dout.data(), din.data());
      break;
    }
    case LayerKind::kConv: {
      const Shape3 is = li.in_shape;
      const Shape3 os = li.out_shape;
      const std::size_t k = li.spec.kernel;
      const std::size_t pad = li.spec.same_padding ? k / 2 : 0;
      for (std::size_t oc = 0; oc < os.c; ++oc) {
        for (std::size_t oy = 0; oy < os.h; ++oy) {
          for (std::size_t ox = 0; ox < os.w; ++ox) {
            const float g = dout[(oc * os.h + oy) * os.w + ox];
            if (g == 0.0f) continue;
            for (std::size_t c = 0; c < is.c; ++c) {
              for (std::size_t ky = 0; ky < k; ++ky) {
                const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                          static_cast<std::ptrdiff_t>(pad);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(is.h)) continue;
                for (std::size_t kx = 0; kx < k; ++kx) {
                  const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                            static_cast<std::ptrdiff_t>(pad);
                  if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(is.w)) continue;
                  const std::size_t iidx =
                      (c * is.h + static_cast<std::size_t>(iy)) * is.w +
                      static_cast<std::size_t>(ix);
                  const std::size_t wrow = (c * k + ky) * k + kx;
                  dw(wrow, oc) += in[iidx] * g;
                  din[iidx] += w(wrow, oc) * g;
                }
              }
            }
          }
        }
      }
      break;
    }
    case LayerKind::kAvgPool: {
      const Shape3 is = li.in_shape;
      const Shape3 os = li.out_shape;
      const std::size_t p = li.spec.pool;
      const float share = 1.0f / static_cast<float>(p * p);
      for (std::size_t c = 0; c < is.c; ++c)
        for (std::size_t y = 0; y < is.h; ++y)
          for (std::size_t x = 0; x < is.w; ++x)
            din[(c * is.h + y) * is.w + x] =
                share * dout[(c * os.h + y / p) * os.w + x / p];
      break;
    }
  }
}

double Ann::backward(const ForwardPass& pass, int label,
                     std::vector<Matrix>& grads) const {
  require(grads.size() == weights_.size(),
          "Ann::backward: gradient buffer count mismatch");
  const auto& logits_v = pass.activations.back();
  require(label >= 0 && static_cast<std::size_t>(label) < logits_v.size(),
          "Ann::backward: label out of range");

  // Softmax cross-entropy: dL/dlogit = softmax - onehot.
  const float maxv = *std::max_element(logits_v.begin(), logits_v.end());
  double denom = 0.0;
  for (float v : logits_v) denom += std::exp(static_cast<double>(v - maxv));
  std::vector<float> delta(logits_v.size());
  for (std::size_t i = 0; i < logits_v.size(); ++i)
    delta[i] = static_cast<float>(
        std::exp(static_cast<double>(logits_v[i] - maxv)) / denom);
  const double loss =
      -std::log(std::max(1e-12, static_cast<double>(
                                    delta[static_cast<std::size_t>(label)])));
  delta[static_cast<std::size_t>(label)] -= 1.0f;

  std::vector<float> dout = std::move(delta);
  for (std::size_t li = topology_.layer_count(); li-- > 0;) {
    const auto& in = pass.activations[li];
    const auto& out = pass.activations[li + 1];
    // ReLU derivative on hidden non-pool layers: gradient flows only where
    // the recorded (post-ReLU) activation is positive.
    const bool hidden = li + 1 < topology_.layer_count();
    if (hidden && topology_.layers()[li].spec.kind != LayerKind::kAvgPool) {
      for (std::size_t i = 0; i < dout.size(); ++i)
        if (out[i] <= 0.0f) dout[i] = 0.0f;
    }
    std::vector<float> din(in.size(), 0.0f);
    layer_backward(li, in, out, dout, din, grads[li]);
    dout = std::move(din);
  }
  return loss;
}

std::vector<Matrix> Ann::make_grad_buffers() const {
  std::vector<Matrix> grads;
  grads.reserve(weights_.size());
  for (const auto& w : weights_) grads.emplace_back(w.rows(), w.cols());
  return grads;
}

}  // namespace resparc::train
