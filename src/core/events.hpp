// Per-timestep hardware event streams (docs/execution.md).
//
// The executor's RunReport aggregates event counters over a whole
// presentation; an EventStream keeps them resolved per timestep and per
// pipeline stage, built from the *actual* spikes of the replayed trace —
// stage 0 is the SRAM input broadcast, stage l+1 is network layer l's
// crossbar read + output transfer.  This is what the event-driven levers
// of paper section 3.2 act on: a stage whose slice carries no spike this
// step contributes zero reads and zero words, which the all-zero-input
// regression test pins down (tests/test_sparse_execution.cpp).
#pragma once

#include <cstddef>
#include <vector>

namespace resparc::core {

/// Exact event counts of one (timestep, stage) cell.
struct StepEvents {
  std::size_t active_rows = 0;    ///< crossbar row activations (spikes x arrays)
  std::size_t mca_reads = 0;      ///< MCA array reads performed
  std::size_t mca_skips = 0;      ///< array reads elided by the zero-check
  std::size_t words_sent = 0;     ///< 64-bit words crossing bus or switch
  std::size_t words_skipped = 0;  ///< all-zero words elided before transfer
  std::size_t neuron_fires = 0;   ///< spikes emitted by the stage's neurons

  StepEvents& operator+=(const StepEvents& other) {
    active_rows += other.active_rows;
    mca_reads += other.mca_reads;
    mca_skips += other.mca_skips;
    words_sent += other.words_sent;
    words_skipped += other.words_skipped;
    neuron_fires += other.neuron_fires;
    return *this;
  }

  /// True when the cell saw no event at all (a fully skipped stage).
  bool idle() const {
    return active_rows == 0 && mca_reads == 0 && words_sent == 0 &&
           neuron_fires == 0;
  }
};

/// Dense (timesteps x stages) grid of StepEvents for one or many replayed
/// presentations.  Stage 0 = input broadcast, stage l+1 = network layer l.
class EventStream {
 public:
  EventStream() = default;
  EventStream(std::size_t timesteps, std::size_t stages)
      : timesteps_(timesteps), stages_(stages),
        cells_(timesteps * stages) {}

  /// Recorded presentation length.
  std::size_t timesteps() const { return timesteps_; }
  /// Pipeline stages per timestep (network layers + the input broadcast).
  std::size_t stages() const { return stages_; }
  /// True for a default-constructed (shape-less) stream.
  bool empty() const { return cells_.empty(); }

  /// Mutable cell of (timestep t, stage).
  StepEvents& at(std::size_t t, std::size_t stage) {
    return cells_[t * stages_ + stage];
  }
  /// Cell of (timestep t, stage).
  const StepEvents& at(std::size_t t, std::size_t stage) const {
    return cells_[t * stages_ + stage];
  }

  /// Sum over all stages of one timestep.
  StepEvents step_total(std::size_t t) const;
  /// Sum over all timesteps of one stage.
  StepEvents stage_total(std::size_t stage) const;
  /// Sum over the whole grid.
  StepEvents total() const;

  /// Elementwise accumulation (presentation-order reduction of a batched
  /// run).  An empty stream adopts the other's shape; shapes must
  /// otherwise match — the executors always emit (T x layers+1).
  void merge(const EventStream& other);

 private:
  std::size_t timesteps_ = 0;
  std::size_t stages_ = 0;
  std::vector<StepEvents> cells_;
};

}  // namespace resparc::core
