// Programmable switch (paper Fig. 6).
//
// Routes spike packets between the mPEs and switches of a NeuroCell.  Each
// packet carries a destination address (switch id / mPE id / MCA id) and a
// flit payload.  The switch implements the section-3.2 zero-check: an
// all-zero payload is dropped before traversal, saving the hop energy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace resparc::core {

/// A spike packet: one flit of payload plus its destination address
/// (Fig. 6's iAddress format: SW_ID | mPE_ID | MCA_ID).
struct SpikePacket {
  std::uint16_t dst_switch = 0;
  std::uint16_t dst_mpe = 0;
  std::uint8_t dst_mca = 0;
  std::uint64_t payload = 0;
};

/// Counters of one switch.
struct SwitchCounters {
  std::size_t forwarded = 0;   ///< packets that traversed the switch
  std::size_t dropped_zero = 0;///< all-zero packets suppressed by zero-check
  std::size_t buffered_max = 0;///< high-water mark of the data buffer
};

/// One programmable switch with input/output packet buffers.
class ProgrammableSwitch {
 public:
  /// `zero_check` enables the event-driven drop logic.
  ProgrammableSwitch(std::uint16_t id, bool zero_check)
      : id_(id), zero_check_(zero_check) {}

  std::uint16_t id() const { return id_; }

  /// Offers a packet to the switch.  Returns false when the zero-check
  /// suppressed it; otherwise the packet is queued for delivery.
  bool offer(const SpikePacket& packet);

  /// True when packets are waiting.
  bool pending() const { return !queue_.empty(); }

  /// Pops the next packet (arbitration is FIFO across senders).
  SpikePacket deliver();

  const SwitchCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = SwitchCounters{}; }

 private:
  std::uint16_t id_;
  bool zero_check_;
  std::deque<SpikePacket> queue_;
  SwitchCounters counters_{};
};

}  // namespace resparc::core
