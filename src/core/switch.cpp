#include "core/switch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resparc::core {

bool ProgrammableSwitch::offer(const SpikePacket& packet) {
  if (zero_check_ && packet.payload == 0) {
    ++counters_.dropped_zero;
    return false;
  }
  queue_.push_back(packet);
  counters_.buffered_max = std::max(counters_.buffered_max, queue_.size());
  return true;
}

SpikePacket ProgrammableSwitch::deliver() {
  require(!queue_.empty(), "switch has no pending packet");
  SpikePacket p = queue_.front();
  queue_.pop_front();
  ++counters_.forwarded;
  return p;
}

}  // namespace resparc::core
