// Mapping-aware fault application: which MCA slot holds which weights.
//
// tech::FaultModel samples the silicon of one MCA slot; this layer binds
// slots to the compiled placement so every consumer agrees on *where*
// each fault lands:
//
//   * the functional path perturbs snn::Network weights tile-by-tile
//     (perturb_network), so snn::evaluate_accuracy measures the chip
//     instance's accuracy with the exact same per-slot draws the
//     electrical and analytic views use;
//   * the analytic path scales the executor's per-cell read energy by
//     the chip's mean conductance multiplier (chip_energy_scale) and
//     stamps the realised manifest on RunReport (derive_manifest);
//   * the compile/verify path re-derives the mPE health map
//     (derive_health) that the repair pass placed around.
//
// Slot convention: layer `lm` occupies MCA slots
// `lm.first_mpe * mcas_per_mpe + tile`, with `tile` indexing a uniform
// row-major N x N tiling of the layer's stored weight matrix.  For conv
// layers (weight-shared im2col matrices) this is the canonical-copy
// approximation: the physical chip replicates kernel weights across
// window tiles, the model perturbs the shared matrix once.  Uniform
// tiling never needs more slots than the mapper's own tiling, so slots
// stay within the layer's placed span (docs/reliability.md).
#pragma once

#include "core/mapper.hpp"
#include "snn/network.hpp"
#include "tech/nonideal.hpp"

namespace resparc::core {

/// Realised fault manifest of the chip instance a mapping deploys onto:
/// scans every MCA slot of the placed mPE range.  Requires
/// mapping.config.faults.enabled.
tech::FaultManifest derive_manifest(const Mapping& mapping);

/// mPE health map over the placed range (plus the spare headroom the
/// repair pass may use).  Requires mapping.config.faults.enabled.
tech::ChipHealthMap derive_health(const Mapping& mapping);

/// Mean per-cell read-energy multiplier across all deployed MCA slots
/// (1.0 when fault injection is disabled); the executor folds this into
/// its mean-conductance crossbar cost.
double chip_energy_scale(const Mapping& mapping);

/// Applies the chip instance's faults to the network's stored weights
/// in place: optional re-quantisation to faults.weight_bits levels,
/// stuck-off cells zeroed, stuck-on cells pinned to the layer's full
/// scale, healthy cells scaled by their lognormal gain.  No-op when
/// fault injection is disabled.  Deterministic: float arithmetic only,
/// same result for any call order or thread count.
void perturb_network(snn::Network& network, const Mapping& mapping);

}  // namespace resparc::core
