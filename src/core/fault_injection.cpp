#include "core/fault_injection.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tech/memristor.hpp"

namespace resparc::core {
namespace {

tech::FaultModel make_model(const Mapping& mapping) {
  require(mapping.config.faults.enabled,
          "fault_injection: faults are not enabled on this mapping");
  return tech::FaultModel(mapping.config.faults, mapping.config.mca_size);
}

}  // namespace

tech::FaultManifest derive_manifest(const Mapping& mapping) {
  const tech::FaultModel model = make_model(mapping);
  return tech::scan_manifest(model, mapping.total_mpes,
                             mapping.config.mcas_per_mpe);
}

tech::ChipHealthMap derive_health(const Mapping& mapping) {
  const tech::FaultModel model = make_model(mapping);
  return tech::scan_chip_health(model, mapping.total_mpes,
                                mapping.config.mcas_per_mpe);
}

double chip_energy_scale(const Mapping& mapping) {
  if (!mapping.config.faults.enabled) return 1.0;
  const tech::FaultModel model = make_model(mapping);
  const tech::Memristor device(mapping.config.technology.memristor);
  // The analytic cost model charges every used cell at the mean
  // conductance (Memristor::mean_cell_read_energy_pj); per-cell
  // multipliers are therefore ratios against that mean level.
  const double g_mean = 0.5 * (device.g_min() + device.g_max());
  const double on_ratio = device.g_max() / g_mean;
  const double off_ratio = device.g_min() / g_mean;
  const std::size_t slots = mapping.total_mpes * mapping.config.mcas_per_mpe;
  if (slots == 0) return 1.0;
  double sum = 0.0;
  for (std::size_t slot = 0; slot < slots; ++slot)
    sum += model.energy_scale(slot, on_ratio, off_ratio);
  return sum / static_cast<double>(slots);
}

void perturb_network(snn::Network& network, const Mapping& mapping) {
  const tech::FaultConfig& fc = mapping.config.faults;
  if (!fc.enabled) return;
  const tech::FaultModel model = make_model(mapping);
  const std::size_t n = mapping.config.mca_size;
  const std::size_t per_mpe = mapping.config.mcas_per_mpe;
  const int steps = fc.weight_bits > 0 ? (1 << fc.weight_bits) - 1 : 0;
  for (const LayerMapping& lm : mapping.layers) {
    Matrix& w = network.layer(lm.layer).weights;
    if (w.empty()) continue;  // pool layers store no weights
    float scale = 0.0f;
    for (std::size_t r = 0; r < w.rows(); ++r)
      for (std::size_t c = 0; c < w.cols(); ++c)
        scale = std::max(scale, std::abs(w(r, c)));
    if (scale == 0.0f) continue;  // all-zero layer: nothing to perturb
    const std::size_t tile_rows = (w.rows() + n - 1) / n;
    const std::size_t tile_cols = (w.cols() + n - 1) / n;
    for (std::size_t tr = 0; tr < tile_rows; ++tr) {
      for (std::size_t tc = 0; tc < tile_cols; ++tc) {
        const std::size_t mca_id =
            lm.first_mpe * per_mpe + tr * tile_cols + tc;
        const tech::McaFaults faults = model.sample(mca_id);
        const std::size_t r_end = std::min(w.rows(), (tr + 1) * n);
        const std::size_t c_end = std::min(w.cols(), (tc + 1) * n);
        for (std::size_t r = tr * n; r < r_end; ++r) {
          for (std::size_t c = tc * n; c < c_end; ++c) {
            const std::size_t cell = (r % n) * n + (c % n);
            float v = w(r, c);
            if (steps > 0) {
              // Quantise the magnitude to the configured level count,
              // mirroring Mca::program's device discretisation.
              const float m = std::clamp(std::abs(v) / scale, 0.0f, 1.0f);
              v = std::copysign(
                  std::round(m * static_cast<float>(steps)) /
                      static_cast<float>(steps) * scale,
                  v);
            }
            switch (faults.cells[cell]) {
              case tech::CellFault::kStuckOff:
                v = 0.0f;
                break;
              case tech::CellFault::kStuckOn:
                v = std::copysign(scale, v);
                break;
              case tech::CellFault::kNone:
                v = static_cast<float>(static_cast<double>(v) *
                                       faults.gain[cell]);
                break;
            }
            w(r, c) = v;
          }
        }
      }
    }
  }
}

}  // namespace resparc::core
