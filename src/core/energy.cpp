#include "core/energy.hpp"

namespace resparc::core {

EventCounts& EventCounts::operator+=(const EventCounts& other) {
  mca_activations += other.mca_activations;
  mca_skips += other.mca_skips;
  neuron_integrations += other.neuron_integrations;
  neuron_fires += other.neuron_fires;
  buffer_bits += other.buffer_bits;
  switch_flits += other.switch_flits;
  switch_skips += other.switch_skips;
  bus_words += other.bus_words;
  bus_skips += other.bus_skips;
  ccu_transfers += other.ccu_transfers;
  sram_reads += other.sram_reads;
  sram_writes += other.sram_writes;
  return *this;
}

}  // namespace resparc::core
