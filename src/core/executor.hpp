// Trace-driven RESPARC executor.
//
// Replays spike traces from the functional simulator against a Mapping and
// counts hardware events per timestep, honouring the event-driven levers of
// section 3.2 when `config.event_driven` is set:
//   * an MCA group whose input slice carries no spike this step is skipped
//     entirely (no buffer read, no crossbar read, no control op);
//   * spike packets (64-bit flits) that are all zero are dropped before
//     switch traversal;
//   * all-zero words read from the input SRAM are not broadcast on the bus.
//
// Inter-stage transfers travel the hierarchical Ml-NoC model (src/noc/,
// docs/noc.md) along the per-boundary Route table: `analytic` fidelity
// charges the flat per-word cycles this executor has always used
// (bit-for-bit reproducible totals), `event` fidelity drives real
// ProgrammableSwitch FIFOs and adds hop pipeline-fill plus congestion
// stall latency.  Event counts are converted to energy with the
// technology cost tables and to cycles with the pipeline model described
// in docs/execution.md.
#pragma once

#include "core/energy.hpp"
#include "core/events.hpp"
#include "core/mapper.hpp"
#include "noc/fabric.hpp"
#include "noc/route.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::core {

/// Cycles to move one word across the global bus (the NoC layer owns the
/// constant; this alias keeps the historical core:: spelling working).
inline constexpr double kBusCyclesPerWord = noc::kBusCyclesPerWord;

/// Executes spike traces against a fixed mapping.
class Executor {
 public:
  /// `topology` must be the one `mapping` was built from; both must outlive
  /// the executor.  Routes are derived with noc::compute_routes and the
  /// NoC runs in analytic fidelity.
  Executor(const snn::Topology& topology, const Mapping& mapping);

  /// Same contract with an explicit route table (normally the compiler's
  /// routing-pass output carried by the CompiledProgram) and NoC timing
  /// fidelity.  The table must cover every boundary of `topology`.
  Executor(const snn::Topology& topology, const Mapping& mapping,
           noc::RouteTable routes, noc::Fidelity fidelity);

  /// Replays one presentation (trace from Simulator::run with
  /// record_trace=true) and returns the per-classification report.
  RunReport run(const snn::SpikeTrace& trace) const;

  /// Same replay, additionally filling `stream` (when non-null) with the
  /// per-timestep, per-stage event record the counters are summed from —
  /// the actual spike-driven event streams rather than their totals
  /// (docs/execution.md).  The returned report is bit-for-bit identical
  /// to run(trace).
  RunReport run(const snn::SpikeTrace& trace, EventStream* stream) const;

  /// Replays many presentations; energy/perf are averaged per
  /// classification, events and NoC counters are summed.
  RunReport run_all(std::span<const snn::SpikeTrace> traces) const;

  /// run_all with each presentation's event stream merged into `stream`
  /// (when non-null); the report is bit-for-bit identical to run_all.
  RunReport run_all(std::span<const snn::SpikeTrace> traces,
                    EventStream* stream) const;

  /// Batched replay, trace-per-lane: retires step `s` of every trace
  /// before step `s+1` of any, so the per-boundary route lookups, layer
  /// metadata and technology cost constants are fetched once per step
  /// for the whole batch instead of once per trace.  Each lane keeps its
  /// own accumulators (and, under event fidelity, its own NoC fabric),
  /// so `reports[i]` is bit-for-bit identical to run(traces[i]) — the
  /// packed execution mode's throughput lever (docs/execution.md).
  /// Lanes may have different lengths; `reports.size()` must equal
  /// `traces.size()`.
  void run_each(std::span<const snn::SpikeTrace> traces,
                std::span<RunReport> reports) const;

  /// run_each followed by the run_all reduction (sum in trace order,
  /// then average energy/perf per classification): bit-for-bit
  /// identical to run_all(traces).
  RunReport run_batched(std::span<const snn::SpikeTrace> traces) const;

  const Mapping& mapping() const { return mapping_; }

  /// The per-boundary route table transfers travel on.
  const noc::RouteTable& routes() const { return routes_; }

  /// The NoC timing fidelity replays run at.
  noc::Fidelity fidelity() const { return fidelity_; }

 private:
  /// Technology cost constants hoisted out of the replay loops (defined in
  /// executor.cpp); built once per run()/run_each() call.
  struct ReplayCosts;
  /// Per-trace accumulator state of one replay lane (defined in
  /// executor.cpp): the report being built, the cycle tallies, and the
  /// lane's optional event-fidelity fabric.
  struct LaneAccum;

  ReplayCosts make_costs() const;
  /// Retires one timestep of one lane — the shared per-step body of run()
  /// and run_each(), so solo and batched replays are the same code path.
  void step_lane(const snn::SpikeTrace& trace, std::size_t step,
                 const ReplayCosts& costs, LaneAccum& lane) const;
  /// Converts a finished lane's event counters to energy and fills the
  /// perf/leakage fields (the run() epilogue).
  void finish_lane(const ReplayCosts& costs, LaneAccum& lane) const;

  /// Spikes inside an input slice, given the layer's input spike vector.
  std::size_t active_in_slice(const InputSlice& slice, const Shape3& in_shape,
                              const snn::SpikeVector& spikes) const;
  /// Total bits spanned by a slice (denominator of the active fraction).
  std::size_t slice_bits(const InputSlice& slice, const Shape3& in_shape) const;

  /// Per-group constants of the replay inner loop, precomputed at
  /// construction so step_lane performs no integer->double conversion or
  /// per-group multiply on the hot path.  Every field is the exact value
  /// the loop used to recompute per step (same operands, same operations),
  /// so replay results are bit-for-bit unchanged.
  struct GroupConsts {
    double bits = 0.0;          ///< slice_bits (fraction denominator)
    double driven_scale = 0.0;  ///< rows_used * mca_count
    double synapses = 0.0;      ///< crosspoints actually programmed
    double total_cells = 0.0;   ///< mca_count * N_l^2 (sneak term)
    double control_pj = 0.0;    ///< control energy of one group activation
    /// The layer's resolved MCA size as double (heterogeneous chips carry a
    /// per-layer size; Mapping::layer_mca_size).  Exact for any legal size.
    double mca_size_d = 0.0;
    std::size_t buffer_bits = 0;  ///< iBUFF bits fed per activation
  };

  const snn::Topology& topology_;
  const Mapping& mapping_;
  noc::RouteTable routes_;
  noc::Fidelity fidelity_ = noc::Fidelity::kAnalytic;
  std::vector<std::vector<GroupConsts>> group_consts_;  ///< [layer][group]
  /// Deployed column-periphery count, sum over layers of mca_count * N_l —
  /// the leakage denominator.  Equals total_mcas * mca_size when the chip
  /// is homogeneous.
  std::size_t leak_columns_ = 0;
  /// Mean per-cell read-energy multiplier of the chip instance's faults
  /// (core/fault_injection.hpp); exactly 1.0 when fault injection is
  /// disabled, so the fault-free cost path is bit-for-bit unchanged.
  double fault_cell_scale_ = 1.0;
  /// Realised fault manifest stamped onto every RunReport; absent when
  /// fault injection is disabled.
  std::optional<tech::FaultManifest> fault_manifest_;
};

}  // namespace resparc::core
