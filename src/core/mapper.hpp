// Hierarchical mapper: lowers an SNN topology onto the MCA fabric.
//
// This implements section 3.1's mapping rules:
//
//  * Dense layers (MLPs).  The fan_in x units connectivity matrix is cut
//    into N x N tiles (N = MCA size).  A neuron whose fan-in exceeds N is
//    computed by time-multiplexing ceil(fan_in/N) partial currents onto its
//    neuron (Fig. 5); up to `mcas_per_mpe` partials integrate concurrently
//    inside one mPE (currents C1..C4 of Fig. 4 sum on the shared wire),
//    remote partials arrive as C_ext through the CCU.
//
//  * Convolution layers, small fan-in (<= N).  Output neurons with
//    overlapping receptive fields are grouped into spatial windows so MCA
//    rows are *shared* between columns — the "input sharing" optimisation
//    of section 3.1.1.  Utilisation = k^2 inC / (window input span), which
//    falls as N grows: the cause of the CNN optimum at MCA-64 (Fig. 12c).
//
//  * Convolution layers, large fan-in (> N).  All output channels at one
//    spatial position share an identical receptive field, so the im2col
//    rows are sliced N at a time with min(outC, N) columns per MCA.
//
//  * Average-pool layers.  Windows are disjoint (no input sharing
//    possible); groups of floor(N/p^2) outputs pack block-diagonally into
//    one MCA, which is why pooling utilises crossbars poorly and drags the
//    CNN average down.
//
// The mapper then packs MCAs into mPEs (4 per mPE) and mPEs into
// NeuroCells (16 per NC) in layer order, recording which layer boundaries
// cross a NeuroCell boundary (those transfers use the serial global bus —
// Fig. 7's dataflow).
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "snn/topology.hpp"

namespace resparc::core {

/// How the rows of one MCA group select input neurons.
enum class SliceKind {
  kContiguous,  ///< flat index range [begin, end)
  kWindow,      ///< spatial window: all channels, rows y0..y1, cols x0..x1
};

/// The set of input neurons feeding one group of MCAs (shared rows).
struct InputSlice {
  SliceKind kind = SliceKind::kContiguous;
  // kContiguous
  std::size_t begin = 0;
  std::size_t end = 0;
  // kWindow (in the layer's input shape)
  std::size_t y0 = 0, y1 = 0;  ///< inclusive row range
  std::size_t x0 = 0, x1 = 0;  ///< inclusive col range
};

/// A group of MCAs that share one input slice (identical row drive).
struct McaGroup {
  InputSlice slice;
  std::size_t mca_count = 0;       ///< MCAs fed by this slice
  std::size_t rows_used = 0;       ///< rows occupied in each MCA
  std::size_t cols_used = 0;       ///< columns summed over the group
  std::size_t synapses = 0;        ///< crosspoints actually programmed
};

/// Mapping result for one network layer.
struct LayerMapping {
  std::size_t layer = 0;           ///< index into Topology::layers()
  std::vector<McaGroup> groups;
  std::size_t mca_count = 0;
  std::size_t mpe_count = 0;
  /// Time-multiplex partials per neuron: ceil(fan_in / N) (Fig. 5 degree).
  std::size_t mux_degree = 1;
  /// Serial integration cycles per neuron: partials beyond mcas_per_mpe
  /// concurrent currents, i.e. ceil(mux_degree / mcas_per_mpe).
  std::size_t mux_cycles = 1;
  /// Cross-mPE analog current transfers per output neuron per step.
  std::size_t ccu_transfers_per_neuron = 0;
  std::size_t synapses = 0;        ///< total programmed crosspoints
  double utilization = 0.0;        ///< synapses / (mca_count * N^2)
  std::size_t first_mpe = 0;       ///< global mPE index where layer starts
  std::size_t first_nc = 0;        ///< NeuroCell of first_mpe
  std::size_t last_nc = 0;         ///< NeuroCell of the layer's last mPE
  /// MCA size this layer was tiled for; 0 = inherit Mapping::config.mca_size.
  /// Search strategies (src/compile/search) mix sizes across one chip; every
  /// NeuroCell still holds arrays of a single size (verified by
  /// RV-CAP-NC-MIXED-SIZE), because an mPE's peripheral pitch is fixed.
  std::size_t mca_size = 0;
};

/// Whole-network mapping.
struct Mapping {
  ResparcConfig config;
  std::vector<LayerMapping> layers;
  std::size_t total_mcas = 0;
  std::size_t total_mpes = 0;
  std::size_t total_neurocells = 0;
  double utilization = 0.0;  ///< whole-chip weighted utilisation

  /// True when the transfer from layer l-1 into layer l crosses a
  /// NeuroCell boundary and must use the serial global bus (l = 0 means
  /// the input broadcast from the SRAM, always via the bus).
  bool boundary_uses_bus(std::size_t l) const;

  /// Resolved MCA size of layer `l`: layers[l].mca_size, falling back to
  /// config.mca_size when the layer carries no override (the homogeneous
  /// case — every pre-search mapping).
  std::size_t layer_mca_size(std::size_t l) const;

  /// Total crosspoint capacity of the chip: sum over layers of
  /// mca_count * N_l^2 with per-layer N_l.  Equals total_mcas * N^2 for a
  /// homogeneous chip; the denominator of the whole-chip utilisation.
  std::size_t total_cells() const;
};

/// Maps a topology onto the configured fabric.  Throws MappingError when a
/// layer cannot be mapped (e.g. zero-size layer).
Mapping map_network(const snn::Topology& topology, const ResparcConfig& config);

// -- tiling/placement building blocks ---------------------------------------
//
// map_network is the composition of the three functions below.  They are
// exposed so compile::MappingStrategy implementations (src/compile) can mix
// the paper's per-layer tiling with alternative packing and placement
// policies without duplicating the section 3.1 rules.

/// Tiles one layer with the paper's section 3.1 rules: fills `groups` and
/// `mux_degree`, then derives the per-layer counts via
/// finalize_layer_tiling.  Placement fields (first_mpe/first_nc/last_nc)
/// are left at zero; a placement pass assigns them.
LayerMapping tile_layer_paper(const snn::LayerInfo& li, std::size_t layer_index,
                              const ResparcConfig& config);

/// Derives mca_count / synapses / mux_cycles / ccu_transfers_per_neuron /
/// mpe_count / utilization from a layer's groups + mux_degree, and checks
/// synapse conservation against `li` (throws MappingError on loss).
void finalize_layer_tiling(const snn::LayerInfo& li, const ResparcConfig& config,
                           LayerMapping& lm);

/// The paper's placement: layers packed onto mPEs in network order, each
/// layer starting a fresh mPE.  Fills every placement field and the
/// whole-chip totals (total_mcas/mpes/neurocells, utilization).
void place_layers_sequential(Mapping& m, const ResparcConfig& config);

/// Conv-window edge: rows a window tile needs for `w` outputs with kernel
/// k and same/valid padding (helper exposed for tests).
std::size_t conv_window_input_span(std::size_t w, std::size_t k);

}  // namespace resparc::core
