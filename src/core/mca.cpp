#include "core/mca.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/kernels.hpp"

namespace resparc::core {

Mca::Mca(std::size_t size, tech::Memristor device)
    : size_(size), device_(std::move(device)) {
  require(size_ > 0, "MCA size must be positive");
}

void Mca::program(const Matrix& weights, std::size_t input_offset,
                  float scale) {
  require(weights.rows() <= size_ && weights.cols() <= size_,
          "MCA: weight slice exceeds array size");
  rows_used_ = weights.rows();
  cols_used_ = weights.cols();
  input_offset_ = input_offset;

  // Quantise to the device's levels — weight w becomes a differential pair
  // (G+ holds the positive part, G- the negative part).
  if (scale <= 0.0f)
    for (float w : weights.flat()) scale = std::max(scale, std::abs(w));
  weights_ = weights;
  if (scale > 0.0f) {
    const float steps = static_cast<float>(device_.levels() - 1);
    for (float& w : weights_.flat()) {
      const float m = std::clamp(std::abs(w) / scale, 0.0f, 1.0f);
      w = std::copysign(std::round(m * steps) / steps * scale, w);
    }
  }
}

std::size_t Mca::accumulate(const snn::SpikeVector& layer_input,
                            std::span<float> acc) {
  require(acc.size() >= cols_used_, "MCA: accumulator too small");
  std::size_t active = 0;
  double energy = 0.0;
  const double mean_cell = device_.mean_cell_read_energy_pj();
  // Walk the packed spike words directly (64 rows per load) instead of
  // probing one bit per row: active rows decode in ascending order, so the
  // row_add sequence — and the per-row energy accumulation — is bit-for-bit
  // what the per-row scan produced.  Bits past the input vector's end are
  // zero by SpikeVector's tail invariant.
  for (std::size_t base = 0; base < rows_used_; base += 64) {
    std::uint64_t word = layer_input.window(input_offset_ + base);
    const std::size_t chunk = rows_used_ - base;
    if (chunk < 64) word &= (std::uint64_t{1} << chunk) - 1;
    while (word) {
      const std::size_t r =
          base + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      ++active;
      kernels::row_add(acc.data(), weights_.row(r).data(), cols_used_);
      // Differential pair: both devices of the row conduct on a spike.
      energy += 2.0 * mean_cell * static_cast<double>(cols_used_);
    }
  }
  last_energy_pj_ = energy;
  if (active > 0) {
    total_energy_pj_ += energy;
    ++reads_;
  }
  return active;
}

}  // namespace resparc::core
