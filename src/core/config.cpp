#include "core/config.hpp"

#include <bit>
#include <cstdint>
#include <type_traits>

#include "common/error.hpp"

namespace resparc::core {

namespace {

/// Incremental FNV-1a over primitive values; doubles hash by bit pattern so
/// the fingerprint is exact, not tolerance-based.  Integral values widen to
/// 64 bits through one template so the overload set stays unambiguous on
/// every platform (size_t and uint64_t are distinct types on some ABIs).
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ull;
    }
  }
  void add_u64(std::uint64_t v) { bytes(&v, sizeof v); }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  void add(T v) {
    add_u64(static_cast<std::uint64_t>(v));
  }
  void add(double v) { add_u64(std::bit_cast<std::uint64_t>(v)); }
  void add(const std::string& s) {
    add_u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

void ResparcConfig::validate() const {
  require(mca_size >= 8 && mca_size <= 1024, "MCA size must be in [8,1024]");
  require(mcas_per_mpe >= 1 && mcas_per_mpe <= 16,
          "MCAs per mPE must be in [1,16]");
  require(nc_dim >= 2 && nc_dim <= 16, "NeuroCell dimension must be in [2,16]");
  require(buffer_depth >= 1, "buffer depth must be positive");
  require(input_sram_bytes >= 1024, "input SRAM must be at least 1 KiB");
  technology.validate();
  faults.validate();
}

std::string ResparcConfig::label() const {
  return "RESPARC-" + std::to_string(mca_size);
}

std::uint64_t ResparcConfig::fingerprint() const {
  Fnv1a h;
  h.add(mca_size);
  h.add(mcas_per_mpe);
  h.add(nc_dim);
  h.add(buffer_depth);
  h.add(input_sram_bytes);
  h.add(event_driven);
  h.add(enhanced_input_sharing);

  const tech::Technology& t = technology;
  h.add(t.name);
  h.add(t.resparc_clock_mhz);
  h.add(t.baseline_clock_mhz);
  h.add(t.flit_bits);

  const tech::MemristorParams& mem = t.memristor;
  h.add(mem.name);
  h.add(mem.r_on_ohm);
  h.add(mem.r_off_ohm);
  h.add(mem.bits);
  h.add(mem.read_voltage_v);
  h.add(mem.read_pulse_ns);
  h.add(mem.sneak_leak_fraction);

  const tech::DigitalCosts& d = t.digital;
  h.add(d.buffer_bit_pj);
  h.add(d.switch_flit_pj);
  h.add(d.bus_word_pj);
  h.add(d.ccu_transfer_pj);
  h.add(d.mca_control_pj);
  h.add(d.gcu_event_pj);
  h.add(d.neuron_integrate_pj);
  h.add(d.neuron_fire_pj);
  h.add(d.mac4_pj);
  h.add(d.nu_overhead_pj);
  h.add(d.core_leakage_w);
  h.add(d.column_interface_pj);
  h.add(d.mca_column_leak_w);

  // Fault injection enters the fingerprint only when enabled: a disabled
  // block (whatever its field values) leaves the hash — and therefore
  // every compiled-program blob — identical to pre-fault builds.
  if (faults.enabled) {
    h.add(true);
    h.add(faults.chip_seed);
    h.add(faults.stuck_off_rate);
    h.add(faults.stuck_on_rate);
    h.add(faults.programming_sigma);
    h.add(faults.read_noise_sigma);
    h.add(faults.weight_bits);
    h.add(faults.failed_density);
    h.add(faults.repair);
    h.add(faults.chip_neurocells);
  }
  return h.state;
}

ResparcConfig default_config() {
  ResparcConfig c;
  c.validate();
  return c;
}

ResparcConfig config_with_mca(std::size_t mca_size) {
  ResparcConfig c;
  c.mca_size = mca_size;
  c.validate();
  return c;
}

}  // namespace resparc::core
