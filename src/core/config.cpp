#include "core/config.hpp"

#include "common/error.hpp"

namespace resparc::core {

void ResparcConfig::validate() const {
  require(mca_size >= 8 && mca_size <= 1024, "MCA size must be in [8,1024]");
  require(mcas_per_mpe >= 1 && mcas_per_mpe <= 16,
          "MCAs per mPE must be in [1,16]");
  require(nc_dim >= 2 && nc_dim <= 16, "NeuroCell dimension must be in [2,16]");
  require(buffer_depth >= 1, "buffer depth must be positive");
  require(input_sram_bytes >= 1024, "input SRAM must be at least 1 KiB");
  technology.validate();
}

std::string ResparcConfig::label() const {
  return "RESPARC-" + std::to_string(mca_size);
}

ResparcConfig default_config() {
  ResparcConfig c;
  c.validate();
  return c;
}

ResparcConfig config_with_mca(std::size_t mca_size) {
  ResparcConfig c;
  c.mca_size = mca_size;
  c.validate();
  return c;
}

}  // namespace resparc::core
