// Behavioral macro Processing Engine (paper Fig. 4).
//
// An mPE owns up to `mcas_per_mpe` MCAs whose currents C1..C4 combine on a
// shared wire, an external current input C_ext (from a neighbouring mPE
// via the Current Control Unit), a population of IF neurons, and the three
// buffers (iBUFF/oBUFF/tBUFF).  An mPE either hosts neurons (integrating
// local + external currents) or serves as a *helper* that forwards its
// combined MCA currents to the hosting mPE.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/mca.hpp"
#include "snn/neuron.hpp"
#include "snn/trace.hpp"
#include "tech/memristor.hpp"

namespace resparc::core {

/// Activity counters of one mPE.
struct MpeCounters {
  std::size_t mca_reads = 0;       ///< crossbar reads performed
  std::size_t mca_skips = 0;       ///< reads skipped (silent input slice)
  std::size_t ibuff_bits = 0;      ///< input-buffer bits moved
  std::size_t obuff_bits = 0;      ///< output-buffer bits moved
  std::size_t neuron_fires = 0;
  std::size_t ccu_out = 0;         ///< current transfers sent to a neighbour
};

/// One macro Processing Engine.
class Mpe {
 public:
  Mpe(std::size_t mca_size, std::size_t mcas_per_mpe, tech::Memristor device);

  /// Adds a programmed MCA (weight slice + its offset into the layer
  /// input).  `scale` is the layer-wide quantisation scale (see
  /// Mca::program).  Throws when the mPE is already full.
  void add_mca(const Matrix& weights, std::size_t input_offset,
               float scale = 0.0f);

  /// Declares this mPE the host of `count` output neurons (count must not
  /// exceed the MCA column capacity).
  void host_neurons(std::size_t count, const snn::IfParams& params);

  bool hosts_neurons() const { return population_ != nullptr; }
  std::size_t neuron_count() const;
  std::size_t mca_count() const { return mcas_.size(); }

  /// Phase 1: read all local MCAs against the layer input; currents sum
  /// into the internal accumulator.  Event-driven: silent slices skip.
  void integrate_local(const snn::SpikeVector& layer_input);

  /// Phase 1b: add external currents arriving through the CCU (C_ext).
  void integrate_external(std::span<const float> currents);

  /// Combined currents (for a helper mPE forwarding to its host).
  std::span<const float> currents() const { return accumulator_; }

  /// Marks the accumulated currents as sent through the CCU (counters).
  void send_currents();

  /// Phase 2 (hosts only): step the IF population; returns spikes.
  snn::SpikeVector fire();

  /// Clears accumulated currents (start of a timestep).
  void begin_step();

  /// Resets neuron membranes and counters (new presentation).
  void reset();

  const MpeCounters& counters() const { return counters_; }

  /// Total crossbar read energy (pJ) across all local MCAs.
  double crossbar_energy_pj() const;

 private:
  std::size_t mca_size_;
  std::size_t capacity_;
  tech::Memristor device_;
  std::vector<Mca> mcas_;
  std::vector<float> accumulator_;
  std::unique_ptr<snn::IfPopulation> population_;
  snn::IfParams neuron_params_{};
  MpeCounters counters_{};
};

}  // namespace resparc::core
