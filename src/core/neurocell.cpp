#include "core/neurocell.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resparc::core {

using snn::LayerKind;
using snn::SpikeVector;

NeuroCell::NeuroCell(ResparcConfig config) : config_(std::move(config)) {
  config_.validate();
  const std::size_t n_switches = config_.switches_per_neurocell();
  switches_.reserve(n_switches);
  for (std::size_t s = 0; s < n_switches; ++s)
    switches_.emplace_back(static_cast<std::uint16_t>(s), config_.event_driven);
}

void NeuroCell::load(const snn::Network& net) {
  mpes_.clear();
  plan_.clear();
  const std::size_t N = config_.mca_size;
  const tech::Memristor device{config_.technology.memristor};

  for (std::size_t l = 0; l < net.topology().layer_count(); ++l) {
    const auto& li = net.topology().layers()[l];
    require(li.spec.kind == LayerKind::kDense,
            "behavioral NeuroCell maps dense layers only");
    const Matrix& w = net.layer(l).weights;
    float scale = 0.0f;
    for (float v : w.flat()) scale = std::max(scale, std::abs(v));

    const std::size_t F = li.fan_in;
    const std::size_t U = li.neurons;
    LayerPlan lp;
    lp.neurons = U;

    for (std::size_t col0 = 0; col0 < U; col0 += N) {
      const std::size_t cols = std::min(N, U - col0);
      ColGroup group;
      group.col_offset = col0;
      group.cols = cols;

      // Row slices of this column group, packed mcas_per_mpe per mPE; the
      // first mPE hosts the neurons, later ones are CCU helpers.
      const std::size_t slices = (F + N - 1) / N;
      std::size_t assigned = 0;
      while (assigned < slices) {
        if (mpes_.size() >= config_.mpes_per_neurocell())
          throw MappingError("network exceeds NeuroCell capacity (" +
                             std::to_string(config_.mpes_per_neurocell()) +
                             " mPEs)");
        mpes_.emplace_back(N, config_.mcas_per_mpe, device);
        Mpe& mpe = mpes_.back();
        const std::size_t mpe_index = mpes_.size() - 1;
        const std::size_t chunk =
            std::min(config_.mcas_per_mpe, slices - assigned);
        for (std::size_t s = 0; s < chunk; ++s) {
          const std::size_t row0 = (assigned + s) * N;
          const std::size_t rows = std::min(N, F - row0);
          Matrix slice(rows, cols);
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < cols; ++c)
              slice(r, c) = w(row0 + r, col0 + c);
          mpe.add_mca(slice, row0, scale);
        }
        if (assigned == 0) {
          mpe.host_neurons(cols, net.layer(l).neuron);
          group.host = mpe_index;
        } else {
          group.helpers.push_back(mpe_index);
        }
        assigned += chunk;
      }
      lp.groups.push_back(std::move(group));
    }
    plan_.push_back(std::move(lp));
  }
}

SpikeVector NeuroCell::step(const SpikeVector& input) {
  require(!plan_.empty(), "NeuroCell: no network loaded");
  SpikeVector current = input;

  for (std::size_t l = 0; l < plan_.size(); ++l) {
    const LayerPlan& lp = plan_[l];
    SpikeVector out(lp.neurons);

    for (const ColGroup& g : lp.groups) {
      Mpe& host = mpes_[g.host];
      host.begin_step();
      host.integrate_local(current);
      for (std::size_t h : g.helpers) {
        Mpe& helper = mpes_[h];
        helper.begin_step();
        helper.integrate_local(current);
        helper.send_currents();
        ++extra_.ccu_transfers;
        host.integrate_external(helper.currents().subspan(0, g.cols));
      }
      const SpikeVector spikes = host.fire();
      for (std::size_t i = 0; i < spikes.size(); ++i)
        if (spikes.get(i)) out.set(g.col_offset + i);
    }

    // Forward the layer's spikes through the switch fabric as 64-bit
    // flits; zero flits are suppressed by the switches' zero-check.
    const auto words = out.words();
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
      SpikePacket packet;
      packet.dst_switch =
          static_cast<std::uint16_t>(wi % std::max<std::size_t>(1, switches_.size()));
      packet.dst_mpe = static_cast<std::uint16_t>(l + 1);
      packet.payload = words[wi];
      ++extra_.packets_sent;
      ProgrammableSwitch& sw = switches_[packet.dst_switch];
      if (sw.offer(packet)) (void)sw.deliver();
    }
    current = std::move(out);
  }
  return current;
}

void NeuroCell::reset() {
  for (auto& mpe : mpes_) mpe.reset();
  for (auto& sw : switches_) sw.reset_counters();
  extra_ = NeuroCellCounters{};
}

NeuroCellCounters NeuroCell::counters() const {
  NeuroCellCounters c = extra_;
  for (const auto& mpe : mpes_) {
    c.mca_reads += mpe.counters().mca_reads;
    c.mca_skips += mpe.counters().mca_skips;
    c.neuron_fires += mpe.counters().neuron_fires;
  }
  for (const auto& sw : switches_) {
    c.packets_dropped += sw.counters().dropped_zero;
  }
  return c;
}

}  // namespace resparc::core
