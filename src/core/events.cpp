#include "core/events.hpp"

#include "common/error.hpp"

namespace resparc::core {

StepEvents EventStream::step_total(std::size_t t) const {
  require(t < timesteps_, "event stream: timestep out of range");
  StepEvents total;
  for (std::size_t s = 0; s < stages_; ++s) total += at(t, s);
  return total;
}

StepEvents EventStream::stage_total(std::size_t stage) const {
  require(stage < stages_, "event stream: stage out of range");
  StepEvents total;
  for (std::size_t t = 0; t < timesteps_; ++t) total += at(t, stage);
  return total;
}

StepEvents EventStream::total() const {
  StepEvents total;
  for (const StepEvents& cell : cells_) total += cell;
  return total;
}

void EventStream::merge(const EventStream& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  require(timesteps_ == other.timesteps_ && stages_ == other.stages_,
          "event stream: cannot merge streams of different shapes");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

}  // namespace resparc::core
