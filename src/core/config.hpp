// RESPARC micro-architectural configuration (paper Fig. 8).
//
// The three-tier hierarchy is parameterised by the MCA size (the paper
// evaluates 32/64/128), the number of MCAs per mPE (4), and the NeuroCell
// dimension (4x4 mPEs with a 3x3 programmable-switch grid).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "tech/nonideal.hpp"
#include "tech/technology.hpp"

namespace resparc::core {

/// Static configuration of a RESPARC chip.
struct ResparcConfig {
  std::size_t mca_size = 64;        ///< crossbar rows = columns (N)
  std::size_t mcas_per_mpe = 4;     ///< Fig. 4: four MCAs per mPE
  std::size_t nc_dim = 4;           ///< NeuroCell is nc_dim x nc_dim mPEs
  std::size_t buffer_depth = 32;    ///< iBUFF/oBUFF depth in flits
  std::size_t input_sram_bytes = 64 * 1024;  ///< global input memory (SRAM)
  bool event_driven = true;         ///< zero-check logic enabled (section 3.2)
  /// Conv tiling policy.  false (paper baseline): an MCA's columns hold the
  /// output channels of ONE spatial position, so rows are shared only
  /// within that position's receptive field — utilisation collapses once
  /// the array outgrows the field (the Fig. 12(c) effect).  true: adjacent
  /// output positions are packed into shared-window tiles ("enhanced
  /// input-sharing", the improvement section 3.1.1 sketches); quantified
  /// by bench/ablation_input_sharing.
  bool enhanced_input_sharing = false;
  tech::Technology technology = tech::default_technology();
  /// Device fault injection for one chip instance (docs/reliability.md).
  /// Off by default; a disabled block is inert — it does not enter the
  /// fingerprint, so fault-free programs stay byte-compatible with
  /// builds that predate the robustness layer.
  tech::FaultConfig faults{};

  std::size_t mpes_per_neurocell() const { return nc_dim * nc_dim; }
  std::size_t switches_per_neurocell() const {
    return (nc_dim - 1) * (nc_dim - 1);  // Fig. 8: 16 mPEs, 9 switches
  }
  std::size_t mcas_per_neurocell() const {
    return mpes_per_neurocell() * mcas_per_mpe;
  }
  /// Columns (= max neurons) available in one NeuroCell.
  std::size_t columns_per_neurocell() const {
    return mcas_per_neurocell() * mca_size;
  }

  /// Validates field domains; throws ConfigError otherwise.
  void validate() const;

  /// "RESPARC-N" label used throughout the paper's figures.
  std::string label() const;

  /// Stable FNV-1a hash over every field that affects mapping or execution
  /// (architecture knobs, device parameters, digital cost tables).  A
  /// compile::CompiledProgram records this at compile time and refuses to
  /// load against a chip whose fingerprint differs.
  std::uint64_t fingerprint() const;
};

/// The paper's default operating point: RESPARC-64 as in Fig. 8.
ResparcConfig default_config();

/// Same chip with a different crossbar size (the Fig. 12/13 sweep).
ResparcConfig config_with_mca(std::size_t mca_size);

}  // namespace resparc::core
