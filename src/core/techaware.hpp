// Technology-aware MCA size selection (paper contribution #3).
//
// "RESPARC is a technology-aware architecture that maps a given SNN
// topology to the most optimized MCA size for the given crossbar
// technology."  Device reliability bounds the usable sizes (large arrays
// suffer sneak paths / IR drop — section 1); among the permitted sizes the
// chip picks the one minimising energy per classification on a
// representative trace set.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/energy.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::core {

/// One evaluated candidate.
struct SizeCandidate {
  std::size_t mca_size = 0;
  double energy_pj = 0.0;          ///< per classification
  double latency_ns = 0.0;         ///< pipelined, per classification
  double utilization = 0.0;        ///< whole-chip crosspoint utilisation
  std::size_t mca_count = 0;
  std::size_t neurocells = 0;
};

/// Result of the exploration.
struct TechAwareResult {
  std::vector<SizeCandidate> candidates;  ///< in the order evaluated
  std::size_t best_index = 0;             ///< argmin energy
  const SizeCandidate& best() const { return candidates[best_index]; }
};

/// Largest MCA size (from `sizes`) that still meets a worst-case IR-drop
/// signal attenuation floor for the given device technology — the
/// "permissible by the technology constraints" filter of section 1.
std::vector<std::size_t> permissible_sizes(std::span<const std::size_t> sizes,
                                           const tech::Technology& technology,
                                           double wire_resistance_ohm,
                                           double min_attenuation);

/// Evaluates every candidate size on the trace set and picks the energy
/// optimum.  `base` supplies everything except mca_size.
TechAwareResult explore_mca_sizes(const snn::Topology& topology,
                                  std::span<const snn::SpikeTrace> traces,
                                  const ResparcConfig& base,
                                  std::span<const std::size_t> sizes);

}  // namespace resparc::core
