#include "core/techaware.hpp"

#include "common/error.hpp"
#include "core/resparc.hpp"
#include "tech/crossbar_model.hpp"

namespace resparc::core {

std::vector<std::size_t> permissible_sizes(std::span<const std::size_t> sizes,
                                           const tech::Technology& technology,
                                           double wire_resistance_ohm,
                                           double min_attenuation) {
  require(min_attenuation > 0.0 && min_attenuation <= 1.0,
          "min_attenuation must be in (0,1]");
  std::vector<std::size_t> ok;
  for (std::size_t n : sizes) {
    tech::CrossbarModel model(n, n, tech::Memristor{technology.memristor});
    tech::CrossbarNonIdealities ni;
    ni.wire_resistance_ohm = wire_resistance_ohm;
    Matrix mags(n, n, 1.0f);  // worst case: every device at G_on
    model.program(mags, ni);
    if (model.worst_case_ir_attenuation() >= min_attenuation) ok.push_back(n);
  }
  return ok;
}

TechAwareResult explore_mca_sizes(const snn::Topology& topology,
                                  std::span<const snn::SpikeTrace> traces,
                                  const ResparcConfig& base,
                                  std::span<const std::size_t> sizes) {
  require(!sizes.empty(), "explore_mca_sizes: no candidate sizes");
  require(!traces.empty(), "explore_mca_sizes: no traces");
  TechAwareResult result;
  for (std::size_t n : sizes) {
    ResparcConfig cfg = base;
    cfg.mca_size = n;
    ResparcChip chip(cfg);
    const Mapping& mapping = chip.load(topology);
    const RunReport report = chip.execute(traces);
    SizeCandidate c;
    c.mca_size = n;
    c.energy_pj = report.energy.total_pj();
    c.latency_ns = report.perf.latency_pipelined_ns();
    c.utilization = mapping.utilization;
    c.mca_count = mapping.total_mcas;
    c.neurocells = mapping.total_neurocells;
    result.candidates.push_back(c);
  }
  for (std::size_t i = 1; i < result.candidates.size(); ++i)
    if (result.candidates[i].energy_pj <
        result.candidates[result.best_index].energy_pj)
      result.best_index = i;
  return result;
}

}  // namespace resparc::core
