// Behavioral NeuroCell (paper Fig. 3): a 4x4 pool of mPEs plus a 3x3
// programmable-switch grid executing a (dense-layer) SNN spike-accurately.
//
// This is the bit-exact counterpart of the analytic Executor: it actually
// moves spikes through MCAs, CCU current chains and switches, so small
// networks can be verified end-to-end against the functional simulator
// (see tests/test_neurocell.cpp).  Paper-scale networks use the analytic
// path, which this class validates.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/mpe.hpp"
#include "core/switch.hpp"
#include "snn/network.hpp"
#include "snn/trace.hpp"

namespace resparc::core {

/// Aggregate traffic counters of the cell's switch network.
struct NeuroCellCounters {
  std::size_t packets_sent = 0;     ///< flits offered to the switch fabric
  std::size_t packets_dropped = 0;  ///< suppressed by zero-check
  std::size_t mca_reads = 0;
  std::size_t mca_skips = 0;
  std::size_t neuron_fires = 0;
  std::size_t ccu_transfers = 0;
};

/// One NeuroCell executing a dense SNN mapped within its capacity.
class NeuroCell {
 public:
  explicit NeuroCell(ResparcConfig config);

  /// Maps every (dense) layer of `net` onto the cell's mPEs.  Throws
  /// MappingError when the network needs more mPEs than the cell has or
  /// contains non-dense layers.  The network is copied (weights are
  /// programmed into MCAs; neuron parameters into populations).
  void load(const snn::Network& net);

  /// Executes one timestep: input spikes in, last-layer spikes out.
  snn::SpikeVector step(const snn::SpikeVector& input);

  /// Resets membranes and counters for a new presentation.
  void reset();

  /// Number of mPEs in use after load().
  std::size_t mpes_used() const { return mpes_.size(); }

  NeuroCellCounters counters() const;

  const ResparcConfig& config() const { return config_; }

 private:
  /// One column group of one layer: a host mPE plus helper mPEs whose
  /// currents chain through the CCU.
  struct ColGroup {
    std::size_t host = 0;              ///< index into mpes_
    std::vector<std::size_t> helpers;  ///< helper mPE indices
    std::size_t col_offset = 0;        ///< first neuron of the group
    std::size_t cols = 0;              ///< neurons in the group
  };
  struct LayerPlan {
    std::vector<ColGroup> groups;
    std::size_t neurons = 0;
  };

  ResparcConfig config_;
  std::vector<Mpe> mpes_;
  std::vector<ProgrammableSwitch> switches_;
  std::vector<LayerPlan> plan_;
  NeuroCellCounters extra_{};  ///< counters not owned by mPEs/switches
};

}  // namespace resparc::core
