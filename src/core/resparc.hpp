// ResparcChip: the top-level facade of the architecture model.
//
// Bundles configuration, mapping and execution behind one call sequence:
//
//   ResparcChip chip(config);
//   chip.load(topology);                 // compiles the SNN onto the fabric
//   RunReport r = chip.execute(traces);  // replays functional spike traces
//
// load(topology) is a thin wrapper over the compile layer with the "paper"
// strategy; a pre-compiled (possibly deserialized) program loads directly:
//
//   auto program = compile::Compiler(config).compile(topology, "greedy-pack");
//   chip.load(topology, program);
//
// The chip also provides the implementation-metric roll-up that reproduces
// the paper's Fig. 8 table (area / power / gate count / frequency of one
// NeuroCell).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "compile/program.hpp"
#include "core/config.hpp"
#include "core/executor.hpp"
#include "core/mapper.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::core {

/// Implementation metrics of one NeuroCell (paper Fig. 8).
struct NeuroCellMetrics {
  double area_mm2 = 0.0;
  double power_mw = 0.0;      ///< peak dynamic power at full activity
  double gate_count = 0.0;
  double frequency_mhz = 0.0;
  std::size_t mpe_count = 0;
  std::size_t switch_count = 0;
  std::size_t mcas_per_mpe = 0;
};

/// Computes the Fig. 8 metric roll-up for a configuration.
NeuroCellMetrics neurocell_metrics(const ResparcConfig& config);

/// A configured RESPARC chip that can host one network at a time.
class ResparcChip {
 public:
  /// `fidelity` selects the Ml-NoC timing model replays use: `analytic`
  /// (default) reproduces the flat per-word charges bit-for-bit, `event`
  /// adds switch-FIFO queueing and congestion stalls (docs/noc.md).
  explicit ResparcChip(ResparcConfig config,
                       noc::Fidelity fidelity = noc::Fidelity::kAnalytic);

  const ResparcConfig& config() const { return config_; }

  /// The NoC timing fidelity this chip executes with.
  noc::Fidelity fidelity() const { return fidelity_; }

  /// Compiles `topology` onto the fabric with the "paper" strategy
  /// (replacing any previous network) and returns the mapping for
  /// inspection.  The topology is copied.  Bit-for-bit equivalent to the
  /// pre-compiler core::map_network path.
  const Mapping& load(const snn::Topology& topology);

  /// Hosts a pre-compiled program (freshly compiled or deserialized).
  /// Throws compile::CompileError when the program's config fingerprint
  /// does not match this chip or the program does not implement
  /// `topology`.  The topology and program are copied.
  const Mapping& load(const snn::Topology& topology,
                      compile::CompiledProgram program);

  /// True once a network is loaded.
  bool loaded() const { return program_.has_value(); }

  /// Mapping of the loaded network; throws if none is loaded.
  const Mapping& mapping() const;

  /// Compiled program hosting the loaded network; throws if none is loaded.
  const compile::CompiledProgram& program() const;

  /// Replays one spike trace (must match the loaded topology).
  RunReport execute(const snn::SpikeTrace& trace) const;

  /// Replays a set of traces; energy/perf averaged per classification.
  RunReport execute(std::span<const snn::SpikeTrace> traces) const;

  /// Replays a set of traces, merging each presentation's per-timestep
  /// event stream into `stream` (when non-null); the report is
  /// bit-for-bit identical to the stream-less overload.
  RunReport execute(std::span<const snn::SpikeTrace> traces,
                    EventStream* stream) const;

  /// Batched (trace-per-lane) replay: bit-for-bit the report of
  /// execute(traces), produced by one pass over the route table
  /// (Executor::run_batched — the "+packed" execution mode's path).
  RunReport execute_batched(std::span<const snn::SpikeTrace> traces) const;

  /// Batched replay keeping the per-trace reports: `reports[i]` is
  /// bit-for-bit execute(traces[i]).  `reports` must have one slot per
  /// trace.
  void execute_each(std::span<const snn::SpikeTrace> traces,
                    std::span<RunReport> reports) const;

 private:
  ResparcConfig config_;
  noc::Fidelity fidelity_ = noc::Fidelity::kAnalytic;
  std::optional<snn::Topology> topology_;
  std::optional<compile::CompiledProgram> program_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace resparc::core
