// ResparcChip: the top-level facade of the architecture model.
//
// Bundles configuration, mapping and execution behind one call sequence:
//
//   ResparcChip chip(config);
//   chip.load(topology);                 // maps the SNN onto the fabric
//   RunReport r = chip.execute(traces);  // replays functional spike traces
//
// and provides the implementation-metric roll-up that reproduces the
// paper's Fig. 8 table (area / power / gate count / frequency of one
// NeuroCell).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "core/config.hpp"
#include "core/executor.hpp"
#include "core/mapper.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::core {

/// Implementation metrics of one NeuroCell (paper Fig. 8).
struct NeuroCellMetrics {
  double area_mm2 = 0.0;
  double power_mw = 0.0;      ///< peak dynamic power at full activity
  double gate_count = 0.0;
  double frequency_mhz = 0.0;
  std::size_t mpe_count = 0;
  std::size_t switch_count = 0;
  std::size_t mcas_per_mpe = 0;
};

/// Computes the Fig. 8 metric roll-up for a configuration.
NeuroCellMetrics neurocell_metrics(const ResparcConfig& config);

/// A configured RESPARC chip that can host one network at a time.
class ResparcChip {
 public:
  explicit ResparcChip(ResparcConfig config);

  const ResparcConfig& config() const { return config_; }

  /// Maps `topology` onto the fabric (replacing any previous network).
  /// Returns the mapping for inspection.  The topology is copied.
  const Mapping& load(const snn::Topology& topology);

  /// True once a network is loaded.
  bool loaded() const { return mapping_.has_value(); }

  /// Mapping of the loaded network; throws if none is loaded.
  const Mapping& mapping() const;

  /// Replays one spike trace (must match the loaded topology).
  RunReport execute(const snn::SpikeTrace& trace) const;

  /// Replays a set of traces; energy/perf averaged per classification.
  RunReport execute(std::span<const snn::SpikeTrace> traces) const;

 private:
  ResparcConfig config_;
  std::optional<snn::Topology> topology_;
  std::optional<Mapping> mapping_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace resparc::core
