#include "core/executor.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "core/fault_injection.hpp"
#include "tech/sram.hpp"

namespace resparc::core {

using snn::SpikeVector;

namespace {

std::size_t nonzero_words(const SpikeVector& v) {
  std::size_t n = 0;
  for (auto w : v.words())
    if (w) ++n;
  return n;
}

}  // namespace

/// Technology constants every stage of every step reads: hoisted once per
/// replay call so the batched path fetches them once for the whole batch.
struct Executor::ReplayCosts {
  const ResparcConfig& cfg;
  const tech::Technology& t;
  const tech::DigitalCosts& d;
  tech::Memristor device;
  double cell_pj;
  double cell_off_pj;
  double sneak;
  tech::SramModel sram;
};

/// One replay lane: its report under construction, cycle tallies, and —
/// under event fidelity — its own NoC fabric (FIFO clocks are per-trace
/// state and must not be shared across lanes).
struct Executor::LaneAccum {
  RunReport report;
  double cycles_pipelined = 0.0;
  double cycles_serial = 0.0;
  double cycles_compute = 0.0;
  double cycles_transport = 0.0;
  double cycles_stall = 0.0;
  std::optional<noc::Fabric> fabric;
  EventStream* stream = nullptr;
};

Executor::Executor(const snn::Topology& topology, const Mapping& mapping)
    : Executor(topology, mapping, noc::compute_routes(mapping),
               noc::Fidelity::kAnalytic) {}

Executor::Executor(const snn::Topology& topology, const Mapping& mapping,
                   noc::RouteTable routes, noc::Fidelity fidelity)
    : topology_(topology),
      mapping_(mapping),
      routes_(std::move(routes)),
      fidelity_(fidelity) {
  require(mapping.layers.size() == topology.layer_count(),
          "executor: mapping does not match topology");
  // Catches stale artifacts (e.g. a deserialized CompiledProgram for a
  // different network slipping past the facade): every mapped synapse must
  // belong to the layer it claims.
  for (std::size_t l = 0; l < mapping.layers.size(); ++l)
    require(mapping.layers[l].synapses == topology.layers()[l].synapses,
            "executor: layer " + std::to_string(l) +
                " synapse count does not match the topology");
  // One route per boundary: the input broadcast, every inter-layer edge
  // and the final-layer egress.
  require(routes_.size() == topology.layer_count() + 1,
          "executor: route table does not cover every layer boundary");

  // Device faults: freeze the chip instance's mean read-energy multiplier
  // and its manifest once; replays only pay one extra multiply (by an
  // exact 1.0 when disabled — the fault-free path stays bit-for-bit).
  if (mapping_.config.faults.enabled) {
    fault_cell_scale_ = chip_energy_scale(mapping_);
    fault_manifest_ = derive_manifest(mapping_);
  }

  const tech::DigitalCosts& d = mapping_.config.technology.digital;
  group_consts_.resize(mapping.layers.size());
  for (std::size_t l = 0; l < mapping.layers.size(); ++l) {
    const snn::LayerInfo& li = topology.layers()[l];
    // Heterogeneous chips (search strategies) size arrays per layer; all
    // pre-search mappings resolve to config.mca_size here.
    const std::size_t N = mapping.layer_mca_size(l);
    leak_columns_ += mapping.layers[l].mca_count * N;
    group_consts_[l].reserve(mapping.layers[l].groups.size());
    for (const McaGroup& g : mapping.layers[l].groups) {
      GroupConsts gc;
      gc.bits = static_cast<double>(slice_bits(g.slice, li.in_shape));
      gc.driven_scale = static_cast<double>(g.rows_used * g.mca_count);
      gc.synapses = static_cast<double>(g.synapses);
      gc.total_cells =
          static_cast<double>(g.mca_count) * static_cast<double>(N * N);
      gc.control_pj = static_cast<double>(g.mca_count) * d.mca_control_pj +
                      static_cast<double>(g.mca_count * N) *
                          d.column_interface_pj;
      gc.mca_size_d = static_cast<double>(N);
      gc.buffer_bits = g.mca_count * N;
      group_consts_[l].push_back(gc);
    }
  }
}

std::size_t Executor::slice_bits(const InputSlice& slice,
                                 const Shape3& in_shape) const {
  if (slice.kind == SliceKind::kContiguous) return slice.end - slice.begin;
  return in_shape.c * (slice.y1 - slice.y0 + 1) * (slice.x1 - slice.x0 + 1);
}

std::size_t Executor::active_in_slice(const InputSlice& slice,
                                      const Shape3& in_shape,
                                      const SpikeVector& spikes) const {
  if (slice.kind == SliceKind::kContiguous)
    return spikes.count_range(slice.begin, slice.end);
  std::size_t active = 0;
  for (std::size_t c = 0; c < in_shape.c; ++c) {
    for (std::size_t y = slice.y0; y <= slice.y1; ++y) {
      const std::size_t base = (c * in_shape.h + y) * in_shape.w;
      active += spikes.count_range(base + slice.x0, base + slice.x1 + 1);
    }
  }
  return active;
}

Executor::ReplayCosts Executor::make_costs() const {
  const ResparcConfig& cfg = mapping_.config;
  const tech::Technology& t = cfg.technology;
  const tech::Memristor device{t.memristor};
  return ReplayCosts{
      cfg,
      t,
      t.digital,
      device,
      // Programmed cells charge at the chip instance's realised mean
      // conductance (x1.0 exactly when fault injection is off); unmapped
      // G_off cells are unaffected by programming faults.
      device.mean_cell_read_energy_pj() * fault_cell_scale_,
      device.cell_read_energy_pj(device.g_min()),
      device.params().sneak_leak_fraction,
      tech::SramModel{
          {.capacity_bytes = cfg.input_sram_bytes, .word_bits = 64}}};
}

void Executor::step_lane(const snn::SpikeTrace& trace, std::size_t step,
                         const ReplayCosts& costs, LaneAccum& lane) const {
  const ResparcConfig& cfg = costs.cfg;
  const tech::DigitalCosts& d = costs.d;
  const double cell_pj = costs.cell_pj;
  const double cell_off_pj = costs.cell_off_pj;
  const double sneak = costs.sneak;

  EnergyBreakdown& e = lane.report.energy;
  EventCounts& ev = lane.report.events;
  noc::NocStats& nstats = lane.report.noc;
  std::optional<noc::Fabric>& fabric = lane.fabric;
  EventStream* stream = lane.stream;

  double stage_max = 0.0;
  if (fabric) fabric->begin_step();

  // -- input broadcast from the SRAM (zero-check at the read port) -----
  {
    const noc::Route& route = routes_.boundaries[0];
    const SpikeVector& in0 = trace.layers[0][step];
    const std::size_t total = in0.word_count();
    const std::size_t nz = nonzero_words(in0);
    const std::size_t sent = cfg.event_driven ? nz : total;
    const std::size_t zeros = cfg.event_driven ? total - nz : 0;
    ev.sram_writes += sent;  // host deposits the encoded input
    ev.sram_reads += sent;
    ev.bus_words += sent;
    ev.bus_skips += zeros;
    if (stream) {
      StepEvents& cell = stream->at(step, 0);
      cell.words_sent = sent;
      cell.words_skipped = zeros;
      cell.neuron_fires = in0.count();
    }
    const noc::Transport tr =
        fabric ? fabric->transfer(route, sent, zeros, 0.0)
               : noc::analytic_transfer(route, sent, zeros, cfg, nstats);
    stage_max = std::max(stage_max, tr.cycles);
    lane.cycles_serial += tr.cycles;
    lane.cycles_transport += tr.cycles - tr.stall_cycles;
    lane.cycles_stall += tr.stall_cycles;
  }

  for (std::size_t l = 0; l < topology_.layer_count(); ++l) {
    const snn::LayerInfo& li = topology_.layers()[l];
    const LayerMapping& lm = mapping_.layers[l];
    const SpikeVector& in_vec = trace.layers[l][step];
    const SpikeVector& out_vec = trace.layers[l + 1][step];

    StepEvents* cell = stream ? &stream->at(step, l + 1) : nullptr;

    bool layer_active = false;
    const std::vector<GroupConsts>& consts = group_consts_[l];
    for (std::size_t gi = 0; gi < lm.groups.size(); ++gi) {
      const McaGroup& g = lm.groups[gi];
      const GroupConsts& gc = consts[gi];
      const std::size_t active = active_in_slice(g.slice, li.in_shape, in_vec);
      if (active == 0 && cfg.event_driven) {
        ev.mca_skips += g.mca_count;
        if (cell) cell->mca_skips += g.mca_count;
        continue;
      }
      layer_active = layer_active || active > 0;
      const double fraction =
          gc.bits != 0.0 ? static_cast<double>(active) / gc.bits : 0.0;
      // Programmed cells on driven rows dissipate at the mean programmed
      // conductance; the *unmapped* crosspoints of a driven row still sit
      // at G_off and leak V^2*G_off*t each — the physical cost of poor
      // utilisation that makes oversized MCAs lose on sparse (CNN)
      // connectivity (paper section 5.2, Fig. 12(c)).
      const double driven_rows = fraction * gc.driven_scale;
      const double driven_cells = driven_rows * gc.mca_size_d;
      const double used_cells = fraction * gc.synapses;
      e.crossbar_pj += used_cells * cell_pj +
                       std::max(0.0, driven_cells - used_cells) * cell_off_pj;
      // Sneak paths: in a selectorless array every *half-selected* cell
      // leaks a fraction of a full read during each access [Liang,
      // TED'10] — the total grows with the square of the array size,
      // which is the paper's reason large MCAs lose (sections 1, 5.2).
      if (sneak > 0.0) {
        e.crossbar_pj +=
            sneak * std::max(0.0, gc.total_cells - driven_cells) * cell_off_pj;
      }
      ev.mca_activations += g.mca_count;
      if (cell) {
        cell->mca_reads += g.mca_count;
        cell->active_rows += active * g.mca_count;
      }
      // The iBUFF feeds all N row drivers of each array regardless of how
      // many rows carry mapped synapses, and every physical column's
      // sense/interface path cycles on a read, used or not.
      ev.buffer_bits += gc.buffer_bits;
      e.control_pj += gc.control_pj;
      ev.neuron_integrations += g.cols_used;
    }

    const std::size_t fires = out_vec.count();
    ev.neuron_fires += fires;
    if (cell) cell->neuron_fires = fires;

    if ((layer_active || !cfg.event_driven) && lm.ccu_transfers_per_neuron > 0)
      ev.ccu_transfers += li.neurons * lm.ccu_transfers_per_neuron;

    // -- output transfer toward the next layer (or off-chip) -----------
    const noc::Route& route = routes_.boundaries[l + 1];
    const std::size_t total = out_vec.word_count();
    const std::size_t nz = nonzero_words(out_vec);
    const std::size_t sent = cfg.event_driven ? nz : total;
    const std::size_t zeros = cfg.event_driven ? total - nz : 0;
    const bool via_bus = route.uses_bus;
    if (via_bus) {
      ev.bus_words += sent;
      ev.sram_writes += sent;
      ev.sram_reads += sent;
      ev.bus_skips += zeros;
      e.control_pj += d.gcu_event_pj;  // event flag + tagged broadcast
    } else {
      ev.switch_flits += sent;
      ev.switch_skips += zeros;
    }
    if (cell) {
      cell->words_sent += sent;
      cell->words_skipped += zeros;
    }
    // oBUFF write+read of every sent flit plus a tBUFF address lookup.
    ev.buffer_bits +=
        sent * (2 * static_cast<std::size_t>(costs.t.flit_bits) + 16);

    const double compute_c = (layer_active || !cfg.event_driven)
                                 ? static_cast<double>(lm.mux_cycles) + 1.0
                                 : 0.0;
    // Event fidelity: the transfer is injected when the stage's compute
    // retires, so congestion on a shared resource shows up as stall.
    const noc::Transport tr =
        fabric ? fabric->transfer(route, sent, zeros, compute_c)
               : noc::analytic_transfer(route, sent, zeros, cfg, nstats);
    // Analytic keeps the historical overlap (max); the event fabric is
    // store-and-forward after compute.
    const double stage =
        fabric ? compute_c + tr.cycles : std::max(compute_c, tr.cycles);
    stage_max = std::max(stage_max, stage);
    lane.cycles_serial += compute_c + tr.cycles;
    lane.cycles_compute += compute_c;
    lane.cycles_transport += tr.cycles - tr.stall_cycles;
    lane.cycles_stall += tr.stall_cycles;
  }

  lane.cycles_pipelined += stage_max;
}

void Executor::finish_lane(const ReplayCosts& costs, LaneAccum& lane) const {
  RunReport& report = lane.report;
  EnergyBreakdown& e = report.energy;
  const EventCounts& ev = report.events;
  const tech::DigitalCosts& d = costs.d;

  if (lane.fabric) report.noc = lane.fabric->stats();
  const noc::NocStats& nstats = report.noc;

  // -- convert counters to energy ------------------------------------------
  e.neuron_pj +=
      static_cast<double>(ev.neuron_integrations) * d.neuron_integrate_pj +
      static_cast<double>(ev.neuron_fires) * d.neuron_fire_pj;
  e.buffer_pj += static_cast<double>(ev.buffer_bits) * d.buffer_bit_pj;
  e.comm_pj += static_cast<double>(ev.switch_flits) * d.switch_flit_pj +
               static_cast<double>(ev.bus_words) * d.bus_word_pj +
               static_cast<double>(ev.ccu_transfers) * d.ccu_transfer_pj +
               static_cast<double>(ev.sram_reads) * costs.sram.read_energy_pj() +
               static_cast<double>(ev.sram_writes) * costs.sram.write_energy_pj();
  if (fidelity_ == noc::Fidelity::kEvent) {
    // Hierarchical traversal energy the flat model folds into one hop:
    // every H-tree level crossed, and every mesh switch beyond the first,
    // costs one more flit traversal (docs/noc.md).
    const std::size_t extra_mesh =
        nstats.mesh.hops > nstats.mesh.words
            ? nstats.mesh.hops - nstats.mesh.words
            : 0;
    e.comm_pj +=
        static_cast<double>(nstats.tree.hops + extra_mesh) * d.switch_flit_pj;
  }

  report.perf.clock_mhz = costs.t.resparc_clock_mhz;
  report.perf.cycles_pipelined = lane.cycles_pipelined;
  report.perf.cycles_serial = lane.cycles_serial;
  report.perf.cycles_compute = lane.cycles_compute;
  report.perf.cycles_transport = lane.cycles_transport;
  report.perf.cycles_stall = lane.cycles_stall;

  // Leakage integrates over the steady-state (pipelined) latency: in
  // throughput mode the chip retires one classification per pipelined
  // interval, so that is the idle-power window each classification pays.
  // The leaking silicon is the deployed column periphery (crossbars are
  // non-volatile), so idle power scales with mapped arrays x columns.
  const double leak_w =
      static_cast<double>(leak_columns_) * d.mca_column_leak_w +
      costs.sram.leakage_w();
  e.leakage_pj += leak_w * report.perf.latency_pipelined_ns() * 1e3;  // W*ns -> pJ

  if (fault_manifest_) report.faults = fault_manifest_;
}

RunReport Executor::run(const snn::SpikeTrace& trace) const {
  return run(trace, nullptr);
}

RunReport Executor::run(const snn::SpikeTrace& trace,
                        EventStream* stream) const {
  require(trace.layer_count() == topology_.layer_count() + 1,
          "executor: trace does not match topology");
  const std::size_t T = trace.timesteps();
  require(T > 0, "executor: empty trace");

  const ReplayCosts costs = make_costs();

  LaneAccum lane;
  lane.report.classifications = 1;
  // The event fabric keeps FIFO queues and per-resource clocks; the
  // analytic path is pure counter arithmetic (zero-allocation steady
  // state, tests/test_allocation.cpp) through noc::analytic_transfer.
  if (fidelity_ == noc::Fidelity::kEvent)
    lane.fabric.emplace(costs.cfg, mapping_.total_neurocells);
  if (stream) {
    *stream = EventStream(T, topology_.layer_count() + 1);
    lane.stream = stream;
  }

  for (std::size_t step = 0; step < T; ++step)
    step_lane(trace, step, costs, lane);

  finish_lane(costs, lane);
  return lane.report;
}

void Executor::run_each(std::span<const snn::SpikeTrace> traces,
                        std::span<RunReport> reports) const {
  require(traces.size() == reports.size(),
          "executor: run_each needs one report slot per trace");
  const ReplayCosts costs = make_costs();

  std::vector<LaneAccum> lanes(traces.size());
  std::size_t max_T = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    require(traces[i].layer_count() == topology_.layer_count() + 1,
            "executor: trace does not match topology");
    require(traces[i].timesteps() > 0, "executor: empty trace");
    max_T = std::max(max_T, traces[i].timesteps());
    lanes[i].report.classifications = 1;
    if (fidelity_ == noc::Fidelity::kEvent)
      lanes[i].fabric.emplace(costs.cfg, mapping_.total_neurocells);
  }

  // Steps outer, lanes inner: within one lane the stage order per step is
  // exactly run()'s, so every float accumulator sees the same addition
  // sequence — bit-for-bit identical reports — while the route/cost
  // lookups of a step are amortized over the whole batch.
  for (std::size_t step = 0; step < max_T; ++step)
    for (std::size_t i = 0; i < traces.size(); ++i)
      if (step < traces[i].timesteps())
        step_lane(traces[i], step, costs, lanes[i]);

  for (std::size_t i = 0; i < traces.size(); ++i) {
    finish_lane(costs, lanes[i]);
    reports[i] = std::move(lanes[i].report);
  }
}

RunReport Executor::run_batched(std::span<const snn::SpikeTrace> traces) const {
  require(!traces.empty(), "executor: no traces");
  std::vector<RunReport> reports(traces.size());
  run_each(traces, reports);
  RunReport total;
  for (const RunReport& r : reports) {
    total.energy += r.energy;
    total.events += r.events;
    total.perf += r.perf;
    total.noc += r.noc;
    total.classifications += r.classifications;
  }
  const double n = static_cast<double>(total.classifications);
  total.energy /= n;
  total.perf /= n;
  if (fault_manifest_) total.faults = fault_manifest_;
  return total;
}

RunReport Executor::run_all(std::span<const snn::SpikeTrace> traces) const {
  return run_all(traces, nullptr);
}

RunReport Executor::run_all(std::span<const snn::SpikeTrace> traces,
                            EventStream* stream) const {
  require(!traces.empty(), "executor: no traces");
  RunReport total;
  EventStream merged;
  for (const auto& trace : traces) {
    EventStream local;
    const RunReport r = run(trace, stream ? &local : nullptr);
    if (stream) merged.merge(local);
    total.energy += r.energy;
    total.events += r.events;
    total.perf += r.perf;
    total.noc += r.noc;
    total.classifications += r.classifications;
  }
  if (stream) *stream = std::move(merged);
  const double n = static_cast<double>(total.classifications);
  total.energy /= n;
  total.perf /= n;
  if (fault_manifest_) total.faults = fault_manifest_;
  return total;
}

}  // namespace resparc::core
