#include "core/mpe.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace resparc::core {

Mpe::Mpe(std::size_t mca_size, std::size_t mcas_per_mpe, tech::Memristor device)
    : mca_size_(mca_size), capacity_(mcas_per_mpe), device_(std::move(device)),
      accumulator_(mca_size, 0.0f) {
  require(mca_size_ > 0 && capacity_ > 0, "mPE needs positive dimensions");
  mcas_.reserve(capacity_);
}

void Mpe::add_mca(const Matrix& weights, std::size_t input_offset,
                  float scale) {
  require(mcas_.size() < capacity_, "mPE is full (mcas_per_mpe reached)");
  Mca mca(mca_size_, device_);
  mca.program(weights, input_offset, scale);
  mcas_.push_back(std::move(mca));
}

void Mpe::host_neurons(std::size_t count, const snn::IfParams& params) {
  require(count > 0 && count <= mca_size_,
          "hosted neuron count must be in [1, mca_size]");
  neuron_params_ = params;
  population_ = std::make_unique<snn::IfPopulation>(count, params);
}

std::size_t Mpe::neuron_count() const {
  return population_ ? population_->size() : 0;
}

void Mpe::begin_step() {
  std::fill(accumulator_.begin(), accumulator_.end(), 0.0f);
}

void Mpe::integrate_local(const snn::SpikeVector& layer_input) {
  for (auto& mca : mcas_) {
    // Event-driven skip: consult the iBUFF slice first; a silent slice
    // never reaches the crossbar (section 3.2).
    const std::size_t active = mca.accumulate(layer_input, accumulator_);
    if (active == 0) {
      ++counters_.mca_skips;
    } else {
      ++counters_.mca_reads;
      counters_.ibuff_bits += mca.rows_used();
    }
  }
}

void Mpe::integrate_external(std::span<const float> currents) {
  require(currents.size() <= accumulator_.size(),
          "external current vector too wide");
  for (std::size_t i = 0; i < currents.size(); ++i)
    accumulator_[i] += currents[i];
}

void Mpe::send_currents() { ++counters_.ccu_out; }

snn::SpikeVector Mpe::fire() {
  require(population_ != nullptr, "fire() on a helper mPE");
  const std::size_t n = population_->size();
  std::vector<std::uint8_t> bytes(n, 0);
  population_->step(std::span<const float>(accumulator_.data(), n), bytes);
  snn::SpikeVector spikes = snn::SpikeVector::from_bytes(bytes);
  const std::size_t fires = spikes.count();
  counters_.neuron_fires += fires;
  counters_.obuff_bits += spikes.word_count() * 64;
  return spikes;
}

void Mpe::reset() {
  if (population_) population_->reset();
  counters_ = MpeCounters{};
  begin_step();
}

double Mpe::crossbar_energy_pj() const {
  double e = 0.0;
  for (const auto& mca : mcas_) e += mca.total_read_energy_pj();
  return e;
}

}  // namespace resparc::core
