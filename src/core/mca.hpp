// Behavioral MCA unit (Fig. 2(b)).
//
// Couples the *functional* view (signed quantised weights producing exact
// partial sums, so architecture runs are bit-identical to the functional
// simulator) with the *electrical* view (a differential pair of
// tech::CrossbarModel devices per weight for read-energy accounting).
#pragma once

#include <cstddef>
#include <span>

#include "common/matrix.hpp"
#include "snn/trace.hpp"
#include "tech/crossbar_model.hpp"

namespace resparc::core {

/// One crossbar inside an mPE, programmed with a slice of a layer's
/// connectivity matrix.
class Mca {
 public:
  /// Creates an N x N array for the given device technology.
  Mca(std::size_t size, tech::Memristor device);

  std::size_t size() const { return size_; }
  std::size_t rows_used() const { return rows_used_; }
  std::size_t cols_used() const { return cols_used_; }

  /// Programs a rows x cols signed-weight slice (rows, cols <= N) whose
  /// input rows start at `input_offset` within the layer's input vector.
  /// Weights are quantised to the device's level count (differential
  /// G+/G- pair per weight).  `scale` sets the full-range magnitude (the
  /// layer's max |w|, so all slices of a layer quantise identically);
  /// scale <= 0 uses the slice's own maximum.
  void program(const Matrix& weights, std::size_t input_offset,
               float scale = 0.0f);

  std::size_t input_offset() const { return input_offset_; }

  /// Computes partial sums for the mapped columns from the layer's input
  /// spikes (only this MCA's row slice is consulted).  Adds into `acc`.
  /// Active rows are decoded straight from the input's packed 64-bit
  /// words (ascending, via SpikeVector::window), so the accumulation
  /// order — and hence the float result — matches a per-row bit scan
  /// exactly.  Returns the number of active rows (0 means the read was
  /// skippable).
  std::size_t accumulate(const snn::SpikeVector& layer_input,
                         std::span<float> acc);

  /// Crossbar read energy (pJ) of the last accumulate() call.
  double last_read_energy_pj() const { return last_energy_pj_; }

  /// Total crossbar read energy (pJ) since construction.
  double total_read_energy_pj() const { return total_energy_pj_; }

  /// Reads actually performed (at least one active row).
  std::size_t read_count() const { return reads_; }

 private:
  std::size_t size_;
  tech::Memristor device_;
  Matrix weights_;  // quantised signed weights, rows_used x cols_used
  std::size_t rows_used_ = 0;
  std::size_t cols_used_ = 0;
  std::size_t input_offset_ = 0;
  double last_energy_pj_ = 0.0;
  double total_energy_pj_ = 0.0;
  std::size_t reads_ = 0;
};

}  // namespace resparc::core
