// Energy accounting types shared by the RESPARC and CMOS executors.
//
// RESPARC energy is reported in the paper's three buckets (Fig. 12 a/c):
// Neuron, Crossbar, Peripherals (= buffers + control + communication); the
// CMOS baseline uses Core / Memory-Access / Memory-Leakage (Fig. 12 b/d).
#pragma once

#include <cstddef>
#include <optional>

#include "noc/stats.hpp"
#include "tech/nonideal.hpp"

namespace resparc::core {

/// Per-component RESPARC energy (picojoules, per classification unless a
/// caller aggregates differently).
struct EnergyBreakdown {
  double neuron_pj = 0.0;    ///< membrane integration + spike generation
  double crossbar_pj = 0.0;  ///< MCA read energy (V^2 G t over active cells)
  double buffer_pj = 0.0;    ///< iBUFF/oBUFF/tBUFF traffic
  double control_pj = 0.0;   ///< local + global control sequencing
  double comm_pj = 0.0;      ///< switch hops, bus words, CCU transfers, SRAM
  double leakage_pj = 0.0;   ///< idle power integrated over the run

  /// The paper's "Peripherals (Buffer, Control, Communication)" bucket.
  double peripherals_pj() const {
    return buffer_pj + control_pj + comm_pj + leakage_pj;
  }
  double total_pj() const {
    return neuron_pj + crossbar_pj + peripherals_pj();
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    neuron_pj += other.neuron_pj;
    crossbar_pj += other.crossbar_pj;
    buffer_pj += other.buffer_pj;
    control_pj += other.control_pj;
    comm_pj += other.comm_pj;
    leakage_pj += other.leakage_pj;
    return *this;
  }
  EnergyBreakdown& operator/=(double n) {
    neuron_pj /= n;
    crossbar_pj /= n;
    buffer_pj /= n;
    control_pj /= n;
    comm_pj /= n;
    leakage_pj /= n;
    return *this;
  }
};

/// Raw event counters from one RESPARC run (per classification).
struct EventCounts {
  std::size_t mca_activations = 0;   ///< MCA reads actually performed
  std::size_t mca_skips = 0;         ///< reads elided by zero-check
  std::size_t neuron_integrations = 0;
  std::size_t neuron_fires = 0;
  std::size_t buffer_bits = 0;
  std::size_t switch_flits = 0;      ///< packets through switches
  std::size_t switch_skips = 0;      ///< zero packets dropped at switches
  std::size_t bus_words = 0;         ///< words over the global IO bus
  std::size_t bus_skips = 0;         ///< zero words elided at the SRAM check
  std::size_t ccu_transfers = 0;     ///< inter-mPE analog current transfers
  std::size_t sram_reads = 0;
  std::size_t sram_writes = 0;

  EventCounts& operator+=(const EventCounts& other);
};

/// Timing summary of one run.
struct PerfReport {
  double cycles_pipelined = 0.0;  ///< sum_t max_l stage(l,t): layer-pipelined
  double cycles_serial = 0.0;     ///< sum_t sum_l stage(l,t): one image in flight
  /// Serial-cycle decomposition (docs/noc.md): crossbar read +
  /// time-multiplexed integration cycles.
  double cycles_compute = 0.0;
  /// Serial-cycle decomposition: NoC service + hop pipeline-fill cycles.
  double cycles_transport = 0.0;
  /// Serial-cycle decomposition: cycles stalled on busy NoC resources
  /// (always 0 in analytic NoC fidelity).
  double cycles_stall = 0.0;
  double clock_mhz = 0.0;

  /// Latency of one classification with the pipeline full (throughput
  /// figure the paper reports).
  double latency_pipelined_ns() const {
    return cycles_pipelined * 1e3 / clock_mhz;
  }
  /// End-to-end latency of a single classification.
  double latency_serial_ns() const { return cycles_serial * 1e3 / clock_mhz; }
  /// Classifications per second at full pipeline.
  double throughput_hz() const {
    const double ns = latency_pipelined_ns();
    return ns > 0.0 ? 1e9 / ns : 0.0;
  }

  PerfReport& operator+=(const PerfReport& other) {
    cycles_pipelined += other.cycles_pipelined;
    cycles_serial += other.cycles_serial;
    cycles_compute += other.cycles_compute;
    cycles_transport += other.cycles_transport;
    cycles_stall += other.cycles_stall;
    clock_mhz = other.clock_mhz;
    return *this;
  }
  PerfReport& operator/=(double n) {
    cycles_pipelined /= n;
    cycles_serial /= n;
    cycles_compute /= n;
    cycles_transport /= n;
    cycles_stall /= n;
    return *this;
  }
};

/// Complete result of replaying traces against a mapping.
struct RunReport {
  EnergyBreakdown energy;  ///< per classification (averaged over trace set)
  EventCounts events;      ///< summed over the trace set
  PerfReport perf;         ///< per classification (averaged over trace set)
  /// Per-level Ml-NoC traffic counters (docs/noc.md), summed over the
  /// trace set like `events`.
  noc::NocStats noc;
  std::size_t classifications = 0;
  /// Realised device-fault manifest of the chip instance the replay ran
  /// on; absent when fault injection is disabled (docs/reliability.md).
  std::optional<tech::FaultManifest> faults;
};

}  // namespace resparc::core
