#include "core/mapper.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"

namespace resparc::core {

using snn::LayerInfo;
using snn::LayerKind;

namespace {

/// Dense layer: contiguous N-row slices of the fan_in x units matrix.
void map_dense(const LayerInfo& li, const ResparcConfig& cfg, LayerMapping& lm) {
  const std::size_t N = cfg.mca_size;
  const std::size_t F = li.fan_in;
  const std::size_t U = li.neurons;
  const std::size_t row_slices = ceil_div(F, N);
  const std::size_t col_groups = ceil_div(U, N);
  for (std::size_t s = 0; s < row_slices; ++s) {
    McaGroup g;
    g.slice.kind = SliceKind::kContiguous;
    g.slice.begin = s * N;
    g.slice.end = std::min(F, (s + 1) * N);
    g.rows_used = g.slice.end - g.slice.begin;
    g.mca_count = col_groups;
    g.cols_used = U;
    g.synapses = g.rows_used * U;
    lm.groups.push_back(g);
  }
  lm.mux_degree = row_slices;
}

/// Convolution with fan_in <= N: spatial-window tiling.  The window width
/// is 1 output position in the paper-baseline policy (rows shared only
/// across the output channels of one position) and grows to the largest
/// span fitting N rows under enhanced input sharing.
void map_conv_windowed(const LayerInfo& li, const ResparcConfig& cfg,
                       LayerMapping& lm) {
  const std::size_t N = cfg.mca_size;
  const std::size_t k = li.spec.kernel;
  const std::size_t inC = li.in_shape.c;
  const Shape3 out = li.out_shape;
  const Shape3 in = li.in_shape;
  const std::size_t pad = li.spec.same_padding ? k / 2 : 0;

  // Largest square output window whose input span fits in N rows.
  std::size_t w = 1;
  if (cfg.enhanced_input_sharing) {
    while (inC * conv_window_input_span(w + 1, k) *
                   conv_window_input_span(w + 1, k) <=
               N &&
           w + 1 <= std::max(out.h, out.w))
      ++w;
  }
  require(inC * conv_window_input_span(1, k) * conv_window_input_span(1, k) <= N,
          "map_conv_windowed called with fan_in > N");

  for (std::size_t wy = 0; wy < out.h; wy += w) {
    for (std::size_t wx = 0; wx < out.w; wx += w) {
      const std::size_t oy1 = std::min(out.h - 1, wy + w - 1);
      const std::size_t ox1 = std::min(out.w - 1, wx + w - 1);
      const std::size_t wh = oy1 - wy + 1;
      const std::size_t ww = ox1 - wx + 1;
      // Input extent of the window (clipped at the borders).
      const std::size_t y0 = wy >= pad ? wy - pad : 0;
      const std::size_t y1 = std::min(in.h - 1, oy1 + k - 1 - pad);
      const std::size_t x0 = wx >= pad ? wx - pad : 0;
      const std::size_t x1 = std::min(in.w - 1, ox1 + k - 1 - pad);

      McaGroup g;
      g.slice.kind = SliceKind::kWindow;
      g.slice.y0 = y0;
      g.slice.y1 = y1;
      g.slice.x0 = x0;
      g.slice.x1 = x1;
      g.rows_used = inC * (y1 - y0 + 1) * (x1 - x0 + 1);
      const std::size_t outputs = wh * ww * out.c;
      g.mca_count = ceil_div(outputs, N);
      g.cols_used = outputs;
      g.synapses = outputs * li.fan_in;
      lm.groups.push_back(g);
    }
  }
  lm.mux_degree = 1;
}

/// Convolution with fan_in > N: per-position im2col slicing; all output
/// channels at a position share rows.  Groups are per output-row band.
void map_conv_sliced(const LayerInfo& li, const ResparcConfig& cfg,
                     LayerMapping& lm) {
  const std::size_t N = cfg.mca_size;
  const std::size_t k = li.spec.kernel;
  const Shape3 out = li.out_shape;
  const Shape3 in = li.in_shape;
  const std::size_t pad = li.spec.same_padding ? k / 2 : 0;
  const std::size_t slices = ceil_div(li.fan_in, N);
  const std::size_t col_groups = ceil_div(out.c, N);

  for (std::size_t oy = 0; oy < out.h; ++oy) {
    const std::size_t y0 = oy >= pad ? oy - pad : 0;
    const std::size_t y1 = std::min(in.h - 1, oy + k - 1 - pad);
    McaGroup g;
    g.slice.kind = SliceKind::kWindow;
    g.slice.y0 = y0;
    g.slice.y1 = y1;
    g.slice.x0 = 0;
    g.slice.x1 = in.w - 1;
    g.rows_used = N;  // full slices (last partial slice folded into count)
    g.mca_count = out.w * slices * col_groups;
    g.cols_used = out.w * out.c;
    g.synapses = out.w * out.c * li.fan_in;
    lm.groups.push_back(g);
  }
  lm.mux_degree = slices;
}

/// Average pooling: disjoint windows pack block-diagonally.  A window
/// larger than the array (p^2 > N) is row-sliced like a large-fan-in conv:
/// each output neuron time-multiplexes ceil(p^2/N) partial currents.
void map_pool(const LayerInfo& li, const ResparcConfig& cfg, LayerMapping& lm) {
  const std::size_t N = cfg.mca_size;
  const std::size_t p = li.spec.pool;
  const Shape3 out = li.out_shape;
  const Shape3 in = li.in_shape;
  const std::size_t window = p * p;
  const std::size_t slices = ceil_div(window, N);
  const std::size_t per_mca =
      slices == 1 ? std::max<std::size_t>(1, N / window) : 1;

  for (std::size_t c = 0; c < out.c; ++c) {
    for (std::size_t oy = 0; oy < out.h; ++oy) {
      McaGroup g;
      // Inputs of one output row: p consecutive input rows of channel c —
      // contiguous in flat CHW indexing.
      g.slice.kind = SliceKind::kContiguous;
      g.slice.begin = (c * in.h + oy * p) * in.w;
      g.slice.end = (c * in.h + oy * p + p) * in.w;
      const std::size_t outputs = out.w;
      g.mca_count = ceil_div(outputs, per_mca) * slices;
      g.rows_used = slices == 1
                        ? std::min(N, per_mca * window)
                        : N;  // full slices, last partial folded into count
      g.cols_used = outputs;
      g.synapses = outputs * window;
      lm.groups.push_back(g);
    }
  }
  lm.mux_degree = slices;
}

}  // namespace

std::size_t conv_window_input_span(std::size_t w, std::size_t k) {
  return w + k - 1;
}

std::size_t Mapping::layer_mca_size(std::size_t l) const {
  const std::size_t n = layers[l].mca_size;
  return n != 0 ? n : config.mca_size;
}

std::size_t Mapping::total_cells() const {
  std::size_t cells = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const std::size_t n = layer_mca_size(l);
    cells += layers[l].mca_count * n * n;
  }
  return cells;
}

bool Mapping::boundary_uses_bus(std::size_t l) const {
  if (l == 0) return true;  // input broadcast from the SRAM is always on the bus
  const LayerMapping& src = layers[l - 1];
  const LayerMapping& dst = layers[l];
  return !(src.last_nc == dst.first_nc && dst.first_nc == dst.last_nc &&
           src.first_nc == src.last_nc);
}

void finalize_layer_tiling(const LayerInfo& li, const ResparcConfig& config,
                           LayerMapping& lm) {
  // A layer tiled for an overridden MCA size carries it in lm.mca_size;
  // everything downstream (utilisation here, capacity checks, cost model,
  // executor) must use the same resolved N.
  const std::size_t N = lm.mca_size != 0 ? lm.mca_size : config.mca_size;
  lm.mca_count = 0;
  lm.synapses = 0;
  for (const auto& g : lm.groups) {
    lm.mca_count += g.mca_count;
    lm.synapses += g.synapses;
  }
  if (lm.synapses != li.synapses)
    throw MappingError("mapper lost synapses on layer " +
                       std::to_string(lm.layer));

  lm.mux_cycles = ceil_div(lm.mux_degree, config.mcas_per_mpe);
  lm.ccu_transfers_per_neuron = lm.mux_cycles > 0 ? lm.mux_cycles - 1 : 0;
  lm.mpe_count = ceil_div(lm.mca_count, config.mcas_per_mpe);
  lm.utilization = static_cast<double>(lm.synapses) /
                   (static_cast<double>(lm.mca_count) * static_cast<double>(N * N));
}

LayerMapping tile_layer_paper(const LayerInfo& li, std::size_t layer_index,
                              const ResparcConfig& config) {
  require(li.neurons > 0, "cannot map a zero-neuron layer");
  LayerMapping lm;
  lm.layer = layer_index;

  switch (li.spec.kind) {
    case LayerKind::kDense:
      map_dense(li, config, lm);
      break;
    case LayerKind::kConv:
      if (li.fan_in <= config.mca_size)
        map_conv_windowed(li, config, lm);
      else
        map_conv_sliced(li, config, lm);
      break;
    case LayerKind::kAvgPool:
      map_pool(li, config, lm);
      break;
  }

  finalize_layer_tiling(li, config, lm);
  return lm;
}

void place_layers_sequential(Mapping& m, const ResparcConfig& config) {
  std::size_t next_mpe = 0;
  m.total_mcas = 0;
  std::size_t synapses = 0;
  std::size_t cells = 0;
  for (LayerMapping& lm : m.layers) {
    // lm.mpe_count was derived by finalize_layer_tiling: each layer starts
    // a fresh mPE, so the tiled value is also the placed one here.  Layers
    // of different MCA sizes never share an mPE for the same reason.
    lm.first_mpe = next_mpe;
    next_mpe += lm.mpe_count;
    lm.first_nc = lm.first_mpe / config.mpes_per_neurocell();
    lm.last_nc = (lm.first_mpe + lm.mpe_count - 1) / config.mpes_per_neurocell();
    m.total_mcas += lm.mca_count;
    synapses += lm.synapses;
    const std::size_t n = lm.mca_size != 0 ? lm.mca_size : config.mca_size;
    cells += lm.mca_count * n * n;
  }
  m.total_mpes = next_mpe;
  m.total_neurocells = ceil_div(next_mpe, config.mpes_per_neurocell());
  m.utilization = static_cast<double>(synapses) / static_cast<double>(cells);
}

Mapping map_network(const snn::Topology& topology, const ResparcConfig& config) {
  config.validate();
  Mapping m;
  m.config = config;
  for (std::size_t l = 0; l < topology.layer_count(); ++l)
    m.layers.push_back(tile_layer_paper(topology.layers()[l], l, config));
  place_layers_sequential(m, config);
  return m;
}

}  // namespace resparc::core
