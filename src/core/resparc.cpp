#include "core/resparc.hpp"

#include <utility>

#include "common/error.hpp"
#include "compile/compiler.hpp"
#include "tech/sram.hpp"

namespace resparc::core {

NeuroCellMetrics neurocell_metrics(const ResparcConfig& config) {
  config.validate();
  const tech::DigitalCosts& d = config.technology.digital;
  NeuroCellMetrics m;
  m.mpe_count = config.mpes_per_neurocell();
  m.switch_count = config.switches_per_neurocell();
  m.mcas_per_mpe = config.mcas_per_mpe;
  m.frequency_mhz = config.technology.resparc_clock_mhz;

  const tech::SramModel sram{
      {.capacity_bytes = config.input_sram_bytes, .word_bits = 64}};

  m.area_mm2 = static_cast<double>(m.mpe_count) * d.area_per_mpe_mm2 +
               static_cast<double>(m.switch_count) * d.area_per_switch_mm2 +
               d.area_gcu_mm2 + sram.area_mm2();
  m.gate_count = static_cast<double>(m.mpe_count) * d.gates_per_mpe +
                 static_cast<double>(m.switch_count) * d.gates_per_switch +
                 d.gates_gcu;

  // Peak dynamic power: every MCA sequenced each cycle (control + iBUFF
  // read) and every switch forwarding one flit per cycle, at f_clk.
  const double mca_event_pj =
      d.mca_control_pj +
      static_cast<double>(config.mca_size) * d.buffer_bit_pj;
  const double per_cycle_pj =
      static_cast<double>(config.mcas_per_neurocell()) * mca_event_pj +
      static_cast<double>(m.switch_count) * d.switch_flit_pj +
      d.gcu_event_pj;
  // pJ * MHz = uW; convert to mW.
  m.power_mw = per_cycle_pj * m.frequency_mhz * 1e-3;
  return m;
}

ResparcChip::ResparcChip(ResparcConfig config, noc::Fidelity fidelity)
    : config_(std::move(config)), fidelity_(fidelity) {
  config_.validate();
}

const Mapping& ResparcChip::load(const snn::Topology& topology) {
  return load(topology, compile::Compiler(config_).compile(topology, "paper"));
}

const Mapping& ResparcChip::load(const snn::Topology& topology,
                                 compile::CompiledProgram program) {
  if (program.config_fingerprint != config_.fingerprint())
    throw compile::CompileError(
        "ResparcChip: program was compiled for a different configuration");
  program.check_matches(topology);
  executor_.reset();  // drop the references into the old state first
  topology_ = topology;
  program_ = std::move(program);
  // Legacy artifacts (or hand-built programs) may carry no route table;
  // the routing pass is deterministic, so recomputing it here yields the
  // same routes the compiler would have emitted.
  noc::RouteTable routes = program_->routes.empty()
                               ? noc::compute_routes(program_->mapping)
                               : program_->routes;
  executor_ = std::make_unique<Executor>(*topology_, program_->mapping,
                                         std::move(routes), fidelity_);
  return program_->mapping;
}

const Mapping& ResparcChip::mapping() const {
  require(program_.has_value(), "ResparcChip: no network loaded");
  return program_->mapping;
}

const compile::CompiledProgram& ResparcChip::program() const {
  require(program_.has_value(), "ResparcChip: no network loaded");
  return *program_;
}

RunReport ResparcChip::execute(const snn::SpikeTrace& trace) const {
  require(executor_ != nullptr, "ResparcChip: no network loaded");
  return executor_->run(trace);
}

RunReport ResparcChip::execute(std::span<const snn::SpikeTrace> traces) const {
  require(executor_ != nullptr, "ResparcChip: no network loaded");
  return executor_->run_all(traces);
}

RunReport ResparcChip::execute(std::span<const snn::SpikeTrace> traces,
                               EventStream* stream) const {
  require(executor_ != nullptr, "ResparcChip: no network loaded");
  return executor_->run_all(traces, stream);
}

RunReport ResparcChip::execute_batched(
    std::span<const snn::SpikeTrace> traces) const {
  require(executor_ != nullptr, "ResparcChip: no network loaded");
  return executor_->run_batched(traces);
}

void ResparcChip::execute_each(std::span<const snn::SpikeTrace> traces,
                               std::span<RunReport> reports) const {
  require(executor_ != nullptr, "ResparcChip: no network loaded");
  executor_->run_each(traces, reports);
}

}  // namespace resparc::core
