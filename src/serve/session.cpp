#include "serve/session.hpp"

#include <utility>

#include "api/pipeline.hpp"

namespace resparc::serve {

SessionManager::SessionManager(std::uint64_t server_seed)
    : server_seed_(server_seed) {}

SessionId SessionManager::open(std::string tenant, SessionOptions options) {
  MutexLock lock(mutex_);
  const SessionId id = next_id_++;
  SessionState state;
  state.tenant = std::move(tenant);
  // Every session gets its own decorrelated stream; an explicit seed
  // makes a session reproducible across server instances.
  state.seed = options.seed != 0
                   ? options.seed
                   : api::presentation_seed(server_seed_, id);
  state.on_response = std::move(options.on_response);
  sessions_.emplace(id, std::move(state));
  return id;
}

void SessionManager::close(SessionId session) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    throw ServeError("unknown session " + std::to_string(session),
                     kErrUnknownSession);
  it->second.open = false;
  reap(session);
}

bool SessionManager::is_open(SessionId session) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.open;
}

std::string SessionManager::tenant_of(SessionId session) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    throw ServeError("unknown session " + std::to_string(session),
                     kErrUnknownSession);
  return it->second.tenant;
}

std::pair<std::uint64_t, std::future<Response>> SessionManager::begin_request(
    SessionId session) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open)
    throw ServeError("unknown session " + std::to_string(session),
                     kErrUnknownSession);
  SessionState& state = it->second;
  const std::uint64_t sequence = state.next_sequence++;
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  state.promises.emplace(sequence, std::move(promise));
  return {sequence, std::move(future)};
}

std::uint64_t SessionManager::request_seed(SessionId session,
                                           std::uint64_t sequence) const {
  std::uint64_t seed;
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end())
      throw ServeError("unknown session " + std::to_string(session),
                       kErrUnknownSession);
    seed = it->second.seed;
  }
  return api::presentation_seed(seed, static_cast<std::size_t>(sequence));
}

void SessionManager::publish(Response response) {
  MutexLock lock(mutex_);
  const SessionId id = response.session;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // session already reaped
  if (response.sequence < it->second.next_delivery) return;  // already done
  it->second.held.emplace(response.sequence, std::move(response));
  deliver(id, lock);
}

void SessionManager::abandon(SessionId session, std::uint64_t sequence,
                             std::exception_ptr error) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  if (sequence < it->second.next_delivery) return;  // already delivered
  it->second.failed.emplace(sequence, std::move(error));
  deliver(session, lock);
}

void SessionManager::deliver(SessionId session, MutexLock& lock) {
  auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.delivering) return;
  it->second.delivering = true;
  for (;;) {
    SessionState& state = sessions_.find(session)->second;
    const std::uint64_t next = state.next_delivery;

    auto failed = state.failed.find(next);
    if (failed != state.failed.end()) {
      std::exception_ptr error = std::move(failed->second);
      state.failed.erase(failed);
      auto promise = state.promises.find(next);
      std::promise<Response> p;
      const bool have_promise = promise != state.promises.end();
      if (have_promise) {
        p = std::move(promise->second);
        state.promises.erase(promise);
      }
      ++state.next_delivery;
      lock.unlock();
      if (have_promise) p.set_exception(std::move(error));
      lock.lock();
      continue;
    }

    auto held = state.held.find(next);
    if (held == state.held.end()) break;
    Response response = std::move(held->second);
    state.held.erase(held);
    auto promise = state.promises.find(next);
    std::promise<Response> p;
    const bool have_promise = promise != state.promises.end();
    if (have_promise) {
      p = std::move(promise->second);
      state.promises.erase(promise);
    }
    auto callback = state.on_response;  // copy: user code runs unlocked
    ++state.next_delivery;

    lock.unlock();
    if (callback) callback(response);
    if (have_promise) p.set_value(std::move(response));
    lock.lock();
  }
  SessionState& state = sessions_.find(session)->second;
  state.delivering = false;
  if (!state.open) reap(session);
}

void SessionManager::reap(SessionId session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  const SessionState& state = it->second;
  // Keep closed sessions alive while responses can still arrive: every
  // reserved sequence resolves through publish()/abandon().
  if (!state.open && !state.delivering && state.promises.empty() &&
      state.held.empty() && state.failed.empty())
    sessions_.erase(it);
}

std::size_t SessionManager::open_count() const {
  MutexLock lock(mutex_);
  std::size_t open = 0;
  for (const auto& [id, state] : sessions_) open += state.open ? 1 : 0;
  return open;
}

}  // namespace resparc::serve
