#include "serve/program_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "compile/compiler.hpp"
#include "serve/request.hpp"

namespace resparc::serve {

namespace {

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

ProgramCache::ProgramCache(ProgramCacheConfig config)
    : config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (!config_.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.directory, ec);
    // An unusable directory degrades to in-memory behaviour rather than
    // failing the server over a cache (the cache is an optimisation).
    persist_ = !ec && std::filesystem::is_directory(config_.directory, ec);
  }
}

std::string ProgramCache::blob_path(std::uint64_t key) const {
  if (!persist_) return {};
  return (std::filesystem::path(config_.directory) / (hex_key(key) + ".rcp"))
      .string();
}

std::shared_ptr<const compile::CompiledProgram> ProgramCache::insert(
    std::uint64_t key, compile::CompiledProgram program) {
  auto shared =
      std::make_shared<const compile::CompiledProgram>(std::move(program));
  lru_.push_front(Entry{key, shared});
  index_[key] = lru_.begin();
  while (lru_.size() > config_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return shared;
}

std::shared_ptr<const compile::CompiledProgram> ProgramCache::get_or_compile(
    const core::ResparcConfig& config, const snn::Topology& topology,
    const std::string& strategy) {
  const std::uint64_t key =
      compile::program_cache_key(config, topology, strategy);

  {
    MutexLock lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.memory_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      return it->second->program;
    }
  }

  // Disk probe outside the lock: rehydration re-verifies the blob, which
  // is cheap next to a compile but not worth serializing every caller on.
  const std::string path = blob_path(key);
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      compile::CompiledProgram program =
          compile::CompiledProgram::load_file(path, config);
      program.check_matches(topology);
      MutexLock lock(mutex_);
      ++stats_.disk_hits;
      return insert(key, std::move(program));
    } catch (const Error& e) {
      // Tampered/stale blob: evict the file, remember the diagnostic
      // code, and fall through to a transparent recompile — corruption
      // must never surface to the tenant (tests/test_serve.cpp).
      std::error_code ec;
      std::filesystem::remove(path, ec);
      {
        MutexLock lock(mutex_);
        ++stats_.corrupt_evictions;
        last_corruption_code_ = e.code();
      }
      std::cerr << "serve: evicted corrupt program blob " << path << " ["
                << (e.code().empty() ? "no-code" : e.code())
                << "]; recompiling\n";
    }
  }

  compile::Compiler compiler(config, compile::CompileOptions{config_.activity});
  compile::CompiledProgram program = compiler.compile(topology, strategy);
  if (!path.empty() && !program.save_file(path))
    std::cerr << "serve: could not persist program blob " << path << "\n";

  MutexLock lock(mutex_);
  ++stats_.misses;
  // A racing caller may have inserted the same key meanwhile; keep the
  // existing entry (the programs are interchangeable by construction).
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->program;
  return insert(key, std::move(program));
}

std::shared_ptr<const compile::CompiledProgram> ProgramCache::rehydrate(
    const core::ResparcConfig& config, const snn::Topology& topology,
    const std::string& strategy) {
  const std::uint64_t key =
      compile::program_cache_key(config, topology, strategy);
  const std::string path = blob_path(key);
  if (path.empty() || !std::filesystem::exists(path))
    throw ServeError("no persisted blob for key " + hex_key(key),
                     kErrCacheCorrupt);
  try {
    compile::CompiledProgram program =
        compile::CompiledProgram::load_file(path, config);
    program.check_matches(topology);
    MutexLock lock(mutex_);
    ++stats_.disk_hits;
    return insert(key, std::move(program));
  } catch (const Error& e) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    {
      MutexLock lock(mutex_);
      ++stats_.corrupt_evictions;
      last_corruption_code_ = e.code();
    }
    throw ServeError("persisted blob " + path + " failed verification [" +
                         (e.code().empty() ? "no-code" : e.code()) +
                         "]: " + e.what(),
                     kErrCacheCorrupt);
  }
}

ProgramCacheStats ProgramCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::string ProgramCache::last_corruption_code() const {
  MutexLock lock(mutex_);
  return last_corruption_code_;
}

void ProgramCache::clear_memory() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace resparc::serve
