#include "serve/program_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "compile/compiler.hpp"
#include "serve/request.hpp"

namespace resparc::serve {

namespace {

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

/// Process-wide tmp-file counter: caches sharing a directory (a restart
/// test, two servers over one cache dir) must never collide on a tmp
/// name, or two unlocked save_file calls could interleave into one torn
/// blob that rename() then publishes.
std::atomic<std::uint64_t>& tmp_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace

ProgramCache::ProgramCache(ProgramCacheConfig config)
    : config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (!config_.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.directory, ec);
    // An unusable directory degrades to in-memory behaviour rather than
    // failing the server over a cache (the cache is an optimisation).
    persist_ = !ec && std::filesystem::is_directory(config_.directory, ec);
  }
}

std::string ProgramCache::blob_path(std::uint64_t key) const {
  if (!persist_) return {};
  return (std::filesystem::path(config_.directory) / (hex_key(key) + ".rcp"))
      .string();
}

void ProgramCache::persist(std::uint64_t key,
                           const compile::CompiledProgram& program,
                           const std::string& path) {
  // Write to a unique temp file first (slow, unlocked), then rename into
  // place under the lock.  rename() replaces atomically, so a concurrent
  // unlocked load_file either sees the old complete blob or the new one —
  // never a torn write that would count as a spurious corruption.
  const std::string tmp =
      path + ".tmp" + std::to_string(tmp_counter().fetch_add(1));
  if (!program.save_file(tmp)) {
    std::cerr << "serve: could not persist program blob " << path << "\n";
    return;
  }
  MutexLock lock(mutex_);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    std::cerr << "serve: could not persist program blob " << path << "\n";
    return;
  }
  ++generation_[key];
}

void ProgramCache::evict_corrupt(std::uint64_t key, std::uint64_t generation,
                                 const std::string& path,
                                 const std::string& code) {
  MutexLock lock(mutex_);
  if (generation_[key] != generation) return;  // already replaced/evicted
  ++generation_[key];
  ++stats_.corrupt_evictions;
  last_corruption_code_ = code;
  // Remove while still holding the lock: an unlocked remove could race a
  // concurrent recompile's rename and delete the fresh blob instead.
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::cerr << "serve: evicted corrupt program blob " << path << " ["
            << (code.empty() ? "no-code" : code) << "]; recompiling\n";
}

std::shared_ptr<const compile::CompiledProgram> ProgramCache::insert(
    std::uint64_t key, compile::CompiledProgram program) {
  auto shared =
      std::make_shared<const compile::CompiledProgram>(std::move(program));
  lru_.push_front(Entry{key, shared});
  index_[key] = lru_.begin();
  while (lru_.size() > config_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return shared;
}

std::shared_ptr<const compile::CompiledProgram> ProgramCache::get_or_compile(
    const core::ResparcConfig& config, const snn::Topology& topology,
    const std::string& strategy) {
  const std::uint64_t key =
      compile::program_cache_key(config, topology, strategy);

  const std::string path = blob_path(key);
  std::uint64_t generation = 0;
  {
    MutexLock lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.memory_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      return it->second->program;
    }
    // Snapshot the blob generation before the unlocked disk probe: a
    // corrupt read only evicts/counts if the blob was not replaced
    // meanwhile (evict_corrupt re-checks under the lock).
    if (!path.empty()) generation = generation_[key];
  }

  // Disk probe outside the lock: rehydration re-verifies the blob, which
  // is cheap next to a compile but not worth serializing every caller on.
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      compile::CompiledProgram program =
          compile::CompiledProgram::load_file(path, config);
      program.check_matches(topology);
      MutexLock lock(mutex_);
      ++stats_.disk_hits;
      return insert(key, std::move(program));
    } catch (const Error& e) {
      // Tampered/stale blob: evict the file (once, generation-checked),
      // remember the diagnostic code, and fall through to a transparent
      // recompile — corruption must never surface to the tenant
      // (tests/test_serve.cpp, tests/test_program_cache_race.cpp).
      evict_corrupt(key, generation, path, e.code());
    }
  }

  compile::Compiler compiler(config, compile::CompileOptions{config_.activity});
  compile::CompiledProgram program = compiler.compile(topology, strategy);
  if (!path.empty()) persist(key, program, path);

  MutexLock lock(mutex_);
  ++stats_.misses;
  // A racing caller may have inserted the same key meanwhile; keep the
  // existing entry (the programs are interchangeable by construction).
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->program;
  return insert(key, std::move(program));
}

std::shared_ptr<const compile::CompiledProgram> ProgramCache::rehydrate(
    const core::ResparcConfig& config, const snn::Topology& topology,
    const std::string& strategy) {
  const std::uint64_t key =
      compile::program_cache_key(config, topology, strategy);
  const std::string path = blob_path(key);
  if (path.empty() || !std::filesystem::exists(path))
    throw ServeError("no persisted blob for key " + hex_key(key),
                     kErrCacheCorrupt);
  std::uint64_t generation = 0;
  {
    MutexLock lock(mutex_);
    generation = generation_[key];
  }
  try {
    compile::CompiledProgram program =
        compile::CompiledProgram::load_file(path, config);
    program.check_matches(topology);
    MutexLock lock(mutex_);
    ++stats_.disk_hits;
    return insert(key, std::move(program));
  } catch (const Error& e) {
    evict_corrupt(key, generation, path, e.code());
    throw ServeError("persisted blob " + path + " failed verification [" +
                         (e.code().empty() ? "no-code" : e.code()) +
                         "]: " + e.what(),
                     kErrCacheCorrupt);
  }
}

ProgramCacheStats ProgramCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::string ProgramCache::last_corruption_code() const {
  MutexLock lock(mutex_);
  return last_corruption_code_;
}

void ProgramCache::clear_memory() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace resparc::serve
