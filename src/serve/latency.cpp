#include "serve/latency.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/table.hpp"
#include "serve/request.hpp"

namespace resparc::serve {

// ------------------------------------------------------------- histogram --

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) {
  // Group 0 holds the exact values [0, kSub); group g >= 1 holds
  // [kSub << (g-1), kSub << g) split into kSub linear sub-buckets.
  if (ns < kSub) return static_cast<std::size_t>(ns);
  const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(ns));
  const unsigned group = msb - kSubBits + 1;
  const std::uint64_t sub = (ns >> (msb - kSubBits)) & (kSub - 1);
  return group * kSub + static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t bucket) {
  const std::size_t group = bucket / kSub;
  const std::uint64_t sub = bucket % kSub;
  if (group == 0) return sub;  // exact
  const unsigned shift = static_cast<unsigned>(group - 1);
  const std::uint64_t base = (kSub + sub) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return base + width - 1;
}

void LatencyHistogram::record(std::uint64_t ns) {
  buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q >= 1.0) return max_ns();
  if (q < 0.0) q = 0.0;
  // Smallest rank whose cumulative count covers the quantile (the
  // inclusive ceil(q*n) convention: q = 0.5 over 2 values is rank 1).
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (target < 1) target = 1;
  if (target > total) target = total;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      // The top bucket's upper bound can overshoot the true maximum.
      const std::uint64_t upper = bucket_upper(b);
      const std::uint64_t max = max_ns();
      return upper < max ? upper : max;
    }
  }
  return max_ns();
}

void LatencyHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- recorder --

const char* LatencyRecorder::stage_name(Stage stage) {
  switch (stage) {
    case Stage::kQueue: return "queue";
    case Stage::kBatch: return "batch";
    case Stage::kCompute: return "compute";
    case Stage::kTransport: return "transport";
    case Stage::kStall: return "stall";
    case Stage::kTotal: return "total";
  }
  return "?";
}

namespace {
std::uint64_t to_ns(double ns) {
  return ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0;
}
}  // namespace

void LatencyRecorder::record_response(const Response& response) {
  record(Stage::kQueue, response.queue_ns);
  record(Stage::kBatch, response.batch_ns);
  // The model-side decomposition: backends with an Ml-NoC model report
  // compute/transport/noc_stall buckets (docs/noc.md); backends without
  // one (the CMOS baseline) contribute their whole latency as compute.
  const double compute = response.report.bucket_ns("compute");
  const double transport = response.report.bucket_ns("transport");
  const double stall = response.report.bucket_ns("noc_stall");
  if (compute > 0.0 || transport > 0.0 || stall > 0.0) {
    record(Stage::kCompute, to_ns(compute));
    record(Stage::kTransport, to_ns(transport));
    record(Stage::kStall, to_ns(stall));
  } else {
    record(Stage::kCompute, to_ns(response.report.latency_ns));
    record(Stage::kTransport, 0);
    record(Stage::kStall, 0);
  }
  record(Stage::kTotal, response.total_ns);
}

LatencySnapshot LatencyRecorder::snapshot(Stage stage) const {
  const LatencyHistogram& h = histogram(stage);
  LatencySnapshot s;
  s.count = h.count();
  s.mean_ns = h.mean_ns();
  s.p50_ns = h.quantile(0.50);
  s.p95_ns = h.quantile(0.95);
  s.p99_ns = h.quantile(0.99);
  s.max_ns = h.max_ns();
  return s;
}

void LatencyRecorder::reset() {
  for (auto& stage : stages_) stage.reset();
}

std::string LatencyRecorder::to_string() const {
  std::ostringstream os;
  Table t({"Stage", "Count", "Mean (us)", "p50 (us)", "p95 (us)", "p99 (us)",
           "Max (us)"});
  for (std::size_t i = 0; i < kStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    const LatencySnapshot s = snapshot(stage);
    t.add_row({stage_name(stage), std::to_string(s.count),
               Table::num(s.mean_ns * 1e-3, 1),
               Table::num(static_cast<double>(s.p50_ns) * 1e-3, 1),
               Table::num(static_cast<double>(s.p95_ns) * 1e-3, 1),
               Table::num(static_cast<double>(s.p99_ns) * 1e-3, 1),
               Table::num(static_cast<double>(s.max_ns) * 1e-3, 1)});
  }
  t.print(os);
  return os.str();
}

std::string LatencyRecorder::to_json() const {
  std::ostringstream os;
  os << "{\"requests\": " << count() << ", \"stages\": {";
  for (std::size_t i = 0; i < kStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    const LatencySnapshot s = snapshot(stage);
    if (i != 0) os << ", ";
    os << '"' << stage_name(stage) << "\": {\"count\": " << s.count
       << ", \"mean_ns\": " << s.mean_ns << ", \"p50_ns\": " << s.p50_ns
       << ", \"p95_ns\": " << s.p95_ns << ", \"p99_ns\": " << s.p99_ns
       << ", \"max_ns\": " << s.max_ns << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace resparc::serve
