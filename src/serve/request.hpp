// Request/response surface of the multi-tenant serving layer (docs/serving.md).
//
// A serve::Request is one unit of admitted work: either a pre-recorded
// snn::SpikeTrace (the replay path benches use) or a raw image the server
// encodes and simulates with the session's own RNG stream before replaying.
// A serve::Response pairs the per-request api::ExecutionReport with the
// serving-layer latency stamps (queue wait, batch wall time) that the
// accelerator model cannot know about.
//
// Serving failures are reported as ServeError with a stable RS-* code
// (mirroring the verifier's RV-* convention, docs/verification.md), so
// tests and callers dispatch on Error::code() instead of message text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/accelerator.hpp"
#include "common/error.hpp"
#include "snn/trace.hpp"

namespace resparc::serve {

/// Thrown by the serving layer; code() is one of the RS-* codes below.
class ServeError : public Error {
 public:
  /// Wraps `what` with the "serve error:" prefix; `code` is the stable
  /// RS-* failure code (docs/serving.md lists the catalog).
  explicit ServeError(const std::string& what, std::string code)
      : Error("serve error: " + what, std::move(code)) {}
};

/// A tenant queue was at capacity when the request arrived (admission
/// control rejects instead of blocking the producer).
inline constexpr const char* kErrQueueFull = "RS-QUEUE-FULL";
/// The named tenant was never added to the server.
inline constexpr const char* kErrUnknownTenant = "RS-TENANT-UNKNOWN";
/// A tenant with this name is already bound.
inline constexpr const char* kErrDuplicateTenant = "RS-TENANT-DUP";
/// The session id is unknown (never opened, or already closed).
inline constexpr const char* kErrUnknownSession = "RS-SESSION-UNKNOWN";
/// A cached program blob failed parse/verification on rehydrate.
inline constexpr const char* kErrCacheCorrupt = "RS-CACHE-CORRUPT";
/// The server is shutting down; no new tenants/sessions/requests.
inline constexpr const char* kErrShutdown = "RS-SHUTDOWN";
/// The request carries neither a trace nor an image.
inline constexpr const char* kErrEmptyRequest = "RS-REQUEST-EMPTY";
/// A raw-image request reached a tenant bound without a network (the
/// server can replay traces but has nothing to simulate images with).
inline constexpr const char* kErrNoNetwork = "RS-TENANT-NO-NETWORK";
/// Every replica of the tenant failed its canary check: the request (or
/// the whole pending queue) cannot be served (docs/reliability.md).
inline constexpr const char* kErrReplicaDegraded = "RS-REPLICA-DEGRADED";
/// A batch hit ServerConfig::max_retries replicas that all turned out
/// degraded at checkout before finding a healthy one.
inline constexpr const char* kErrRetryExhausted = "RS-RETRY-EXHAUSTED";

/// Stable ids handed out by Server::open_session.
using SessionId = std::uint64_t;

/// One admitted unit of work.  Exactly one payload must be non-empty:
/// a pre-recorded spike trace (replayed as-is) or a raw image (flat CHW
/// intensities in [0,1], encoded + simulated server-side with the
/// session's deterministic RNG stream, then replayed).
struct Request {
  snn::SpikeTrace trace{};     ///< replay payload (used when non-empty)
  std::vector<float> image{};  ///< raw-image payload (simulated server-side)

  /// True when the request carries a pre-recorded trace.
  bool has_trace() const { return !trace.layers.empty(); }
};

/// Completion record of one request.  Promises/callbacks deliver
/// responses in per-session submit order (sequence is strictly
/// ascending per session, docs/serving.md).
struct Response {
  SessionId session = 0;           ///< session the request belonged to
  std::uint64_t sequence = 0;      ///< per-session submit index (0-based)
  std::size_t predicted_class = 0; ///< simulator argmax (raw-image requests)
  bool simulated = false;          ///< true when the server ran the simulator
  std::size_t batch_size = 0;      ///< requests in the executed batch
  api::ExecutionReport report;     ///< per-request replay report

  // Serving-layer latency stamps, all in wall nanoseconds:
  std::uint64_t queue_ns = 0;   ///< submit -> batch dispatch wait
  std::uint64_t batch_ns = 0;   ///< wall time of the whole batch execution
  std::uint64_t total_ns = 0;   ///< submit -> response published
};

}  // namespace resparc::serve
