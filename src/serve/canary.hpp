// Replica canary probes: detect degraded (faulty) replicas at checkout.
//
// A tenant binding per-replica fault seeds (TenantSpec::replica_chip_seeds)
// gets a deterministic synthetic spike trace — the *canary* — plus the
// signature a pristine accelerator produces for it.  Before a replica
// serves its first batch the dispatcher replays the canary on it; any
// divergence from the reference signature marks the replica degraded and
// retires it from the free rotation (docs/reliability.md).  Replay is
// deterministic, so an exact-equality signature has no false positives:
// a healthy replica reproduces the reference bit for bit.
#pragma once

#include <cstdint>

#include "api/accelerator.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"

namespace resparc::serve {

/// What a canary replay is compared on: the headline replay metrics,
/// compared exactly (replay is deterministic — equal configs reproduce
/// these doubles bit for bit, and a fault-perturbed chip virtually never
/// does).
struct CanarySignature {
  double energy_pj = 0.0;   ///< total replay energy
  double latency_ns = 0.0;  ///< critical-path replay latency
  bool operator==(const CanarySignature&) const = default;
};

/// Extracts the comparison signature from one replay report.
CanarySignature canary_signature(const api::ExecutionReport& report);

/// Builds the deterministic canary trace for `topology`: every layer
/// (input included) spikes with ~25% density per timestep, drawn from
/// SplitMix64 streams over (seed, layer) — a pure function of its
/// arguments, so every replica of a tenant replays the identical probe.
snn::SpikeTrace make_canary_trace(const snn::Topology& topology,
                                  std::size_t timesteps, std::uint64_t seed);

}  // namespace resparc::serve
