// Tenants and sessions of the serving layer (docs/serving.md).
//
// A *tenant* binds a topology to a backend registry key — the unit the
// server compiles, loads replicas for, and forms batches over.  A
// *session* is one client's stream of requests against a tenant.  Two
// guarantees make concurrent sessions share chips safely:
//
//  * Per-session determinism: every session owns an RNG stream seeded
//    from (server seed, session id) — request `sequence` within a session
//    fully determines the simulation RNG, so another tenant's concurrent
//    load can never perturb this session's results.
//  * Ordered delivery: responses of one session are published in submit
//    order (a reorder buffer holds back batches that completed early), so
//    futures and callbacks complete in sequence order per session even
//    when replicas finish out of order.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "common/thread_safety.hpp"
#include "serve/request.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "snn/topology.hpp"

namespace resparc::serve {

/// What a tenant binds: the network shape, the backend that hosts it, and
/// the simulation settings for raw-image requests.
struct TenantSpec {
  /// Backend registry key ("resparc-64/greedy-pack", "cmos", ...); the
  /// full api::make_accelerator suffix grammar applies.
  std::string backend = "resparc";
  /// The network shape this tenant serves (the placeholder default is a
  /// valid 1-in/1-out topology; real tenants always overwrite it).
  snn::Topology topology{"unset", {1, 1, 1}, {snn::LayerSpec::dense(1)}};
  /// Calibrated network for raw-image requests (optional: trace-only
  /// tenants replay pre-recorded traces and never simulate).
  std::optional<snn::Network> network;
  /// Backend construction options (config, strategy, execution, noc).
  api::BackendOptions options{};
  /// Encoder/timestep settings used to simulate raw-image requests.
  snn::SimConfig sim{};
  /// Per-replica device fault seeds (docs/reliability.md).  Replica r
  /// takes seed [r] (missing/0 = pristine, `options` verbatim); a
  /// non-zero seed enables fault injection on that replica's chip
  /// (options.resparc.faults supplies rates/sigmas, the seed overrides
  /// chip_seed).  A non-empty vector also arms the canary probe: every
  /// replica replays a deterministic canary trace at first checkout and
  /// is retired as degraded when its signature diverges from the
  /// pristine reference (serve/canary.hpp).
  std::vector<std::uint64_t> replica_chip_seeds{};
};

/// Per-session knobs.
struct SessionOptions {
  /// Session RNG seed override (0 = derive from the server seed and the
  /// session id, which already gives every session its own stream).
  std::uint64_t seed = 0;
  /// Invoked for every response of this session, always in sequence
  /// order, from a dispatcher thread.  Optional; futures work either way.
  std::function<void(const Response&)> on_response{};
};

/// Tracks sessions and enforces the per-session ordered-delivery
/// contract.  Thread-safe; the server calls publish() from its
/// dispatcher threads.
class SessionManager {
 public:
  /// Builds a manager deriving session seeds from `server_seed`.
  explicit SessionManager(std::uint64_t server_seed);

  /// Opens a session bound to `tenant` and returns its id (ids are
  /// process-unique and never reused).
  SessionId open(std::string tenant, SessionOptions options);

  /// Closes a session; later submits with the id report
  /// RS-SESSION-UNKNOWN.  In-flight requests still publish.
  void close(SessionId session);

  /// True while the session is open.
  bool is_open(SessionId session) const;

  /// Tenant name the session is bound to; throws ServeError
  /// (RS-SESSION-UNKNOWN) for unknown/closed sessions.
  std::string tenant_of(SessionId session) const;

  /// Reserves the next sequence number of the session and returns it
  /// together with the future of its response; throws ServeError
  /// (RS-SESSION-UNKNOWN) for unknown sessions.
  std::pair<std::uint64_t, std::future<Response>> begin_request(
      SessionId session);

  /// RNG seed of one request: SplitMix64 over (session seed, sequence) —
  /// identical to api::presentation_seed's decorrelation, so a request's
  /// simulation never depends on scheduling or co-tenants.
  std::uint64_t request_seed(SessionId session, std::uint64_t sequence) const;

  /// Hands a completed response to the delivery layer.  The response is
  /// held until every earlier sequence of its session has been
  /// published, then promises/callbacks fire in sequence order.
  void publish(Response response);

  /// Marks the reserved sequence as abandoned (its batch failed before a
  /// response existed): delivery of later sequences must not stall.  The
  /// promise receives `error`.
  void abandon(SessionId session, std::uint64_t sequence,
               std::exception_ptr error);

  /// Number of currently open sessions.
  std::size_t open_count() const;

 private:
  struct SessionState {
    std::string tenant;
    std::uint64_t seed = 0;
    std::function<void(const Response&)> on_response;
    std::uint64_t next_sequence = 0;    ///< next sequence to hand out
    std::uint64_t next_delivery = 0;    ///< next sequence to publish
    /// Completed-but-undeliverable responses (earlier sequence pending).
    std::map<std::uint64_t, Response> held;
    /// Abandoned sequences (failed before producing a response).
    std::map<std::uint64_t, std::exception_ptr> failed;
    /// Promise per reserved sequence, fulfilled at ordered delivery.
    std::map<std::uint64_t, std::promise<Response>> promises;
    bool open = true;
    /// True while one thread is draining this session's ready responses;
    /// concurrent publishers stash and leave, so promises/callbacks fire
    /// strictly in sequence order from a single thread at a time.
    bool delivering = false;
  };

  /// Single-drainer ordered delivery: fires every ready response of the
  /// session in sequence order, releasing the lock around user code.
  ///
  /// Analysis opt-out: the method is called with mutex_ held, drops the
  /// caller's lock around each promise/callback and re-acquires it — a
  /// hand-over-hand pattern the static analysis cannot follow.  The
  /// `delivering` flag guarantees at most one drainer per session, and
  /// every guarded member is only touched while the lock is held.
  void deliver(SessionId session, MutexLock& lock)
      RESPARC_NO_THREAD_SAFETY_ANALYSIS;

  /// Erases a closed session once nothing can still publish into it.
  void reap(SessionId session) RESPARC_REQUIRES(mutex_);

  std::uint64_t server_seed_;
  mutable Mutex mutex_;
  std::uint64_t next_id_ RESPARC_GUARDED_BY(mutex_) = 1;
  std::unordered_map<SessionId, SessionState> sessions_
      RESPARC_GUARDED_BY(mutex_);
};

}  // namespace resparc::serve
