#include "serve/canary.hpp"

#include "common/rng.hpp"

namespace resparc::serve {

CanarySignature canary_signature(const api::ExecutionReport& report) {
  return CanarySignature{report.energy_pj, report.latency_ns};
}

snn::SpikeTrace make_canary_trace(const snn::Topology& topology,
                                  std::size_t timesteps, std::uint64_t seed) {
  snn::SpikeTrace trace;
  trace.layers.resize(topology.layer_count() + 1);
  for (std::size_t l = 0; l < trace.layers.size(); ++l) {
    const std::size_t neurons = l == 0 ? topology.input_neurons()
                                       : topology.layers()[l - 1].neurons;
    Rng rng(stream_seed(seed, l));
    trace.layers[l].reserve(timesteps);
    for (std::size_t t = 0; t < timesteps; ++t) {
      snn::SpikeVector spikes(neurons);
      for (std::size_t i = 0; i < neurons; ++i)
        if (rng.bernoulli(0.25)) spikes.set(i);
      trace.layers[l].push_back(std::move(spikes));
    }
  }
  return trace;
}

}  // namespace resparc::serve
