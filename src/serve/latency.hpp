// Tail-latency accounting for the serving layer (docs/serving.md).
//
// Wall-clock latencies are long-tailed, so the recorder keeps HDR-style
// histograms instead of samples: 64 linear sub-buckets per power of two
// of nanoseconds, giving <= ~1.6% relative quantile error over the full
// uint64 range at a fixed ~30 KiB per stage.  Buckets are plain atomic
// counters, so record() is lock-free and safe from every dispatcher
// thread; quantiles are computed over a snapshot.
//
// One LatencyRecorder tracks six stages per request — the serving-side
// queue/batch wall times plus the accelerator model's
// compute/transport/stall decomposition (api::ExecutionReport::
// latency_breakdown_ns, docs/noc.md) and the end-to-end total — and
// renders them as a text table or JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace resparc::serve {

struct Response;

/// Lock-free log-linear histogram of nanosecond values (HDR-style:
/// 64 linear sub-buckets per power of two).
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: values within one power of two are split
  /// into 2^kSubBits linear buckets (relative error <= 2^-kSubBits).
  static constexpr unsigned kSubBits = 6;

  /// Records one value (thread-safe, lock-free).
  void record(std::uint64_t ns);

  /// Values recorded so far.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Largest recorded value (exact, not bucket-rounded).
  std::uint64_t max_ns() const { return max_.load(std::memory_order_relaxed); }
  /// Mean of the recorded values (exact sum / count; 0 when empty).
  double mean_ns() const;

  /// Value at quantile `q` in [0,1]: the upper bound of the first bucket
  /// whose cumulative count reaches q * count (0 when empty).  q >= 1
  /// returns max_ns().
  std::uint64_t quantile(double q) const;

  /// Resets every counter to zero (not safe against concurrent record()).
  void reset();

 private:
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kGroups = 64 - kSubBits + 1;
  static constexpr std::size_t kBuckets = kGroups * kSub;

  static std::size_t bucket_of(std::uint64_t ns);
  static std::uint64_t bucket_upper(std::size_t bucket);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time percentile summary of one stage.
struct LatencySnapshot {
  std::uint64_t count = 0;   ///< values recorded
  double mean_ns = 0.0;      ///< exact mean
  std::uint64_t p50_ns = 0;  ///< median (bucket upper bound)
  std::uint64_t p95_ns = 0;  ///< 95th percentile
  std::uint64_t p99_ns = 0;  ///< 99th percentile
  std::uint64_t max_ns = 0;  ///< exact maximum
};

/// Per-stage histograms over the serving latency decomposition.
class LatencyRecorder {
 public:
  /// The tracked stages, in report order.
  enum class Stage : std::size_t {
    kQueue = 0,   ///< submit -> batch dispatch (admission + window wait)
    kBatch,       ///< wall time of the request's whole batch execution
    kCompute,     ///< accelerator model "compute" bucket
    kTransport,   ///< accelerator model "transport" bucket
    kStall,       ///< accelerator model "noc_stall" bucket
    kTotal,       ///< submit -> response published (end-to-end)
  };
  /// Number of tracked stages.
  static constexpr std::size_t kStages = 6;

  /// "queue" / "batch" / "compute" / "transport" / "stall" / "total".
  static const char* stage_name(Stage stage);

  /// Records one value into one stage (thread-safe, lock-free).
  void record(Stage stage, std::uint64_t ns) {
    stages_[static_cast<std::size_t>(stage)].record(ns);
  }

  /// Records every stage of one completed response: the serving-side
  /// queue/batch/total stamps plus the report's latency_breakdown_ns
  /// buckets (compute/transport/noc_stall; backends without a breakdown
  /// contribute their whole latency_ns as compute).
  void record_response(const Response& response);

  /// Direct access to one stage's histogram.
  const LatencyHistogram& histogram(Stage stage) const {
    return stages_[static_cast<std::size_t>(stage)];
  }

  /// Percentile summary of one stage.
  LatencySnapshot snapshot(Stage stage) const;

  /// Requests recorded (the kTotal stage's count).
  std::uint64_t count() const {
    return histogram(Stage::kTotal).count();
  }

  /// Resets every stage (not safe against concurrent record()).
  void reset();

  /// Text table: one row per stage, p50/p95/p99/max/mean columns.
  std::string to_string() const;
  /// JSON object: {"requests":N,"stages":{"queue":{...},...}} with
  /// count/mean_ns/p50_ns/p95_ns/p99_ns/max_ns per stage.
  std::string to_json() const;

 private:
  std::array<LatencyHistogram, kStages> stages_{};
};

}  // namespace resparc::serve
