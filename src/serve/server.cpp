#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "common/rng.hpp"

namespace resparc::serve {

namespace {

std::uint64_t wall_ns(std::chrono::steady_clock::duration d) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache),
      sessions_(config_.seed) {
  if (config_.replicas == 0) config_.replicas = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  if (config_.dispatchers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.dispatchers = std::min<std::size_t>(8, hw == 0 ? 1 : hw);
  }
  dispatchers_.reserve(config_.dispatchers);
  for (std::size_t d = 0; d < config_.dispatchers; ++d)
    dispatchers_.emplace_back([this, d] { dispatcher_loop(d); });
}

Server::~Server() { shutdown(); }

void Server::add_tenant(const std::string& name, TenantSpec spec) {
  {
    MutexLock lock(mutex_);
    if (stop_)
      throw ServeError("server is shutting down", kErrShutdown);
    if (tenants_.count(name) != 0)
      throw ServeError("tenant \"" + name + "\" is already bound",
                       kErrDuplicateTenant);
  }

  // Replays need the recorded trace regardless of what the caller set.
  spec.sim.record_trace = true;
  auto state = std::make_unique<TenantState>();
  state->name = name;
  state->spec = std::move(spec);
  const TenantSpec& s = state->spec;

  // Compile/load outside the server lock — binding a tenant is the
  // expensive path and must not stall the dispatchers.  RESPARC replicas
  // share one compile through the program cache (a warm cache directory
  // makes a server restart skip compilation entirely).  A replica with a
  // non-zero fault seed compiles its own fault-aware program (the fault
  // config changes the fingerprint, so the repair pass re-places around
  // that chip instance's failed mPEs, docs/reliability.md).
  auto build_replica = [&](const api::BackendOptions& options) {
    auto accelerator = api::make_accelerator(s.backend, options);
    if (auto* resparc = dynamic_cast<api::ResparcBackend*>(accelerator.get())) {
      const auto program = cache_.get_or_compile(resparc->config(), s.topology,
                                                 resparc->strategy());
      resparc->load_program(s.topology, *program);
    } else {
      accelerator->load(s.topology);
    }
    return accelerator;
  };
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    api::BackendOptions options = s.options;
    const std::uint64_t chip_seed =
        r < s.replica_chip_seeds.size() ? s.replica_chip_seeds[r] : 0;
    if (chip_seed != 0) {
      options.resparc.faults.enabled = true;
      options.resparc.faults.chip_seed = chip_seed;
    }
    state->replicas.push_back(build_replica(options));
    state->free_replicas.push_back(r);
  }
  state->simulators.resize(state->replicas.size());

  // Canary probe: a deterministic synthetic trace plus the signature a
  // pristine replica produces for it, recorded before any replica
  // serves.  Replay is deterministic, so the exact-equality comparison
  // at first checkout has no false positives.
  state->canary_enabled = !s.replica_chip_seeds.empty();
  state->canary_checked.assign(state->replicas.size(), 0);
  state->degraded.assign(state->replicas.size(), 0);
  state->healthy = state->replicas.size();
  if (state->canary_enabled) {
    state->canary = make_canary_trace(s.topology, /*timesteps=*/4,
                                      stream_seed(config_.seed, 0xCA9A59ull));
    const auto reference = build_replica(s.options);
    std::vector<api::ExecutionReport> reports;
    api::Pipeline::execute_each(*reference, {&state->canary, 1}, reports, 1);
    state->canary_reference = canary_signature(reports.front());
  }

  MutexLock lock(mutex_);
  if (stop_) throw ServeError("server is shutting down", kErrShutdown);
  auto [it, inserted] = tenants_.emplace(name, std::move(state));
  if (!inserted)
    throw ServeError("tenant \"" + name + "\" is already bound",
                     kErrDuplicateTenant);
  tenant_order_.push_back(it->second.get());
}

bool Server::has_tenant(const std::string& name) const {
  MutexLock lock(mutex_);
  return tenants_.count(name) != 0;
}

SessionId Server::open_session(const std::string& tenant,
                               SessionOptions options) {
  {
    MutexLock lock(mutex_);
    if (stop_) throw ServeError("server is shutting down", kErrShutdown);
    if (tenants_.count(tenant) == 0)
      throw ServeError("tenant \"" + tenant + "\" is not bound",
                       kErrUnknownTenant);
  }
  return sessions_.open(tenant, std::move(options));
}

void Server::close_session(SessionId session) { sessions_.close(session); }

std::future<Response> Server::submit(SessionId session, Request request) {
  if (!request.has_trace() && request.image.empty())
    throw ServeError("request carries neither a trace nor an image",
                     kErrEmptyRequest);
  // Resolves the session (throws RS-SESSION-UNKNOWN) before admission.
  const std::string tenant_name = sessions_.tenant_of(session);

  MutexLock lock(mutex_);
  if (stop_) throw ServeError("server is shutting down", kErrShutdown);
  auto it = tenants_.find(tenant_name);
  if (it == tenants_.end())
    throw ServeError("tenant \"" + tenant_name + "\" is not bound",
                     kErrUnknownTenant);
  TenantState& tenant = *it->second;
  if (!request.has_trace() && !tenant.spec.network.has_value())
    throw ServeError("tenant \"" + tenant_name +
                         "\" has no network for raw-image requests",
                     kErrNoNetwork);
  if (tenant.canary_enabled && tenant.healthy == 0)
    throw ServeError("tenant \"" + tenant_name +
                         "\" has no healthy replicas left",
                     kErrReplicaDegraded);
  if (tenant.queue.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    throw ServeError("tenant \"" + tenant_name + "\" queue is full (" +
                         std::to_string(config_.queue_capacity) + ")",
                     kErrQueueFull);
  }

  // Sequence reservation and enqueue are atomic under the server lock,
  // so per-session queue order == sequence order == delivery order.
  auto [sequence, future] = sessions_.begin_request(session);
  Pending pending;
  pending.session = session;
  pending.sequence = sequence;
  pending.seed = sessions_.request_seed(session, sequence);
  pending.request = std::move(request);
  pending.submitted = Clock::now();
  tenant.queue.push_back(std::move(pending));
  ++pending_;
  ++stats_.submitted;
  cv_.notify_all();
  return std::move(future);
}

void Server::dispatcher_loop(std::size_t id) {
  MutexLock lock(mutex_);
  std::size_t rr = id;  // rotating scan start: fairness across tenants
  for (;;) {
    if (stop_ && pending_ == 0) return;

    const auto now = Clock::now();
    TenantState* pick = nullptr;
    TenantState* doomed = nullptr;
    bool window_pending = false;
    auto earliest = Clock::time_point::max();
    const std::size_t n = tenant_order_.size();
    for (std::size_t k = 0; k < n && pick == nullptr; ++k) {
      TenantState* t = tenant_order_[(rr + k) % n];
      if (t->queue.empty()) continue;
      if (t->canary_enabled && t->healthy == 0) {
        // No replica can ever serve this tenant again: fail its queue
        // fast instead of letting drain()/shutdown() hang on it.
        doomed = t;
        break;
      }
      if (t->free_replicas.empty()) continue;
      const bool ready =
          stop_ || draining_ > 0 || t->queue.size() >= config_.batch_max ||
          now - t->queue.front().submitted >= config_.batch_window;
      if (ready) {
        pick = t;
        rr = (rr + k + 1) % n;
      } else {
        window_pending = true;
        earliest = std::min(earliest,
                            t->queue.front().submitted + config_.batch_window);
      }
    }

    if (doomed != nullptr) {
      std::vector<Pending> dead(std::make_move_iterator(doomed->queue.begin()),
                                std::make_move_iterator(doomed->queue.end()));
      doomed->queue.clear();
      pending_ -= dead.size();
      const std::string why =
          "tenant \"" + doomed->name + "\" has no healthy replicas left";
      lock.unlock();
      abandon_batch(dead, kErrReplicaDegraded, why);
      lock.lock();
      stats_.completed += dead.size();
      cv_.notify_all();
      continue;
    }

    if (pick == nullptr) {
      if (window_pending)
        cv_.wait_until(lock.native(), earliest);
      else
        cv_.wait(lock.native());
      continue;
    }

    // Form the batch and check out a replica.
    const std::size_t take = std::min(config_.batch_max, pick->queue.size());
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pick->queue.front()));
      pick->queue.pop_front();
    }
    pending_ -= take;
    std::size_t replica = pick->free_replicas.back();
    pick->free_replicas.pop_back();
    ++inflight_;
    ++stats_.batches;
    stats_.max_batch =
        std::max<std::uint64_t>(stats_.max_batch, take);
    lock.unlock();

    // Serve the batch, retrying past replicas that fail their
    // first-checkout canary.  A degraded replica is retired for good
    // (never returned to free_replicas), so the tenant keeps serving at
    // reduced capacity on whatever remains healthy.
    std::size_t attempt = 0;
    for (;;) {
      if (check_replica(*pick, replica)) {
        execute_batch(*pick, replica, std::move(batch), Clock::now());
        lock.lock();
        pick->free_replicas.push_back(replica);
        break;
      }

      lock.lock();
      const char* code = nullptr;
      std::string why;
      if (pick->healthy == 0) {
        code = kErrReplicaDegraded;
        why = "tenant \"" + pick->name + "\" has no healthy replicas left";
      } else if (attempt >= config_.max_retries) {
        ++stats_.retry_exhausted;
        code = kErrRetryExhausted;
        why = "batch hit " + std::to_string(attempt + 1) +
              " degraded replicas of tenant \"" + pick->name +
              "\" (max_retries " + std::to_string(config_.max_retries) + ")";
      }
      if (code != nullptr) {
        lock.unlock();
        abandon_batch(batch, code, why);
        lock.lock();
        break;
      }

      ++attempt;
      ++stats_.retries;
      // Bounded exponential backoff before stealing the next replica:
      // base << (attempt-1), capped at base << 6.  The timed wait doubles
      // as the replica-return wakeup.
      const auto backoff = config_.retry_backoff *
                           (std::uint64_t{1}
                            << std::min<std::size_t>(attempt - 1, 6));
      if (backoff.count() > 0) cv_.wait_for(lock.native(), backoff);
      while (pick->free_replicas.empty() && pick->healthy > 0)
        cv_.wait(lock.native());
      if (pick->healthy == 0) {
        why = "tenant \"" + pick->name + "\" has no healthy replicas left";
        lock.unlock();
        abandon_batch(batch, kErrReplicaDegraded, why);
        lock.lock();
        break;
      }
      replica = pick->free_replicas.back();
      pick->free_replicas.pop_back();
      lock.unlock();
    }

    --inflight_;
    stats_.completed += take;
    // Wake peers: the freed replica may unblock this tenant's next
    // batch, and drain()/shutdown() waiters recheck their predicates.
    cv_.notify_all();
  }
}

bool Server::check_replica(TenantState& tenant, std::size_t replica) {
  {
    MutexLock lock(mutex_);
    if (!tenant.canary_enabled || tenant.canary_checked[replica])
      return tenant.degraded[replica] == 0;
  }

  // Replay the canary unlocked — only the dispatcher holding the
  // checked-out replica touches it.  Any execution failure counts as
  // divergence: a replica that cannot replay the probe cannot serve.
  bool ok = false;
  try {
    std::vector<api::ExecutionReport> reports;
    api::Pipeline::execute_each(*tenant.replicas[replica],
                                {&tenant.canary, 1}, reports, 1);
    ok = canary_signature(reports.front()) == tenant.canary_reference;
  } catch (...) {
    ok = false;
  }

  MutexLock lock(mutex_);
  ++stats_.canary_checks;
  tenant.canary_checked[replica] = 1;
  if (!ok) {
    tenant.degraded[replica] = 1;
    --tenant.healthy;
    ++stats_.degraded_replicas;
  }
  return ok;
}

void Server::abandon_batch(std::vector<Pending>& batch, const char* code,
                           const std::string& why) {
  for (const Pending& pending : batch)
    sessions_.abandon(pending.session, pending.sequence,
                      std::make_exception_ptr(ServeError(why, code)));
}

void Server::execute_batch(TenantState& tenant, std::size_t replica,
                           std::vector<Pending> batch,
                           Clock::time_point dispatch) {
  const std::size_t n = batch.size();
  std::vector<snn::SpikeTrace> traces;
  std::vector<std::size_t> predicted(n, 0);
  std::vector<char> simulated(n, 0);
  std::vector<std::size_t> live;  // batch indices that reached execution
  traces.reserve(n);
  live.reserve(n);

  // Materialise every request's trace.  A request that fails to simulate
  // (malformed image) is abandoned individually — one bad request must
  // not poison its batchmates.
  for (std::size_t i = 0; i < n; ++i) {
    Pending& pending = batch[i];
    try {
      if (pending.request.has_trace()) {
        traces.push_back(std::move(pending.request.trace));
      } else {
        auto& simulator = tenant.simulators[replica];
        // Only the dispatcher holding the checked-out replica touches
        // its simulator, so lazy construction needs no lock.
        if (!simulator)
          simulator = std::make_unique<snn::Simulator>(*tenant.spec.network,
                                                       tenant.spec.sim);
        Rng rng(pending.seed);
        snn::SimResult result = simulator->run(pending.request.image, rng);
        predicted[i] = result.predicted_class;
        simulated[i] = 1;
        traces.push_back(std::move(result.trace));
      }
      live.push_back(i);
    } catch (...) {
      sessions_.abandon(pending.session, pending.sequence,
                        std::current_exception());
    }
  }

  try {
    std::vector<api::ExecutionReport> reports;
    api::Pipeline::execute_each(*tenant.replicas[replica], traces, reports,
                                config_.compute_threads);
    const auto done = Clock::now();
    for (std::size_t j = 0; j < live.size(); ++j) {
      const Pending& pending = batch[live[j]];
      Response response;
      response.session = pending.session;
      response.sequence = pending.sequence;
      response.predicted_class = predicted[live[j]];
      response.simulated = simulated[live[j]] != 0;
      response.batch_size = n;
      response.report = std::move(reports[j]);
      response.queue_ns = wall_ns(dispatch - pending.submitted);
      response.batch_ns = wall_ns(done - dispatch);
      response.total_ns = wall_ns(done - pending.submitted);
      recorder_.record_response(response);
      sessions_.publish(std::move(response));
    }
  } catch (...) {
    for (const std::size_t i : live)
      sessions_.abandon(batch[i].session, batch[i].sequence,
                        std::current_exception());
  }
}

void Server::drain() {
  MutexLock lock(mutex_);
  ++draining_;
  cv_.notify_all();  // bypass the batch window for partial batches
  while (pending_ != 0 || inflight_ != 0) cv_.wait(lock.native());
  --draining_;
}

void Server::shutdown() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (auto& dispatcher : dispatchers_)
    if (dispatcher.joinable()) dispatcher.join();
}

ServerStats Server::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace resparc::serve
