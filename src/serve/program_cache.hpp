// Fingerprint-keyed ahead-of-time compiled-program cache (docs/serving.md).
//
// Compiling a topology is the expensive part of binding a tenant, and the
// result is fully determined by (configuration, topology, strategy) — the
// triple compile::program_cache_key hashes.  The cache keeps an in-memory
// LRU of shared programs and, when given a directory, persists every
// compile as a serialized blob (<key>.rcp) so a restarted server skips
// recompilation entirely.
//
// Rehydrated blobs are never trusted: a disk hit goes through
// CompiledProgram::load (= parse + the mandatory static verifier,
// docs/verification.md), so a tampered or stale blob is rejected with its
// RV-* code, evicted from disk, and transparently recompiled — the caller
// of get_or_compile() only ever sees a valid program.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/thread_safety.hpp"
#include "compile/program.hpp"
#include "core/config.hpp"
#include "snn/topology.hpp"

namespace resparc::serve {

/// Cache sizing and persistence knobs.
struct ProgramCacheConfig {
  /// Blob directory ("" = in-memory only, nothing persisted).  Created on
  /// demand; unwritable directories degrade to in-memory behaviour.
  std::string directory;
  /// In-memory LRU capacity in programs (disk blobs are never evicted by
  /// capacity — disk is the persistence layer, memory the working set).
  std::size_t capacity = 16;
  /// Assumed activity for the compiler's analytic cost model.
  double activity = 0.10;
};

/// Monotonic counters of one cache's lifetime (test/bench observability).
struct ProgramCacheStats {
  std::size_t memory_hits = 0;        ///< served from the in-memory LRU
  std::size_t disk_hits = 0;          ///< rehydrated + re-verified from disk
  std::size_t misses = 0;             ///< compiled from scratch
  std::size_t corrupt_evictions = 0;  ///< blobs rejected on rehydrate
};

/// Thread-safe LRU cache of compiled programs keyed by
/// compile::program_cache_key, with optional blob persistence.
class ProgramCache {
 public:
  /// Builds a cache; creates config.directory when persistence is on.
  explicit ProgramCache(ProgramCacheConfig config = {});

  /// The configuration the cache was built with.
  const ProgramCacheConfig& config() const { return config_; }

  /// Returns the cached program for (config, topology, strategy),
  /// rehydrating from disk or compiling on demand.  A corrupt disk blob
  /// is evicted and recompiled transparently (stats().corrupt_evictions
  /// counts it, last_corruption_code() keeps its RV-* code); compile
  /// failures propagate to the caller unchanged.
  std::shared_ptr<const compile::CompiledProgram> get_or_compile(
      const core::ResparcConfig& config, const snn::Topology& topology,
      const std::string& strategy);

  /// Disk-only lookup: rehydrates (and re-verifies) the persisted blob
  /// for the triple without compiling.  Throws ServeError
  /// (RS-CACHE-CORRUPT, wrapping the verifier/parser code) when the blob
  /// exists but fails verification, and ServeError (RS-CACHE-CORRUPT)
  /// when no blob exists.  Primarily a test/tooling seam; servers use
  /// get_or_compile().
  std::shared_ptr<const compile::CompiledProgram> rehydrate(
      const core::ResparcConfig& config, const snn::Topology& topology,
      const std::string& strategy);

  /// Lifetime counters (copied under the lock).
  ProgramCacheStats stats() const;

  /// RV-*/compile code of the most recent corrupt-blob eviction (""
  /// before any corruption was seen).
  std::string last_corruption_code() const;

  /// On-disk blob path for a key ("" when persistence is off).
  std::string blob_path(std::uint64_t key) const;

  /// Drops every in-memory entry (disk blobs stay).
  void clear_memory();

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const compile::CompiledProgram> program;
  };

  std::shared_ptr<const compile::CompiledProgram> insert(
      std::uint64_t key, compile::CompiledProgram program)
      RESPARC_REQUIRES(mutex_);
  /// Persists `program` to `path` atomically: the blob is written to a
  /// unique sibling temp file and renamed into place, so a concurrent
  /// rehydrate can only ever open a complete blob (never a torn write).
  /// On success bumps the key's blob generation under the lock.
  void persist(std::uint64_t key, const compile::CompiledProgram& program,
               const std::string& path);
  /// Corrupt-blob eviction with double-count protection: removes the
  /// blob and bumps the counters only when the key's blob generation
  /// still equals `generation` (= nobody replaced or evicted the blob
  /// since this caller read it) — racing callers that all rejected the
  /// same bad blob account exactly one eviction.
  void evict_corrupt(std::uint64_t key, std::uint64_t generation,
                     const std::string& path, const std::string& code);

  ProgramCacheConfig config_;
  bool persist_ = false;  ///< directory usable (created successfully)

  mutable Mutex mutex_;
  /// MRU-first list; the map indexes into it.
  std::list<Entry> lru_ RESPARC_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      RESPARC_GUARDED_BY(mutex_);
  /// Per-key on-disk blob generation, bumped on every persist/evict.
  /// Readers snapshot it before an unlocked disk probe; mutations check
  /// it so one physical corruption is only counted/evicted once.
  std::unordered_map<std::uint64_t, std::uint64_t> generation_
      RESPARC_GUARDED_BY(mutex_);
  ProgramCacheStats stats_ RESPARC_GUARDED_BY(mutex_);
  std::string last_corruption_code_ RESPARC_GUARDED_BY(mutex_);
};

}  // namespace resparc::serve
