// serve::Server — the multi-tenant serving front-end (docs/serving.md).
//
// Where api::Pipeline is batch-oriented and single-workload, the server
// admits many concurrent request streams against many tenants sharing one
// process:
//
//   serve::Server server({.replicas = 2, .batch_max = 8});
//   server.add_tenant("vision", {.backend = "resparc-64/greedy-pack",
//                                .topology = spec.topology});
//   serve::SessionId s = server.open_session("vision");
//   std::future<serve::Response> r = server.submit(s, {.trace = trace});
//
// The moving parts:
//  * Admission: per-tenant bounded FIFO queues; a full queue rejects the
//    submit with RS-QUEUE-FULL instead of blocking the producer.
//  * Batch formation: a request is dispatched when its tenant has
//    batch_max requests queued OR the oldest one has waited batch_window
//    (time/size-windowed batching).  Requests execute per-trace, so how
//    a batch was cut can never change any result — only amortised
//    scheduling cost (test-enforced batch-window invariance).
//  * Replicas: each tenant owns `replicas` loaded accelerator instances;
//    RESPARC tenants compile once through the shared ProgramCache and
//    load the same program into every replica.
//  * Dispatchers: a fixed pool of threads forms batches (rotating
//    round-robin over tenants for fairness), checks out a free replica,
//    executes via api::Pipeline::execute_each, and publishes responses
//    through the SessionManager's ordered delivery.
//  * Accounting: every response feeds the lock-free LatencyRecorder
//    (queue/batch/compute/transport/stall/total percentiles).
//  * Degradation: tenants binding per-replica fault seeds
//    (TenantSpec::replica_chip_seeds) get canary-checked replicas — a
//    replica whose first-checkout canary replay diverges from the
//    pristine signature is retired, its batch retries onto a healthy
//    replica with bounded exponential backoff, and the tenant keeps
//    serving at reduced capacity (RS-REPLICA-DEGRADED /
//    RS-RETRY-EXHAUSTED when nothing healthy remains,
//    docs/reliability.md).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/registry.hpp"
#include "common/thread_safety.hpp"
#include "serve/canary.hpp"
#include "serve/latency.hpp"
#include "serve/program_cache.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"
#include "snn/simulator.hpp"

namespace resparc::serve {

/// Server sizing and scheduling knobs.
struct ServerConfig {
  /// Loaded accelerator instances per tenant (the tenant's maximum
  /// in-flight batch parallelism).
  std::size_t replicas = 1;
  /// Dispatcher threads shared by all tenants (0 = one per hardware
  /// thread, capped at 8).
  std::size_t dispatchers = 0;
  /// Per-tenant pending-queue capacity; a full queue rejects
  /// (RS-QUEUE-FULL).
  std::size_t queue_capacity = 64;
  /// Maximum requests per formed batch.
  std::size_t batch_max = 8;
  /// Maximum time the oldest queued request waits before its batch is
  /// dispatched anyway (0 = dispatch immediately).
  std::chrono::microseconds batch_window{200};
  /// ThreadPool workers per batch execution (1 = execute inline on the
  /// dispatcher; >1 fans the batch over the global pool, the small-burst
  /// pattern tests/test_thread_pool.cpp stresses).
  std::size_t compute_threads = 1;
  /// Master seed deriving every session's RNG stream.
  std::uint64_t seed = 7;
  /// Compiled-program cache (directory "" = no persistence).
  ProgramCacheConfig cache{};
  /// How many degraded replicas one batch may burn through at checkout
  /// before it is abandoned with RS-RETRY-EXHAUSTED (each retry re-runs
  /// the canary on the next free replica, docs/reliability.md).
  std::size_t max_retries = 3;
  /// Base delay of the bounded exponential backoff between retries
  /// (doubles per attempt, capped at base << 6; 0 = no backoff).
  std::chrono::microseconds retry_backoff{50};
};

/// Monotonic serving counters (consistent snapshot via Server::stats()).
struct ServerStats {
  std::uint64_t submitted = 0;   ///< requests admitted into a queue
  std::uint64_t rejected = 0;    ///< requests refused (queue full)
  std::uint64_t completed = 0;   ///< responses published
  std::uint64_t batches = 0;     ///< batches dispatched
  std::uint64_t max_batch = 0;   ///< largest batch formed

  // Degraded-replica serving (docs/reliability.md):
  std::uint64_t canary_checks = 0;      ///< canary replays executed
  std::uint64_t degraded_replicas = 0;  ///< replicas retired by the canary
  std::uint64_t retries = 0;            ///< batch re-dispatches onto another replica
  std::uint64_t retry_exhausted = 0;    ///< batches abandoned (RS-RETRY-EXHAUSTED)
};

/// The multi-tenant serving front-end.  All public methods are
/// thread-safe; submit() and the response callbacks are designed to be
/// called from many producer threads concurrently.
class Server {
 public:
  /// Spawns the dispatcher pool (no tenants yet).
  explicit Server(ServerConfig config = {});
  /// shutdown() + joins the dispatchers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds a tenant: compiles/loads `replicas` accelerator instances
  /// (RESPARC backends compile once through the program cache).  Throws
  /// ServeError (RS-TENANT-DUP) when the name is taken and propagates
  /// backend/compile errors unchanged.
  void add_tenant(const std::string& name, TenantSpec spec);

  /// True when a tenant with this name is bound.
  bool has_tenant(const std::string& name) const;

  /// Opens a session against a tenant (RS-TENANT-UNKNOWN when absent).
  SessionId open_session(const std::string& tenant,
                         SessionOptions options = {});

  /// Closes a session; in-flight requests still deliver.
  void close_session(SessionId session);

  /// Admits one request.  Throws ServeError with RS-QUEUE-FULL /
  /// RS-SESSION-UNKNOWN / RS-REQUEST-EMPTY / RS-TENANT-NO-NETWORK /
  /// RS-SHUTDOWN; on success the future completes in per-session submit
  /// order.
  std::future<Response> submit(SessionId session, Request request);

  /// Blocks until every admitted request has been executed and
  /// published (forces out partial batches without waiting for their
  /// window to expire).
  void drain();

  /// Rejects new work (RS-SHUTDOWN), drains the queues and stops the
  /// dispatchers.  Idempotent; the destructor calls it.
  void shutdown();

  /// The per-stage latency histograms (updated live).
  const LatencyRecorder& latency() const { return recorder_; }
  /// The shared compiled-program cache.
  ProgramCache& program_cache() { return cache_; }
  /// The session layer (ordered delivery, seeds).
  SessionManager& sessions() { return sessions_; }
  /// Snapshot of the serving counters.
  ServerStats stats() const;
  /// The configuration the server was built with (after resolution).
  const ServerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    SessionId session = 0;
    std::uint64_t sequence = 0;
    std::uint64_t seed = 0;  ///< captured at submit: RNG for simulation
    Request request;
    Clock::time_point submitted;
  };

  struct TenantState {
    std::string name;
    TenantSpec spec;
    std::deque<Pending> queue;
    std::vector<std::unique_ptr<api::Accelerator>> replicas;
    /// Lazily built per replica for raw-image tenants; only the
    /// dispatcher holding the replica touches its simulator.
    std::vector<std::unique_ptr<snn::Simulator>> simulators;
    std::vector<std::size_t> free_replicas;  ///< replica indices not in flight

    // Canary state (docs/reliability.md).  The trace and reference
    // signature are immutable after add_tenant; the per-replica health
    // vectors are guarded by the server mutex.
    bool canary_enabled = false;      ///< spec bound replica_chip_seeds
    snn::SpikeTrace canary;           ///< deterministic probe trace
    CanarySignature canary_reference; ///< pristine replay signature
    std::vector<char> canary_checked; ///< replica passed/failed its probe
    std::vector<char> degraded;       ///< replica retired by the canary
    std::size_t healthy = 0;          ///< replicas not (yet) degraded
  };

  void dispatcher_loop(std::size_t id);
  /// Executes one formed batch on a checked-out replica (no lock held)
  /// and publishes its responses.
  void execute_batch(TenantState& tenant, std::size_t replica,
                     std::vector<Pending> batch, Clock::time_point dispatch);
  /// Runs the replica's first-checkout canary when armed and not yet
  /// done (no lock held during the replay).  Returns false when the
  /// replica is degraded — the caller must not serve on it; a degraded
  /// replica is retired (never returned to free_replicas).
  bool check_replica(TenantState& tenant, std::size_t replica);
  /// Fails every request of `batch` with ServeError(code) — delivery
  /// order per session is preserved by the session layer.  Call with the
  /// server lock released (promise continuations run inline).
  void abandon_batch(std::vector<Pending>& batch, const char* code,
                     const std::string& why);

  ServerConfig config_;
  ProgramCache cache_;
  SessionManager sessions_;
  LatencyRecorder recorder_;

  mutable Mutex mutex_;
  std::condition_variable cv_;  ///< dispatchers + drain() park here
  bool stop_ RESPARC_GUARDED_BY(mutex_) = false;
  std::size_t draining_ RESPARC_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ RESPARC_GUARDED_BY(mutex_) = 0;   ///< queued requests
  std::size_t inflight_ RESPARC_GUARDED_BY(mutex_) = 0;  ///< batches executing
  ServerStats stats_ RESPARC_GUARDED_BY(mutex_);
  /// Tenants by name; unique_ptr keeps TenantState addresses stable for
  /// the dispatchers' unlocked execution phase.
  std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_
      RESPARC_GUARDED_BY(mutex_);
  /// Insertion-ordered view for round-robin fairness.
  std::vector<TenantState*> tenant_order_ RESPARC_GUARDED_BY(mutex_);

  /// Serialises shutdown()'s joins (shutdown is idempotent and callable
  /// from any thread, including concurrently with the destructor's call).
  std::mutex join_mutex_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace resparc::serve
