#include "verify/diagnostic.hpp"

#include <sstream>
#include <utility>

namespace resparc::verify {

std::string to_string(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  std::string out = verify::to_string(severity);
  out += " ";
  out += code;
  out += " at ";
  out += location;
  out += ": ";
  out += message;
  return out;
}

void VerifyReport::add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) ++errors_;
  diagnostics_.push_back(std::move(diagnostic));
}

void VerifyReport::error(std::string code, std::string location,
                         std::string message) {
  add(Diagnostic{std::move(code), Severity::kError, std::move(location),
                 std::move(message)});
}

void VerifyReport::warning(std::string code, std::string location,
                           std::string message) {
  add(Diagnostic{std::move(code), Severity::kWarning, std::move(location),
                 std::move(message)});
}

bool VerifyReport::has(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_)
    if (d.code == code) return true;
  return false;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) os << d.to_string() << "\n";
  os << (ok() ? "OK" : "FAIL") << ": " << error_count() << " error(s), "
     << warning_count() << " warning(s)\n";
  return os.str();
}

namespace {

/// Minimal JSON string escaping (quotes, backslash, control characters).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string VerifyReport::to_json() const {
  std::string out = "{\"ok\":";
  out += ok() ? "true" : "false";
  out += ",\"errors\":" + std::to_string(error_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out += ',';
    first = false;
    out += "{\"code\":";
    append_json_string(out, d.code);
    out += ",\"severity\":";
    append_json_string(out, verify::to_string(d.severity));
    out += ",\"location\":";
    append_json_string(out, d.location);
    out += ",\"message\":";
    append_json_string(out, d.message);
    out += '}';
  }
  out += "]}";
  return out;
}

void VerifyReport::raise_if_errors(const std::string& context) const {
  if (ok()) return;
  std::string code;
  std::string what = context + ": " + std::to_string(error_count()) +
                     " verification error(s):";
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    if (code.empty()) code = d.code;
    what += "\n  " + d.to_string();
  }
  throw VerifyError(what, std::move(code));
}

}  // namespace resparc::verify
