#include "verify/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>

#include "common/math.hpp"
#include "compile/cost_model.hpp"
#include "noc/route.hpp"
#include "tech/nonideal.hpp"

namespace resparc::verify {

namespace {

using compile::CompiledProgram;
using core::LayerMapping;
using core::Mapping;
using core::McaGroup;
using core::ResparcConfig;

std::string layer_loc(std::size_t l) { return "layer " + std::to_string(l); }

std::string group_loc(std::size_t l, std::size_t g) {
  return "layer " + std::to_string(l) + " group " + std::to_string(g);
}

std::string boundary_loc(std::size_t b) {
  return "boundary " + std::to_string(b);
}

/// Relative comparison for re-derived doubles (see VerifyOptions::tolerance).
bool close(double actual, double expected, double tolerance) {
  const double scale = std::max(std::abs(expected), 1.0);
  return std::abs(actual - expected) <= tolerance * scale;
}

std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

/// Whitespace folded to '-', mirroring the serializer's token() (the
/// stored topology summary is compared in folded form).
std::string fold_token(const std::string& s) {
  std::string out = s.empty() ? std::string("-") : s;
  for (char& c : out)
    if (std::isspace(static_cast<unsigned char>(c))) c = '-';
  return out;
}

// --------------------------------------------------------------- structure --

/// Every layer tiled and placed, the route table covers every boundary,
/// and route endpoints sit inside the placed cells.
void structure_pass(const CompiledProgram& p, const VerifyOptions&,
                    VerifyReport& report) {
  const Mapping& m = p.mapping;
  const ResparcConfig& cfg = m.config;
  const std::size_t per_nc = cfg.mpes_per_neurocell();

  if (m.layers.empty()) {
    report.error("RV-STRUCT-EMPTY-PROGRAM", "program", "mapping has no layers");
    return;
  }

  for (std::size_t l = 0; l < m.layers.size(); ++l) {
    const LayerMapping& lm = m.layers[l];
    if (lm.layer != l)
      report.error("RV-STRUCT-LAYER-INDEX", layer_loc(l),
                   "stored layer index " + std::to_string(lm.layer) +
                       " does not match position " + std::to_string(l));
    if (lm.groups.empty() || lm.mca_count == 0 || lm.mpe_count == 0 ||
        lm.synapses == 0)
      report.error("RV-STRUCT-UNTILED-LAYER", layer_loc(l),
                   "layer is not tiled (no groups, MCAs, mPEs or synapses)");
    if (lm.mux_degree == 0 || lm.mux_cycles == 0)
      report.error("RV-STRUCT-UNTILED-LAYER", layer_loc(l),
                   "time-multiplex degree/cycles must be at least 1");

    for (std::size_t g = 0; g < lm.groups.size(); ++g) {
      const McaGroup& mg = lm.groups[g];
      if (mg.mca_count == 0 || mg.synapses == 0)
        report.error("RV-STRUCT-EMPTY-GROUP", group_loc(l, g),
                     "group deploys no MCAs or programs no synapses");
      if (mg.slice.kind == core::SliceKind::kContiguous) {
        if (mg.slice.begin >= mg.slice.end)
          report.error("RV-STRUCT-SLICE", group_loc(l, g),
                       "contiguous slice [" + std::to_string(mg.slice.begin) +
                           ", " + std::to_string(mg.slice.end) + ") is empty");
      } else {
        if (mg.slice.y0 > mg.slice.y1 || mg.slice.x0 > mg.slice.x1)
          report.error("RV-STRUCT-SLICE", group_loc(l, g),
                       "window slice rows/cols are inverted");
      }
    }

    // Placement: the stored NeuroCell range must be the one the mPE range
    // implies (all shipped placements are mPE-contiguous by representation:
    // first_mpe + mpe_count describe the span).
    if (lm.mpe_count > 0) {
      const std::size_t want_first_nc = lm.first_mpe / per_nc;
      const std::size_t want_last_nc =
          (lm.first_mpe + lm.mpe_count - 1) / per_nc;
      if (lm.first_nc != want_first_nc || lm.last_nc != want_last_nc ||
          lm.last_nc < lm.first_nc)
        report.error(
            "RV-STRUCT-PLACEMENT", layer_loc(l),
            "placed NeuroCell range [" + std::to_string(lm.first_nc) + ", " +
                std::to_string(lm.last_nc) + "] does not match mPE span [" +
                std::to_string(lm.first_mpe) + ", " +
                std::to_string(lm.first_mpe + lm.mpe_count - 1) + "]");
    }
  }

  // Route table coverage: one route per boundary (layer_count + 1).
  const std::size_t boundaries = m.layers.size() + 1;
  if (p.routes.size() != boundaries) {
    report.error("RV-STRUCT-ROUTE-COUNT", "route table",
                 "program carries " + std::to_string(p.routes.size()) +
                     " routes but the mapping has " +
                     std::to_string(boundaries) + " boundaries");
    return;  // per-route checks below assume a covering table
  }

  for (std::size_t b = 0; b < boundaries; ++b) {
    const noc::Route& r = p.routes.boundaries[b];
    if (r.boundary != b)
      report.error("RV-STRUCT-ROUTE-INDEX", boundary_loc(b),
                   "stored boundary index " + std::to_string(r.boundary) +
                       " does not match position " + std::to_string(b));
    if (r.dst_nc_first > r.dst_nc_last ||
        r.dst_nc_last >= std::max<std::size_t>(1, m.total_neurocells) ||
        r.src_nc >= std::max<std::size_t>(1, m.total_neurocells)) {
      report.error("RV-STRUCT-ROUTE-ENDPOINT", boundary_loc(b),
                   "route endpoints (src " + std::to_string(r.src_nc) +
                       ", dst [" + std::to_string(r.dst_nc_first) + ", " +
                       std::to_string(r.dst_nc_last) +
                       "]) fall outside the placed NeuroCells");
      continue;
    }
    // Endpoints must agree with the placement of the adjacent layers.
    const LayerMapping* src =
        b == 0 ? nullptr : &m.layers[b - 1];
    const LayerMapping* dst =
        b == m.layers.size() ? nullptr : &m.layers[b];
    const std::size_t want_src = src ? src->last_nc : m.layers[0].first_nc;
    const std::size_t want_first = dst ? dst->first_nc : want_src;
    const std::size_t want_last = dst ? dst->last_nc : want_src;
    if (r.src_nc != want_src || r.dst_nc_first != want_first ||
        r.dst_nc_last != want_last)
      report.error("RV-STRUCT-ROUTE-ENDPOINT", boundary_loc(b),
                   "route endpoints do not match the adjacent layers' "
                   "placement (expected src " +
                       std::to_string(want_src) + ", dst [" +
                       std::to_string(want_first) + ", " +
                       std::to_string(want_last) + "])");
  }
}

// ----------------------------------------------------------------- routing --

/// H-tree internals re-derived from the placement: bus flags, LCA
/// heights, hop counts and source spans must be the ones the routing
/// pass' definitions produce for these endpoints.
void routing_pass(const CompiledProgram& p, const VerifyOptions&,
                  VerifyReport& report) {
  const Mapping& m = p.mapping;
  if (m.layers.empty() || p.routes.size() != m.layers.size() + 1)
    return;  // structure_pass reported the shape problem
  const std::size_t depth = noc::tree_depth(m.total_neurocells);
  const std::size_t mesh = m.config.nc_dim - 1;
  const std::size_t layers = m.layers.size();

  for (std::size_t b = 0; b <= layers; ++b) {
    const noc::Route& r = p.routes.boundaries[b];
    const std::string loc = boundary_loc(b);

    if (r.src_span == 0 || r.src_span > std::max<std::size_t>(
                               1, m.total_neurocells)) {
      report.error("RV-ROUTE-SRC-SPAN", loc,
                   "source span " + std::to_string(r.src_span) +
                       " outside [1, " +
                       std::to_string(m.total_neurocells) + "]");
    }
    if (r.fanout() > std::max<std::size_t>(1, m.total_neurocells))
      report.error("RV-ROUTE-FANOUT", loc,
                   "destination fanout " + std::to_string(r.fanout()) +
                       " exceeds the " + std::to_string(m.total_neurocells) +
                       " placed NeuroCells");

    if (b == 0 || b == layers) {
      // Input broadcast and final egress always turn at the root.
      if (!r.uses_bus)
        report.error("RV-ROUTE-BUS-FLAG", loc,
                     b == 0 ? "input broadcast must use the global bus"
                            : "final egress must use the global bus");
      if (r.lca_height != depth)
        report.error("RV-ROUTE-LCA-HEIGHT", loc,
                     "root boundary stores LCA height " +
                         std::to_string(r.lca_height) + ", tree depth is " +
                         std::to_string(depth));
      if (r.tree_hops != depth)
        report.error("RV-ROUTE-TREE-HOPS", loc,
                     "root boundary stores " + std::to_string(r.tree_hops) +
                         " tree hops, tree depth is " + std::to_string(depth));
      if (r.mesh_hops != 0)
        report.error("RV-ROUTE-MESH-HOPS", loc,
                     "bus route must not cross the in-cell mesh");
      const std::size_t want_span =
          b == 0 ? 1
                 : m.layers[layers - 1].last_nc - m.layers[layers - 1].first_nc +
                       1;
      if (r.src_span != want_span)
        report.error("RV-ROUTE-SRC-SPAN", loc,
                     "source span " + std::to_string(r.src_span) +
                         " does not match the source layer's " +
                         std::to_string(want_span) + " cells");
      continue;
    }

    const LayerMapping& src = m.layers[b - 1];
    const LayerMapping& dst = m.layers[b];
    const bool want_bus = m.boundary_uses_bus(b);
    if (r.uses_bus != want_bus) {
      report.error("RV-ROUTE-BUS-FLAG", loc,
                   std::string("route ") +
                       (r.uses_bus ? "uses" : "does not use") +
                       " the bus but the placement says it must" +
                       (want_bus ? "" : " not"));
      continue;  // hop expectations depend on the correct flag
    }
    if (want_bus) {
      const std::size_t span_min = std::min(src.first_nc, dst.first_nc);
      const std::size_t span_max = std::max(src.last_nc, dst.last_nc);
      const std::size_t want_lca = std::max<std::size_t>(
          1, noc::lca_height_of(span_min, span_max));
      if (r.lca_height != want_lca || r.lca_height > depth)
        report.error("RV-ROUTE-LCA-HEIGHT", loc,
                     "stored LCA height " + std::to_string(r.lca_height) +
                         ", endpoints imply " + std::to_string(want_lca) +
                         " (tree depth " + std::to_string(depth) + ")");
      if (r.tree_hops != 2 * r.lca_height)
        report.error("RV-ROUTE-TREE-HOPS", loc,
                     "tree hops " + std::to_string(r.tree_hops) +
                         " must be ascent + descent = " +
                         std::to_string(2 * r.lca_height));
      if (r.mesh_hops != 0)
        report.error("RV-ROUTE-MESH-HOPS", loc,
                     "bus route must not cross the in-cell mesh");
    } else {
      if (r.mesh_hops != mesh)
        report.error("RV-ROUTE-MESH-HOPS", loc,
                     "intra-cell route stores " + std::to_string(r.mesh_hops) +
                         " mesh hops, the " + std::to_string(m.config.nc_dim) +
                         "x" + std::to_string(m.config.nc_dim) +
                         " cell implies " + std::to_string(mesh));
      if (r.tree_hops != 0 || r.lca_height != 0)
        report.error("RV-ROUTE-TREE-HOPS", loc,
                     "intra-cell route must not climb the H-tree");
    }
    const std::size_t want_span = src.last_nc - src.first_nc + 1;
    if (r.src_span != want_span)
      report.error("RV-ROUTE-SRC-SPAN", loc,
                   "source span " + std::to_string(r.src_span) +
                       " does not match the source layer's " +
                       std::to_string(want_span) + " cells");
  }
}

// ---------------------------------------------------------------- capacity --

/// Physical capacities: crosspoints per MCA, MCAs per mPE, mPEs per
/// NeuroCell; switch FIFO burst depth as a warning (topology needed).
void capacity_pass(const CompiledProgram& p, const VerifyOptions& options,
                   VerifyReport& report) {
  const Mapping& m = p.mapping;
  const ResparcConfig& cfg = m.config;

  // Heterogeneous chips (search strategies) carry a per-layer MCA size;
  // every capacity bound below is re-derived against the layer's resolved
  // N.  Two extra invariants guard the mix itself: the override must be a
  // legal array size, and one NeuroCell never holds arrays of two sizes
  // (the peripheral pitch of a cell is fixed at fabrication).
  std::vector<std::size_t> nc_size;  // resolved size per occupied NC, 0 = free
  nc_size.resize(m.total_neurocells, 0);

  for (std::size_t l = 0; l < m.layers.size(); ++l) {
    const LayerMapping& lm = m.layers[l];
    const std::size_t N = m.layer_mca_size(l);
    if (lm.mca_size != 0 && (lm.mca_size < 8 || lm.mca_size > 1024))
      report.error("RV-CAP-MCA-SIZE", layer_loc(l),
                   "per-layer MCA size " + std::to_string(lm.mca_size) +
                       " outside [8, 1024]");
    for (std::size_t nc = lm.first_nc;
         nc <= lm.last_nc && nc < nc_size.size(); ++nc) {
      if (nc_size[nc] == 0) {
        nc_size[nc] = N;
      } else if (nc_size[nc] != N) {
        report.error("RV-CAP-NC-MIXED-SIZE", layer_loc(l),
                     "NeuroCell " + std::to_string(nc) + " holds " +
                         std::to_string(nc_size[nc]) + "-size arrays but the "
                         "layer places " + std::to_string(N) + "-size arrays "
                         "into it");
      }
    }
    for (std::size_t g = 0; g < lm.groups.size(); ++g) {
      const McaGroup& mg = lm.groups[g];
      if (mg.synapses > mg.mca_count * N * N)
        report.error("RV-CAP-MCA-SYNAPSES", group_loc(l, g),
                     std::to_string(mg.synapses) + " synapses exceed the " +
                         std::to_string(mg.mca_count * N * N) +
                         " crosspoints of " + std::to_string(mg.mca_count) +
                         " MCA(s) of size " + std::to_string(N));
      if (mg.rows_used > N)
        report.error("RV-CAP-MCA-ROWS", group_loc(l, g),
                     std::to_string(mg.rows_used) + " rows used in a " +
                         std::to_string(N) + "-row crossbar");
      if (mg.cols_used > mg.mca_count * N)
        report.error("RV-CAP-MCA-COLS", group_loc(l, g),
                     std::to_string(mg.cols_used) +
                         " columns summed over a group with only " +
                         std::to_string(mg.mca_count * N) + " columns");
    }
    if (lm.mca_count > lm.mpe_count * cfg.mcas_per_mpe)
      report.error("RV-CAP-MPE-OCCUPANCY", layer_loc(l),
                   std::to_string(lm.mca_count) + " MCAs cannot fit the " +
                       std::to_string(lm.mpe_count) + " mPE(s) x " +
                       std::to_string(cfg.mcas_per_mpe) +
                       " MCAs the layer occupies");
    if (lm.mpe_count >
        (lm.last_nc - lm.first_nc + 1) * cfg.mpes_per_neurocell())
      report.error("RV-CAP-NC-OCCUPANCY", layer_loc(l),
                   std::to_string(lm.mpe_count) + " mPEs cannot fit the " +
                       std::to_string(lm.last_nc - lm.first_nc + 1) +
                       " NeuroCell(s) x " +
                       std::to_string(cfg.mpes_per_neurocell()) +
                       " mPEs the layer spans");
  }

  // Switch FIFO burst depth: a boundary whose per-source-cell word burst
  // exceeds the iBUFF/oBUFF depth will queue in the event fabric —
  // legal (the model backpressures) but worth flagging.
  if (options.topology != nullptr &&
      p.routes.size() == m.layers.size() + 1) {
    const snn::Topology& topo = *options.topology;
    if (topo.layer_count() == m.layers.size()) {
      for (std::size_t b = 0; b < p.routes.size(); ++b) {
        const noc::Route& r = p.routes.boundaries[b];
        if (r.src_span == 0) continue;  // routing_pass reported it
        const std::size_t neurons = b == 0
                                        ? topo.input_neurons()
                                        : topo.layers()[b - 1].neurons;
        const std::size_t burst =
            ceil_div(word_count(neurons), r.src_span);
        if (burst > cfg.buffer_depth)
          report.warning("RV-CAP-FIFO-DEPTH", boundary_loc(b),
                         "per-cell burst of " + std::to_string(burst) +
                             " words exceeds the " +
                             std::to_string(cfg.buffer_depth) +
                             "-flit switch FIFOs (transfer will stall-fill)");
      }
    }
  }
}

// ------------------------------------------------------------- consistency --

/// Derived quantities must re-derive: synapse/MCA sums, utilisation
/// ratios, whole-chip totals, the cost model's totals against the route
/// table, and the recorded fingerprint against the bound configuration.
void consistency_pass(const CompiledProgram& p, const VerifyOptions& options,
                      VerifyReport& report) {
  const Mapping& m = p.mapping;
  const ResparcConfig& cfg = m.config;

  if (p.config_fingerprint != cfg.fingerprint())
    report.error("RV-CONS-FINGERPRINT", "program",
                 "recorded configuration fingerprint " +
                     std::to_string(p.config_fingerprint) +
                     " does not match the bound configuration's " +
                     std::to_string(cfg.fingerprint()));

  std::size_t sum_mcas = 0;
  std::size_t sum_synapses = 0;
  std::size_t sum_cells = 0;
  std::size_t max_mpe_end = 0;
  std::size_t max_nc = 0;
  for (std::size_t l = 0; l < m.layers.size(); ++l) {
    const LayerMapping& lm = m.layers[l];
    const std::size_t N = m.layer_mca_size(l);
    sum_cells += lm.mca_count * N * N;
    std::size_t group_mcas = 0;
    std::size_t group_synapses = 0;
    for (const McaGroup& mg : lm.groups) {
      group_mcas += mg.mca_count;
      group_synapses += mg.synapses;
    }
    if (group_mcas != lm.mca_count)
      report.error("RV-CONS-MCA-SUM", layer_loc(l),
                   "groups deploy " + std::to_string(group_mcas) +
                       " MCAs but the layer records " +
                       std::to_string(lm.mca_count));
    if (group_synapses != lm.synapses)
      report.error("RV-CONS-SYNAPSE-SUM", layer_loc(l),
                   "groups program " + std::to_string(group_synapses) +
                       " synapses but the layer records " +
                       std::to_string(lm.synapses));
    if (lm.mux_degree > 0) {
      const std::size_t want_cycles =
          ceil_div(lm.mux_degree, cfg.mcas_per_mpe);
      if (lm.mux_cycles != want_cycles ||
          lm.ccu_transfers_per_neuron != want_cycles - 1)
        report.error("RV-CONS-MUX", layer_loc(l),
                     "mux_cycles/ccu_transfers (" +
                         std::to_string(lm.mux_cycles) + "/" +
                         std::to_string(lm.ccu_transfers_per_neuron) +
                         ") do not derive from mux degree " +
                         std::to_string(lm.mux_degree));
    }
    if (lm.mca_count > 0) {
      const double want_util =
          static_cast<double>(lm.synapses) /
          (static_cast<double>(lm.mca_count) * static_cast<double>(N * N));
      if (!close(lm.utilization, want_util, options.tolerance))
        report.error("RV-CONS-UTILIZATION", layer_loc(l),
                     "stored utilisation does not equal synapses / (MCAs * "
                     "N^2)");
    }
    sum_mcas += lm.mca_count;
    sum_synapses += lm.synapses;
    max_mpe_end = std::max(max_mpe_end, lm.first_mpe + lm.mpe_count);
    max_nc = std::max(max_nc, lm.last_nc);
  }

  if (!m.layers.empty()) {
    if (m.total_mcas != sum_mcas)
      report.error("RV-CONS-TOTALS", "program",
                   "total_mcas " + std::to_string(m.total_mcas) +
                       " != per-layer sum " + std::to_string(sum_mcas));
    if (m.total_mpes < max_mpe_end)
      report.error("RV-CONS-TOTALS", "program",
                   "total_mpes " + std::to_string(m.total_mpes) +
                       " < the last placed mPE " + std::to_string(max_mpe_end));
    if (m.total_neurocells != max_nc + 1)
      report.error("RV-CONS-TOTALS", "program",
                   "total_neurocells " + std::to_string(m.total_neurocells) +
                       " != last placed NeuroCell + 1 = " +
                       std::to_string(max_nc + 1));
    if (m.total_mcas > 0) {
      const double want_util = static_cast<double>(sum_synapses) /
                               static_cast<double>(sum_cells);
      if (!close(m.utilization, want_util, options.tolerance))
        report.error("RV-CONS-UTILIZATION", "program",
                     "whole-chip utilisation does not equal total synapses / "
                     "total crosspoints (per-layer N^2)");
    }
  }

  // Cost totals must re-derive from the mapping and the route table.
  if (p.cost.total_mcas != m.total_mcas ||
      p.cost.total_neurocells != m.total_neurocells)
    report.error("RV-CONS-COST", "cost",
                 "cost totals (MCAs " + std::to_string(p.cost.total_mcas) +
                     ", NeuroCells " + std::to_string(p.cost.total_neurocells) +
                     ") do not match the mapping");
  if (!close(p.cost.utilization, m.utilization, options.tolerance))
    report.error("RV-CONS-COST", "cost",
                 "cost utilisation does not match the mapping's");
  if (!p.routes.empty()) {
    std::size_t bus_routes = 0;
    for (const noc::Route& r : p.routes.boundaries)
      if (r.uses_bus) ++bus_routes;
    if (p.cost.bus_boundaries != bus_routes)
      report.error("RV-CONS-COST", "cost",
                   "cost records " + std::to_string(p.cost.bus_boundaries) +
                       " bus boundaries but the route table carries " +
                       std::to_string(bus_routes) + " bus routes");
  }

  // Full cost-model re-derivation needs the topology (activity and layer
  // shapes): the stored energy/cycles must be what the analytic model
  // computes from the stored mapping + route table today.
  if (options.topology != nullptr &&
      options.topology->layer_count() == m.layers.size() &&
      p.routes.size() == m.layers.size() + 1) {
    if (p.cost.activity <= 0.0 || p.cost.activity > 1.0) {
      report.error("RV-CONS-COST-MODEL", "cost",
                   "recorded activity " + std::to_string(p.cost.activity) +
                       " outside (0, 1]");
    } else {
      try {
        const compile::CostEstimate want = compile::estimate_cost(
            *options.topology, m, p.routes, p.cost.activity);
        if (!close(p.cost.energy_pj_per_step, want.energy_pj_per_step,
                   options.tolerance) ||
            !close(p.cost.cycles_per_step, want.cycles_per_step,
                   options.tolerance))
          report.error("RV-CONS-COST-MODEL", "cost",
                       "stored energy/cycles do not re-derive from the "
                       "mapping + route table (stale cost model?)");
      } catch (const Error& e) {
        report.error("RV-CONS-COST-MODEL", "cost",
                     std::string("cost re-derivation failed: ") + e.what());
      }
    }
  }

  // Utilisation report rows mirror the mapping.
  if (p.report.size() != m.layers.size()) {
    report.error("RV-CONS-REPORT", "report",
                 "utilisation report has " + std::to_string(p.report.size()) +
                     " rows for " + std::to_string(m.layers.size()) +
                     " layers");
  } else {
    for (std::size_t l = 0; l < p.report.size(); ++l) {
      const compile::LayerUtilization& u = p.report[l];
      const LayerMapping& lm = m.layers[l];
      if (u.layer != l || u.mcas != lm.mca_count || u.mpes != lm.mpe_count ||
          u.synapses != lm.synapses ||
          !close(u.utilization, lm.utilization, options.tolerance))
        report.error("RV-CONS-REPORT", layer_loc(l),
                     "utilisation report row does not match the mapping");
    }
  }
}

// ---------------------------------------------------------------- topology --

/// Synapse conservation against the network the program claims to
/// implement (only with a supplied Topology).
void topology_pass(const CompiledProgram& p, const VerifyOptions& options,
                   VerifyReport& report) {
  if (options.topology == nullptr) return;
  const snn::Topology& topo = *options.topology;
  if (p.mapping.layers.size() != topo.layer_count()) {
    report.error("RV-TOPO-LAYERS", "program",
                 "program maps " + std::to_string(p.mapping.layers.size()) +
                     " layers but topology \"" + topo.name() + "\" has " +
                     std::to_string(topo.layer_count()));
    return;
  }
  if (!p.topology_summary.empty() &&
      p.topology_summary != fold_token(topo.summary()))
    report.error("RV-TOPO-SUMMARY", "program",
                 "program was compiled for topology " + p.topology_summary +
                     ", not " + topo.summary());
  for (std::size_t l = 0; l < topo.layer_count(); ++l) {
    if (p.mapping.layers[l].synapses != topo.layers()[l].synapses)
      report.error("RV-TOPO-SYNAPSES", layer_loc(l),
                   "program places " +
                       std::to_string(p.mapping.layers[l].synapses) +
                       " synapses, the topology has " +
                       std::to_string(topo.layers()[l].synapses));
  }
}

// ------------------------------------------------------------------ faults --

/// Device-fault invariants (only with faults enabled on the bound
/// configuration): the placement must avoid every failed mPE when the
/// repair pass claims to have run (RV-FAULT-FAILED-MPE is a warning
/// without repair — the program knowingly deploys onto bad silicon),
/// and the repaired placement must fit the chip's NeuroCell budget
/// (RV-FAULT-CAPACITY).  The health map is re-derived here from the
/// config's (chip_seed, mca_id) streams — independently of the repair
/// pass — so a buggy repair cannot vouch for itself.
void faults_pass(const CompiledProgram& p, const VerifyOptions&,
                 VerifyReport& report) {
  const Mapping& m = p.mapping;
  const tech::FaultConfig& fc = m.config.faults;
  if (!fc.enabled) return;
  try {
    fc.validate();
  } catch (const Error& e) {
    report.error("RV-FAULT-CONFIG", "config", e.what());
    return;
  }
  const tech::FaultModel model(fc, m.config.mca_size);
  const std::size_t per_mpe = m.config.mcas_per_mpe;
  for (std::size_t l = 0; l < m.layers.size(); ++l) {
    const LayerMapping& lm = m.layers[l];
    for (std::size_t mpe = lm.first_mpe; mpe < lm.first_mpe + lm.mpe_count;
         ++mpe) {
      bool failed = false;
      for (std::size_t slot = 0; slot < per_mpe; ++slot)
        if (model.mca_failed(mpe * per_mpe + slot)) {
          failed = true;
          break;
        }
      if (!failed) continue;
      const std::string msg =
          "layer occupies failed mPE " + std::to_string(mpe) +
          " (stuck density over " + std::to_string(fc.failed_density) +
          " on chip_seed " + std::to_string(fc.chip_seed) + ")";
      if (fc.repair)
        report.error("RV-FAULT-FAILED-MPE", layer_loc(l), msg);
      else
        report.warning("RV-FAULT-FAILED-MPE", layer_loc(l), msg);
    }
  }
  if (fc.chip_neurocells > 0 && m.total_neurocells > fc.chip_neurocells)
    report.error("RV-FAULT-CAPACITY", "program",
                 "placement spans " + std::to_string(m.total_neurocells) +
                     " NeuroCells but the chip instance has only " +
                     std::to_string(fc.chip_neurocells));
}

}  // namespace

const std::vector<VerifyPass>& verify_passes() {
  static const std::vector<VerifyPass> passes = {
      {"structure", structure_pass},
      {"routing", routing_pass},
      {"capacity", capacity_pass},
      {"consistency", consistency_pass},
      {"topology", topology_pass},
      {"faults", faults_pass},
  };
  return passes;
}

VerifyReport verify_program(const compile::CompiledProgram& program,
                            const VerifyOptions& options) {
  VerifyReport report;
  for (const VerifyPass& pass : verify_passes())
    pass.run(program, options, report);
  return report;
}

VerifyReport verify_blob(const std::string& bytes,
                         const core::ResparcConfig& config) {
  VerifyReport report;
  compile::CompiledProgram program;
  try {
    std::istringstream is(bytes);
    program = compile::CompiledProgram::parse(is, config);
  } catch (const Error& e) {
    report.error(e.code().empty() ? "RV-BLOB-MALFORMED" : e.code(), "blob",
                 e.what());
    return report;
  }

  report = verify_program(program);

  // Round-trip: serialize → parse → serialize must be bit-identical (and
  // the intermediate must parse with no trailing bytes).
  try {
    std::ostringstream first;
    program.save(first);
    std::istringstream again(first.str());
    const compile::CompiledProgram reparsed =
        compile::CompiledProgram::parse(again, config);
    std::ostringstream second;
    reparsed.save(second);
    if (first.str() != second.str())
      report.error("RV-BLOB-ROUNDTRIP", "blob",
                   "re-serialized program is not bit-identical after a "
                   "parse round trip");
  } catch (const Error& e) {
    report.error("RV-BLOB-ROUNDTRIP", "blob",
                 std::string("round-trip parse failed: ") + e.what());
  }
  return report;
}

namespace {

/// Scans the blob's header tokens for the recorded fingerprint without
/// binding to a configuration.
std::optional<std::uint64_t> recorded_fingerprint(const std::string& bytes) {
  std::istringstream is(bytes);
  std::string tok;
  while (is >> tok) {
    if (tok != "fingerprint") continue;
    std::uint64_t fp = 0;
    if (is >> fp) return fp;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

VerifyReport verify_blob_auto(const std::string& bytes, std::size_t mca_hint) {
  std::vector<core::ResparcConfig> candidates;
  if (mca_hint != 0) {
    candidates.push_back(core::config_with_mca(mca_hint));
  } else {
    candidates.push_back(core::default_config());
    for (std::size_t n : {32u, 64u, 128u, 256u})
      candidates.push_back(core::config_with_mca(n));
  }

  const std::optional<std::uint64_t> fp = recorded_fingerprint(bytes);
  if (fp.has_value()) {
    for (const core::ResparcConfig& config : candidates)
      if (config.fingerprint() == *fp) return verify_blob(bytes, config);
  }
  // No candidate matches (or no fingerprint found): bind to the first
  // candidate anyway so parse errors still surface with real context.
  VerifyReport report = verify_blob(bytes, candidates.front());
  if (fp.has_value() && !report.has("RV-CONS-FINGERPRINT"))
    report.error("RV-CONS-FINGERPRINT", "blob",
                 "program was compiled for a configuration outside the "
                 "standard sweep (recorded fingerprint " +
                     std::to_string(*fp) + "); pass --mca to pin one");
  return report;
}

}  // namespace resparc::verify
