// Structured findings of the static program verifier (docs/verification.md).
//
// Every check in src/verify reports through a Diagnostic — a stable
// machine-readable code ("RV-..."), a severity, the program location the
// finding anchors to ("layer 3", "boundary 2 route") and a human message.
// A VerifyReport collects the findings of one verification run; callers
// either inspect it (tools/resparc-verify pretty-prints or JSON-dumps it)
// or call raise_if_errors() to turn Error-severity findings into a thrown
// VerifyError whose code() is the first error's diagnostic code — the
// contract tests assert on codes, never on message substrings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace resparc::verify {

/// How bad a finding is.  Errors make a program unloadable/unemittable;
/// warnings flag suspicious-but-legal shapes (e.g. a transfer burst
/// deeper than the switch FIFOs).
enum class Severity {
  kWarning,  ///< legal but suspicious; never blocks a program
  kError,    ///< invariant violation; compiler/loader refuse the program
};

/// "warning" / "error".
std::string to_string(Severity severity);

/// One finding of the verifier.
struct Diagnostic {
  std::string code;      ///< stable catalog code (docs/verification.md)
  Severity severity = Severity::kError;  ///< how bad the finding is
  std::string location;  ///< where in the program ("layer 3", "boundary 0")
  std::string message;   ///< human-readable explanation

  /// "error RV-XXX at <location>: <message>" — one line, no trailing \n.
  std::string to_string() const;
};

/// Thrown by VerifyReport::raise_if_errors(); code() is the diagnostic
/// code of the first Error-severity finding.
class VerifyError : public Error {
 public:
  VerifyError(const std::string& what, std::string code)
      : Error("verify error: " + what, std::move(code)) {}
};

/// The collected findings of one verification run.
class VerifyReport {
 public:
  /// Records a finding.
  void add(Diagnostic diagnostic);
  /// Shorthand: records an Error-severity finding.
  void error(std::string code, std::string location, std::string message);
  /// Shorthand: records a Warning-severity finding.
  void warning(std::string code, std::string location, std::string message);

  /// Every finding, in emission order (passes run in a fixed order, so
  /// the order is deterministic).
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  /// Error-severity findings recorded so far.
  std::size_t error_count() const { return errors_; }
  /// Warning-severity findings recorded so far.
  std::size_t warning_count() const { return diagnostics_.size() - errors_; }
  /// True when no Error-severity finding was recorded (warnings allowed).
  bool ok() const { return errors_ == 0; }
  /// True when any finding carries `code` (test helper).
  bool has(const std::string& code) const;

  /// Human-readable dump: one line per finding plus a summary line.
  std::string to_string() const;
  /// JSON dump: {"ok":bool,"errors":N,"warnings":N,"diagnostics":[...]}.
  std::string to_json() const;

  /// Throws VerifyError when the report holds any Error-severity finding;
  /// the exception's code() is the first error's code and the message
  /// lists every error (prefixed with `context`).
  void raise_if_errors(const std::string& context) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
};

}  // namespace resparc::verify
