// Pass-based static verifier over Mapping + CompiledProgram.
//
// The compiler's passes (legalize→tile→place→route→cost) are supposed to
// establish a set of invariants — every layer tiled and placed, every
// boundary routed, capacities respected, the analytic cost totals derived
// from the route table actually emitted.  Nothing used to check them
// independently: correctness rested on the passes being bug-free.  This
// verifier re-derives the invariants from first principles, *without
// executing anything*, and reports violations as structured Diagnostics
// (docs/verification.md catalogs the codes):
//
//   structure    every layer tiled/placed, route table covers every
//                boundary, route endpoints inside placed cells
//   routing      H-tree internals (lca_height / tree_hops / mesh_hops)
//                re-derived from the placement; src_span/fanout bounded
//   capacity     per-MCA synapse count <= N^2, per-mPE/NeuroCell
//                occupancy, switch FIFO burst depth (warning)
//   consistency  synapse/MCA sums, utilisation ratios, cost-model totals
//                re-derivable from the route table, fingerprint matches
//                the bound configuration
//   topology     (only when a Topology is supplied) per-layer synapse
//                conservation against the network the program claims
//   faults       (only with fault injection enabled) the placement
//                avoids every failed mPE when repair ran (warning
//                without repair) and fits the chip's NeuroCell budget
//                (RV-FAULT-*, docs/reliability.md)
//
// It is strategy-independent by design: any future MappingStrategy (ILP,
// simulated annealing, beam search — ROADMAP item 1) must produce
// programs this verifier accepts.  compile::Compiler runs it as a
// mandatory post-pass, CompiledProgram::load runs it on every
// deserialized blob, and tools/resparc-verify lints blobs from disk.
#pragma once

#include <string>
#include <vector>

#include "compile/program.hpp"
#include "core/config.hpp"
#include "snn/topology.hpp"
#include "verify/diagnostic.hpp"

namespace resparc::verify {

/// Knobs of one verification run.
struct VerifyOptions {
  /// When set, topology-dependent checks run too (synapse conservation,
  /// cost-model re-derivation, FIFO burst estimates).  The blob-lint
  /// path (resparc-verify) has no topology and runs without them.
  const snn::Topology* topology = nullptr;
  /// Relative tolerance for re-derived floating-point quantities
  /// (utilisation ratios, cost-model energy/cycles).  Stored values are
  /// hexfloat round-tripped, so in-process re-derivation is exact; the
  /// tolerance absorbs cross-platform libm differences only.
  double tolerance = 1e-9;
};

/// One named verification pass (runs all its checks, never throws).
struct VerifyPass {
  std::string name;  ///< "structure" / "routing" / "capacity" / ...
  void (*run)(const compile::CompiledProgram&, const VerifyOptions&,
              VerifyReport&);
};

/// The fixed pass pipeline, in execution order.  Exposed so tools can
/// list passes and tests can run one pass in isolation.
const std::vector<VerifyPass>& verify_passes();

/// Runs every pass over `program` and returns the collected findings.
/// Never throws on findings — inspect the report or raise_if_errors().
VerifyReport verify_program(const compile::CompiledProgram& program,
                            const VerifyOptions& options = {});

/// Lints a serialized program: parses `bytes` bound to `config`
/// (malformed blobs and fingerprint mismatches become diagnostics, not
/// exceptions), runs verify_program on the result, and checks the blob
/// round-trips bit-exactly with no trailing bytes.
VerifyReport verify_blob(const std::string& bytes,
                         const core::ResparcConfig& config);

/// Config-free blob lint: recovers the recorded fingerprint from the
/// blob and tries the standard configurations (default plus the MCA
/// 32/64/128/256 sweep).  When none matches, the report carries a
/// RV-CONS-FINGERPRINT error.  `mca_hint` (non-zero) pins the sweep to
/// config_with_mca(mca_hint).
VerifyReport verify_blob_auto(const std::string& bytes,
                              std::size_t mca_hint = 0);

}  // namespace resparc::verify
