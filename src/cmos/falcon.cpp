#include "cmos/falcon.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tech/sram.hpp"

namespace resparc::cmos {

using snn::LayerKind;

void FalconConfig::validate() const {
  require(neuron_units >= 1, "baseline needs at least one NU");
  require(fifo_depth >= 1, "FIFO depth must be positive");
  require(nu_width_bits >= 1 && nu_width_bits <= 64, "NU width in [1,64]");
  require(membrane_bits >= nu_width_bits, "membrane narrower than NU width");
  require(weight_bits >= 1 && weight_bits <= 16, "weight bits in [1,16]");
  technology.validate();
}

BaselineMetrics baseline_metrics(const FalconConfig& config) {
  config.validate();
  const tech::DigitalCosts& d = config.technology.digital;
  BaselineMetrics m;
  m.nu_count = config.neuron_units;
  m.frequency_mhz = config.technology.baseline_clock_mhz;
  m.area_mm2 = static_cast<double>(config.neuron_units) * d.area_per_nu_mm2 +
               d.area_baseline_ctrl_mm2;
  m.gate_count = static_cast<double>(config.neuron_units) * d.gates_per_nu +
                 d.gates_baseline_ctrl;
  // Peak dynamic power: every NU retires one synop step per cycle (mac +
  // operand staging), the weight port streams one word per cycle from a
  // 32 KB reference bank, and the input FIFOs move two nibbles per NU.
  const tech::SramModel ref_bank{{.capacity_bytes = 32 * 1024, .word_bits = 64}};
  const double fifo_pj = static_cast<double>(config.neuron_units) * 2.0 *
                         static_cast<double>(config.nu_width_bits) *
                         d.buffer_bit_pj;
  const double per_cycle_pj =
      static_cast<double>(config.neuron_units) * (d.mac4_pj + d.nu_overhead_pj) +
      ref_bank.read_energy_pj() + fifo_pj;
  m.power_mw = per_cycle_pj * m.frequency_mhz * 1e-3;
  return m;
}

namespace {

std::size_t bits_to_bytes(std::size_t bits) { return (bits + 7) / 8; }

}  // namespace

FalconAccelerator::FalconAccelerator(const snn::Topology& topology,
                                     FalconConfig config)
    : topology_(topology), config_(std::move(config)) {
  config_.validate();
  // Weight memory: unique weights at the configured precision (conv
  // kernels are shared; dense rows are not).
  weight_bytes_ = bits_to_bytes(topology_.unique_weight_count() *
                                static_cast<std::size_t>(config_.weight_bits));
  weight_bytes_ = std::max<std::size_t>(weight_bytes_, 1024);
  // State memory: membranes (16 bit each) + double-buffered spike vectors.
  state_bytes_ = bits_to_bytes(topology_.neuron_count(false) *
                                   config_.membrane_bits +
                               2 * topology_.neuron_count(true));
  state_bytes_ = std::max<std::size_t>(state_bytes_, 1024);
}

CmosReport FalconAccelerator::run(const snn::SpikeTrace& trace) const {
  require(trace.layer_count() == topology_.layer_count() + 1,
          "baseline: trace does not match topology");
  const std::size_t T = trace.timesteps();
  require(T > 0, "baseline: empty trace");

  const tech::DigitalCosts& d = config_.technology.digital;
  const tech::SramModel weight_sram{
      {.capacity_bytes = weight_bytes_, .word_bits = 64}};
  const tech::SramModel state_sram{
      {.capacity_bytes = state_bytes_, .word_bits = 64}};

  CmosReport report;
  report.classifications = 1;
  report.clock_mhz = config_.technology.baseline_clock_mhz;

  const double wbits = static_cast<double>(config_.weight_bits);
  const double weights_per_word = 64.0 / wbits;
  // MAC energy scales with operand width relative to the 4-bit reference.
  const double mac_pj = d.mac4_pj * wbits / 4.0;
  const double synop_pj = mac_pj + d.nu_overhead_pj;
  const double cycles_per_synop = config_.cycles_per_synop();

  double weight_words = 0.0;
  double state_words = 0.0;
  double synops = 0.0;
  double skipped = 0.0;
  double cycles = 0.0;

  for (std::size_t step = 0; step < T; ++step) {
    double step_cycles = 0.0;
    for (std::size_t l = 0; l < topology_.layer_count(); ++l) {
      const auto& li = topology_.layers()[l];
      const auto& in_vec = trace.layers[l][step];
      const std::size_t active =
          config_.event_driven ? in_vec.count() : in_vec.size();
      if (config_.event_driven)
        skipped += static_cast<double>(in_vec.size() - in_vec.count()) *
                   static_cast<double>(li.synapses) /
                   static_cast<double>(li.in_shape.size());

      // Average fan-out per input neuron of this layer.
      const double fanout = static_cast<double>(li.synapses) /
                            static_cast<double>(li.in_shape.size());
      const double layer_synops = static_cast<double>(active) * fanout;
      synops += layer_synops;

      // Weight traffic: dense layers stream the fan-out row per active
      // input; conv kernels are fetched once per timestep (then reused
      // across positions via the weight FIFO); pool layers have no
      // weights.
      double layer_weight_words = 0.0;
      switch (li.spec.kind) {
        case LayerKind::kDense:
          layer_weight_words =
              static_cast<double>(active) *
              std::ceil(static_cast<double>(li.spec.units) / weights_per_word);
          break;
        case LayerKind::kConv:
          if (active > 0)
            layer_weight_words = std::ceil(
                static_cast<double>(li.unique_weights) / weights_per_word);
          break;
        case LayerKind::kAvgPool:
          layer_weight_words = 0.0;
          break;
      }
      weight_words += layer_weight_words;

      // Spike vector traffic: read the input spikes, write the outputs.
      const double spike_words =
          static_cast<double>(in_vec.word_count()) +
          static_cast<double>(trace.layers[l + 1][step].word_count());
      state_words += spike_words;

      // Throughput: NUs retire synops; the single weight port can stall
      // them; event-driven lookup costs one cycle per active input.
      const double nu_cycles = layer_synops * cycles_per_synop /
                               static_cast<double>(config_.neuron_units);
      step_cycles += std::max(nu_cycles, layer_weight_words) +
                     static_cast<double>(active);
    }
    cycles += step_cycles;
  }

  // Membrane spill/fill once per neuron per classification (output-
  // stationary across timesteps).
  state_words += 2.0 *
                 std::ceil(static_cast<double>(topology_.neuron_count(false)) *
                           static_cast<double>(config_.membrane_bits) / 64.0);

  report.events.synops = static_cast<std::size_t>(synops);
  report.events.synops_skipped = static_cast<std::size_t>(skipped);
  report.events.weight_words = static_cast<std::size_t>(weight_words);
  report.events.state_words = static_cast<std::size_t>(state_words);
  report.cycles = cycles;

  // -- energy ---------------------------------------------------------------
  report.energy.core_pj =
      synops * synop_pj +
      // FIFO staging of every fetched weight word and spike word.
      (weight_words + state_words) * 64.0 * d.buffer_bit_pj;
  report.energy.memory_access_pj =
      weight_words * weight_sram.read_energy_pj() +
      state_words * state_sram.read_energy_pj();
  const double leak_w = weight_sram.leakage_w() + state_sram.leakage_w() +
                        d.core_leakage_w;
  report.energy.memory_leakage_pj =
      leak_w * report.latency_ns() * 1e3;  // W * ns -> pJ

  return report;
}

CmosReport FalconAccelerator::run_all(
    std::span<const snn::SpikeTrace> traces) const {
  require(!traces.empty(), "baseline: no traces");
  CmosReport total;
  for (const auto& trace : traces) {
    const CmosReport r = run(trace);
    total.energy += r.energy;
    total.events += r.events;
    total.cycles += r.cycles;
    total.clock_mhz = r.clock_mhz;
    total.classifications += r.classifications;
  }
  const double n = static_cast<double>(total.classifications);
  total.energy /= n;
  total.cycles /= n;
  return total;
}

}  // namespace resparc::cmos
