// Digital CMOS baseline accelerator (paper section 4.1, Fig. 9).
//
// Implements the FALCON-style SNN dataflow the paper aggressively
// optimises for its comparison:
//   * 16 neuron units (NUs) with 4-bit datapaths fed by input FIFOs and a
//     weight FIFO (Fig. 9's parameters),
//   * event-driven skip: silent input neurons cost no fetch and no compute,
//   * weight memory in SRAM sized to the network at the configured weight
//     precision; *dense* layers stream their fan-out row per active input
//     (no reuse), *conv* layers fetch kernels once per timestep and reuse
//     them across spatial positions (the classic reuse distinction that
//     makes MLPs memory-bound and CNNs compute-bound — Fig. 12 b/d),
//   * membrane potentials resident in NU registers across a presentation
//     (output-stationary over time), with one SRAM spill/fill per neuron
//     per classification.
//
// Energy is split into the paper's Fig. 12(b/d) buckets: Core (buffers,
// compute, control), Memory Access, Memory Leakage.
#pragma once

#include <cstddef>
#include <span>

#include "snn/topology.hpp"
#include "snn/trace.hpp"
#include "tech/technology.hpp"

namespace resparc::cmos {

/// Micro-architectural parameters of the baseline (paper Fig. 9).
struct FalconConfig {
  std::size_t neuron_units = 16;    ///< parallel NUs
  std::size_t fifo_depth = 32;      ///< input/weight FIFO depth (flits)
  std::size_t nu_width_bits = 4;    ///< NU datapath width; membranes are
                                    ///< 16-bit, so one synop = 16/width cycles
  std::size_t membrane_bits = 16;   ///< accumulator precision
  int weight_bits = 4;              ///< stored weight precision
  bool event_driven = true;         ///< skip silent inputs
  tech::Technology technology = tech::default_technology();

  /// Cycles one synaptic accumulation occupies an NU.
  double cycles_per_synop() const {
    return static_cast<double>(membrane_bits) /
           static_cast<double>(nu_width_bits);
  }

  void validate() const;
};

/// Energy breakdown in the paper's CMOS buckets (pJ per classification).
struct CmosEnergy {
  double core_pj = 0.0;            ///< buffers + compute + control
  double memory_access_pj = 0.0;   ///< SRAM reads/writes
  double memory_leakage_pj = 0.0;  ///< SRAM standby over the run
  double total_pj() const { return core_pj + memory_access_pj + memory_leakage_pj; }

  CmosEnergy& operator+=(const CmosEnergy& o) {
    core_pj += o.core_pj;
    memory_access_pj += o.memory_access_pj;
    memory_leakage_pj += o.memory_leakage_pj;
    return *this;
  }
  CmosEnergy& operator/=(double n) {
    core_pj /= n;
    memory_access_pj /= n;
    memory_leakage_pj /= n;
    return *this;
  }
};

/// Event counters of one baseline run.
struct CmosEvents {
  std::size_t synops = 0;          ///< synaptic accumulations performed
  std::size_t synops_skipped = 0;  ///< elided by event-driven skip
  std::size_t weight_words = 0;    ///< 64-bit weight fetches
  std::size_t state_words = 0;     ///< membrane spill/fill + spike words
  CmosEvents& operator+=(const CmosEvents& o) {
    synops += o.synops;
    synops_skipped += o.synops_skipped;
    weight_words += o.weight_words;
    state_words += o.state_words;
    return *this;
  }
};

/// Result of replaying traces on the baseline.
struct CmosReport {
  CmosEnergy energy;     ///< per classification (averaged)
  CmosEvents events;     ///< summed
  double cycles = 0.0;   ///< per classification (averaged)
  double clock_mhz = 0.0;
  std::size_t classifications = 0;

  double latency_ns() const { return cycles * 1e3 / clock_mhz; }
  double throughput_hz() const {
    const double ns = latency_ns();
    return ns > 0.0 ? 1e9 / ns : 0.0;
  }
};

/// Implementation metrics table (paper Fig. 9).
struct BaselineMetrics {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double gate_count = 0.0;
  double frequency_mhz = 0.0;
  std::size_t nu_count = 0;
};

/// Computes the Fig. 9 metric roll-up.
BaselineMetrics baseline_metrics(const FalconConfig& config);

/// The CMOS baseline accelerator model.
class FalconAccelerator {
 public:
  /// Binds the accelerator to a topology (sizes the weight SRAM).
  FalconAccelerator(const snn::Topology& topology, FalconConfig config);

  const FalconConfig& config() const { return config_; }

  /// Bytes of SRAM holding weights at the configured precision.
  std::size_t weight_memory_bytes() const { return weight_bytes_; }
  /// Bytes of SRAM holding neuron state and spike vectors.
  std::size_t state_memory_bytes() const { return state_bytes_; }

  /// Replays one presentation trace.
  CmosReport run(const snn::SpikeTrace& trace) const;

  /// Replays many; energy/cycles averaged per classification.
  CmosReport run_all(std::span<const snn::SpikeTrace> traces) const;

 private:
  const snn::Topology& topology_;
  FalconConfig config_;
  std::size_t weight_bytes_ = 0;
  std::size_t state_bytes_ = 0;
};

}  // namespace resparc::cmos
