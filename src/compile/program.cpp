#include "compile/program.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <ios>

#include "verify/verifier.hpp"

namespace resparc::compile {

namespace {

constexpr const char* kMagic = "resparc-compiled-program";
// v3 added the per-layer MCA size (heterogeneous chips from the search
// strategies; 0 = inherit config.mca_size).  v2 added the per-boundary
// Ml-NoC route table.  Older artifacts are rejected — recompiling is
// cheap and both fields are part of the contract the executor runs on.
constexpr int kVersion = 3;

void put(std::ostream& os, double v) { os << std::hexfloat << v << std::defaultfloat; }

/// The format is whitespace-delimited, so free-text fields (topology names)
/// are stored with whitespace folded to '-'.
std::string token(const std::string& s) {
  std::string out = s.empty() ? std::string("-") : s;
  for (char& c : out)
    if (std::isspace(static_cast<unsigned char>(c))) c = '-';
  return out;
}

/// Stable diagnostic code of every "the stream is not a well-formed v2
/// blob" failure (docs/verification.md).
constexpr const char* kMalformed = "RV-BLOB-MALFORMED";

/// Reads one whitespace-delimited token and checks it against `expect`.
void expect_token(std::istream& is, const char* expect) {
  std::string tok;
  if (!(is >> tok) || tok != expect)
    throw CompileError("expected \"" + std::string(expect) + "\", got \"" +
                           tok + "\"",
                       kMalformed);
}

template <typename T>
T read_value(std::istream& is, const char* field) {
  T v{};
  if (!(is >> v))
    throw CompileError("malformed field \"" + std::string(field) + "\"",
                       kMalformed);
  return v;
}

/// Reads a container count and bounds it, so a corrupt file fails as
/// CompileError rather than bad_alloc.
std::size_t read_count(std::istream& is, const char* field, std::size_t max) {
  const auto v = read_value<std::size_t>(is, field);
  if (v > max)
    throw CompileError("implausible count " + std::to_string(v) +
                           " in field \"" + std::string(field) + "\"",
                       kMalformed);
  return v;
}

/// Pre-allocation for a parsed count: capped so even the largest admissible
/// count cannot trigger a huge up-front reserve — a lying count then fails
/// at the first missing token, after only incremental growth.
std::size_t reserve_hint(std::size_t count) {
  return std::min<std::size_t>(count, 4096);
}

double read_double(std::istream& is, const char* field) {
  // std::hexfloat extraction is unreliable across standard libraries, so
  // hexfloats are parsed via strtod from a token.
  std::string tok;
  if (!(is >> tok))
    throw CompileError("malformed field \"" + std::string(field) + "\"",
                       kMalformed);
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0')
    throw CompileError("malformed double \"" + tok + "\" in field \"" +
                           std::string(field) + "\"",
                       kMalformed);
  return v;
}

}  // namespace

std::vector<LayerUtilization> utilization_report(const snn::Topology& topology,
                                                 const core::Mapping& mapping) {
  require(topology.layer_count() == mapping.layers.size(),
          "utilization_report: mapping does not match topology");
  std::vector<LayerUtilization> report;
  report.reserve(mapping.layers.size());
  for (std::size_t l = 0; l < mapping.layers.size(); ++l) {
    const core::LayerMapping& lm = mapping.layers[l];
    LayerUtilization u;
    u.layer = l;
    u.kind = snn::to_string(topology.layers()[l].spec.kind);
    u.mcas = lm.mca_count;
    u.mpes = lm.mpe_count;
    u.synapses = lm.synapses;
    u.utilization = lm.utilization;
    report.push_back(std::move(u));
  }
  return report;
}

void CompiledProgram::save(std::ostream& os) const {
  os << kMagic << " v" << kVersion << "\n";
  os << "strategy " << token(strategy) << "\n";
  os << "topology " << token(topology_name) << " " << token(topology_summary)
     << "\n";
  os << "fingerprint " << config_fingerprint << "\n";

  os << "cost ";
  put(os, cost.energy_pj_per_step);
  os << " ";
  put(os, cost.cycles_per_step);
  os << " ";
  put(os, cost.utilization);
  os << " " << cost.bus_boundaries << " " << cost.total_mcas << " "
     << cost.total_neurocells << " ";
  put(os, cost.activity);
  os << "\n";

  os << "totals " << mapping.total_mcas << " " << mapping.total_mpes << " "
     << mapping.total_neurocells << " ";
  put(os, mapping.utilization);
  os << "\n";

  os << "layers " << mapping.layers.size() << "\n";
  for (const core::LayerMapping& lm : mapping.layers) {
    os << "layer " << lm.layer << " " << lm.mca_count << " " << lm.mpe_count
       << " " << lm.mux_degree << " " << lm.mux_cycles << " "
       << lm.ccu_transfers_per_neuron << " " << lm.synapses << " "
       << lm.first_mpe << " " << lm.first_nc << " " << lm.last_nc << " "
       << lm.mca_size << " ";
    put(os, lm.utilization);
    os << "\n";
    os << "groups " << lm.groups.size() << "\n";
    for (const core::McaGroup& g : lm.groups) {
      os << "group " << static_cast<int>(g.slice.kind) << " " << g.slice.begin
         << " " << g.slice.end << " " << g.slice.y0 << " " << g.slice.y1
         << " " << g.slice.x0 << " " << g.slice.x1 << " " << g.mca_count
         << " " << g.rows_used << " " << g.cols_used << " " << g.synapses
         << "\n";
    }
  }

  os << "routes " << routes.size() << "\n";
  for (const noc::Route& r : routes.boundaries) {
    os << "route " << r.boundary << " " << r.src_nc << " " << r.dst_nc_first
       << " " << r.dst_nc_last << " " << (r.uses_bus ? 1 : 0) << " "
       << r.mesh_hops << " " << r.tree_hops << " " << r.lca_height << " "
       << r.src_span << "\n";
  }

  os << "report " << report.size() << "\n";
  for (const LayerUtilization& u : report) {
    os << "u " << u.layer << " " << u.kind << " " << u.mcas << " " << u.mpes
       << " " << u.synapses << " ";
    put(os, u.utilization);
    os << "\n";
  }
}

bool CompiledProgram::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

CompiledProgram CompiledProgram::parse(std::istream& is,
                                       const core::ResparcConfig& config) {
  CompiledProgram p;

  expect_token(is, kMagic);
  std::string version;
  // Built as "v" + number in two appends: the one-expression
  // `"v" + std::to_string(...)` makes GCC 12's -Wrestrict misfire under
  // -march=native inlining (a libstdc++ operator+ false positive that
  // would break the -Werror native-arch CI job).
  std::string expected_version("v");
  expected_version += std::to_string(kVersion);
  if (!(is >> version) || version != expected_version)
    throw CompileError("unsupported program version \"" + version + "\"",
                       "RV-BLOB-VERSION");

  expect_token(is, "strategy");
  p.strategy = read_value<std::string>(is, "strategy");
  expect_token(is, "topology");
  p.topology_name = read_value<std::string>(is, "topology name");
  p.topology_summary = read_value<std::string>(is, "topology summary");
  expect_token(is, "fingerprint");
  p.config_fingerprint = read_value<std::uint64_t>(is, "fingerprint");
  if (p.config_fingerprint != config.fingerprint())
    throw CompileError(
        "config fingerprint mismatch: program was compiled for a different "
        "configuration (recorded " +
            std::to_string(p.config_fingerprint) + ", current " +
            std::to_string(config.fingerprint()) + ")",
        "RV-CONS-FINGERPRINT");

  expect_token(is, "cost");
  p.cost.energy_pj_per_step = read_double(is, "cost.energy");
  p.cost.cycles_per_step = read_double(is, "cost.cycles");
  p.cost.utilization = read_double(is, "cost.utilization");
  p.cost.bus_boundaries = read_value<std::size_t>(is, "cost.bus_boundaries");
  p.cost.total_mcas = read_value<std::size_t>(is, "cost.total_mcas");
  p.cost.total_neurocells = read_value<std::size_t>(is, "cost.total_neurocells");
  p.cost.activity = read_double(is, "cost.activity");

  expect_token(is, "totals");
  p.mapping.config = config;
  p.mapping.total_mcas = read_value<std::size_t>(is, "total_mcas");
  p.mapping.total_mpes = read_value<std::size_t>(is, "total_mpes");
  p.mapping.total_neurocells = read_value<std::size_t>(is, "total_neurocells");
  p.mapping.utilization = read_double(is, "utilization");

  expect_token(is, "layers");
  const std::size_t layers = read_count(is, "layer count", 1u << 20);
  p.mapping.layers.reserve(reserve_hint(layers));
  for (std::size_t l = 0; l < layers; ++l) {
    expect_token(is, "layer");
    core::LayerMapping lm;
    lm.layer = read_value<std::size_t>(is, "layer index");
    lm.mca_count = read_value<std::size_t>(is, "mca_count");
    lm.mpe_count = read_value<std::size_t>(is, "mpe_count");
    lm.mux_degree = read_value<std::size_t>(is, "mux_degree");
    lm.mux_cycles = read_value<std::size_t>(is, "mux_cycles");
    lm.ccu_transfers_per_neuron = read_value<std::size_t>(is, "ccu");
    lm.synapses = read_value<std::size_t>(is, "synapses");
    lm.first_mpe = read_value<std::size_t>(is, "first_mpe");
    lm.first_nc = read_value<std::size_t>(is, "first_nc");
    lm.last_nc = read_value<std::size_t>(is, "last_nc");
    lm.mca_size = read_value<std::size_t>(is, "layer mca_size");
    lm.utilization = read_double(is, "layer utilization");

    expect_token(is, "groups");
    const std::size_t groups = read_count(is, "group count", 1u << 20);
    lm.groups.reserve(reserve_hint(groups));
    for (std::size_t g = 0; g < groups; ++g) {
      expect_token(is, "group");
      core::McaGroup mg;
      const int kind = read_value<int>(is, "slice kind");
      if (kind != 0 && kind != 1)
        throw CompileError("invalid slice kind " + std::to_string(kind),
                           kMalformed);
      mg.slice.kind = static_cast<core::SliceKind>(kind);
      mg.slice.begin = read_value<std::size_t>(is, "slice begin");
      mg.slice.end = read_value<std::size_t>(is, "slice end");
      mg.slice.y0 = read_value<std::size_t>(is, "slice y0");
      mg.slice.y1 = read_value<std::size_t>(is, "slice y1");
      mg.slice.x0 = read_value<std::size_t>(is, "slice x0");
      mg.slice.x1 = read_value<std::size_t>(is, "slice x1");
      mg.mca_count = read_value<std::size_t>(is, "group mca_count");
      mg.rows_used = read_value<std::size_t>(is, "rows_used");
      mg.cols_used = read_value<std::size_t>(is, "cols_used");
      mg.synapses = read_value<std::size_t>(is, "group synapses");
      lm.groups.push_back(mg);
    }
    p.mapping.layers.push_back(std::move(lm));
  }

  expect_token(is, "routes");
  const std::size_t routes = read_count(is, "route count", 1u << 20);
  p.routes.boundaries.reserve(reserve_hint(routes));
  for (std::size_t r = 0; r < routes; ++r) {
    expect_token(is, "route");
    noc::Route route;
    route.boundary = read_value<std::size_t>(is, "route boundary");
    route.src_nc = read_value<std::size_t>(is, "route src_nc");
    route.dst_nc_first = read_value<std::size_t>(is, "route dst_nc_first");
    route.dst_nc_last = read_value<std::size_t>(is, "route dst_nc_last");
    const int bus = read_value<int>(is, "route uses_bus");
    if (bus != 0 && bus != 1)
      throw CompileError("invalid route uses_bus " + std::to_string(bus),
                         kMalformed);
    route.uses_bus = bus == 1;
    route.mesh_hops = read_value<std::size_t>(is, "route mesh_hops");
    route.tree_hops = read_value<std::size_t>(is, "route tree_hops");
    route.lca_height = read_value<std::size_t>(is, "route lca_height");
    route.src_span = read_value<std::size_t>(is, "route src_span");
    p.routes.boundaries.push_back(route);
  }

  expect_token(is, "report");
  const std::size_t rows = read_count(is, "report count", 1u << 20);
  p.report.reserve(reserve_hint(rows));
  for (std::size_t r = 0; r < rows; ++r) {
    expect_token(is, "u");
    LayerUtilization u;
    u.layer = read_value<std::size_t>(is, "report layer");
    u.kind = read_value<std::string>(is, "report kind");
    u.mcas = read_value<std::size_t>(is, "report mcas");
    u.mpes = read_value<std::size_t>(is, "report mpes");
    u.synapses = read_value<std::size_t>(is, "report synapses");
    u.utilization = read_double(is, "report utilization");
    p.report.push_back(std::move(u));
  }

  // The payload ends here: anything beyond whitespace is rejected, so a
  // blob with a second program (or garbage) appended cannot load as if
  // it were intact.
  is >> std::ws;
  if (is.peek() != std::istream::traits_type::eof())
    throw CompileError("trailing bytes after program payload",
                       "RV-BLOB-TRAILING");

  return p;
}

CompiledProgram CompiledProgram::load(std::istream& is,
                                      const core::ResparcConfig& config) {
  CompiledProgram p = parse(is, config);
  // Mandatory static verification: a deserialized program is checked
  // against every structural/capacity/consistency invariant before any
  // caller can execute on it (docs/verification.md).
  verify::verify_program(p).raise_if_errors("loaded program");
  return p;
}

CompiledProgram CompiledProgram::load_file(const std::string& path,
                                           const core::ResparcConfig& config) {
  std::ifstream in(path);
  if (!in) throw CompileError("cannot open \"" + path + "\"");
  return load(in, config);
}

void CompiledProgram::check_matches(const snn::Topology& topology) const {
  if (mapping.layers.size() != topology.layer_count())
    throw CompileError("program has " + std::to_string(mapping.layers.size()) +
                       " layers but topology \"" + topology.name() + "\" has " +
                       std::to_string(topology.layer_count()));
  if (!topology_summary.empty() && topology_summary != token(topology.summary()))
    throw CompileError("program was compiled for topology " +
                       topology_summary + ", not " + topology.summary());
  for (std::size_t l = 0; l < mapping.layers.size(); ++l) {
    if (mapping.layers[l].synapses != topology.layers()[l].synapses)
      throw CompileError("layer " + std::to_string(l) + " synapse mismatch: " +
                         std::to_string(mapping.layers[l].synapses) + " vs " +
                         std::to_string(topology.layers()[l].synapses));
  }
  if (!routes.empty() && routes.size() != topology.layer_count() + 1)
    throw CompileError("program carries " + std::to_string(routes.size()) +
                       " routes but topology \"" + topology.name() +
                       "\" has " + std::to_string(topology.layer_count() + 1) +
                       " boundaries");
}

std::uint64_t program_cache_key(const core::ResparcConfig& config,
                                const snn::Topology& topology,
                                const std::string& strategy) {
  // FNV-1a, seeded with the config fingerprint so the key inherits every
  // architecture/device knob the fingerprint already covers.
  std::uint64_t h = 0xcbf29ce484222325ull ^ config.fingerprint();
  const auto mix = [&h](const std::string& text) {
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator: "ab"+"c" and "a"+"bc" hash differently
    h *= 0x100000001b3ull;
  };
  mix(topology.summary());
  mix(strategy);
  return h;
}

}  // namespace resparc::compile
