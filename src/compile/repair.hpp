// Fault-aware placement repair: route layers around failed mPEs.
//
// A chip instance with stuck-at faults (core::ResparcConfig::faults) may
// contain MCAs whose stuck-cell density exceeds the failure threshold;
// an mPE holding such an MCA cannot be trusted with synapses.  This pass
// runs between place and route in compile::Compiler::run_passes: it
// slides every layer's mPE-contiguous span forward to the first span
// containing no failed mPE, preserving layer order, then recomputes the
// whole-chip totals (gaps left by skipped mPEs are legal — the verifier
// only requires total_mpes to cover the last placed mPE).  Routing and
// cost estimation run after repair, so routes and costs always describe
// the repaired placement, and the RV-FAULT verifier passes
// (src/verify/verifier.cpp) independently re-derive the health map to
// prove the emitted program avoids every failed mPE
// (docs/reliability.md).
#pragma once

#include <cstddef>

#include "core/mapper.hpp"

namespace resparc::compile {

/// Re-places `mapping`'s layers around failed mPEs (no-op unless
/// faults.enabled && faults.repair).  Returns the number of layers that
/// moved.  Throws MappingError when the chip's NeuroCell budget
/// (faults.chip_neurocells, 0 = unbounded) cannot hold the repaired
/// placement.
std::size_t repair_placement(core::Mapping& mapping);

}  // namespace resparc::compile
