// Analytic cost model: scores a candidate mapping without spike traces.
//
// Mirrors the executor's event accounting (core/executor.cpp,
// docs/execution.md) but replaces recorded per-step spike counts with one assumed
// activity factor (spikes/neuron/step), so candidates can be ranked at
// compile time in microseconds instead of replaying presentations.  All
// energies come from the same technology tables (tech::DigitalCosts,
// tech::Memristor, tech::SramModel) the executor charges, so the estimate
// tracks the measured numbers to first order — it is a *ranking* signal,
// not a substitute for trace-driven execution.
#pragma once

#include "compile/program.hpp"
#include "core/mapper.hpp"
#include "noc/route.hpp"
#include "snn/topology.hpp"

namespace resparc::compile {

/// Estimates per-timestep energy and pipelined cycles of `mapping` at a
/// uniform spike `activity` (fraction of neurons spiking each step),
/// charging each boundary transfer along its Ml-NoC route — the same
/// table the executor replays on, so the ranking cannot drift from the
/// measured transport model.
CostEstimate estimate_cost(const snn::Topology& topology,
                           const core::Mapping& mapping,
                           const noc::RouteTable& routes,
                           double activity = 0.10);

/// Convenience overload: derives the routes with noc::compute_routes
/// (identical result — the routing pass is deterministic).
CostEstimate estimate_cost(const snn::Topology& topology,
                           const core::Mapping& mapping,
                           double activity = 0.10);

}  // namespace resparc::compile
