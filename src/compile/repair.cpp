#include "compile/repair.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tech/nonideal.hpp"

namespace resparc::compile {

std::size_t repair_placement(core::Mapping& mapping) {
  const tech::FaultConfig& fc = mapping.config.faults;
  if (!fc.enabled || !fc.repair) return 0;
  const tech::FaultModel model(fc, mapping.config.mca_size);
  const std::size_t per_mpe = mapping.config.mcas_per_mpe;
  const std::size_t per_nc = mapping.config.mpes_per_neurocell();

  // Physical mPE budget: the chip's NeuroCell bound when set, otherwise a
  // generous sanity cap so a pathological fault config (nearly every mPE
  // failed) reports an error instead of searching forever.
  const std::size_t mpe_budget =
      fc.chip_neurocells > 0
          ? fc.chip_neurocells * per_nc
          : std::max<std::size_t>(1024, mapping.total_mpes * 64);

  // Lazily sampled mPE health, memoised because adjacent layers re-test
  // the same spare mPEs (-1 unknown, 0 healthy, 1 failed).
  std::vector<std::int8_t> health;
  auto mpe_failed = [&](std::size_t mpe) {
    if (mpe >= health.size()) health.resize(mpe + 1, -1);
    if (health[mpe] < 0) {
      std::int8_t failed = 0;
      for (std::size_t slot = 0; slot < per_mpe; ++slot)
        if (model.mca_failed(mpe * per_mpe + slot)) {
          failed = 1;
          break;
        }
      health[mpe] = failed;
    }
    return health[mpe] != 0;
  };

  std::size_t moved = 0;
  std::size_t cursor = 0;
  std::size_t prev_size = 0;
  for (std::size_t l = 0; l < mapping.layers.size(); ++l) {
    core::LayerMapping& lm = mapping.layers[l];
    // A NeuroCell holds arrays of a single size (RV-CAP-NC-MIXED-SIZE):
    // when a heterogeneous chip changes array size between layers, the
    // repaired span must start at a fresh cell just like the original
    // placement did.
    const std::size_t n = mapping.layer_mca_size(l);
    if (prev_size != 0 && n != prev_size && cursor % per_nc != 0)
      cursor = (cursor / per_nc + 1) * per_nc;
    prev_size = n;
    const std::size_t need = lm.mpe_count;
    std::size_t start = cursor;
    for (;;) {
      if (start + need > mpe_budget)
        throw MappingError(
            "repair: no healthy span of " + std::to_string(need) +
            " mPEs for layer " + std::to_string(lm.layer) + " within the " +
            std::to_string(mpe_budget) + "-mPE budget (chip_seed " +
            std::to_string(fc.chip_seed) + ")");
      bool clean = true;
      for (std::size_t i = 0; i < need; ++i)
        if (mpe_failed(start + i)) {
          start += i + 1;  // skip past the failed mPE and retry
          clean = false;
          break;
        }
      if (clean) break;
    }
    if (start != lm.first_mpe) ++moved;
    lm.first_mpe = start;
    lm.first_nc = start / per_nc;
    lm.last_nc = (start + need - 1) / per_nc;
    cursor = start + need;
  }

  // Re-derive the whole-chip extents (gaps over skipped mPEs are legal);
  // MCA count and utilisation are placement-independent.
  std::size_t max_mpe_end = 0;
  std::size_t max_nc = 0;
  for (const core::LayerMapping& lm : mapping.layers) {
    max_mpe_end = std::max(max_mpe_end, lm.first_mpe + lm.mpe_count);
    max_nc = std::max(max_nc, lm.last_nc);
  }
  mapping.total_mpes = max_mpe_end;
  mapping.total_neurocells = max_nc + 1;
  return moved;
}

}  // namespace resparc::compile
