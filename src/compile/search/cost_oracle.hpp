// Cost oracles for the search-based mapping optimizer (docs/compile.md).
//
// Two fidelities behind one interface, the exploration/promotion split of
// the annealing and beam strategies (search.hpp):
//
//   * AnalyticOracle — the analytic cost model's terms (compile::
//     estimate_cost), memoised per tile decision: every placement-
//     independent per-layer term (crossbar, control, neuron, CCU energy,
//     compute cycles, leakage columns) is keyed by the decoder's tile key,
//     so a move that only touches placement re-costs nothing but the
//     boundaries, and a retile of one layer re-costs only that layer.
//     Microseconds per candidate; the exploration signal.
//
//   * ReplayOracle — the event-fidelity core::Executor over a short
//     synthetic calibration trace (Bernoulli spikes at the assumed
//     activity), so congestion stalls on real switch FIFOs enter the
//     score.  Milliseconds per candidate; the promotion/acceptance signal
//     that keeps the search honest against the analytic model's blind
//     spots.
//
// Both score with an energy-delay product (energy x critical-path cycles),
// matching CostEstimate::score() so oracle rankings and compile_best
// rankings agree in the homogeneous limit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>

#include "core/mapper.hpp"
#include "noc/route.hpp"
#include "snn/topology.hpp"
#include "snn/trace.hpp"
#include "tech/memristor.hpp"
#include "tech/sram.hpp"

namespace resparc::compile::search {

/// Scores one candidate mapping; lower is better.  `layer_keys` (when
/// non-empty, one per layer) are opaque memoisation keys from the genome
/// decoder: equal keys promise an identical tiling of that layer, so
/// oracles may cache per-layer work under them.  Implementations must be
/// thread-safe (candidate evaluation fans out on the shared ThreadPool)
/// and pure (same candidate, same score — the determinism contract).
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  /// Scores `mapping` routed as `routes`; lower is better, kInf rejects.
  virtual double score(const core::Mapping& mapping,
                       const noc::RouteTable& routes,
                       std::span<const std::uint64_t> layer_keys) const = 0;
};

/// Fast analytic oracle: mirrors compile::estimate_cost term by term, with
/// the per-layer placement-independent terms memoised under the decoder's
/// tile keys.  One instance serves one (topology, config, activity) — the
/// cache assumes the technology tables never change between calls.
class AnalyticOracle final : public CostOracle {
 public:
  AnalyticOracle(const snn::Topology& topology,
                 const core::ResparcConfig& config, double activity);

  /// Analytic energy x cycles; per-layer terms cached under `layer_keys`.
  double score(const core::Mapping& mapping, const noc::RouteTable& routes,
               std::span<const std::uint64_t> layer_keys) const override;

 private:
  /// Placement-independent per-layer terms (cache payload).
  struct LayerTerms {
    double energy_pj = 0.0;      ///< crossbar + control + neuron + CCU
    double compute_cycles = 0.0; ///< mux_cycles + 1 (stage compute term)
    double leak_columns = 0.0;   ///< mca_count * N_l (leakage contribution)
  };

  LayerTerms layer_terms(std::size_t l, const core::Mapping& mapping) const;

  const snn::Topology& topology_;
  double activity_;
  // Hoisted technology constants (identical to estimate_cost's).
  double cell_pj_;
  double cell_off_pj_;
  double sneak_;
  tech::DigitalCosts digital_;
  tech::SramModel sram_;
  double flit_bits_;
  double clock_mhz_;
  std::size_t nc_dim_;
  bool event_driven_;

  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, LayerTerms> cache_;
};

/// Event-fidelity replay oracle: runs the candidate through core::Executor
/// with the event-driven noc::Fabric over a fixed calibration trace, so
/// FIFO congestion and hop-fill latency enter the score.  `layer_keys` is
/// ignored — a replay has no placement-independent part worth caching.
class ReplayOracle final : public CostOracle {
 public:
  /// `trace` must match `topology` (layer_count + 1 layers); both must
  /// outlive the oracle.
  ReplayOracle(const snn::Topology& topology, const snn::SpikeTrace& trace);

  /// Measured energy x cycles from an event-fidelity replay of the trace.
  double score(const core::Mapping& mapping, const noc::RouteTable& routes,
               std::span<const std::uint64_t> layer_keys) const override;

 private:
  const snn::Topology& topology_;
  const snn::SpikeTrace& trace_;
};

/// Synthetic calibration trace: `steps` timesteps of independent
/// Bernoulli(`activity`) spikes per neuron on every layer boundary of
/// `topology`.  Streams derive from stream_seed(seed, layer * steps + t),
/// so the trace is identical for any thread count and any candidate —
/// every promotion replays exactly the same spikes.
snn::SpikeTrace make_calibration_trace(const snn::Topology& topology,
                                       std::size_t steps, double activity,
                                       std::uint64_t seed);

}  // namespace resparc::compile::search
