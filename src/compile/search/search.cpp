#include "compile/search/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "compile/search/cost_oracle.hpp"
#include "core/mapper.hpp"
#include "noc/route.hpp"

namespace resparc::compile::search {

using core::LayerMapping;
using core::Mapping;
using core::ResparcConfig;
using snn::LayerKind;

namespace {

// ------------------------------------------------------------------ genome --

/// Per-layer tile policy a gene can select.  kShared and kPackedPool are
/// the greedy-pack tilings; genes carrying a policy their layer kind (or
/// size) cannot honour are normalised to kPaper before decoding, so two
/// genomes that decode identically compare equal.
enum Policy : std::uint8_t {
  kPaper = 0,       ///< section 3.1 tiling under the gene's size
  kShared = 1,      ///< shared-window conv tiling (conv, fan_in <= size)
  kPackedPool = 2,  ///< cross-band pool packing (avgpool only)
};

/// One layer's mapping decision.
struct Gene {
  std::uint8_t size_index = 0;  ///< into the sanitised SearchOptions::sizes
  std::uint8_t policy = kPaper;
  bool align = false;  ///< push the layer to a fresh NeuroCell when it fits

  friend bool operator==(const Gene& a, const Gene& b) {
    return a.size_index == b.size_index && a.policy == b.policy &&
           a.align == b.align;
  }
  friend bool operator<(const Gene& a, const Gene& b) {
    if (a.size_index != b.size_index) return a.size_index < b.size_index;
    if (a.policy != b.policy) return a.policy < b.policy;
    return a.align < b.align;
  }
};

/// One candidate mapping: a gene per layer.
using Genome = std::vector<Gene>;

/// A decoded candidate: the full mapping plus the per-layer memoisation
/// keys the analytic oracle caches tile terms under.
struct Decoded {
  Mapping mapping;
  std::vector<std::uint64_t> keys;
};

// ----------------------------------------------------------------- decoder --

/// Genome -> Mapping.  Tiling is memoised per (layer, size, policy) —
/// a pure function, so concurrent decodes under the cache mutex stay
/// deterministic — and placement enforces the NeuroCell single-size rule
/// (RV-CAP-NC-MIXED-SIZE) by bumping to a fresh cell whenever the
/// resolved array size changes mid-cell.
class Decoder {
 public:
  Decoder(const snn::Topology& topology, const ResparcConfig& config,
          std::vector<std::size_t> sizes)
      : topology_(topology), config_(config), sizes_(std::move(sizes)) {}

  const std::vector<std::size_t>& sizes() const { return sizes_; }

  std::uint8_t default_size_index() const {
    for (std::size_t i = 0; i < sizes_.size(); ++i)
      if (sizes_[i] == config_.mca_size) return static_cast<std::uint8_t>(i);
    return 0;  // unreachable: sanitisation inserts config_.mca_size
  }

  /// Policies layer `l` can honour at array size `size` (kPaper always).
  std::vector<std::uint8_t> applicable_policies(std::size_t l,
                                                std::size_t size) const {
    const snn::LayerInfo& li = topology_.layers()[l];
    std::vector<std::uint8_t> out{kPaper};
    if (li.spec.kind == LayerKind::kConv && li.fan_in <= size)
      out.push_back(kShared);
    if (li.spec.kind == LayerKind::kAvgPool) out.push_back(kPackedPool);
    return out;
  }

  std::uint8_t normalize_policy(std::size_t l, std::size_t size,
                                std::uint8_t policy) const {
    const snn::LayerInfo& li = topology_.layers()[l];
    if (policy == kShared &&
        !(li.spec.kind == LayerKind::kConv && li.fan_in <= size))
      return kPaper;
    if (policy == kPackedPool && li.spec.kind != LayerKind::kAvgPool)
      return kPaper;
    return policy;
  }

  /// Canonical form: inapplicable policies fall back to kPaper, so genome
  /// equality matches decode equality.
  void normalize(Genome& g) const {
    for (std::size_t l = 0; l < g.size(); ++l)
      g[l].policy = normalize_policy(l, sizes_[g[l].size_index], g[l].policy);
  }

  Decoded decode(const Genome& g) const {
    require(g.size() == topology_.layer_count(),
            "search: genome does not match topology");
    Decoded d;
    d.mapping.config = config_;
    d.keys.reserve(g.size());
    for (std::size_t l = 0; l < g.size(); ++l) {
      const std::size_t size = sizes_[g[l].size_index];
      const std::uint8_t policy = normalize_policy(l, size, g[l].policy);
      const std::uint64_t key = layer_key(l, size, policy);
      d.keys.push_back(key);
      d.mapping.layers.push_back(tile_layer(l, size, policy, key));
    }
    place_genome(d.mapping, g);
    return d;
  }

 private:
  /// Memoisation key: unique per (layer, size, normalised policy).  Sizes
  /// are <= 1024 and policies < 16, so the packing cannot collide.
  static std::uint64_t layer_key(std::size_t l, std::size_t size,
                                 std::uint8_t policy) {
    return (static_cast<std::uint64_t>(l) << 20) |
           (static_cast<std::uint64_t>(size) << 4) | policy;
  }

  LayerMapping tile_layer(std::size_t l, std::size_t size,
                          std::uint8_t policy, std::uint64_t key) const {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = tile_cache_.find(key);
      if (it != tile_cache_.end()) return it->second;
    }
    ResparcConfig tcfg = config_;
    tcfg.mca_size = size;
    if (policy == kShared) tcfg.enhanced_input_sharing = true;
    const snn::LayerInfo& li = topology_.layers()[l];
    LayerMapping lm = policy == kPackedPool
                          ? tile_pool_packed(li, l, tcfg)
                          : core::tile_layer_paper(li, l, tcfg);
    // 0 means "inherit the chip default": the homogeneous gene stays
    // byte-compatible with pre-search program blobs.
    lm.mca_size = size == config_.mca_size ? 0 : size;
    std::lock_guard<std::mutex> lock(mutex_);
    tile_cache_.emplace(key, lm);
    return lm;
  }

  /// Sequential placement with two NeuroCell rules: a size change bumps
  /// to a fresh cell (an mPE's peripheral pitch fits one array size —
  /// the verifier's RV-CAP-NC-MIXED-SIZE invariant), and an align-bit
  /// layer that would straddle a cell but fits inside one also bumps
  /// (the "balanced" placement rule, now a per-layer search move).
  void place_genome(Mapping& m, const Genome& g) const {
    const std::size_t per_nc = config_.mpes_per_neurocell();
    std::size_t next_mpe = 0;
    std::size_t prev_size = 0;
    std::size_t synapses = 0;
    std::size_t cells = 0;
    m.total_mcas = 0;
    for (std::size_t l = 0; l < m.layers.size(); ++l) {
      LayerMapping& lm = m.layers[l];
      const std::size_t n = m.layer_mca_size(l);
      if (prev_size != 0 && n != prev_size && next_mpe % per_nc != 0)
        next_mpe = (next_mpe / per_nc + 1) * per_nc;
      const std::size_t nc_end = (next_mpe / per_nc + 1) * per_nc;
      if (g[l].align && next_mpe + lm.mpe_count > nc_end &&
          lm.mpe_count <= per_nc)
        next_mpe = nc_end;
      lm.first_mpe = next_mpe;
      next_mpe += lm.mpe_count;
      lm.first_nc = lm.first_mpe / per_nc;
      lm.last_nc = (lm.first_mpe + lm.mpe_count - 1) / per_nc;
      m.total_mcas += lm.mca_count;
      synapses += lm.synapses;
      cells += lm.mca_count * n * n;
      prev_size = n;
    }
    m.total_mpes = next_mpe;
    m.total_neurocells = ceil_div(next_mpe, per_nc);
    m.utilization =
        static_cast<double>(synapses) / static_cast<double>(cells);
  }

  const snn::Topology& topology_;
  const ResparcConfig& config_;
  std::vector<std::size_t> sizes_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, LayerMapping> tile_cache_;
};

// ----------------------------------------------------------------- context --

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared state of one search run: the decoder and both oracles over one
/// (topology, config) pair.
class SearchContext {
 public:
  SearchContext(const snn::Topology& topology, const ResparcConfig& config,
                const SearchOptions& opt)
      : decoder_(topology, config, opt.sizes),
        analytic_(topology, config, opt.activity),
        trace_(make_calibration_trace(topology, opt.calibration_steps,
                                      opt.activity,
                                      stream_seed(opt.seed, 1))),
        replay_(topology, trace_) {}

  const Decoder& decoder() const { return decoder_; }

  /// Fast exploration score; infinite when the genome cannot be decoded
  /// into a legal mapping (the search simply routes around it).
  double analytic_score(const Genome& g) const {
    return score_with(analytic_, g);
  }

  /// Event-driven promotion score over the calibration trace.
  double replay_score(const Genome& g) const { return score_with(replay_, g); }

 private:
  double score_with(const CostOracle& oracle, const Genome& g) const {
    try {
      const Decoded d = decoder_.decode(g);
      const noc::RouteTable routes = noc::compute_routes(d.mapping);
      return oracle.score(d.mapping, routes, d.keys);
    } catch (const std::exception&) {
      return kInf;
    }
  }

  Decoder decoder_;
  AnalyticOracle analytic_;
  snn::SpikeTrace trace_;
  ReplayOracle replay_;
};

/// A scored genome.
struct Candidate {
  Genome genome;
  double score = kInf;
};

/// Homogeneous paper-tiling genome: the strategy's own place()/tile()
/// output, so the search can only improve on the baseline.
Genome paper_genome(const Decoder& dec, std::size_t layers) {
  return Genome(layers, Gene{dec.default_size_index(), kPaper, false});
}

/// Greedy-pack-flavoured genome at the default size: shared conv windows
/// and packed pools wherever applicable.
Genome greedy_genome(const Decoder& dec, std::size_t layers) {
  Genome g = paper_genome(dec, layers);
  const std::size_t size = dec.sizes()[dec.default_size_index()];
  for (std::size_t l = 0; l < layers; ++l) {
    const auto policies = dec.applicable_policies(l, size);
    // Prefer the non-paper policy when the layer admits one.
    g[l].policy = policies.back();
  }
  dec.normalize(g);
  return g;
}

/// Keeps `elites` as the best `cap` unique finite-score candidates, in
/// ascending score order.  Sequential by construction — call sites feed
/// candidates in deterministic index order.
void update_elites(std::vector<Candidate>& elites, const Candidate& c,
                   std::size_t cap) {
  if (!std::isfinite(c.score)) return;
  for (const Candidate& e : elites)
    if (e.genome == c.genome) return;
  elites.push_back(c);
  std::stable_sort(
      elites.begin(), elites.end(),
      [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
  if (elites.size() > cap) elites.resize(cap);
}

/// Appends `c` to the promotion pool unless its genome is already there.
/// Unlike update_elites this never evicts: baseline genomes must survive
/// promotion even when the analytic oracle ranks them last.
void add_to_pool(std::vector<Candidate>& pool, const Candidate& c) {
  for (const Candidate& e : pool)
    if (e.genome == c.genome) return;
  pool.push_back(c);
}

/// Replay-promotes the elite set: re-scores every candidate under the
/// event-driven oracle in parallel, then picks the argmin sequentially
/// (lowest index wins ties).  Falls back to `fallback` when every replay
/// fails, so the search always returns a decodable genome.
Genome promote(const SearchContext& ctx, const std::vector<Candidate>& elites,
               const Genome& fallback, std::size_t threads) {
  if (elites.empty()) return fallback;
  std::vector<double> scores(elites.size(), kInf);
  parallel_for(elites.size(), threads, [&](std::size_t i) {
    scores[i] = ctx.replay_score(elites[i].genome);
  });
  std::size_t best = elites.size();
  for (std::size_t i = 0; i < elites.size(); ++i)
    if (best == elites.size() || scores[i] < scores[best]) best = i;
  if (best == elites.size() || !std::isfinite(scores[best])) return fallback;
  return elites[best].genome;
}

/// Every normalised single-gene neighbour of `g` (all other sizes, all
/// other applicable policies, the align toggle), in deterministic
/// (layer, move) order.  Used by beam expansion and by replay polish.
std::vector<Genome> neighbours(const Decoder& dec, const Genome& g) {
  std::vector<Genome> out;
  for (std::size_t l = 0; l < g.size(); ++l) {
    for (std::size_t s = 0; s < dec.sizes().size(); ++s) {
      if (s == g[l].size_index) continue;
      Genome n = g;
      n[l].size_index = static_cast<std::uint8_t>(s);
      dec.normalize(n);
      out.push_back(std::move(n));
    }
    const std::size_t size = dec.sizes()[g[l].size_index];
    for (std::uint8_t p : dec.applicable_policies(l, size)) {
      if (p == g[l].policy) continue;
      Genome n = g;
      n[l].policy = p;
      out.push_back(std::move(n));
    }
    Genome n = g;
    n[l].align = !n[l].align;
    out.push_back(std::move(n));
  }
  return out;
}

/// Replay-scored coordinate descent around `g`: each round scores the
/// full single-gene neighbourhood under the event-driven oracle and moves
/// to the best strict improvement (lowest index wins ties), stopping
/// early at a local optimum.  The analytic oracle explores whole families
/// fast, but it is congestion-blind — two mappings a few percent apart
/// analytically can differ 3x in measured stall cycles.  Replay ranks
/// those faithfully, so polishing the promoted winner under it makes the
/// final mapping a local optimum of the measured-fidelity score.
Genome replay_polish(const SearchContext& ctx, Genome g,
                     const SearchOptions& opt) {
  double best = ctx.replay_score(g);
  if (!std::isfinite(best)) return g;
  for (std::size_t round = 0; round < opt.polish; ++round) {
    const std::vector<Genome> hood = neighbours(ctx.decoder(), g);
    std::vector<double> scores(hood.size(), kInf);
    parallel_for(hood.size(), opt.threads, [&](std::size_t i) {
      scores[i] = ctx.replay_score(hood[i]);
    });
    std::size_t pick = hood.size();
    for (std::size_t i = 0; i < hood.size(); ++i)
      if (std::isfinite(scores[i]) && scores[i] < best &&
          (pick == hood.size() || scores[i] < scores[pick]))
        pick = i;
    if (pick == hood.size()) break;
    g = hood[pick];
    best = scores[pick];
  }
  return g;
}

// ---------------------------------------------------------------- annealer --

/// One single-gene mutation, normalised.  All draws come from `rng`
/// sequentially, so the proposal stream is independent of thread count.
Genome mutate(const Decoder& dec, const Genome& state, Rng& rng) {
  Genome g = state;
  const std::size_t l = rng.below(g.size());
  const std::size_t n_sizes = dec.sizes().size();
  std::uint64_t field = rng.below(3);
  if (field == 0 && n_sizes < 2) field = 2;
  if (field == 1) {
    const std::size_t size = dec.sizes()[g[l].size_index];
    const auto policies = dec.applicable_policies(l, size);
    std::vector<std::uint8_t> others;
    for (std::uint8_t p : policies)
      if (p != g[l].policy) others.push_back(p);
    if (others.empty())
      field = 2;
    else
      g[l].policy = others[rng.below(others.size())];
  }
  if (field == 0) {
    std::uint64_t pick = rng.below(n_sizes - 1);
    if (pick >= g[l].size_index) ++pick;
    g[l].size_index = static_cast<std::uint8_t>(pick);
  } else if (field == 2) {
    g[l].align = !g[l].align;
  }
  dec.normalize(g);
  return g;
}

Genome run_anneal(const SearchContext& ctx, const SearchOptions& opt,
                  std::size_t layers) {
  const Decoder& dec = ctx.decoder();
  Rng moves(stream_seed(opt.seed, 0));

  Candidate paper{paper_genome(dec, layers), 0.0};
  Candidate greedy{greedy_genome(dec, layers), 0.0};
  paper.score = ctx.analytic_score(paper.genome);
  greedy.score = ctx.analytic_score(greedy.genome);
  std::vector<Candidate> elites;
  update_elites(elites, paper, opt.elites);
  update_elites(elites, greedy, opt.elites);
  Candidate state = greedy.score < paper.score ? greedy : paper;

  const std::size_t k = opt.proposals;
  std::vector<Genome> proposals(k);
  std::vector<double> scores(k, kInf);
  std::vector<double> accepts(k, 0.0);
  for (std::size_t round = 0; round < opt.rounds; ++round) {
    // Draw every proposal and acceptance uniform sequentially from the
    // single move stream, then fan the scoring out: the random sequence
    // never depends on evaluation order or thread count.
    for (std::size_t i = 0; i < k; ++i)
      proposals[i] = mutate(dec, state.genome, moves);
    for (std::size_t i = 0; i < k; ++i) accepts[i] = moves.uniform();
    parallel_for(k, opt.threads, [&](std::size_t i) {
      scores[i] = ctx.analytic_score(proposals[i]);
    });
    for (std::size_t i = 0; i < k; ++i)
      update_elites(elites, {proposals[i], scores[i]}, opt.elites);

    // Best-of-K acceptance: the round's best proposal (lowest index wins
    // ties) replaces the state when it improves; otherwise a Metropolis
    // draw on that best proposal may still take the uphill step.  One
    // move per round, chosen sequentially, so the trajectory is a pure
    // function of the seed.
    std::size_t pick = k;
    for (std::size_t i = 0; i < k; ++i) {
      if (!std::isfinite(scores[i])) continue;
      if (pick == k || scores[i] < scores[pick]) pick = i;
    }
    if (pick == k) continue;
    const double temp = opt.t0 * std::pow(opt.alpha, static_cast<double>(round));
    bool accept = scores[pick] < state.score;
    if (!accept && std::isfinite(state.score) && state.score > 0.0) {
      const double rel = (scores[pick] - state.score) / state.score;
      accept = accepts[pick] < std::exp(-rel / std::max(temp, 1e-12));
    }
    if (accept) state = {proposals[pick], scores[pick]};
  }
  update_elites(elites, state, opt.elites);
  // Promotion pool = elites plus the one-shot baselines: the replay
  // oracle judges them all on the same calibration trace, so the search
  // can only return something it measures as no worse than paper or
  // greedy-pack — a safety net against analytic-model blind spots.
  std::vector<Candidate> pool = elites;
  add_to_pool(pool, paper);
  add_to_pool(pool, greedy);
  return replay_polish(ctx, promote(ctx, pool, state.genome, opt.threads),
                       opt);
}

// -------------------------------------------------------------- beam search --

Genome run_beam(const SearchContext& ctx, const SearchOptions& opt,
                std::size_t layers) {
  const Decoder& dec = ctx.decoder();
  std::vector<Candidate> beam;
  std::set<Genome> seen;
  for (Genome g : {paper_genome(dec, layers), greedy_genome(dec, layers)}) {
    if (!seen.insert(g).second) continue;
    const double s = ctx.analytic_score(g);
    if (std::isfinite(s)) beam.push_back({std::move(g), s});
  }
  std::stable_sort(
      beam.begin(), beam.end(),
      [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
  if (beam.empty()) return paper_genome(dec, layers);

  double best = beam.front().score;
  for (std::size_t depth = 0; depth < opt.rounds; ++depth) {
    // Expand the whole beam, deduplicated against everything ever scored
    // (membership tests are on exact genomes, so no hash-collision drift).
    std::vector<Genome> frontier;
    for (const Candidate& c : beam)
      for (Genome& n : neighbours(dec, c.genome))
        if (seen.insert(n).second) frontier.push_back(std::move(n));
    if (frontier.empty()) break;
    std::vector<double> scores(frontier.size(), kInf);
    parallel_for(frontier.size(), opt.threads, [&](std::size_t i) {
      scores[i] = ctx.analytic_score(frontier[i]);
    });
    for (std::size_t i = 0; i < frontier.size(); ++i)
      if (std::isfinite(scores[i]))
        beam.push_back({std::move(frontier[i]), scores[i]});
    std::stable_sort(beam.begin(), beam.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.score != b.score) return a.score < b.score;
                       return a.genome < b.genome;
                     });
    if (beam.size() > opt.proposals) beam.resize(opt.proposals);
    if (beam.front().score >= best) break;  // converged: no improvement
    best = beam.front().score;
  }

  std::vector<Candidate> pool(
      beam.begin(),
      beam.begin() +
          static_cast<std::ptrdiff_t>(std::min(opt.elites, beam.size())));
  // Same safety net as the annealer: the one-shot baselines always reach
  // the replay-promotion round.
  add_to_pool(pool, {paper_genome(dec, layers),
                     ctx.analytic_score(paper_genome(dec, layers))});
  add_to_pool(pool, {greedy_genome(dec, layers),
                     ctx.analytic_score(greedy_genome(dec, layers))});
  return replay_polish(ctx, promote(ctx, pool, beam.front().genome,
                                    opt.threads),
                       opt);
}

// -------------------------------------------------------------- strategies --

/// Env/config-independent sanitisation: the chip's own size is always a
/// candidate, out-of-range sizes are dropped (the verifier's
/// RV-CAP-MCA-SIZE domain), and every count is at least 1.
SearchOptions sanitized(SearchOptions opt, const ResparcConfig& cfg) {
  std::vector<std::size_t> sizes;
  for (std::size_t s : opt.sizes)
    if (s >= 8 && s <= 1024) sizes.push_back(s);
  sizes.push_back(cfg.mca_size);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  opt.sizes = std::move(sizes);
  opt.rounds = std::max<std::size_t>(1, opt.rounds);
  opt.proposals = std::max<std::size_t>(1, opt.proposals);
  opt.elites = std::max<std::size_t>(1, opt.elites);
  opt.calibration_steps = std::max<std::size_t>(1, opt.calibration_steps);
  if (!(opt.activity > 0.0 && opt.activity <= 1.0)) opt.activity = 0.10;
  return opt;
}

/// Shared shell of both search strategies: paper tile/place as the
/// baseline the compiler sees before optimize() replaces the mapping
/// with the searched one.
class SearchStrategyBase : public MappingStrategy {
 public:
  explicit SearchStrategyBase(SearchOptions options)
      : options_(std::move(options)) {}

  LayerMapping tile(const snn::LayerInfo& li, std::size_t layer_index,
                    const ResparcConfig& cfg) const override {
    return core::tile_layer_paper(li, layer_index, cfg);
  }

  void place(Mapping& m, const ResparcConfig& cfg) const override {
    core::place_layers_sequential(m, cfg);
  }

  void optimize(const snn::Topology& topology, Mapping& m,
                const ResparcConfig& cfg) const override {
    if (topology.layer_count() == 0) return;
    const SearchOptions opt = sanitized(options_, cfg);
    SearchContext ctx(topology, cfg, opt);
    const Genome winner = run(ctx, opt, topology.layer_count());
    Decoded d = ctx.decoder().decode(winner);
    m = std::move(d.mapping);
  }

 protected:
  virtual Genome run(const SearchContext& ctx, const SearchOptions& opt,
                     std::size_t layers) const = 0;

 private:
  SearchOptions options_;
};

class AnnealStrategy final : public SearchStrategyBase {
 public:
  using SearchStrategyBase::SearchStrategyBase;
  std::string name() const override { return "anneal"; }

 protected:
  Genome run(const SearchContext& ctx, const SearchOptions& opt,
             std::size_t layers) const override {
    return run_anneal(ctx, opt, layers);
  }
};

class BeamStrategy final : public SearchStrategyBase {
 public:
  using SearchStrategyBase::SearchStrategyBase;
  std::string name() const override { return "beam"; }

 protected:
  Genome run(const SearchContext& ctx, const SearchOptions& opt,
             std::size_t layers) const override {
    return run_beam(ctx, opt, layers);
  }
};

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace

SearchOptions SearchOptions::from_env() {
  SearchOptions opt;
  opt.rounds = env_size_t("RESPARC_SEARCH_BUDGET", opt.rounds);
  opt.seed = env_size_t("RESPARC_BENCH_SEED", opt.seed);
  return opt;
}

std::unique_ptr<MappingStrategy> make_anneal_strategy() {
  return make_anneal_strategy(SearchOptions::from_env());
}

std::unique_ptr<MappingStrategy> make_anneal_strategy(
    const SearchOptions& options) {
  return std::make_unique<AnnealStrategy>(options);
}

std::unique_ptr<MappingStrategy> make_beam_strategy() {
  return make_beam_strategy(SearchOptions::from_env());
}

std::unique_ptr<MappingStrategy> make_beam_strategy(
    const SearchOptions& options) {
  return std::make_unique<BeamStrategy>(options);
}

}  // namespace resparc::compile::search
