#include "compile/search/cost_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/executor.hpp"
#include "noc/fabric.hpp"

namespace resparc::compile::search {

using core::LayerMapping;
using core::Mapping;
using core::McaGroup;

namespace {

std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

/// Expected non-zero 64-bit words of an independent-Bernoulli spike vector
/// (what the zero-check logic forwards in event-driven mode); same closed
/// form as the cost model's.
double expected_sent_words(std::size_t words, double activity,
                           bool event_driven) {
  if (!event_driven) return static_cast<double>(words);
  const double p_zero_word = std::pow(1.0 - activity, 64.0);
  return static_cast<double>(words) * (1.0 - p_zero_word);
}

}  // namespace

// ------------------------------------------------------------ AnalyticOracle

AnalyticOracle::AnalyticOracle(const snn::Topology& topology,
                               const core::ResparcConfig& config,
                               double activity)
    : topology_(topology),
      activity_(activity),
      digital_(config.technology.digital),
      sram_({.capacity_bytes = config.input_sram_bytes, .word_bits = 64}),
      flit_bits_(static_cast<double>(config.technology.flit_bits)),
      clock_mhz_(config.technology.resparc_clock_mhz),
      nc_dim_(config.nc_dim),
      event_driven_(config.event_driven) {
  require(activity > 0.0 && activity <= 1.0,
          "AnalyticOracle: activity must be in (0,1]");
  const tech::Memristor device{config.technology.memristor};
  cell_pj_ = device.mean_cell_read_energy_pj();
  cell_off_pj_ = device.cell_read_energy_pj(device.g_min());
  sneak_ = device.params().sneak_leak_fraction;
}

AnalyticOracle::LayerTerms AnalyticOracle::layer_terms(
    std::size_t l, const Mapping& mapping) const {
  const snn::LayerInfo& li = topology_.layers()[l];
  const LayerMapping& lm = mapping.layers[l];
  const std::size_t N = mapping.layer_mca_size(l);

  LayerTerms terms;
  for (const McaGroup& g : lm.groups) {
    const double driven_rows =
        activity_ * static_cast<double>(g.rows_used * g.mca_count);
    const double driven_cells = driven_rows * static_cast<double>(N);
    const double used_cells = activity_ * static_cast<double>(g.synapses);
    terms.energy_pj += used_cells * cell_pj_ +
                       std::max(0.0, driven_cells - used_cells) * cell_off_pj_;
    if (sneak_ > 0.0) {
      const double total_cells =
          static_cast<double>(g.mca_count) * static_cast<double>(N * N);
      terms.energy_pj +=
          sneak_ * std::max(0.0, total_cells - driven_cells) * cell_off_pj_;
    }
    terms.energy_pj +=
        static_cast<double>(g.mca_count) * digital_.mca_control_pj +
        static_cast<double>(g.mca_count * N) *
            (digital_.column_interface_pj + digital_.buffer_bit_pj);
    terms.energy_pj +=
        static_cast<double>(g.cols_used) * digital_.neuron_integrate_pj;
  }
  terms.energy_pj +=
      activity_ * static_cast<double>(li.neurons) * digital_.neuron_fire_pj;
  terms.energy_pj +=
      static_cast<double>(li.neurons * lm.ccu_transfers_per_neuron) *
      digital_.ccu_transfer_pj;
  terms.compute_cycles = static_cast<double>(lm.mux_cycles) + 1.0;
  terms.leak_columns = static_cast<double>(lm.mca_count * N);
  return terms;
}

double AnalyticOracle::score(const Mapping& mapping,
                             const noc::RouteTable& routes,
                             std::span<const std::uint64_t> layer_keys) const {
  const std::size_t layer_count = topology_.layer_count();
  require(mapping.layers.size() == layer_count,
          "AnalyticOracle: mapping does not match topology");
  require(routes.size() == layer_count + 1,
          "AnalyticOracle: route table does not cover every boundary");
  const bool keyed = layer_keys.size() == layer_count;

  double energy_pj = 0.0;
  double stage_max = 0.0;
  double leak_columns = 0.0;

  // Input broadcast from the SRAM: placement-independent, but cheap enough
  // to keep inline (one expected-words evaluation).
  {
    const std::size_t words = word_count(topology_.input_neurons());
    const double sent = expected_sent_words(words, activity_, event_driven_);
    energy_pj += sent * (sram_.read_energy_pj() + sram_.write_energy_pj() +
                         digital_.bus_word_pj);
    stage_max = std::max(stage_max, noc::kBusCyclesPerWord * sent);
  }

  for (std::size_t l = 0; l < layer_count; ++l) {
    // Placement-independent per-layer terms, memoised under the decoder's
    // tile key: a placement-only move re-costs nothing here, a one-layer
    // retile re-costs one layer.  The fresh and cached paths run the same
    // pure function, so a hit returns bit-identical terms.
    LayerTerms terms;
    if (keyed) {
      const std::uint64_t key = layer_keys[l];
      bool hit = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
          terms = it->second;
          hit = true;
        }
      }
      if (!hit) {
        terms = layer_terms(l, mapping);
        std::lock_guard<std::mutex> lock(mutex_);
        cache_.emplace(key, terms);
      }
    } else {
      terms = layer_terms(l, mapping);
    }
    energy_pj += terms.energy_pj;
    leak_columns += terms.leak_columns;

    // Boundary transfer toward the next layer: the placement-dependent
    // part, always re-costed against this candidate's routes.
    const snn::LayerInfo& li = topology_.layers()[l];
    const std::size_t words = word_count(li.neurons);
    const double sent = expected_sent_words(words, activity_, event_driven_);
    const bool via_bus = routes.at(l + 1).uses_bus;
    if (via_bus) {
      energy_pj += sent * (digital_.bus_word_pj + sram_.read_energy_pj() +
                           sram_.write_energy_pj()) +
                   digital_.gcu_event_pj;
    } else {
      energy_pj += sent * digital_.switch_flit_pj;
    }
    energy_pj += sent * (2.0 * flit_bits_ + 16.0) * digital_.buffer_bit_pj;

    const double transfer_c =
        via_bus ? noc::kBusCyclesPerWord * sent
                : std::ceil(sent / static_cast<double>(nc_dim_));
    stage_max = std::max(stage_max, std::max(terms.compute_cycles, transfer_c));
  }

  // Leakage over one steady-state (pipelined) step, then the same
  // energy-delay product CostEstimate::score() ranks by.
  const double leak_w =
      leak_columns * digital_.mca_column_leak_w + sram_.leakage_w();
  const double step_ns = stage_max * 1e3 / clock_mhz_;
  energy_pj += leak_w * step_ns * 1e3;  // W*ns -> pJ
  return energy_pj * stage_max;
}

// ------------------------------------------------------------- ReplayOracle

ReplayOracle::ReplayOracle(const snn::Topology& topology,
                           const snn::SpikeTrace& trace)
    : topology_(topology), trace_(trace) {
  require(trace.layer_count() == topology.layer_count() + 1,
          "ReplayOracle: trace does not match topology");
}

double ReplayOracle::score(const Mapping& mapping,
                           const noc::RouteTable& routes,
                           std::span<const std::uint64_t> layer_keys) const {
  (void)layer_keys;
  const core::Executor exec(topology_, mapping, routes, noc::Fidelity::kEvent);
  const core::RunReport r = exec.run(trace_);
  // Event-fidelity pipelined cycles include congestion stalls, so the
  // replay EDP penalises hot boundaries the analytic model cannot see.
  return r.energy.total_pj() * std::max(1.0, r.perf.cycles_pipelined);
}

// ----------------------------------------------------- calibration traces --

snn::SpikeTrace make_calibration_trace(const snn::Topology& topology,
                                       std::size_t steps, double activity,
                                       std::uint64_t seed) {
  require(steps > 0, "make_calibration_trace: steps must be positive");
  require(activity > 0.0 && activity <= 1.0,
          "make_calibration_trace: activity must be in (0,1]");
  snn::SpikeTrace trace;
  trace.layers.resize(topology.layer_count() + 1);
  for (std::size_t l = 0; l <= topology.layer_count(); ++l) {
    const std::size_t neurons =
        l == 0 ? topology.input_neurons() : topology.layers()[l - 1].neurons;
    trace.layers[l].reserve(steps);
    for (std::size_t t = 0; t < steps; ++t) {
      Rng r(stream_seed(seed, l * steps + t));
      snn::SpikeVector v(neurons);
      for (std::size_t i = 0; i < neurons; ++i)
        if (r.bernoulli(activity)) v.set(i);
      trace.layers[l].push_back(std::move(v));
    }
  }
  return trace;
}

}  // namespace resparc::compile::search
