// Search-based mapping strategies: simulated annealing and beam search
// over per-layer tile policy, MCA size, and NeuroCell alignment
// (docs/compile.md, "Search strategies").
//
// A candidate is a genome with one gene per layer — (array size, tile
// policy, alignment bit) — decoded into a full core::Mapping by retiling
// each layer at its gene's size and placing layers sequentially with the
// NeuroCell-boundary rules the verifier enforces (a NeuroCell never holds
// two array sizes).  Candidates are explored under the fast analytic
// oracle and promoted/accepted under the event-driven replay oracle
// (cost_oracle.hpp), so the winner is good where it counts: measured
// stall cycles, not just modelled averages.
//
// Determinism contract: every random draw comes from SplitMix64-derived
// streams of SearchOptions::seed, candidates are scored into pre-sized
// slots via parallel_for, and all reductions (Metropolis scan, elite
// updates, argmin ties) run sequentially in index order — the searched
// mapping is bit-identical for any thread count
// (tests/test_search.cpp pins 1/4/8 threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "compile/strategy.hpp"

namespace resparc::compile::search {

/// Knobs of both search strategies.  Defaults are the CI operating point:
/// modest enough that "auto" (which compiles every registered strategy)
/// stays interactive, strong enough to beat greedy-pack at paper scale.
struct SearchOptions {
  /// Candidate MCA sizes the size move may pick from.  The strategies
  /// sanitise this before use: the config's own size is inserted when
  /// missing, values outside [8, 1024] are dropped, and the list is
  /// sorted/deduplicated.  Array sizes need not be powers of two — the
  /// fabric admits any size in [8, 1024] — and the intermediate points
  /// matter: the paper-scale CNN's best mixes tile pool layers at 224 and
  /// the big conv layer at 160, sizes a power-of-two palette cannot reach.
  std::vector<std::size_t> sizes = {32, 48, 64, 96, 128, 160, 192, 224, 256};
  /// Annealing rounds (one accepted move max per round) / beam depth.
  std::size_t rounds = 32;
  /// Mutations proposed per annealing round / beam width kept per depth.
  std::size_t proposals = 8;
  /// Elite genomes kept for replay promotion at the end of the search.
  /// The one-shot baselines (paper + greedy-pack genomes) always join the
  /// promotion set, so the winner never replay-ranks below them.
  std::size_t elites = 6;
  /// Timesteps of the synthetic calibration trace the replay oracle runs.
  std::size_t calibration_steps = 8;
  /// Replay-polish rounds: after promotion, coordinate descent over the
  /// winner's single-gene neighbourhood scored by the event-driven oracle
  /// (0 disables).  The analytic oracle is congestion-blind; this pass
  /// makes the final mapping a local optimum of the measured score.
  std::size_t polish = 3;
  /// Assumed spike activity for the analytic oracle + calibration trace.
  double activity = 0.10;
  /// Initial Metropolis temperature, as a fraction of the current score.
  double t0 = 0.08;
  /// Geometric cooling rate per round.
  double alpha = 0.90;
  /// Master seed; move/acceptance/trace streams derive via stream_seed.
  std::uint64_t seed = 7;
  /// Worker threads for candidate evaluation (0 = all hardware threads).
  std::size_t threads = 0;

  /// Defaults overridden from the environment: RESPARC_SEARCH_BUDGET caps
  /// `rounds` (CI pins it for bounded bench jobs), RESPARC_BENCH_SEED
  /// replaces `seed` (the bench seeding convention, bench/bench_util.hpp).
  static SearchOptions from_env();
};

/// Simulated-annealing strategy ("anneal"): Metropolis over single-gene
/// mutations, analytic-oracle scored, replay-promoted elites.
std::unique_ptr<MappingStrategy> make_anneal_strategy();
/// Annealing strategy with explicit knobs (register under a custom name
/// via compile::register_strategy for budget-controlled searches).
std::unique_ptr<MappingStrategy> make_anneal_strategy(
    const SearchOptions& options);

/// Beam-search strategy ("beam"): exhaustive single-gene neighbourhoods,
/// deterministic beam of `proposals`, replay-promoted elites.
std::unique_ptr<MappingStrategy> make_beam_strategy();
/// Beam strategy with explicit knobs (see make_anneal_strategy overload).
std::unique_ptr<MappingStrategy> make_beam_strategy(
    const SearchOptions& options);

}  // namespace resparc::compile::search
