// Compiler: lowers an SNN topology onto the MCA fabric as a pass pipeline.
//
// Where core::map_network is one hard-wired algorithm, the compiler makes
// the topology→fabric seam explicit and pluggable:
//
//   legalize        validate the topology against the configuration
//                   (non-empty layers, every layer physically mappable)
//   tile            strategy: cut each layer into MCA groups
//   place           strategy: assign MCAs to mPEs and NeuroCells
//   route-estimate  count serial-bus boundaries and score the candidate
//                   with the analytic cost model (cost_model.hpp)
//   verify          mandatory static verification (src/verify): the
//                   emitted program is rejected with verify::VerifyError
//                   when any structural/capacity/consistency invariant
//                   is violated (docs/verification.md)
//
// and emits a CompiledProgram — a serializable artifact that
// ResparcChip/api::ResparcBackend load directly:
//
//   compile::Compiler compiler(config);
//   auto program = compiler.compile(topology, "greedy-pack");
//   chip.load(topology, program);
//
// compile(topology, "auto") scores every registered strategy and keeps the
// lowest energy-delay product.
#pragma once

#include <string>

#include "compile/program.hpp"
#include "compile/strategy.hpp"
#include "core/config.hpp"
#include "snn/topology.hpp"

namespace resparc::compile {

/// Compilation knobs beyond the strategy choice.
struct CompileOptions {
  /// Assumed spikes/neuron/step for the analytic cost model.
  double activity = 0.10;
};

/// Runs the legalize → tile → place → route-estimate pass pipeline for
/// one chip configuration and emits CompiledPrograms.
class Compiler {
 public:
  /// Builds a compiler for `config` (validated on first compile).
  explicit Compiler(core::ResparcConfig config, CompileOptions options = {});

  /// The configuration programs are compiled (and fingerprinted) for.
  const core::ResparcConfig& config() const { return config_; }

  /// Runs the pass pipeline with the named strategy ("auto" selects the
  /// best-scoring registered strategy).  Throws CompileError for unknown
  /// strategies, MappingError when the topology cannot be lowered, and
  /// verify::VerifyError when the strategy emits a program that fails
  /// the mandatory static verification post-pass.
  CompiledProgram compile(const snn::Topology& topology,
                          const std::string& strategy = "paper") const;

  /// Compiles with every registered strategy and returns the program with
  /// the lowest cost score (energy-delay product per timestep).
  CompiledProgram compile_best(const snn::Topology& topology) const;

 private:
  CompiledProgram run_passes(const snn::Topology& topology,
                             const MappingStrategy& strategy) const;

  core::ResparcConfig config_;
  CompileOptions options_;
};

}  // namespace resparc::compile
