#include "compile/strategy.hpp"

#include <algorithm>
#include <mutex>

#include "common/math.hpp"
#include "common/registry.hpp"
#include "compile/program.hpp"
#include "compile/search/search.hpp"

namespace resparc::compile {

using core::LayerMapping;
using core::Mapping;
using core::McaGroup;
using core::ResparcConfig;
using core::SliceKind;
using snn::LayerInfo;
using snn::LayerKind;

namespace {

// -------------------------------------------------------------- placements --

/// Greedy packing: MCAs fill mPEs continuously across layer boundaries, so
/// a partially filled mPE hosts the tail of one layer and the head of the
/// next.  Per-layer mpe_count is the number of mPEs the layer *touches*
/// (shared mPEs are counted by both neighbours).
void place_packed(Mapping& m, const ResparcConfig& cfg) {
  const std::size_t per_nc = cfg.mpes_per_neurocell();
  std::size_t mca_offset = 0;
  std::size_t synapses = 0;
  std::size_t cells = 0;
  for (LayerMapping& lm : m.layers) {
    const std::size_t first_mpe = mca_offset / cfg.mcas_per_mpe;
    const std::size_t last_mpe =
        (mca_offset + lm.mca_count - 1) / cfg.mcas_per_mpe;
    lm.first_mpe = first_mpe;
    // Overrides the tiled (fresh-mPE) mpe_count: under cross-layer packing
    // a layer's count is the mPEs it *touches*, shared ones included.
    lm.mpe_count = last_mpe - first_mpe + 1;
    lm.first_nc = first_mpe / per_nc;
    lm.last_nc = last_mpe / per_nc;
    mca_offset += lm.mca_count;
    synapses += lm.synapses;
    const std::size_t n = lm.mca_size != 0 ? lm.mca_size : cfg.mca_size;
    cells += lm.mca_count * n * n;
  }
  m.total_mcas = mca_offset;
  m.total_mpes = ceil_div(mca_offset, cfg.mcas_per_mpe);
  m.total_neurocells = ceil_div(m.total_mpes, per_nc);
  m.utilization = static_cast<double>(synapses) / static_cast<double>(cells);
}

/// NeuroCell-aligned placement: a layer that would straddle a NeuroCell
/// boundary but fits in a whole NeuroCell is pushed to the next boundary.
/// Consecutive small layers then share one NeuroCell, and their boundary
/// traffic stays on the switch fabric instead of the serial global bus.
void place_aligned(Mapping& m, const ResparcConfig& cfg) {
  const std::size_t per_nc = cfg.mpes_per_neurocell();
  std::size_t next_mpe = 0;
  std::size_t synapses = 0;
  std::size_t cells = 0;
  m.total_mcas = 0;
  for (LayerMapping& lm : m.layers) {
    // lm.mpe_count keeps the tiled (fresh-mPE) value; only the start moves.
    const std::size_t nc_end = (next_mpe / per_nc + 1) * per_nc;
    if (next_mpe + lm.mpe_count > nc_end && lm.mpe_count <= per_nc)
      next_mpe = nc_end;  // align: whole layer inside one fresh NeuroCell
    lm.first_mpe = next_mpe;
    next_mpe += lm.mpe_count;
    lm.first_nc = lm.first_mpe / per_nc;
    lm.last_nc = (lm.first_mpe + lm.mpe_count - 1) / per_nc;
    m.total_mcas += lm.mca_count;
    synapses += lm.synapses;
    const std::size_t n = lm.mca_size != 0 ? lm.mca_size : cfg.mca_size;
    cells += lm.mca_count * n * n;
  }
  m.total_mpes = next_mpe;
  m.total_neurocells = ceil_div(next_mpe, per_nc);
  m.utilization = static_cast<double>(synapses) / static_cast<double>(cells);
}

}  // namespace

// ------------------------------------------------------------- greedy tile --

LayerMapping tile_pool_packed(const LayerInfo& li, std::size_t layer_index,
                              const ResparcConfig& cfg) {
  // Only pooling layers have windows to pack; everything else gets the
  // paper tiling (li.spec.pool is 0 for dense/conv, so falling through
  // would divide by zero below).
  if (li.spec.kind != snn::LayerKind::kAvgPool)
    return core::tile_layer_paper(li, layer_index, cfg);
  const std::size_t N = cfg.mca_size;
  const std::size_t p = li.spec.pool;
  const std::size_t window = p * p;
  const Shape3 out = li.out_shape;
  const Shape3 in = li.in_shape;

  LayerMapping lm;
  lm.layer = layer_index;

  const std::size_t per_mca = std::max<std::size_t>(1, N / window);
  const std::size_t bands_per_group =
      window > N ? 1 : std::max<std::size_t>(1, per_mca / out.w);
  if (bands_per_group <= 1) {
    // One band already fills (or overflows) an array: the paper tiling is
    // as dense as it gets.
    return core::tile_layer_paper(li, layer_index, cfg);
  }

  const std::size_t bands = out.c * out.h;  // (channel, output-row) pairs
  for (std::size_t b = 0; b < bands; b += bands_per_group) {
    const std::size_t take = std::min(bands_per_group, bands - b);
    McaGroup g;
    g.slice.kind = SliceKind::kContiguous;
    g.slice.begin = b * p * in.w;
    g.slice.end = (b + take) * p * in.w;
    const std::size_t outputs = take * out.w;
    g.mca_count = 1;  // take * out.w <= per_mca windows by construction
    g.rows_used = outputs * window;
    g.cols_used = outputs;
    g.synapses = outputs * window;
    lm.groups.push_back(g);
  }
  lm.mux_degree = 1;
  core::finalize_layer_tiling(li, cfg, lm);
  return lm;
}

namespace {

// -------------------------------------------------------------- strategies --

/// The paper's section 3.1 mapper, verbatim: tile_layer_paper per layer and
/// sequential layer-order placement.  core::map_network composes exactly
/// these two calls, so this strategy is bit-for-bit the legacy path.
class PaperStrategy final : public MappingStrategy {
 public:
  std::string name() const override { return "paper"; }

  LayerMapping tile(const LayerInfo& li, std::size_t layer_index,
                    const ResparcConfig& cfg) const override {
    return core::tile_layer_paper(li, layer_index, cfg);
  }

  void place(Mapping& m, const ResparcConfig& cfg) const override {
    core::place_layers_sequential(m, cfg);
  }
};

/// Utilisation-first packing: shared-window conv tiling is always on,
/// pool windows pack across band boundaries, and placement ignores
/// layer-order boundaries when filling mPEs.
class GreedyPackStrategy final : public MappingStrategy {
 public:
  std::string name() const override { return "greedy-pack"; }

  LayerMapping tile(const LayerInfo& li, std::size_t layer_index,
                    const ResparcConfig& cfg) const override {
    if (li.spec.kind == LayerKind::kAvgPool)
      return tile_pool_packed(li, layer_index, cfg);
    if (li.spec.kind == LayerKind::kConv && li.fan_in <= cfg.mca_size) {
      ResparcConfig shared = cfg;
      shared.enhanced_input_sharing = true;
      return core::tile_layer_paper(li, layer_index, shared);
    }
    return core::tile_layer_paper(li, layer_index, cfg);
  }

  void place(Mapping& m, const ResparcConfig& cfg) const override {
    place_packed(m, cfg);
  }
};

/// Paper tiling with NeuroCell-aligned placement: trades a few idle mPE
/// slots for fewer layer boundaries on the serial global bus.
class BalancedStrategy final : public MappingStrategy {
 public:
  std::string name() const override { return "balanced"; }

  LayerMapping tile(const LayerInfo& li, std::size_t layer_index,
                    const ResparcConfig& cfg) const override {
    return core::tile_layer_paper(li, layer_index, cfg);
  }

  void place(Mapping& m, const ResparcConfig& cfg) const override {
    place_aligned(m, cfg);
  }
};

// ---------------------------------------------------------------- registry --

NamedRegistry<StrategyFactory>& registry() {
  static NamedRegistry<StrategyFactory> instance;
  static std::once_flag once;
  std::call_once(once, [] {
    instance.set("paper", [] { return std::make_unique<PaperStrategy>(); });
    instance.set("greedy-pack",
                 [] { return std::make_unique<GreedyPackStrategy>(); });
    instance.set("balanced",
                 [] { return std::make_unique<BalancedStrategy>(); });
    // The optimizing strategies (src/compile/search): annealing / beam
    // search over tile policy, placement and per-layer MCA size.
    instance.set("anneal", [] { return search::make_anneal_strategy(); });
    instance.set("beam", [] { return search::make_beam_strategy(); });
  });
  return instance;
}

}  // namespace

std::unique_ptr<MappingStrategy> make_strategy(const std::string& name) {
  NamedRegistry<StrategyFactory>& r = registry();
  const std::optional<StrategyFactory> factory = r.find(name);
  if (!factory)
    throw CompileError("unknown mapping strategy \"" + name +
                       "\" (registered: " + join_names(r.names()) + ")");
  return (*factory)();
}

void register_strategy(const std::string& name, StrategyFactory factory) {
  require(!name.empty(), "register_strategy: empty name");
  require(name != "auto",
          "register_strategy: \"auto\" is reserved for best-of-all selection");
  require(static_cast<bool>(factory), "register_strategy: null factory");
  registry().set(name, std::move(factory));
}

std::vector<std::string> registered_strategies() { return registry().names(); }

bool strategy_exists(const std::string& name) {
  return registry().contains(name);
}

}  // namespace resparc::compile
