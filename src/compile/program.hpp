// CompiledProgram: the self-contained artifact emitted by compile::Compiler.
//
// A program bundles everything `ResparcChip`/`api::ResparcBackend` need to
// host a network — the crossbar Mapping, the fingerprint of the config it
// was compiled for, the strategy that produced it, an analytic cost
// estimate and a per-layer utilisation report — so a network compiled once
// can be executed many times or round-tripped through a file:
//
//   compile::Compiler compiler(config);
//   compile::CompiledProgram p = compiler.compile(topology, "greedy-pack");
//   p.save_file("mnist.rcp");
//   ...
//   auto q = compile::CompiledProgram::load_file("mnist.rcp", config);
//   chip.load(topology, q);   // rejects if config fingerprint differs
//
// The on-disk format is a versioned line-oriented text format; doubles are
// written as hexfloats so a round trip is bit-exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/config.hpp"
#include "core/mapper.hpp"
#include "noc/route.hpp"
#include "snn/topology.hpp"

namespace resparc::compile {

/// Thrown when a serialized program is malformed or does not match the
/// configuration it is being loaded against.
class CompileError : public Error {
 public:
  /// Wraps `what` with the "compile error:" prefix; `code` (optional) is
  /// the machine-readable diagnostic code (docs/verification.md).
  explicit CompileError(const std::string& what, std::string code = {})
      : Error("compile error: " + what, std::move(code)) {}
};

/// One row of the per-layer utilisation report.
struct LayerUtilization {
  std::size_t layer = 0;       ///< index into Topology::layers()
  std::string kind;            ///< "dense" / "conv" / "avgpool"
  std::size_t mcas = 0;        ///< crossbar arrays deployed for the layer
  std::size_t mpes = 0;        ///< mPEs the arrays occupy
  std::size_t synapses = 0;    ///< programmed crosspoints
  double utilization = 0.0;    ///< synapses / (mcas * N^2)
};

/// Analytic score of one candidate mapping (cost_model.hpp): estimated
/// per-timestep energy and cycles at an assumed input activity, plus the
/// static quantities the estimate derives from.
struct CostEstimate {
  double energy_pj_per_step = 0.0;   ///< estimated energy per timestep
  double cycles_per_step = 0.0;      ///< estimated pipelined cycles/timestep
  double utilization = 0.0;          ///< whole-chip crossbar utilisation
  std::size_t bus_boundaries = 0;    ///< layer boundaries on the serial bus
  std::size_t total_mcas = 0;        ///< deployed crossbar arrays
  std::size_t total_neurocells = 0;  ///< occupied NeuroCells
  double activity = 0.0;             ///< assumed spikes/neuron/step

  /// Scalar used to rank candidates: energy-delay product per timestep.
  double score() const { return energy_pj_per_step * cycles_per_step; }
};

/// The compiler's output artifact.
struct CompiledProgram {
  std::string strategy;              ///< registry key that produced it
  std::string topology_name;         ///< Topology::name() of the source
  std::string topology_summary;      ///< Topology::summary(), checked on load
  std::uint64_t config_fingerprint = 0;  ///< ResparcConfig::fingerprint()
  core::Mapping mapping;             ///< the placed crossbar mapping
  /// Per-boundary Ml-NoC routes from the compiler's routing pass
  /// (docs/noc.md); layer_count + 1 entries once compiled.
  noc::RouteTable routes;
  CostEstimate cost;                 ///< analytic score of this mapping
  std::vector<LayerUtilization> report;  ///< per-layer utilisation rows

  /// Writes the program in the versioned text format.
  void save(std::ostream& os) const;
  /// Convenience: save(ofstream); returns false when the file cannot be
  /// opened or written.
  bool save_file(const std::string& path) const;

  /// Parses a program and binds it to `config` WITHOUT running the
  /// static verifier: throws CompileError (with a diagnostic code, see
  /// docs/verification.md) when the stream is malformed, carries
  /// trailing bytes after the payload, or config.fingerprint() does not
  /// equal the recorded fingerprint.  On success mapping.config ==
  /// config.  Most callers want load(); the verify layer uses parse()
  /// to collect *all* findings instead of throwing on the first.
  static CompiledProgram parse(std::istream& is,
                               const core::ResparcConfig& config);
  /// parse() plus the mandatory static verification pass
  /// (verify::verify_program): throws verify::VerifyError when the
  /// parsed program violates any structural/capacity/consistency
  /// invariant — a deserialized blob is never trusted unchecked.
  static CompiledProgram load(std::istream& is,
                              const core::ResparcConfig& config);
  /// load() from a file; throws CompileError when it cannot be opened.
  static CompiledProgram load_file(const std::string& path,
                                   const core::ResparcConfig& config);

  /// Checks the program against the network it claims to implement:
  /// layer count and per-layer synapse totals must match.  Throws
  /// CompileError on mismatch.
  void check_matches(const snn::Topology& topology) const;
};

/// Builds the per-layer utilisation report from a finished mapping.
std::vector<LayerUtilization> utilization_report(const snn::Topology& topology,
                                                 const core::Mapping& mapping);

/// Stable cache key of one (configuration, topology, strategy) compile:
/// FNV-1a over config.fingerprint(), Topology::summary() and the strategy
/// name.  Two compiles with equal keys produce interchangeable programs
/// (same fingerprint check, same topology shape, same strategy policy), so
/// this is what serve::ProgramCache names persisted blobs by
/// (docs/serving.md).  It deliberately reuses the fingerprint that
/// CompiledProgram records/checks at load time: a blob filed under a key
/// can never rebind to a different configuration.
std::uint64_t program_cache_key(const core::ResparcConfig& config,
                                const snn::Topology& topology,
                                const std::string& strategy);

}  // namespace resparc::compile
