#include "compile/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/executor.hpp"
#include "tech/memristor.hpp"
#include "tech/sram.hpp"

namespace resparc::compile {

using core::kBusCyclesPerWord;
using core::LayerMapping;
using core::Mapping;
using core::McaGroup;

namespace {

std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

/// Expected number of non-zero 64-bit words of a spike vector whose bits
/// are independently set with probability `activity` — what the zero-check
/// logic forwards in event-driven mode.
double expected_sent_words(std::size_t words, double activity,
                           bool event_driven) {
  if (!event_driven) return static_cast<double>(words);
  const double p_zero_word = std::pow(1.0 - activity, 64.0);
  return static_cast<double>(words) * (1.0 - p_zero_word);
}

}  // namespace

CostEstimate estimate_cost(const snn::Topology& topology,
                           const core::Mapping& mapping,
                           double activity) {
  return estimate_cost(topology, mapping, noc::compute_routes(mapping),
                       activity);
}

CostEstimate estimate_cost(const snn::Topology& topology,
                           const core::Mapping& mapping,
                           const noc::RouteTable& routes,
                           double activity) {
  require(topology.layer_count() == mapping.layers.size(),
          "estimate_cost: mapping does not match topology");
  require(routes.size() == topology.layer_count() + 1,
          "estimate_cost: route table does not cover every boundary");
  require(activity > 0.0 && activity <= 1.0,
          "estimate_cost: activity must be in (0,1]");

  const core::ResparcConfig& cfg = mapping.config;
  const tech::Technology& t = cfg.technology;
  const tech::DigitalCosts& d = t.digital;
  const tech::Memristor device{t.memristor};
  const double cell_pj = device.mean_cell_read_energy_pj();
  const double cell_off_pj = device.cell_read_energy_pj(device.g_min());
  const double sneak = device.params().sneak_leak_fraction;
  const tech::SramModel sram{
      {.capacity_bytes = cfg.input_sram_bytes, .word_bits = 64}};

  double energy_pj = 0.0;
  double stage_max = 0.0;
  std::size_t bus_boundaries = 0;
  std::size_t leak_columns = 0;

  // -- input broadcast from the SRAM ----------------------------------------
  {
    const std::size_t words = word_count(topology.input_neurons());
    const double sent = expected_sent_words(words, activity, cfg.event_driven);
    energy_pj += sent * (sram.read_energy_pj() + sram.write_energy_pj() +
                         d.bus_word_pj);
    stage_max = std::max(stage_max, kBusCyclesPerWord * sent);
    ++bus_boundaries;
  }

  for (std::size_t l = 0; l < topology.layer_count(); ++l) {
    const snn::LayerInfo& li = topology.layers()[l];
    const LayerMapping& lm = mapping.layers[l];
    // Heterogeneous chips size arrays per layer (Mapping::layer_mca_size);
    // homogeneous mappings resolve to cfg.mca_size, keeping every term
    // bit-for-bit what it was.
    const std::size_t N = mapping.layer_mca_size(l);
    leak_columns += lm.mca_count * N;

    // -- crossbar reads + per-array periphery -------------------------------
    for (const McaGroup& g : lm.groups) {
      const double driven_rows =
          activity * static_cast<double>(g.rows_used * g.mca_count);
      const double driven_cells = driven_rows * static_cast<double>(N);
      const double used_cells = activity * static_cast<double>(g.synapses);
      energy_pj += used_cells * cell_pj +
                   std::max(0.0, driven_cells - used_cells) * cell_off_pj;
      if (sneak > 0.0) {
        const double total_cells = static_cast<double>(g.mca_count) *
                                   static_cast<double>(N * N);
        energy_pj +=
            sneak * std::max(0.0, total_cells - driven_cells) * cell_off_pj;
      }
      energy_pj += static_cast<double>(g.mca_count) * d.mca_control_pj +
                   static_cast<double>(g.mca_count * N) *
                       (d.column_interface_pj + d.buffer_bit_pj);
      energy_pj +=
          static_cast<double>(g.cols_used) * d.neuron_integrate_pj;
    }

    // -- neuron firing + time-multiplex transfers ---------------------------
    energy_pj += activity * static_cast<double>(li.neurons) * d.neuron_fire_pj;
    energy_pj += static_cast<double>(li.neurons * lm.ccu_transfers_per_neuron) *
                 d.ccu_transfer_pj;

    // -- output transfer toward the next layer ------------------------------
    const std::size_t words = word_count(li.neurons);
    const double sent = expected_sent_words(words, activity, cfg.event_driven);
    // The routing pass decided the boundary's path; route.uses_bus agrees
    // with Mapping::boundary_uses_bus by construction (final egress is a
    // bus route).
    const bool via_bus = routes.at(l + 1).uses_bus;
    if (via_bus) {
      energy_pj += sent * (d.bus_word_pj + sram.read_energy_pj() +
                           sram.write_energy_pj()) +
                   d.gcu_event_pj;
      ++bus_boundaries;
    } else {
      energy_pj += sent * d.switch_flit_pj;
    }
    energy_pj +=
        sent * static_cast<double>(2 * t.flit_bits + 16) * d.buffer_bit_pj;

    const double compute_c = static_cast<double>(lm.mux_cycles) + 1.0;
    const double transfer_c =
        via_bus ? kBusCyclesPerWord * sent
                : std::ceil(sent / static_cast<double>(cfg.nc_dim));
    stage_max = std::max(stage_max, std::max(compute_c, transfer_c));
  }

  // -- leakage over one steady-state (pipelined) step ------------------------
  const double leak_w =
      static_cast<double>(leak_columns) * d.mca_column_leak_w +
      sram.leakage_w();
  const double step_ns = stage_max * 1e3 / t.resparc_clock_mhz;
  energy_pj += leak_w * step_ns * 1e3;  // W*ns -> pJ

  CostEstimate cost;
  cost.energy_pj_per_step = energy_pj;
  cost.cycles_per_step = stage_max;
  cost.utilization = mapping.utilization;
  cost.bus_boundaries = bus_boundaries;
  cost.total_mcas = mapping.total_mcas;
  cost.total_neurocells = mapping.total_neurocells;
  cost.activity = activity;
  return cost;
}

}  // namespace resparc::compile
