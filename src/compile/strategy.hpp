// MappingStrategy: the pluggable tile/place seam of the compiler.
//
// A strategy decides (a) how each layer's connectivity matrix is cut into
// MCA groups (the tile pass) and (b) where the resulting MCAs sit in the
// mPE/NeuroCell hierarchy (the place pass).  Strategies are looked up by
// string key from a registry that mirrors api::make_accelerator, so new
// mappers plug in without touching the compiler or any caller:
//
//   "paper"        the hierarchical mapper of paper section 3.1, verbatim
//                  (core::map_network refactored behind this interface) —
//                  bit-for-bit identical RunReports to the legacy path
//   "greedy-pack"  utilisation-first: shared-window conv tiling regardless
//                  of the config flag, pool windows packed across
//                  row/channel boundaries, MCAs packed into mPEs ignoring
//                  layer-order boundaries
//   "balanced"     paper tiling, but placement aligns layers to NeuroCell
//                  boundaries so consecutive layers share a NeuroCell when
//                  they fit — minimising inter-NeuroCell bus crossings
//   "anneal"       simulated annealing over per-layer tile policy, MCA size
//                  (heterogeneous mixes) and NeuroCell alignment, scored by
//                  a pluggable CostOracle (src/compile/search, docs/compile.md)
//   "beam"         deterministic beam search over the same move space
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/mapper.hpp"
#include "snn/topology.hpp"

namespace resparc::compile {

/// One mapping policy: how layers tile into MCA groups and how MCAs place
/// onto the mPE/NeuroCell hierarchy.  Implementations must be stateless
/// (const methods, no fields mutated by tile/place) so one instance can
/// compile many topologies.
class MappingStrategy {
 public:
  virtual ~MappingStrategy() = default;

  /// Registry key of this strategy.
  virtual std::string name() const = 0;

  /// Tile pass for one layer: fill `groups` + `mux_degree` and the derived
  /// per-layer counts (use core::finalize_layer_tiling).  Placement fields
  /// are assigned later by place().
  virtual core::LayerMapping tile(const snn::LayerInfo& li,
                                  std::size_t layer_index,
                                  const core::ResparcConfig& config) const = 0;

  /// Place pass: assign first_mpe/first_nc/last_nc per layer and the
  /// whole-chip totals over the already-tiled `m.layers`.
  virtual void place(core::Mapping& m,
                     const core::ResparcConfig& config) const = 0;

  /// Optional whole-program optimization pass, run by the compiler after
  /// place() and before the routing/cost passes.  One-shot heuristics keep
  /// the default no-op; the search strategies (src/compile/search) replace
  /// `m` wholesale with the best mapping found — including per-layer MCA
  /// size overrides — and must leave it re-placeable (tiled + placed, all
  /// totals consistent).  `topology` is the network `m` was tiled from.
  virtual void optimize(const snn::Topology& topology, core::Mapping& m,
                        const core::ResparcConfig& config) const {
    (void)topology;
    (void)m;
    (void)config;
  }
};

/// Factory signature strategies register under (mirrors BackendFactory).
using StrategyFactory = std::function<std::unique_ptr<MappingStrategy>()>;

/// Creates the strategy registered under `name`; throws CompileError for
/// unknown names (the message lists the registered ones).
std::unique_ptr<MappingStrategy> make_strategy(const std::string& name);

/// Registers (or replaces) a strategy under `name`.  Thread-safe.
void register_strategy(const std::string& name, StrategyFactory factory);

/// Sorted names of every registered strategy.
std::vector<std::string> registered_strategies();

/// True when `name` is a registered strategy key.
bool strategy_exists(const std::string& name);

/// Pool tiling that packs windows across output-row and channel boundaries
/// (greedy-pack's pool policy, exposed for the search strategies' tile
/// moves).  Falls back to core::tile_layer_paper when one band already
/// fills an array.
core::LayerMapping tile_pool_packed(const snn::LayerInfo& li,
                                    std::size_t layer_index,
                                    const core::ResparcConfig& config);

}  // namespace resparc::compile
