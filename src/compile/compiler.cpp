#include "compile/compiler.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "compile/cost_model.hpp"
#include "compile/repair.hpp"
#include "verify/verifier.hpp"

namespace resparc::compile {

namespace {

/// Legalize pass: every layer must be non-empty and physically mappable
/// onto the configured fabric (a dense/conv column always fits — columns
/// tile freely — but each output neuron's rows must be reachable within
/// the time-multiplex scheme, which only requires a positive MCA size;
/// what can fail is an empty layer or an impossible shape).
void legalize_pass(const snn::Topology& topology,
                   const core::ResparcConfig& config) {
  config.validate();
  for (std::size_t l = 0; l < topology.layer_count(); ++l) {
    const snn::LayerInfo& li = topology.layers()[l];
    if (li.neurons == 0)
      throw MappingError("legalize: layer " + std::to_string(l) +
                               " has zero neurons");
    if (li.fan_in == 0)
      throw MappingError("legalize: layer " + std::to_string(l) +
                               " has zero fan-in");
  }
}

}  // namespace

Compiler::Compiler(core::ResparcConfig config, CompileOptions options)
    : config_(std::move(config)), options_(options) {
  config_.validate();
}

CompiledProgram Compiler::run_passes(const snn::Topology& topology,
                                     const MappingStrategy& strategy) const {
  // -- legalize --------------------------------------------------------------
  legalize_pass(topology, config_);

  CompiledProgram program;
  program.strategy = strategy.name();
  program.topology_name = topology.name();
  program.topology_summary = topology.summary();
  program.config_fingerprint = config_.fingerprint();
  program.mapping.config = config_;

  // -- tile ------------------------------------------------------------------
  for (std::size_t l = 0; l < topology.layer_count(); ++l)
    program.mapping.layers.push_back(
        strategy.tile(topology.layers()[l], l, config_));

  // -- place -----------------------------------------------------------------
  strategy.place(program.mapping, config_);

  // -- optimize --------------------------------------------------------------
  // Whole-program search (no-op for the one-shot heuristics): the search
  // strategies retile/replace/resize layers here, so every later pass —
  // repair, routing, cost, verify — describes the searched mapping.
  strategy.optimize(topology, program.mapping, config_);

  // -- repair ----------------------------------------------------------------
  // Fault-aware re-placement around failed mPEs (no-op unless the config
  // injects faults with repair enabled); runs before routing so routes
  // and costs describe the repaired placement (docs/reliability.md).
  repair_placement(program.mapping);

  // -- route -----------------------------------------------------------------
  // The real routing pass: one Ml-NoC Route per layer boundary (input
  // broadcast, inter-layer edges, final egress), serialized with the
  // program so the executor replays on exactly the routes the candidate
  // was scored with (docs/noc.md).
  program.routes = noc::compute_routes(program.mapping);

  // -- cost-estimate ---------------------------------------------------------
  program.cost = estimate_cost(topology, program.mapping, program.routes,
                               options_.activity);
  program.report = utilization_report(topology, program.mapping);

  // -- verify ----------------------------------------------------------------
  // Mandatory post-pass: the emitted program must satisfy every invariant
  // the earlier passes claim to establish (docs/verification.md).  This
  // is the strategy-independent contract — a buggy or adversarial
  // MappingStrategy cannot emit a program that overflows an MCA, skips a
  // boundary route, or reports stale cost totals.
  verify::VerifyOptions vo;
  vo.topology = &topology;
  verify::verify_program(program, vo)
      .raise_if_errors("compile(" + strategy.name() + ")");
  return program;
}

CompiledProgram Compiler::compile(const snn::Topology& topology,
                                  const std::string& strategy) const {
  if (strategy == "auto") return compile_best(topology);
  return run_passes(topology, *make_strategy(strategy));
}

CompiledProgram Compiler::compile_best(const snn::Topology& topology) const {
  CompiledProgram best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const std::string& name : registered_strategies()) {
    CompiledProgram candidate = run_passes(topology, *make_strategy(name));
    if (candidate.cost.score() < best_score) {
      best_score = candidate.cost.score();
      best = std::move(candidate);
    }
  }
  require(std::isfinite(best_score), "compile_best: no registered strategies");
  return best;
}

}  // namespace resparc::compile
