#include "tech/sram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace resparc::tech {
namespace {

// Anchor points distilled from published CACTI 6.0 runs at 45 nm
// (cf. Muralimanohar et al., MICRO'07, and the ISAAC/PRIME design studies
// that tabulate 45/32 nm SRAM costs):
//   32 KB, 64-bit port  : ~10 pJ/read, ~5-15 mW/MB leakage (cell flavour), ~0.25 mm^2/MB
//   1 MB,  64-bit port  : ~55 pJ/read
// Fitting E = kE * sqrt(capacity_KB) through those points gives
// kE ~ 1.75 pJ/sqrt(KB) at 64-bit width.
constexpr double kReadEnergyCoeff_pj_per_sqrtKB = 1.75;
constexpr double kWritePenalty = 1.2;        // writes drive full bitline swing
constexpr double kLeakage_w_per_MB = 0.003;  // 3 mW per MB (high-Vt 6T, 45 nm)
constexpr double kArea_mm2_per_MB = 0.25;    // dense 6T array + periphery
constexpr double kAreaPeriphery_mm2 = 0.005; // fixed decoder/IO overhead

}  // namespace

SramModel::SramModel(SramConfig config) : config_(config) {
  require(config_.capacity_bytes >= 64, "SRAM capacity must be >= 64 B");
  require(config_.word_bits >= 8 && config_.word_bits <= 1024,
          "SRAM word width must be in [8,1024] bits");
  require(config_.leakage_derate > 0.0 && config_.leakage_derate <= 1.0,
          "SRAM leakage derate must be in (0,1]");
}

double SramModel::read_energy_pj() const {
  const double capacity_kb = static_cast<double>(config_.capacity_bytes) / 1024.0;
  const double width_scale = static_cast<double>(config_.word_bits) / 64.0;
  return kReadEnergyCoeff_pj_per_sqrtKB * std::sqrt(capacity_kb) * width_scale;
}

double SramModel::write_energy_pj() const { return kWritePenalty * read_energy_pj(); }

double SramModel::leakage_w() const {
  const double capacity_mb =
      static_cast<double>(config_.capacity_bytes) / (1024.0 * 1024.0);
  return kLeakage_w_per_MB * capacity_mb * config_.leakage_derate;
}

double SramModel::area_mm2() const {
  const double capacity_mb =
      static_cast<double>(config_.capacity_bytes) / (1024.0 * 1024.0);
  return kArea_mm2_per_MB * capacity_mb + kAreaPeriphery_mm2;
}

}  // namespace resparc::tech
