// CACTI-lite: analytic SRAM energy/leakage/area model.
//
// The paper models its input memory and the CMOS baseline's weight memory
// with CACTI 6.0 [Muralimanohar MICRO'07].  CACTI itself is a large tool;
// what the architecture study consumes from it is three scalar curves:
// dynamic energy per access, leakage power, and area, as functions of
// capacity at 45 nm.  CACTI-lite reproduces those curves as fitted power
// laws anchored on published CACTI 6.0 outputs at 45 nm (constants and
// anchor points documented at the definitions in sram.cpp).
#pragma once

#include <cstddef>

namespace resparc::tech {

/// Configuration of one SRAM macro.
struct SramConfig {
  std::size_t capacity_bytes = 32 * 1024;  ///< total storage
  std::size_t word_bits = 64;              ///< read/write port width
  /// Relative leakage of the chosen cell flavour (1.0 = standard 6T;
  /// ~0.3 = high-Vt low-leakage arrays used for large weight memories).
  double leakage_derate = 1.0;
};

/// Analytic SRAM cost model at 45 nm.
class SramModel {
 public:
  explicit SramModel(SramConfig config);

  const SramConfig& config() const { return config_; }

  /// Dynamic energy of one word read (pJ).  Grows ~sqrt(capacity) —
  /// longer bitlines/wordlines — and linearly with the port width.
  double read_energy_pj() const;

  /// Dynamic energy of one word write (pJ); ~1.2x the read energy.
  double write_energy_pj() const;

  /// Standby leakage power (W); linear in capacity.
  double leakage_w() const;

  /// Macro area (mm^2); linear in capacity plus periphery overhead.
  double area_mm2() const;

 private:
  SramConfig config_;
};

}  // namespace resparc::tech
