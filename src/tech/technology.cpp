#include "tech/technology.hpp"

#include "common/error.hpp"

namespace resparc::tech {

void Technology::validate() const {
  memristor.validate();
  require(resparc_clock_mhz > 0.0, "RESPARC clock must be positive");
  require(baseline_clock_mhz > 0.0, "baseline clock must be positive");
  require(flit_bits > 0 && flit_bits <= 512, "flit width must be in (0,512]");
}

Technology default_technology() {
  Technology t;
  t.name = "default-45nm";
  return t;
}

Technology pcm_technology() {
  Technology t;
  t.name = "pcm-45nm";
  t.memristor = pcm_params();
  return t;
}

Technology agsi_technology() {
  Technology t;
  t.name = "agsi-45nm";
  t.memristor = agsi_params();
  return t;
}

}  // namespace resparc::tech
