#include "tech/crossbar_model.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/kernels.hpp"

namespace resparc::tech {

CrossbarModel::CrossbarModel(std::size_t rows, std::size_t cols, Memristor device)
    : rows_(rows), cols_(cols), device_(std::move(device)),
      g_(rows * cols, device_.g_min()) {
  require(rows_ > 0 && cols_ > 0, "crossbar dimensions must be positive");
}

void CrossbarModel::program(const Matrix& magnitudes,
                            const CrossbarNonIdealities& ni, Rng* rng) {
  if (magnitudes.rows() != rows_ || magnitudes.cols() != cols_)
    throw ShapeError("CrossbarModel::program: magnitude matrix shape mismatch");
  ni_ = ni;
  const bool stochastic =
      ni.stuck_off_probability > 0.0 || ni.stuck_on_probability > 0.0 ||
      ni.programming_sigma > 0.0;
  require(!stochastic || rng != nullptr,
          "stochastic non-idealities require an Rng");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      double g = device_.conductance(magnitudes(r, c));
      if (stochastic) {
        if (rng->bernoulli(ni.stuck_off_probability)) {
          g = device_.g_min();
        } else if (rng->bernoulli(ni.stuck_on_probability)) {
          g = device_.g_max();
        } else if (ni.programming_sigma > 0.0) {
          g *= std::exp(rng->normal(0.0, ni.programming_sigma));
          g = std::min(std::max(g, device_.g_min()), device_.g_max());
        }
      }
      g_[r * cols_ + c] = g;
    }
  }
}

double CrossbarModel::worst_case_ir_attenuation() const {
  if (ni_.wire_resistance_ohm <= 0.0) return 1.0;
  // First-order lumped model: the farthest cell sees (rows+cols) wire
  // segments in series with the device.  Attenuation = R_dev/(R_dev+R_wire).
  const double r_dev = 1.0 / device_.g_max();  // worst case: lowest R device
  const double r_wire =
      ni_.wire_resistance_ohm * static_cast<double>(rows_ + cols_);
  return r_dev / (r_dev + r_wire);
}

void CrossbarModel::read_currents(std::span<const std::uint8_t> spikes,
                                  std::span<double> currents_out) const {
  if (spikes.size() != rows_ || currents_out.size() != cols_)
    throw ShapeError("CrossbarModel::read_currents: span size mismatch");
  for (auto& i : currents_out) i = 0.0;
  const double v = device_.params().read_voltage_v;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!spikes[r]) continue;
    kernels::scaled_row_add(currents_out.data(), v, g_.data() + r * cols_,
                            cols_);
  }
  const double atten = worst_case_ir_attenuation();
  if (atten < 1.0)
    for (auto& i : currents_out) i *= atten;
}

void CrossbarModel::read_currents(std::span<const std::uint64_t> spike_words,
                                  std::span<double> currents_out) const {
  if (spike_words.size() < (rows_ + 63) / 64 || currents_out.size() != cols_)
    throw ShapeError("CrossbarModel::read_currents: span size mismatch");
  for (auto& i : currents_out) i = 0.0;
  const double v = device_.params().read_voltage_v;
  // Same ascending row order as the byte overload — identical float
  // accumulation sequence; the tail word is masked so bits past rows()
  // never select a row.
  for (std::size_t base = 0; base < rows_; base += 64) {
    std::uint64_t word = spike_words[base >> 6];
    const std::size_t chunk = rows_ - base;
    if (chunk < 64) word &= (std::uint64_t{1} << chunk) - 1;
    while (word) {
      const std::size_t r =
          base + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      kernels::scaled_row_add(currents_out.data(), v, g_.data() + r * cols_,
                              cols_);
    }
  }
  const double atten = worst_case_ir_attenuation();
  if (atten < 1.0)
    for (auto& i : currents_out) i *= atten;
}

double CrossbarModel::read_energy_pj(std::span<const std::uint8_t> spikes) const {
  if (spikes.size() != rows_)
    throw ShapeError("CrossbarModel::read_energy_pj: span size mismatch");
  double energy = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = g_.data() + r * cols_;
    double row_g = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row_g += row[c];
    if (spikes[r]) {
      energy += device_.cell_read_energy_pj(row_g);
    } else if (device_.params().sneak_leak_fraction > 0.0) {
      energy += device_.params().sneak_leak_fraction * device_.cell_read_energy_pj(row_g);
    }
  }
  return energy;
}

double CrossbarModel::mean_read_energy_pj(double active_rows,
                                          double used_cols) const {
  const double per_cell = device_.mean_cell_read_energy_pj();
  double energy = active_rows * used_cols * per_cell;
  if (device_.params().sneak_leak_fraction > 0.0) {
    const double idle_rows = static_cast<double>(rows_) - active_rows;
    energy += device_.params().sneak_leak_fraction * idle_rows * used_cols * per_cell;
  }
  return energy;
}

double CrossbarModel::conductance_at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_)
    throw ShapeError("CrossbarModel::conductance_at out of range");
  return g_[r * cols_ + c];
}

void CrossbarModel::set_conductance(std::size_t r, std::size_t c, double g) {
  if (r >= rows_ || c >= cols_)
    throw ShapeError("CrossbarModel::set_conductance out of range");
  g_[r * cols_ + c] = g;
}

}  // namespace resparc::tech
