// Electrical model of one memristive crossbar array (MCA).
//
// The crossbar is the analog inner-product unit of the paper (Fig. 2): rows
// are driven with spike voltages, every column wire sums I = sum_j V_j*G_ij
// by Kirchhoff's current law.  This class owns the programmed conductance
// state of one array and provides
//   * the functional result (column currents for a binary spike vector),
//   * the energy of a read (depends on which rows were active),
//   * optional non-idealities (wire IR drop attenuation, sneak leakage,
//     stuck devices) for the reliability study that motivates small MCAs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "tech/memristor.hpp"

namespace resparc::tech {

/// Non-ideality knobs for the reliability study (all off by default).
struct CrossbarNonIdealities {
  /// Per-segment wire resistance (ohm) between adjacent cross-points; models
  /// the parasitic IR drop that worsens with array size [Liang TED'10].
  double wire_resistance_ohm = 0.0;
  /// Probability a device is stuck at G_min (fabrication defect).
  double stuck_off_probability = 0.0;
  /// Probability a device is stuck at G_max.
  double stuck_on_probability = 0.0;
  /// Std-dev of multiplicative lognormal programming noise on conductance.
  double programming_sigma = 0.0;
};

/// One programmed crossbar array of `rows x cols` devices.
class CrossbarModel {
 public:
  /// Creates an array with all devices at G_min.
  CrossbarModel(std::size_t rows, std::size_t cols, Memristor device);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const Memristor& device() const { return device_; }

  /// Programs the array from normalised weight magnitudes in [0,1]
  /// (rows x cols, input-major).  Magnitudes are quantised to device levels.
  /// Non-idealities (stuck cells, programming noise) are applied at program
  /// time, as in real deployment.
  void program(const Matrix& magnitudes, const CrossbarNonIdealities& ni = {},
               Rng* rng = nullptr);

  /// Column currents (amps) for a binary spike input: I_c = sum_r s_r V G_rc,
  /// attenuated by the IR-drop factor when wire resistance is modelled.
  void read_currents(std::span<const std::uint8_t> spikes,
                     std::span<double> currents_out) const;

  /// Packed-word overload: `spike_words` holds the row spikes bit-packed
  /// little-endian (bit r%64 of word r/64 = row r, the SpikeVector layout);
  /// bits at or beyond rows() are ignored.  Active rows decode in ascending
  /// order, so the result is bit-for-bit what the byte overload computes
  /// (tests/test_packed_kernels.cpp).
  void read_currents(std::span<const std::uint64_t> spike_words,
                     std::span<double> currents_out) const;

  /// Energy (pJ) of one read with the given spike pattern: active rows
  /// dissipate V^2 G t in every device on the row; unselected rows leak the
  /// configured sneak fraction.
  double read_energy_pj(std::span<const std::uint8_t> spikes) const;

  /// Analytic mean read energy (pJ) for `active_rows` active rows over
  /// `used_cols` mapped columns at the mean programmed conductance; the
  /// architecture-level cost model uses this instead of per-cell state.
  double mean_read_energy_pj(double active_rows, double used_cols) const;

  /// Multiplicative signal attenuation at the far corner of the array due to
  /// wire IR drop; 1.0 when ideal.  Grows worse (smaller) with array size —
  /// the quantitative reason the paper restricts MCA sizes (section 1).
  double worst_case_ir_attenuation() const;

  /// Programmed conductance of one device (siemens).
  double conductance_at(std::size_t r, std::size_t c) const;

  /// Overwrites the programmed conductance of one device (siemens);
  /// the mutation hook tech::FaultModel::perturb pins stuck cells and
  /// applies variation through after program().
  void set_conductance(std::size_t r, std::size_t c, double g);

 private:
  std::size_t rows_;
  std::size_t cols_;
  Memristor device_;
  CrossbarNonIdealities ni_{};
  std::vector<double> g_;  // row-major conductances (siemens)
};

}  // namespace resparc::tech
