#include "tech/memristor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace resparc::tech {

void MemristorParams::validate() const {
  require(r_on_ohm > 0.0, "memristor R_on must be positive");
  require(r_off_ohm > r_on_ohm, "memristor R_off must exceed R_on");
  require(bits >= 1 && bits <= 8, "memristor bits must be in [1,8]");
  require(read_voltage_v > 0.0, "memristor read voltage must be positive");
  require(read_pulse_ns > 0.0, "memristor read pulse must be positive");
  require(sneak_leak_fraction >= 0.0 && sneak_leak_fraction < 1.0,
          "sneak leak fraction must be in [0,1)");
}

Memristor::Memristor(MemristorParams params) : params_(std::move(params)) {
  params_.validate();
}

double Memristor::quantize_magnitude(double m) const {
  const double clamped = std::clamp(m, 0.0, 1.0);
  const double steps = static_cast<double>(levels() - 1);
  return std::round(clamped * steps) / steps;
}

double Memristor::conductance(double m) const {
  return g_min() + quantize_magnitude(m) * (g_max() - g_min());
}

double Memristor::cell_read_energy_pj(double conductance_s) const {
  // E = V^2 * G * t; volts^2 * siemens * ns = nano-joule-ish scale:
  // V^2[V^2] * G[S] * t[s] = J; with t in ns the product is J*1e-9 = 1e3 pJ.
  const double v2 = params_.read_voltage_v * params_.read_voltage_v;
  return v2 * conductance_s * params_.read_pulse_ns * 1e3;
}

double Memristor::mean_cell_read_energy_pj() const {
  return cell_read_energy_pj(0.5 * (g_min() + g_max()));
}

MemristorParams pcm_params() {
  MemristorParams p;
  p.name = "PCM";
  p.r_on_ohm = 20e3;    // paper section 4.2: 20 kOhm - 200 kOhm range
  p.r_off_ohm = 200e3;
  p.bits = 4;           // 16 levels
  p.read_voltage_v = 0.5;
  p.read_pulse_ns = 1.0;
  // Selectorless-array sneak paths: each half-selected cell leaks a few
  // percent of a full read per access [Liang TED'10]; this is the paper's
  // stated reason large crossbars become energy-infeasible.
  p.sneak_leak_fraction = 0.05;
  return p;
}

MemristorParams agsi_params() {
  MemristorParams p;
  p.name = "Ag-Si";
  // Jo et al. report a wider, more resistive window; smaller currents per
  // cell hence lower read energy but tighter level margins.
  p.r_on_ohm = 100e3;
  p.r_off_ohm = 1e6;
  p.bits = 4;
  p.read_voltage_v = 0.5;
  p.read_pulse_ns = 1.0;
  return p;
}

}  // namespace resparc::tech
