// Digital component energy/area constants at 45 nm.
//
// The paper obtained these numbers by synthesising the RTL of the buffers,
// switches and control logic with Synopsys Design Compiler on IBM 45 nm and
// reading power with Power Compiler (section 4.2).  Those tools and
// libraries are proprietary, so this reproduction uses analytic per-event
// energies whose values sit inside the envelope of published 45 nm design
// studies (DianNao [ASPLOS'14], ISAAC [ISCA'16], PRIME [ISCA'16], TrueNorth
// [TCAD'15]).  Every constant is documented with its provenance; the
// benches reproduce the paper's *normalised* results, which depend on the
// ratios rather than the absolute scale of these numbers.
#pragma once

namespace resparc::tech {

/// Per-event energies and static costs of 45 nm digital components.
struct DigitalCosts {
  // --- data movement ---------------------------------------------------

  /// Read-or-write of one bit of a small SRAM/register-file buffer
  /// (iBUFF/oBUFF/tBUFF, FIFO cells).  DianNao reports ~0.9 pJ for a 64-bit
  /// NBin access => ~15 fJ/bit; small buffers at 45 nm span 10-40 fJ/bit.
  double buffer_bit_pj = 0.020;

  /// One 64-bit spike-packet flit traversing a programmable switch
  /// (arbitration + crossbar mux + ~0.2 mm of local wire).  NoC routers at
  /// 45 nm cost 1-5 pJ/flit/hop (Orion-class estimates).
  double switch_flit_pj = 2.0;

  /// One 64-bit word broadcast over the global IO bus (millimetre-scale
  /// wire, ~0.15 pJ/bit/mm at 45 nm over ~1 mm, plus bus drivers).
  double bus_word_pj = 10.0;

  /// Gated analog current transfer between neighbouring mPEs (CCU event):
  /// a transmission-gate enable per partial current — gate capacitance
  /// switching only, far below a digital packet hop.
  double ccu_transfer_pj = 0.1;

  // --- control ----------------------------------------------------------

  /// Local-control-unit work per MCA activation (sequencing one read,
  /// bookkeeping of the time-multiplex step).
  double mca_control_pj = 1.0;

  /// Global-control-unit work per NeuroCell event (flag update, broadcast
  /// tag match).
  double gcu_event_pj = 1.5;

  // --- neuron circuit -----------------------------------------------------

  /// Integration of one MCA partial current onto a neuron membrane
  /// capacitor (analog accumulate; Joubert et al., IJCNN'12 report analog
  /// integrate & fire at the 0.1-2 pJ/event scale).
  double neuron_integrate_pj = 0.05;

  /// Threshold comparison + spike generation + reset when a neuron fires.
  double neuron_fire_pj = 0.9;

  // --- CMOS baseline datapath ----------------------------------------------

  /// 4-bit multiply-accumulate in a neuron unit (NU).  16-bit MACs at 45 nm
  /// cost ~1 pJ; a 4-bit accumulate datapath is an order less.
  double mac4_pj = 0.15;

  /// Per-synaptic-event FIFO/register traffic in an NU beyond the MAC
  /// itself (operand staging, pointer updates), per 4-bit operand.
  double nu_overhead_pj = 0.60;

  /// Leakage power of the baseline's logic core (16 NUs + control), watts.
  /// Fig. 9 reports 35.1 mW total power; leakage at 45 nm LP is a few mW.
  double core_leakage_w = 0.0005;

  /// Peripheral work per MCA column per read: column precharge + sense /
  /// neuron-interface mux.  Exists for every physical column, used or not
  /// — together with the N-bit iBUFF read this makes the peripheral cost
  /// of an activation proportional to the array size, the scaling at the
  /// centre of the Fig. 12 analysis.
  double column_interface_pj = 0.05;

  /// Standby leakage of the per-column periphery (sense path, neuron
  /// interface mux), watts per column.  The crossbar cells themselves are
  /// non-volatile and leak nothing; what remains idles per column of
  /// deployed array.  0.1 uW/column puts a 64-MCA NeuroCell-64 at
  /// ~0.16 mW, a small fraction of its 53.2 mW active power (Fig. 8).
  double mca_column_leak_w = 4e-8;

  // --- area (mm^2), for the Fig. 8/9 metric tables --------------------------

  double area_per_mpe_mm2 = 0.012;      ///< buffers+neurons+LCU of one mPE
  double area_per_switch_mm2 = 0.008;   ///< programmable switch
  double area_gcu_mm2 = 0.020;          ///< global control + registers
  double area_per_nu_mm2 = 0.010;       ///< one baseline neuron unit
  double area_baseline_ctrl_mm2 = 0.03; ///< baseline control + FIFO fabric

  // --- gate-count coefficients (for the Fig. 8/9 tables) -------------------

  double gates_per_mpe = 3200.0;
  double gates_per_switch = 1500.0;
  double gates_gcu = 2800.0;
  double gates_per_nu = 2300.0;
  double gates_baseline_ctrl = 8000.0;
};

}  // namespace resparc::tech
