// Memristive synapse device model.
//
// Models the programmable two-terminal resistive device at each crossbar
// cross-point.  The paper (section 4.2) uses a resistance range of
// 20 kOhm - 200 kOhm with 16 levels (4 bits), representative of PCM and
// Ag-Si technologies; both presets are provided.
//
// Weight encoding: a signed synaptic weight w in [-w_max, +w_max] is stored
// differentially on a (G+, G-) device pair, the standard scheme for signed
// weights on crossbars.  Each device is programmed to one of `levels()`
// evenly spaced conductances in [G_min, G_max]; quantisation of w therefore
// has 2^bits levels per polarity.
#pragma once

#include <cstdint>
#include <string>

namespace resparc::tech {

/// Static parameters of a memristive device technology.
struct MemristorParams {
  std::string name = "generic";  ///< technology label (reports only)
  double r_on_ohm = 20e3;        ///< lowest programmable resistance (R_on)
  double r_off_ohm = 200e3;      ///< highest programmable resistance (R_off)
  int bits = 4;                  ///< weight discretisation (levels = 2^bits)
  double read_voltage_v = 0.5;   ///< read voltage = Vdd/2 (CMOS neuron interface)
  double read_pulse_ns = 1.0;    ///< duration of one read (spike) pulse
  /// Fraction of G_max leaked by each *unselected* cell during a read due to
  /// sneak paths; 0 disables the non-ideality (used by the reliability study).
  double sneak_leak_fraction = 0.0;

  /// Validates the physical constraints; throws ConfigError on violation.
  void validate() const;
};

/// A memristive device technology: conductance mapping and per-read energy.
class Memristor {
 public:
  /// Constructs from validated parameters.
  explicit Memristor(MemristorParams params);

  const MemristorParams& params() const { return params_; }

  /// Maximum conductance G_on = 1/R_on (siemens).
  double g_max() const { return 1.0 / params_.r_on_ohm; }

  /// Minimum conductance G_off = 1/R_off (siemens).
  double g_min() const { return 1.0 / params_.r_off_ohm; }

  /// Number of programmable levels per device (= 2^bits).
  int levels() const { return 1 << params_.bits; }

  /// Quantises a normalised magnitude m in [0,1] to the nearest device level
  /// and returns the re-normalised magnitude in [0,1].  Values outside [0,1]
  /// are clamped first (the trainer normalises weights before programming).
  double quantize_magnitude(double m) const;

  /// Conductance programmed for normalised magnitude m in [0,1]:
  /// G = G_off + m_q * (G_on - G_off), with m_q the quantised magnitude.
  double conductance(double m) const;

  /// Energy in picojoules dissipated by ONE cell during one read pulse when
  /// its row is driven: E = V^2 * G * t_read.
  double cell_read_energy_pj(double conductance_s) const;

  /// Energy of a read on a cell at the mean conductance; used by analytic
  /// cost models that do not track individual cell states.
  double mean_cell_read_energy_pj() const;

 private:
  MemristorParams params_;
};

/// Phase-change-memory preset (Jackson et al., JETC'13 ballpark).
MemristorParams pcm_params();

/// Ag-Si memristor preset (Jo et al., Nano Letters 2010 ballpark).
MemristorParams agsi_params();

}  // namespace resparc::tech
