// Bundled technology description consumed by the architecture models.
//
// A Technology fixes everything below the micro-architecture: the memristive
// device, the digital 45 nm component costs, and the two clock domains the
// paper uses (RESPARC NeuroCells at 200 MHz, the CMOS baseline at 1 GHz).
#pragma once

#include <string>

#include "tech/memristor.hpp"
#include "tech/params45nm.hpp"

namespace resparc::tech {

/// Full technology operating point.
struct Technology {
  std::string name = "default-45nm";
  MemristorParams memristor = pcm_params();
  DigitalCosts digital{};
  double resparc_clock_mhz = 200.0;   ///< Fig. 8: NeuroCell frequency
  double baseline_clock_mhz = 1000.0; ///< Fig. 9: CMOS baseline frequency
  int flit_bits = 64;                 ///< spike-packet flit width (64-bit arch)

  /// RESPARC clock period in ns.
  double resparc_period_ns() const { return 1e3 / resparc_clock_mhz; }
  /// Baseline clock period in ns.
  double baseline_period_ns() const { return 1e3 / baseline_clock_mhz; }

  /// Validates all nested parameter blocks.
  void validate() const;
};

/// The paper's evaluation technology: PCM-class device, 45 nm digital.
Technology default_technology();

/// PCM preset (same device range as the default; explicit name).
Technology pcm_technology();

/// Ag-Si preset (more resistive device: lower crossbar read energy).
Technology agsi_technology();

}  // namespace resparc::tech
