#include "tech/nonideal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tech/crossbar_model.hpp"

namespace resparc::tech {
namespace {

// Salt separating the fault stream family from every other consumer of
// stream_seed (presentation seeds, fleet chip seeds, bench kernels).
constexpr std::uint64_t kFaultStreamSalt = 0xFA171D5EEDull;

}  // namespace

void FaultConfig::validate() const {
  require(stuck_off_rate >= 0.0 && stuck_off_rate < 1.0,
          "faults.stuck_off_rate must be in [0, 1)");
  require(stuck_on_rate >= 0.0 && stuck_on_rate < 1.0,
          "faults.stuck_on_rate must be in [0, 1)");
  require(stuck_off_rate + stuck_on_rate < 1.0,
          "faults.stuck_off_rate + stuck_on_rate must be < 1");
  require(programming_sigma >= 0.0, "faults.programming_sigma must be >= 0");
  require(read_noise_sigma >= 0.0, "faults.read_noise_sigma must be >= 0");
  require(weight_bits >= 0 && weight_bits <= 16,
          "faults.weight_bits must be in [0, 16]");
  require(failed_density > 0.0 && failed_density <= 1.0,
          "faults.failed_density must be in (0, 1]");
}

FaultModel::FaultModel(FaultConfig config, std::size_t mca_size)
    : config_(config), mca_size_(mca_size),
      chip_stream_(stream_seed(config.chip_seed, kFaultStreamSalt)) {
  require(mca_size_ > 0, "FaultModel: mca_size must be positive");
  config_.validate();
}

McaFaults FaultModel::sample_impl(std::size_t mca_id, bool materialize) const {
  // One decorrelated stream per (chip_seed, mca_id): slot queries are
  // order- and thread-independent.
  Rng rng(stream_seed(chip_stream_, mca_id));
  const std::size_t cells = mca_size_ * mca_size_;
  McaFaults out;
  out.mca_id = mca_id;
  if (materialize) {
    out.cells.assign(cells, CellFault::kNone);
    out.gain.assign(cells, 1.0);
  }
  // Per-cell draw discipline mirrors CrossbarModel::program, row-major:
  // stuck-off bernoulli, else stuck-on bernoulli, else the variation
  // draws.  The summary path (materialize = false) consumes the exact
  // same stream so densities match sample() bit-for-bit.
  for (std::size_t cell = 0; cell < cells; ++cell) {
    if (rng.bernoulli(config_.stuck_off_rate)) {
      ++out.stuck_off;
      if (materialize) out.cells[cell] = CellFault::kStuckOff;
      continue;
    }
    if (rng.bernoulli(config_.stuck_on_rate)) {
      ++out.stuck_on;
      if (materialize) out.cells[cell] = CellFault::kStuckOn;
      continue;
    }
    double log_gain = 0.0;
    if (config_.programming_sigma > 0.0)
      log_gain += rng.normal(0.0, config_.programming_sigma);
    if (config_.read_noise_sigma > 0.0)
      log_gain += rng.normal(0.0, config_.read_noise_sigma);
    if (materialize && log_gain != 0.0) out.gain[cell] = std::exp(log_gain);
  }
  return out;
}

McaFaults FaultModel::sample(std::size_t mca_id) const {
  return sample_impl(mca_id, true);
}

McaFaults FaultModel::sample_counts(std::size_t mca_id) const {
  return sample_impl(mca_id, false);
}

double FaultModel::stuck_density(std::size_t mca_id) const {
  const McaFaults counts = sample_impl(mca_id, false);
  const double cells = static_cast<double>(mca_size_ * mca_size_);
  return static_cast<double>(counts.stuck_off + counts.stuck_on) / cells;
}

double FaultModel::energy_scale(std::size_t mca_id, double stuck_on_ratio,
                                double stuck_off_ratio) const {
  const McaFaults faults = sample(mca_id);
  double sum = 0.0;
  for (std::size_t cell = 0; cell < faults.cells.size(); ++cell) {
    switch (faults.cells[cell]) {
      case CellFault::kStuckOff: sum += stuck_off_ratio; break;
      case CellFault::kStuckOn: sum += stuck_on_ratio; break;
      case CellFault::kNone: sum += faults.gain[cell]; break;
    }
  }
  return faults.cells.empty() ? 1.0 : sum / static_cast<double>(faults.cells.size());
}

void FaultModel::perturb(CrossbarModel& crossbar, std::size_t mca_id) const {
  require(crossbar.rows() <= mca_size_ && crossbar.cols() <= mca_size_,
          "FaultModel::perturb: crossbar exceeds mca_size");
  const McaFaults faults = sample(mca_id);
  const Memristor& device = crossbar.device();
  const double g_min = device.g_min();
  const double g_max = device.g_max();
  const double span = g_max - g_min;
  const int steps = config_.weight_bits > 0 ? (1 << config_.weight_bits) - 1 : 0;
  for (std::size_t r = 0; r < crossbar.rows(); ++r) {
    for (std::size_t c = 0; c < crossbar.cols(); ++c) {
      const std::size_t cell = r * mca_size_ + c;
      double g = crossbar.conductance_at(r, c);
      if (steps > 0) {
        // Re-quantise to the configured (coarser) level count.
        const double m = std::clamp((g - g_min) / span, 0.0, 1.0);
        g = g_min + std::round(m * steps) / steps * span;
      }
      switch (faults.cells[cell]) {
        case CellFault::kStuckOff: g = g_min; break;
        case CellFault::kStuckOn: g = g_max; break;
        case CellFault::kNone:
          g = std::clamp(g * faults.gain[cell], g_min, g_max);
          break;
      }
      crossbar.set_conductance(r, c, g);
    }
  }
}

std::size_t ChipHealthMap::failed_count() const {
  std::size_t n = 0;
  for (const std::uint8_t f : mpe_failed) n += f != 0 ? 1 : 0;
  return n;
}

ChipHealthMap scan_chip_health(const FaultModel& model, std::size_t mpe_count,
                               std::size_t mcas_per_mpe) {
  require(mcas_per_mpe > 0, "scan_chip_health: mcas_per_mpe must be positive");
  ChipHealthMap health;
  health.mcas_per_mpe = mcas_per_mpe;
  health.mpe_failed.assign(mpe_count, 0);
  for (std::size_t mpe = 0; mpe < mpe_count; ++mpe)
    for (std::size_t slot = 0; slot < mcas_per_mpe; ++slot)
      if (model.mca_failed(mpe * mcas_per_mpe + slot)) {
        health.mpe_failed[mpe] = 1;
        break;
      }
  return health;
}

FaultManifest scan_manifest(const FaultModel& model, std::size_t mpe_count,
                            std::size_t mcas_per_mpe) {
  require(mcas_per_mpe > 0, "scan_manifest: mcas_per_mpe must be positive");
  FaultManifest manifest;
  manifest.chip_seed = model.config().chip_seed;
  manifest.mca_size = model.mca_size();
  for (std::size_t mpe = 0; mpe < mpe_count; ++mpe) {
    bool mpe_failed = false;
    for (std::size_t slot = 0; slot < mcas_per_mpe; ++slot) {
      const std::size_t mca_id = mpe * mcas_per_mpe + slot;
      const McaFaults faults = model.sample_counts(mca_id);
      ++manifest.mcas;
      manifest.cells += model.mca_size() * model.mca_size();
      manifest.stuck_off_cells += faults.stuck_off;
      manifest.stuck_on_cells += faults.stuck_on;
      const double density = static_cast<double>(faults.stuck_off + faults.stuck_on) /
                             static_cast<double>(model.mca_size() * model.mca_size());
      manifest.max_stuck_density = std::max(manifest.max_stuck_density, density);
      if (density > model.config().failed_density) {
        ++manifest.failed_mcas;
        mpe_failed = true;
      }
    }
    if (mpe_failed) manifest.failed_mpes.push_back(mpe);
  }
  return manifest;
}

}  // namespace resparc::tech
