// Device fault injection for chip-instance robustness studies.
//
// RESPARC's energy/accuracy numbers assume ideal crossbars; real chips
// come off the line with quantised conductance levels, lognormal
// programming variation, stuck-at cells and read noise, all of which
// erode accuracy per device *instance*.  FaultModel is the seedable
// source of those imperfections: one `(chip_seed, mca_id)` pair expands
// deterministically — via the SplitMix64 stream discipline of
// common/rng.hpp — into the complete fault state of one MCA, so a chip
// instance is reproducible from a single 64-bit seed, every consumer
// (functional simulator, analytic executor, repair pass, verifier,
// fleet harness) sees the *same* silicon, and a fleet Monte-Carlo sweep
// is just a sweep over chip seeds (docs/reliability.md).
//
// The model is applied at program time (like CrossbarModel::program's
// non-idealities): read noise is frozen per cell rather than redrawn
// per read, so the dense/sparse/packed engines stay bit-for-bit
// equivalent under faults (tests/test_differential.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace resparc::tech {

class CrossbarModel;

/// Per-chip fault-injection knobs (all off by default).  Lives on
/// core::ResparcConfig as `faults`; when `enabled` is false the whole
/// layer is inert and the configuration fingerprint, compiled programs
/// and executed reports are bit-for-bit identical to a build without
/// the layer (tests/test_faults.cpp enforces this).
struct FaultConfig {
  bool enabled = false;          ///< master switch; false = ideal devices
  std::uint64_t chip_seed = 1;   ///< chip-instance identity (fleet sweep axis)
  double stuck_off_rate = 0.0;   ///< per-cell probability of stuck-at-G_min
  double stuck_on_rate = 0.0;    ///< per-cell probability of stuck-at-G_max
  double programming_sigma = 0.0;  ///< lognormal sigma of write variation
  double read_noise_sigma = 0.0;   ///< lognormal sigma of (frozen) read noise
  int weight_bits = 0;           ///< conductance quantisation (0 = device default)
  /// Stuck-cell fraction above which an MCA counts as failed; a mPE with
  /// any failed MCA is avoided by the repair pass and flagged by the
  /// RV-FAULT verifier passes.
  double failed_density = 0.05;
  bool repair = true;            ///< re-place layers around failed mPEs
  /// Physical NeuroCell budget of the chip instance (0 = unbounded);
  /// repair may spill onto spare NeuroCells only up to this bound
  /// (RV-FAULT-CAPACITY).
  std::size_t chip_neurocells = 0;

  /// Throws ConfigError when rates/sigmas/bounds are out of range.
  void validate() const;
};

/// Fault state of one cell.
enum class CellFault : std::uint8_t {
  kNone = 0,      ///< programmable; conductance scaled by `gain`
  kStuckOff = 1,  ///< stuck at G_min (weight reads as 0)
  kStuckOn = 2,   ///< stuck at G_max (weight reads as full scale)
};

/// Realised fault state of one MCA: `mca_size x mca_size` cells in
/// row-major order, as drawn from the (chip_seed, mca_id) stream.
struct McaFaults {
  std::size_t mca_id = 0;            ///< the sampled MCA slot
  std::vector<CellFault> cells;      ///< per-cell fault class, row-major
  std::vector<double> gain;          ///< multiplicative conductance factor
                                     ///< (1.0 ideal; healthy cells only)
  std::size_t stuck_off = 0;         ///< count of kStuckOff cells
  std::size_t stuck_on = 0;          ///< count of kStuckOn cells

  /// Stuck cells as a fraction of all cells.
  double stuck_density() const {
    return cells.empty() ? 0.0
                         : static_cast<double>(stuck_off + stuck_on) /
                               static_cast<double>(cells.size());
  }
};

/// Deterministic per-MCA fault sampler for one chip instance.
///
/// Every query is a pure function of (config.chip_seed, mca_id): queries
/// may run in any order, from any thread, and repeat — the same slot
/// always yields the same silicon.
class FaultModel {
 public:
  /// Builds a sampler for `mca_size x mca_size` arrays; validates config.
  FaultModel(FaultConfig config, std::size_t mca_size);

  /// The validated configuration the sampler was built with.
  const FaultConfig& config() const { return config_; }
  /// Cells per crossbar row/column.
  std::size_t mca_size() const { return mca_size_; }

  /// Full fault state of one MCA slot (allocates the per-cell vectors).
  McaFaults sample(std::size_t mca_id) const;

  /// Counts-only sample (stuck_off/stuck_on populated, per-cell vectors
  /// left empty): same draw stream as sample(), without the allocation.
  McaFaults sample_counts(std::size_t mca_id) const;

  /// Stuck-cell fraction of one MCA slot, without materialising the
  /// per-cell state (same draw stream as sample()).
  double stuck_density(std::size_t mca_id) const;

  /// True when the slot's stuck density exceeds config.failed_density.
  bool mca_failed(std::size_t mca_id) const {
    return stuck_density(mca_id) > config_.failed_density;
  }

  /// Mean per-cell read-energy multiplier of one MCA relative to the
  /// ideal mean-conductance cost model: healthy cells contribute their
  /// gain, stuck-on cells `stuck_on_ratio` (= G_max/G_mean of the
  /// device), stuck-off cells `stuck_off_ratio` (= G_min/G_mean).
  double energy_scale(std::size_t mca_id, double stuck_on_ratio,
                      double stuck_off_ratio) const;

  /// Applies the slot's faults to a programmed electrical crossbar:
  /// optional re-quantisation to `weight_bits` levels, then stuck cells
  /// pinned to G_min/G_max and healthy cells scaled by their gain
  /// (clamped to the device range).  The crossbar must fit in
  /// mca_size x mca_size.
  void perturb(CrossbarModel& crossbar, std::size_t mca_id) const;

 private:
  McaFaults sample_impl(std::size_t mca_id, bool materialize) const;

  FaultConfig config_;
  std::size_t mca_size_ = 0;
  std::uint64_t chip_stream_ = 0;  ///< stream_seed(chip_seed, salt)
};

/// Summary of the realised faults across one chip's deployed MCA slots;
/// surfaced on core::RunReport / api::ExecutionReport so every executed
/// result names the silicon it ran on.
struct FaultManifest {
  std::uint64_t chip_seed = 0;        ///< chip instance identity
  std::size_t mca_size = 0;           ///< cells per row/column
  std::size_t mcas = 0;               ///< MCA slots scanned
  std::size_t cells = 0;              ///< total cells scanned
  std::size_t stuck_off_cells = 0;    ///< stuck-at-G_min cells
  std::size_t stuck_on_cells = 0;     ///< stuck-at-G_max cells
  std::size_t failed_mcas = 0;        ///< slots over the density threshold
  std::vector<std::size_t> failed_mpes;  ///< mPEs containing a failed MCA
  double max_stuck_density = 0.0;     ///< worst per-MCA stuck fraction
};

/// Pass/fail map of a chip's mPEs: an mPE fails when any of its MCA
/// slots exceeds the stuck-density threshold.  The compile-time repair
/// pass places around failed mPEs; the RV-FAULT verifier passes
/// re-derive the same map to check it did (docs/reliability.md).
struct ChipHealthMap {
  std::size_t mcas_per_mpe = 1;          ///< slots per mPE (config)
  std::vector<std::uint8_t> mpe_failed;  ///< 1 = failed, indexed by mPE id

  /// True when `mpe` is known-failed (ids past the scan are healthy).
  bool failed(std::size_t mpe) const {
    return mpe < mpe_failed.size() && mpe_failed[mpe] != 0;
  }

  /// Number of failed mPEs in the scanned range.
  std::size_t failed_count() const;
};

/// Scans the first `mpe_count` mPEs (`mcas_per_mpe` slots each).
ChipHealthMap scan_chip_health(const FaultModel& model, std::size_t mpe_count,
                               std::size_t mcas_per_mpe);

/// Scans the same range into a report-ready manifest.
FaultManifest scan_manifest(const FaultModel& model, std::size_t mpe_count,
                            std::size_t mcas_per_mpe);

}  // namespace resparc::tech
