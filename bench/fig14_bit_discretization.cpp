// Fig. 14 — Effect of memristor bit-discretisation.
//
// (a) Classification accuracy vs weight precision {1,2,4,8} bits on all
//     three datasets, normalised to the 8-bit point (the paper plots
//     normalised accuracy).  Networks are trained offline through the
//     Pipeline's train path (Diehl-style conversion) at reduced width —
//     training the paper-scale nets is not needed to reproduce the trend.
// (b) Energy vs precision for RESPARC (analog reads: ~flat) and the CMOS
//     baseline (memory + datapath scale with bits: rising), on the MNIST
//     MLP workload, with the precision set through BackendOptions.
#include <iostream>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "snn/quantize.hpp"
#include "snn/simulator.hpp"

namespace {

constexpr int kBits[] = {1, 2, 4, 8};

}  // namespace

int main() {
  using namespace resparc;
  std::cout << "== Fig. 14: bit-discretisation study ==\n\n";

  Csv csv({"series", "dataset_or_arch", "bits", "value"});

  // ----- (a) accuracy vs bits ------------------------------------------------
  Table acc_table({"Dataset", "1 bit", "2 bit", "4 bit", "8 bit",
                   "(normalised to 8 bit)"});
  for (auto kind : {snn::DatasetKind::kMnistLike, snn::DatasetKind::kSvhnLike,
                    snn::DatasetKind::kCifarLike}) {
    api::PipelineOptions opt;
    opt.images = 40;           // held-out evaluation split
    opt.train_images = 120;
    opt.train = true;
    opt.record_traces = false;  // only the network + test set are needed
    opt.timesteps = 48;
    opt.seed = 5;
    opt.jitter_pixels = 1.0;
    opt.threads = bench::bench_threads();
    api::Workload w = api::Pipeline(opt)
                          .dataset(kind)
                          .topology(snn::small_mlp_topology(kind))
                          .run();

    snn::SimConfig cfg;
    cfg.timesteps = 48;
    cfg.record_trace = false;

    double acc[4] = {};
    for (int i = 0; i < 4; ++i) {
      snn::Network q = w.network;  // the unquantised converted base
      snn::quantize_network(q, kBits[i]);
      // Same presentation stream for every bit width: only the
      // quantization may differ between rows.
      Rng rng(stream_seed(bench::bench_seed(), 6));
      acc[i] = snn::evaluate_accuracy(q, cfg, w.test.images, w.test.labels,
                                      rng);
      csv.add_row({"accuracy", snn::to_string(kind),
                   std::to_string(kBits[i]), Table::num(acc[i], 4)});
    }
    const double ref = acc[3] > 0.0 ? acc[3] : 1.0;
    acc_table.add_row({snn::to_string(kind), Table::num(acc[0] / ref, 2),
                       Table::num(acc[1] / ref, 2), Table::num(acc[2] / ref, 2),
                       Table::num(acc[3] / ref, 2), ""});
  }
  std::cout << "--- (a) normalised accuracy vs weight precision ---\n";
  acc_table.print(std::cout);
  std::cout << "Paper: accuracy rises with precision and the 4-bit point is\n"
               "comparable to 8 bits — hence the 4-bit devices used in the\n"
               "energy comparisons.\n\n";

  // ----- (b) energy vs bits --------------------------------------------------
  const bench::Workload w = bench::make_workload(snn::mnist_mlp());
  Table e_table({"Architecture", "1 bit", "2 bit", "4 bit", "8 bit",
                 "(uJ, per classification)"});
  std::vector<double> resparc_e, cmos_e;
  for (int bits : kBits) {
    api::BackendOptions options;
    options.resparc.technology.memristor.bits = bits;
    options.cmos.weight_bits = bits;

    for (const char* name : {"resparc-64", "cmos"}) {
      const auto accel = api::make_accelerator(name, options);
      accel->load(w.topology());
      const double uj =
          api::Pipeline::execute(*accel, w.traces, bench::bench_threads())
              .energy_pj * 1e-6;
      (std::string(name) == "cmos" ? cmos_e : resparc_e).push_back(uj);
    }
    csv.add_row({"energy", "RESPARC", std::to_string(bits),
                 Table::num(resparc_e.back(), 4)});
    csv.add_row({"energy", "CMOS", std::to_string(bits),
                 Table::num(cmos_e.back(), 4)});
  }
  e_table.add_row({"RESPARC", Table::num(resparc_e[0], 3),
                   Table::num(resparc_e[1], 3), Table::num(resparc_e[2], 3),
                   Table::num(resparc_e[3], 3), ""});
  e_table.add_row({"CMOS", Table::num(cmos_e[0], 2), Table::num(cmos_e[1], 2),
                   Table::num(cmos_e[2], 2), Table::num(cmos_e[3], 2), ""});
  std::cout << "--- (b) energy vs weight precision (MNIST MLP) ---\n";
  e_table.print(std::cout);
  std::cout << "Paper: RESPARC's analog crossbar read is independent of the\n"
               "stored precision; the CMOS baseline pays for every extra bit\n"
               "in memory, buffers and datapath.\n";
  bench::note_csv_written("fig14_bit_discretization.csv",
                          csv.write("fig14_bit_discretization.csv"));
  return 0;
}
