// Fig. 14 — Effect of memristor bit-discretisation.
//
// (a) Classification accuracy vs weight precision {1,2,4,8} bits on all
//     three datasets, normalised to the 8-bit point (the paper plots
//     normalised accuracy).  Networks are trained offline (Diehl-style
//     conversion) on the synthetic datasets at reduced width — training
//     the paper-scale nets is not needed to reproduce the trend.
// (b) Energy vs precision for RESPARC (analog reads: ~flat) and the CMOS
//     baseline (memory + datapath scale with bits: rising), on the MNIST
//     MLP workload.
#include <iostream>

#include "bench_util.hpp"
#include "cmos/falcon.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/resparc.hpp"
#include "data/synthetic.hpp"
#include "snn/quantize.hpp"
#include "snn/simulator.hpp"
#include "train/convert.hpp"
#include "train/trainer.hpp"

namespace {

constexpr int kBits[] = {1, 2, 4, 8};

}  // namespace

int main() {
  using namespace resparc;
  std::cout << "== Fig. 14: bit-discretisation study ==\n\n";

  Csv csv({"series", "dataset_or_arch", "bits", "value"});

  // ----- (a) accuracy vs bits ------------------------------------------------
  Table acc_table({"Dataset", "1 bit", "2 bit", "4 bit", "8 bit",
                   "(normalised to 8 bit)"});
  for (auto kind : {snn::DatasetKind::kMnistLike, snn::DatasetKind::kSvhnLike,
                    snn::DatasetKind::kCifarLike}) {
    const data::SyntheticOptions opt{
        .count = 160, .seed = 5, .noise = 0.03, .jitter_pixels = 1.0};
    // SVHN/CIFAR MLPs consume the 16x16x3 downsampled input (DESIGN.md 3).
    const data::Dataset ds = kind == snn::DatasetKind::kMnistLike
                                 ? data::make_synthetic(kind, opt)
                                 : data::make_synthetic_downsampled(kind, opt);
    const data::Dataset train_set = ds.take(120);
    const data::Dataset test_set = ds.drop(120);

    train::Ann ann(snn::small_mlp_topology(kind));
    Rng rng(6);
    ann.init_he(rng);
    train::train(ann, train_set,
                 {.epochs = 30, .batch_size = 10, .learning_rate = 0.02}, rng);
    const snn::Network base = train::convert_to_snn(ann, train_set.images);

    snn::SimConfig cfg;
    cfg.timesteps = 48;
    cfg.record_trace = false;

    double acc[4] = {};
    for (int i = 0; i < 4; ++i) {
      snn::Network q = base;
      snn::quantize_network(q, kBits[i]);
      acc[i] = snn::evaluate_accuracy(q, cfg, test_set.images,
                                      test_set.labels, rng);
      csv.add_row({"accuracy", snn::to_string(kind),
                   std::to_string(kBits[i]), Table::num(acc[i], 4)});
    }
    const double ref = acc[3] > 0.0 ? acc[3] : 1.0;
    acc_table.add_row({snn::to_string(kind), Table::num(acc[0] / ref, 2),
                       Table::num(acc[1] / ref, 2), Table::num(acc[2] / ref, 2),
                       Table::num(acc[3] / ref, 2), ""});
  }
  std::cout << "--- (a) normalised accuracy vs weight precision ---\n";
  acc_table.print(std::cout);
  std::cout << "Paper: accuracy rises with precision and the 4-bit point is\n"
               "comparable to 8 bits — hence the 4-bit devices used in the\n"
               "energy comparisons.\n\n";

  // ----- (b) energy vs bits --------------------------------------------------
  const bench::Workload w = bench::make_workload(snn::mnist_mlp());
  Table e_table({"Architecture", "1 bit", "2 bit", "4 bit", "8 bit",
                 "(uJ, per classification)"});
  std::vector<double> resparc_e, cmos_e;
  for (int bits : kBits) {
    core::ResparcConfig rc = core::config_with_mca(64);
    rc.technology.memristor.bits = bits;
    core::ResparcChip chip(rc);
    chip.load(w.spec.topology);
    resparc_e.push_back(chip.execute(w.traces).energy.total_pj() * 1e-6);

    cmos::FalconConfig cc;
    cc.weight_bits = bits;
    cmos::FalconAccelerator baseline(w.spec.topology, cc);
    cmos_e.push_back(baseline.run_all(w.traces).energy.total_pj() * 1e-6);

    csv.add_row({"energy", "RESPARC", std::to_string(bits),
                 Table::num(resparc_e.back(), 4)});
    csv.add_row({"energy", "CMOS", std::to_string(bits),
                 Table::num(cmos_e.back(), 4)});
  }
  e_table.add_row({"RESPARC", Table::num(resparc_e[0], 3),
                   Table::num(resparc_e[1], 3), Table::num(resparc_e[2], 3),
                   Table::num(resparc_e[3], 3), ""});
  e_table.add_row({"CMOS", Table::num(cmos_e[0], 2), Table::num(cmos_e[1], 2),
                   Table::num(cmos_e[2], 2), Table::num(cmos_e[3], 2), ""});
  std::cout << "--- (b) energy vs weight precision (MNIST MLP) ---\n";
  e_table.print(std::cout);
  std::cout << "Paper: RESPARC's analog crossbar read is independent of the\n"
               "stored precision; the CMOS baseline pays for every extra bit\n"
               "in memory, buffers and datapath.\n";
  bench::note_csv_written("fig14_bit_discretization.csv",
                          csv.write("fig14_bit_discretization.csv"));
  return 0;
}
