#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace resparc::bench {
namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

std::size_t bench_images() { return env_or("RESPARC_BENCH_IMAGES", 3); }

std::size_t bench_timesteps() { return env_or("RESPARC_BENCH_TIMESTEPS", 32); }

std::size_t bench_threads() { return env_or("RESPARC_BENCH_THREADS", 0); }

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_or("RESPARC_BENCH_SEED", 7));
}

api::PipelineOptions bench_options(std::uint64_t seed, double target_activity) {
  api::PipelineOptions options;
  options.images = bench_images();
  options.timesteps = bench_timesteps();
  options.threads = bench_threads();
  options.seed = seed;
  options.target_activity = target_activity;
  options.noise = 0.03;
  options.jitter_pixels = 1.5;
  return options;
}

Workload make_workload(const snn::BenchmarkSpec& spec,
                       const api::PipelineOptions& options) {
  return api::Pipeline(options).benchmark(spec).run();
}

std::vector<Workload> paper_workloads() {
  std::vector<Workload> out;
  for (const auto& spec : snn::paper_benchmarks())
    out.push_back(make_workload(spec));
  return out;
}

std::string bench_commit() {
  const char* value = std::getenv("RESPARC_GIT_COMMIT");
  return value != nullptr && value[0] != '\0' ? std::string(value)
                                              : std::string("unknown");
}

std::string trajectory_envelope(const std::string& bench,
                                const std::string& config_json,
                                const std::string& metrics_json) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + bench + "\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"commit\": \"" + bench_commit() + "\",\n";
  out += "  \"config\": " + config_json + ",\n";
  out += "  \"metrics\": " + metrics_json + "\n";
  out += "}\n";
  return out;
}

std::string trajectory_dir() {
  const char* value = std::getenv("RESPARC_TRAJECTORY_DIR");
  return value != nullptr && value[0] != '\0' ? std::string(value)
                                              : std::string("bench/trajectory");
}

bool write_trajectory(const std::string& bench, const std::string& config_json,
                      const std::string& metrics_json) {
  const std::string dir = trajectory_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open decides
  const std::string path = dir + "/" + bench + ".json";
  std::ofstream out(path);
  if (out) out << trajectory_envelope(bench, config_json, metrics_json);
  const bool ok = static_cast<bool>(out);
  note_csv_written(path, ok);
  return ok;
}

void note_csv_written(const std::string& path, bool ok) {
  if (ok)
    std::printf("[csv] wrote %s\n", path.c_str());
  else
    std::printf("[csv] could not write %s (continuing)\n", path.c_str());
}

}  // namespace resparc::bench
