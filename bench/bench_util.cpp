#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "snn/simulator.hpp"
#include "snn/stats.hpp"

namespace resparc::bench {
namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

std::size_t bench_images() { return env_or("RESPARC_BENCH_IMAGES", 3); }

std::size_t bench_timesteps() { return env_or("RESPARC_BENCH_TIMESTEPS", 32); }

Workload make_workload(const snn::BenchmarkSpec& spec, std::size_t images,
                       std::size_t timesteps, std::uint64_t seed,
                       double target_activity) {
  data::SyntheticOptions opt{
      .count = images, .seed = seed, .noise = 0.03, .jitter_pixels = 1.5};
  // SVHN/CIFAR MLPs consume the 16x16x3 downsampled input (DESIGN.md 3).
  const bool downsampled =
      spec.topology.input_shape().size() == 768 &&
      spec.dataset != snn::DatasetKind::kMnistLike;
  const data::Dataset ds = downsampled
                               ? data::make_synthetic_downsampled(spec.dataset, opt)
                               : data::make_synthetic(spec.dataset, opt);

  Workload w{.spec = spec, .network = snn::Network(spec.topology)};
  Rng rng(seed + 1);
  w.network.init_random(rng, 1.0f);

  snn::SimConfig cfg;
  cfg.timesteps = timesteps;
  const std::size_t calib = images < 2 ? images : 2;
  snn::calibrate_thresholds(
      w.network,
      std::vector<std::vector<float>>(ds.images.begin(),
                                      ds.images.begin() +
                                          static_cast<std::ptrdiff_t>(calib)),
      cfg, rng, target_activity);

  snn::Simulator sim(w.network, cfg);
  double activity = 0.0;
  for (const auto& img : ds.images) {
    w.traces.push_back(sim.run(img, rng).trace);
    activity += snn::mean_activity(w.traces.back());
  }
  w.mean_activity = activity / static_cast<double>(w.traces.size());
  return w;
}

std::vector<Workload> paper_workloads() {
  std::vector<Workload> out;
  for (const auto& spec : snn::paper_benchmarks())
    out.push_back(make_workload(spec));
  return out;
}

void note_csv_written(const std::string& path, bool ok) {
  if (ok)
    std::printf("[csv] wrote %s\n", path.c_str());
  else
    std::printf("[csv] could not write %s (continuing)\n", path.c_str());
}

}  // namespace resparc::bench
