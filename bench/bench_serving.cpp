// Multi-tenant serving throughput and tail latency (docs/serving.md).
//
// Replays the MNIST MLP traces through serve::Server at 1, 2 and 4
// concurrent tenants and reports aggregate throughput plus the
// p50/p95/p99/max of the end-to-end latency histogram.  Each tenant is
// driven by one interactive closed-loop client with a shallow pipeline
// (2 outstanding requests) — the latency-bound regime the batch window
// exists for: a lone client leaves the server idle while its batch
// window runs out, so the single-tenant row is bounded by
// window + execute.  Concurrent tenants' windows overlap (and their
// batches interleave over the dispatchers/replicas), so aggregate
// throughput scales with the tenant count — the acceptance property
// tracked by tools/validate_trajectory.py is that the >= 4-tenant
// aggregate clears a healthy multiple of the single-tenant baseline.
//
// Results go to stdout and bench/trajectory/bench_serving.json.
//
// Environment knobs:
//   RESPARC_BENCH_IMAGES    distinct traces in the workload (default 8)
//   RESPARC_BENCH_TIMESTEPS presentation length            (default 16)
//   RESPARC_BENCH_REPS      timing repetitions, best kept  (default 3)
//   RESPARC_SERVE_REQUESTS  requests per tenant            (default 64)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "serve/server.hpp"
#include "snn/benchmarks.hpp"

namespace {

using namespace resparc;
using Clock = std::chrono::steady_clock;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

struct Row {
  std::size_t tenants = 0;
  std::size_t requests = 0;        ///< total across all tenants
  double throughput_rps = 0.0;     ///< responses per second, aggregate
  serve::LatencySnapshot total;    ///< end-to-end latency percentiles
  serve::LatencySnapshot queue;    ///< time spent waiting for a batch
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
};

/// One timed serving run: `tenants` closed-loop producers, each driving
/// its own tenant+session with `per_tenant` trace requests.  A fresh
/// server per run keeps the latency histograms scoped to the run.
Row run_once(const api::Workload& workload, std::size_t tenants,
             std::size_t per_tenant) {
  serve::ServerConfig config;
  config.replicas = 1;
  config.dispatchers = std::max<std::size_t>(tenants, 2);
  config.queue_capacity = 64;
  config.batch_max = 8;
  config.batch_window = std::chrono::microseconds(200);
  config.compute_threads = 1;
  serve::Server server(config);

  serve::TenantSpec spec;
  spec.backend = "resparc-64";
  spec.topology = workload.topology();
  std::vector<serve::SessionId> sessions;
  for (std::size_t t = 0; t < tenants; ++t) {
    const std::string name = "tenant-" + std::to_string(t);
    server.add_tenant(name, spec);
    sessions.push_back(server.open_session(name));
  }

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < tenants; ++t) {
    producers.emplace_back([&, t] {
      // Interactive client: at most 2 outstanding requests.  The shallow
      // pipeline keeps the tenant's queue below batch_max, so dispatch is
      // window-driven — the regime where multi-tenant aggregation pays.
      std::deque<std::future<serve::Response>> inflight;
      for (std::size_t i = 0; i < per_tenant; ++i) {
        serve::Request request;
        request.trace = workload.traces[i % workload.traces.size()];
        inflight.push_back(server.submit(sessions[t], std::move(request)));
        if (inflight.size() >= 2) {
          inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  for (auto& p : producers) p.join();
  server.drain();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  Row row;
  row.tenants = tenants;
  row.requests = tenants * per_tenant;
  row.throughput_rps = static_cast<double>(row.requests) / seconds;
  row.total = server.latency().snapshot(serve::LatencyRecorder::Stage::kTotal);
  row.queue = server.latency().snapshot(serve::LatencyRecorder::Stage::kQueue);
  const serve::ServerStats stats = server.stats();
  row.batches = stats.batches;
  row.max_batch = stats.max_batch;
  return row;
}

/// Best-throughput rep (latency percentiles come from the same rep, so
/// every row is one internally-consistent run).
Row run_row(const api::Workload& workload, std::size_t tenants,
            std::size_t per_tenant, std::size_t reps) {
  Row best = run_once(workload, tenants, per_tenant);
  for (std::size_t r = 1; r < reps; ++r) {
    Row row = run_once(workload, tenants, per_tenant);
    if (row.throughput_rps > best.throughput_rps) best = row;
  }
  return best;
}

}  // namespace

int main() {
  const std::size_t images = std::max<std::size_t>(bench::bench_images(), 8);
  const std::size_t timesteps =
      std::min<std::size_t>(bench::bench_timesteps(), 16);
  const std::size_t reps = env_size("RESPARC_BENCH_REPS", 3);
  const std::size_t per_tenant = env_size("RESPARC_SERVE_REQUESTS", 64);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== multi-tenant serving throughput ==\n");
  std::printf("(mnist-mlp traces, %zu images x %zu timesteps, %zu requests "
              "per tenant, %zu reps, %u hardware threads)\n\n",
              images, timesteps, per_tenant, reps, hw == 0 ? 1 : hw);

  api::PipelineOptions opt;
  opt.images = images;
  opt.timesteps = timesteps;
  opt.threads = 0;
  const api::Workload workload =
      api::Pipeline(opt).benchmark(snn::mnist_mlp()).run();

  std::vector<Row> rows;
  for (const std::size_t tenants : {1u, 2u, 4u}) {
    const Row row = run_row(workload, tenants, per_tenant, reps);
    rows.push_back(row);
    std::printf("tenants %zu: %8.1f req/s | total p50 %7.1f us  p95 %7.1f us"
                "  p99 %7.1f us  max %7.1f us | %llu batches (max %llu)\n",
                row.tenants, row.throughput_rps,
                static_cast<double>(row.total.p50_ns) * 1e-3,
                static_cast<double>(row.total.p95_ns) * 1e-3,
                static_cast<double>(row.total.p99_ns) * 1e-3,
                static_cast<double>(row.total.max_ns) * 1e-3,
                static_cast<unsigned long long>(row.batches),
                static_cast<unsigned long long>(row.max_batch));
  }
  const double scaling =
      rows.back().throughput_rps / std::max(rows.front().throughput_rps, 1e-9);
  std::printf("\naggregate scaling %zu tenants vs 1: %.2fx\n",
              rows.back().tenants, scaling);

  std::ostringstream config;
  config << "{\"benchmark\": \"mnist-mlp\", \"images\": " << images
         << ", \"timesteps\": " << timesteps
         << ", \"requests_per_tenant\": " << per_tenant
         << ", \"reps\": " << reps << ", \"replicas\": 1"
         << ", \"client_pipeline\": 2"
         << ", \"batch_max\": 8, \"batch_window_us\": 200"
         << ", \"hardware_threads\": " << (hw == 0 ? 1 : hw) << "}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"tenants\": " << r.tenants
            << ", \"requests\": " << r.requests
            << ", \"throughput_rps\": " << r.throughput_rps
            << ", \"p50_ns\": " << r.total.p50_ns
            << ", \"p95_ns\": " << r.total.p95_ns
            << ", \"p99_ns\": " << r.total.p99_ns
            << ", \"max_ns\": " << r.total.max_ns
            << ", \"mean_ns\": " << r.total.mean_ns
            << ", \"queue_p99_ns\": " << r.queue.p99_ns
            << ", \"batches\": " << r.batches
            << ", \"max_batch\": " << r.max_batch << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("bench_serving", config.str(), metrics.str());
  return 0;
}
