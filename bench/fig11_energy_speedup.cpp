// Fig. 11 — Energy and performance speedup of RESPARC vs the CMOS
// baseline, per classification, at MCA size 64.
//
// The paper reports (a/c) CNN energy gains of 10-15x at speedups of
// 33-95x and (b/d) MLP energy gains of 331-659x at speedups of 360-415x.
// This bench replays identical spike traces through both backends via one
// Pipeline::compare call and prints the measured factors next to the
// paper's.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace {

struct PaperRow {
  double energy_gain;
  double speedup;
};

// Fig. 11 per-benchmark factors as printed in the paper's bar labels.
const std::map<std::string, PaperRow> kPaper = {
    {"mnist-mlp", {331.0, 360.0}}, {"svhn-mlp", {659.0, 371.0}},
    {"cifar-mlp", {549.0, 415.0}}, {"mnist-cnn", {11.0, 33.0}},
    {"svhn-cnn", {10.0, 52.0}},    {"cifar-cnn", {15.0, 95.0}},
};

}  // namespace

int main() {
  using namespace resparc;
  std::cout << "== Fig. 11: RESPARC vs CMOS baseline @ MCA-64 ==\n"
            << "(" << bench::bench_images() << " images x "
            << bench::bench_timesteps() << " timesteps per benchmark)\n\n";

  Table t({"Benchmark", "E RESPARC (uJ)", "E CMOS (uJ)", "Energy gain",
           "Paper gain", "Lat RESPARC (us)", "Lat CMOS (us)", "Speedup",
           "Paper speedup"});
  Csv csv({"benchmark", "resparc_uj", "cmos_uj", "energy_gain", "paper_gain",
           "resparc_us", "cmos_us", "speedup", "paper_speedup"});

  const std::vector<std::string> backends{"cmos", "resparc-64"};
  double mlp_gain_sum = 0.0, cnn_gain_sum = 0.0;
  double mlp_speed_sum = 0.0, cnn_speed_sum = 0.0;
  int mlps = 0, cnns = 0;

  for (const auto& w : bench::paper_workloads()) {
    const api::ComparisonReport cmp = api::Pipeline::compare(
        w.topology(), w.traces, backends, {}, bench::bench_threads());
    const api::ExecutionReport& c = cmp.reference().report;
    const api::ComparisonEntry& r = *cmp.find("resparc-64");

    const double gain = r.energy_gain;
    const double speedup = r.speedup;
    const PaperRow paper = kPaper.at(w.topology().name());

    if (w.topology().is_convolutional()) {
      cnn_gain_sum += gain;
      cnn_speed_sum += speedup;
      ++cnns;
    } else {
      mlp_gain_sum += gain;
      mlp_speed_sum += speedup;
      ++mlps;
    }

    t.add_row({w.topology().name(),
               Table::num(r.report.energy_pj * 1e-6, 3),
               Table::num(c.energy_pj * 1e-6, 2),
               Table::factor(gain, 1), Table::factor(paper.energy_gain, 0),
               Table::num(r.report.latency_ns * 1e-3, 2),
               Table::num(c.latency_ns * 1e-3, 1), Table::factor(speedup, 1),
               Table::factor(paper.speedup, 0)});
    csv.add_row({w.topology().name(),
                 Table::num(r.report.energy_pj * 1e-6, 4),
                 Table::num(c.energy_pj * 1e-6, 3),
                 Table::num(gain, 2), Table::num(paper.energy_gain, 0),
                 Table::num(r.report.latency_ns * 1e-3, 3),
                 Table::num(c.latency_ns * 1e-3, 2), Table::num(speedup, 2),
                 Table::num(paper.speedup, 0)});
  }
  t.print(std::cout);

  std::cout << "\nAverages: MLP energy gain " << Table::factor(mlp_gain_sum / mlps, 0)
            << " (paper 513x avg), speedup " << Table::factor(mlp_speed_sum / mlps, 0)
            << " (paper 382x avg); CNN energy gain "
            << Table::factor(cnn_gain_sum / cnns, 1)
            << " (paper 12x avg), speedup " << Table::factor(cnn_speed_sum / cnns, 0)
            << " (paper 60x avg).\n";
  bench::note_csv_written("fig11_energy_speedup.csv",
                          csv.write("fig11_energy_speedup.csv"));
  return 0;
}
