// Fig. 13 — Effect of event-drivenness (zero-check logic) on MNIST.
//
// Runs the MNIST MLP and CNN with and without the section-3.2 zero-check
// levers for MCA sizes 128/64/32 and reports the savings plus the
// underlying zero-packet statistics.  Paper: savings are largest at the
// smallest MCA (short runs of zeros are common; long runs are rare), and
// MLPs save more than CNNs (black background vs foreground-rich windows).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/resparc.hpp"
#include "snn/stats.hpp"

int main() {
  using namespace resparc;
  std::cout << "== Fig. 13: event-driven savings on MNIST ==\n\n";

  Table t({"Net", "Config", "E w/o ED (uJ)", "E w/ ED (uJ)", "Saving (uJ)",
           "Saving %", "Zero packets @N"});
  Csv csv({"net", "mca", "e_off_uj", "e_on_uj", "saving_uj", "saving_pct",
           "zero_packet_fraction"});

  for (const auto& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
    const bench::Workload w = bench::make_workload(spec);
    for (std::size_t mca : {128u, 64u, 32u}) {
      core::ResparcConfig on = core::config_with_mca(mca);
      core::ResparcConfig off = on;
      off.event_driven = false;

      core::ResparcChip chip_on(on), chip_off(off);
      chip_on.load(spec.topology);
      chip_off.load(spec.topology);
      const double e_on = chip_on.execute(w.traces).energy.total_pj() * 1e-6;
      const double e_off = chip_off.execute(w.traces).energy.total_pj() * 1e-6;

      // Zero-packet probability at run length = MCA size, input layer.
      snn::PacketStats stats;
      for (const auto& trace : w.traces) {
        const snn::PacketStats s = snn::layer_packet_stats(trace, 0, mca);
        stats.packets += s.packets;
        stats.zero_packets += s.zero_packets;
      }
      const double saving = e_off - e_on;
      t.add_row({spec.topology.is_convolutional() ? "CNN" : "MLP",
                 "RESPARC-" + std::to_string(mca), Table::num(e_off, 3),
                 Table::num(e_on, 3), Table::num(saving, 3),
                 Table::num(100.0 * saving / e_off, 1),
                 Table::num(100.0 * stats.zero_fraction(), 1) + "%"});
      csv.add_row({spec.topology.is_convolutional() ? "CNN" : "MLP",
                   std::to_string(mca), Table::num(e_off, 4),
                   Table::num(e_on, 4), Table::num(saving, 4),
                   Table::num(100.0 * saving / e_off, 2),
                   Table::num(stats.zero_fraction(), 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: savings are highest for the smallest MCA (zero\n"
               "packets with short run lengths are far more frequent), and\n"
               "event-drivenness lets small, reliable MCAs stay efficient.\n"
               "MLP savings exceed CNN savings (1-D vectors over black\n"
               "background vs 2-D foreground windows).\n";
  bench::note_csv_written("fig13_eventdriven.csv", csv.write("fig13_eventdriven.csv"));
  return 0;
}
