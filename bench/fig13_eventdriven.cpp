// Fig. 13 — Effect of event-drivenness (zero-check logic) on MNIST.
//
// Runs the MNIST MLP and CNN with and without the section-3.2 zero-check
// levers for MCA sizes 128/64/32 and reports the savings plus the
// underlying zero-packet statistics.  The on/off pair differs only in the
// BackendOptions handed to make_accelerator.  Paper: savings are largest
// at the smallest MCA (short runs of zeros are common; long runs are
// rare), and MLPs save more than CNNs (black background vs foreground-rich
// windows).
#include <iostream>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/config.hpp"
#include "snn/stats.hpp"

int main() {
  using namespace resparc;
  std::cout << "== Fig. 13: event-driven savings on MNIST ==\n\n";

  Table t({"Net", "Config", "E w/o ED (uJ)", "E w/ ED (uJ)", "Saving (uJ)",
           "Saving %", "Zero packets @N"});
  Csv csv({"net", "mca", "e_off_uj", "e_on_uj", "saving_uj", "saving_pct",
           "zero_packet_fraction"});

  for (const auto& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
    const bench::Workload w = bench::make_workload(spec);
    for (const std::size_t mca : {128u, 64u, 32u}) {
      const std::string backend = "resparc-" + std::to_string(mca);
      api::BackendOptions on;
      api::BackendOptions off;
      off.resparc.event_driven = false;

      const auto accel_on = api::make_accelerator(backend, on);
      const auto accel_off = api::make_accelerator(backend, off);
      accel_on->load(spec.topology);
      accel_off->load(spec.topology);
      const double e_on =
          api::Pipeline::execute(*accel_on, w.traces, bench::bench_threads())
              .energy_pj * 1e-6;
      const double e_off =
          api::Pipeline::execute(*accel_off, w.traces, bench::bench_threads())
              .energy_pj * 1e-6;

      // Zero-packet probability at run length = MCA size, input layer.
      snn::PacketStats stats;
      for (const auto& trace : w.traces) {
        const snn::PacketStats s = snn::layer_packet_stats(trace, 0, mca);
        stats.packets += s.packets;
        stats.zero_packets += s.zero_packets;
      }
      const double saving = e_off - e_on;
      t.add_row({spec.topology.is_convolutional() ? "CNN" : "MLP",
                 "RESPARC-" + std::to_string(mca), Table::num(e_off, 3),
                 Table::num(e_on, 3), Table::num(saving, 3),
                 Table::num(100.0 * saving / e_off, 1),
                 Table::num(100.0 * stats.zero_fraction(), 1) + "%"});
      csv.add_row({spec.topology.is_convolutional() ? "CNN" : "MLP",
                   std::to_string(mca), Table::num(e_off, 4),
                   Table::num(e_on, 4), Table::num(saving, 4),
                   Table::num(100.0 * saving / e_off, 2),
                   Table::num(stats.zero_fraction(), 4)});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: savings are highest for the smallest MCA (zero\n"
               "packets with short run lengths are far more frequent), and\n"
               "event-drivenness lets small, reliable MCAs stay efficient.\n"
               "MLP savings exceed CNN savings (1-D vectors over black\n"
               "background vs 2-D foreground windows).\n";
  bench::note_csv_written("fig13_eventdriven.csv", csv.write("fig13_eventdriven.csv"));
  return 0;
}
