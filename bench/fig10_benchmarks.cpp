// Fig. 10 — SNN benchmark table.
//
// Prints the six benchmarks with our topology decode next to the paper's
// reported layer/neuron/synapse figures.  Neuron totals match the paper
// exactly under each row's counting convention; the synapse column differs
// by convention (see docs/architecture.md), so both numbers are shown.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "snn/benchmarks.hpp"

int main() {
  using namespace resparc;
  std::cout << "== Fig. 10: SNN benchmarks ==\n\n";

  Table t({"Application", "Dataset", "Net", "Topology", "Layers (paper)",
           "Neurons", "Neurons (paper)", "Synapses (unrolled)",
           "Synapses (paper)"});
  Csv csv({"application", "dataset", "net", "topology", "paper_layers",
           "neurons", "paper_neurons", "synapses", "paper_synapses"});

  for (const auto& b : snn::paper_benchmarks()) {
    const std::string net = b.topology.is_convolutional() ? "CNN" : "MLP";
    t.add_row({b.application, snn::to_string(b.dataset), net,
               b.topology.summary(), std::to_string(b.paper_layers),
               std::to_string(b.neuron_count()),
               std::to_string(b.paper_neurons),
               std::to_string(b.topology.synapse_count()),
               std::to_string(b.paper_synapses)});
    csv.add_row({b.application, snn::to_string(b.dataset), net,
                 b.topology.summary(), std::to_string(b.paper_layers),
                 std::to_string(b.neuron_count()),
                 std::to_string(b.paper_neurons),
                 std::to_string(b.topology.synapse_count()),
                 std::to_string(b.paper_synapses)});
  }
  t.print(std::cout);
  std::cout << "\nNeuron totals match the paper exactly on every row.\n"
               "Synapse figures use different conventions: ours counts\n"
               "unrolled connections (what the hardware maps); the paper's\n"
               "MLP column equals neurons x hidden width (docs/architecture.md).\n";
  bench::note_csv_written("fig10_benchmarks.csv", csv.write("fig10_benchmarks.csv"));
  return 0;
}
