// Micro-benchmark — sparse event-driven engine vs the dense simulator
// across input sparsity (docs/execution.md, docs/benchmarks.md).
//
// The MNIST CNN workload is calibrated ONCE at full input rate (the
// paper's ~10%-activity regime); the sweep then presents the same fixed
// network with progressively sparser Poisson input by scaling the
// encoder rate — the physically meaningful experiment: a dimmer input on
// unchanged thresholds quiets every downstream layer, exactly the regime
// where event-driven execution pays (paper section 3.2, Fig. 13).  For
// each sparsity level the bench reports measured input sparsity and mean
// activity (snn::ActivityTrace), dense and sparse traces/sec, and the
// speedup; sparse throughput must rise monotonically with sparsity.
// Results go to stdout and bench/trajectory/bench_sparse_execution.json
// (the trajectory envelope of bench/trajectory/README.md).
//
// Environment knobs:
//   RESPARC_BENCH_IMAGES    presentations per measurement (default 3)
//   RESPARC_BENCH_TIMESTEPS presentation length           (default 16)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "snn/activity.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"

namespace {

using namespace resparc;
using Clock = std::chrono::steady_clock;

struct Row {
  double rate = 1.0;          ///< encoder max_rate scale
  double input_sparsity = 0;  ///< measured 1 - input activity
  double mean_activity = 0;   ///< measured spikes/neuron/step, all layers
  double dense_tps = 0;       ///< dense-mode traces/sec
  double sparse_tps = 0;      ///< sparse-mode traces/sec
  double speedup = 0;         ///< sparse_tps / dense_tps
};

double time_mode(const api::Workload& w, const snn::SimConfig& base,
                 snn::ExecutionMode mode, std::size_t images,
                 std::size_t repeats) {
  snn::SimConfig cfg = base;
  cfg.record_trace = false;
  cfg.mode = mode;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < images; ++i) {
      Rng rng(api::presentation_seed(bench::bench_seed(), i));
      snn::Simulator sim(w.network, cfg);
      (void)sim.run(w.test.images[i], rng);
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(images * repeats) / std::max(seconds, 1e-9);
}

}  // namespace

int main() {
  const std::size_t images = std::max<std::size_t>(bench::bench_images(), 3);
  const std::size_t timesteps =
      std::min<std::size_t>(bench::bench_timesteps(), 16);
  const std::size_t repeats = 3;

  std::printf("== sparse event-driven engine vs dense simulator ==\n");
  std::printf("(mnist-cnn, %zu presentations x %zu timesteps, thresholds "
              "calibrated once at full rate)\n\n",
              images, timesteps);

  // One calibration at full rate; the sweep only changes the encoder.
  api::PipelineOptions opt;
  opt.images = images;
  opt.timesteps = timesteps;
  opt.threads = 1;
  const api::Workload w =
      api::Pipeline(opt).benchmark(snn::mnist_cnn()).run();

  const std::vector<double> rates = {1.0, 0.5, 0.2, 0.1, 0.05, 0.02};
  std::vector<Row> rows;
  for (const double rate : rates) {
    snn::SimConfig cfg;
    cfg.timesteps = timesteps;
    cfg.encoder.max_rate = rate;

    // Measured sparsity of this sweep point (sparse engine, traced).
    snn::ActivityTrace activity;
    {
      snn::SimConfig traced = cfg;
      traced.mode = snn::ExecutionMode::kSparse;
      for (std::size_t i = 0; i < images; ++i) {
        Rng rng(api::presentation_seed(bench::bench_seed(), i));
        snn::Simulator sim(w.network, traced);
        activity.add(sim.run(w.test.images[i], rng).trace);
      }
    }

    Row row;
    row.rate = rate;
    row.input_sparsity = activity.input_sparsity();
    row.mean_activity = activity.mean_activity();
    row.dense_tps =
        time_mode(w, cfg, snn::ExecutionMode::kDense, images, repeats);
    row.sparse_tps =
        time_mode(w, cfg, snn::ExecutionMode::kSparse, images, repeats);
    row.speedup = row.dense_tps > 0 ? row.sparse_tps / row.dense_tps : 0.0;
    rows.push_back(row);

    std::printf("rate %4.2f | input sparsity %5.1f%% | activity %6.4f | "
                "dense %8.1f tr/s | sparse %8.1f tr/s | speedup %5.2fx\n",
                row.rate, 100.0 * row.input_sparsity, row.mean_activity,
                row.dense_tps, row.sparse_tps, row.speedup);
  }

  std::ostringstream config;
  config << "{\"benchmark\": \"mnist-cnn\", \"presentations\": " << images
         << ", \"timesteps\": " << timesteps << ", \"repeats\": " << repeats
         << ", \"calibration\": \"once-at-full-rate\"}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"rate\": " << Table::num(r.rate, 2)
            << ", \"input_sparsity\": " << Table::num(r.input_sparsity, 4)
            << ", \"mean_activity\": " << Table::num(r.mean_activity, 5)
            << ", \"dense_tps\": " << Table::num(r.dense_tps, 1)
            << ", \"sparse_tps\": " << Table::num(r.sparse_tps, 1)
            << ", \"speedup\": " << Table::num(r.speedup, 2) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("bench_sparse_execution", config.str(), metrics.str());
  return 0;
}
