// Fleet Monte-Carlo yield sweep — fault severity vs chip yield and
// accuracy/energy spread (docs/reliability.md).
//
// Four fault populations (pristine through severe) are each sampled with
// a fleet of seeded chip instances through api::run_fleet: every chip
// compiles with the fault-aware repair pass, re-simulates the shared
// eval set on its perturbed network, and replays the baseline traces for
// energy.  The sweep reports the yield at a 90%-of-baseline accuracy
// floor, nearest-rank accuracy quantiles and the uJ/classification
// spread per population.  The zero-fault row is the harness's own
// acceptance check: every pristine chip must reproduce the baseline
// accuracy bit for bit (yield 1.0, acc_p50 == baseline), which
// tools/validate_trajectory.py enforces on the committed snapshot and on
// fresh CI runs alike.  Results go to stdout and
// bench/trajectory/bench_fault_yield.json.
//
// Environment knobs:
//   RESPARC_FLEET_CHIPS     chip instances per population (default 64)
//   RESPARC_BENCH_TIMESTEPS presentation length           (default 8)
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "api/fleet.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace resparc;

std::size_t fleet_chips() {
  if (const char* env = std::getenv("RESPARC_FLEET_CHIPS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 64;
}

/// One fault population of the sweep: `stuck_rate` splits 3:1 between
/// stuck-off and stuck-on cells, `sigma` drives both the programming
/// variation and (at half strength) the frozen read noise.
struct Point {
  double stuck_rate;
  double sigma;
};

}  // namespace

int main() {
  const std::size_t chips = fleet_chips();
  const std::size_t timesteps =
      std::min<std::size_t>(bench::bench_timesteps(), 8);
  const std::vector<Point> points = {
      {0.0, 0.0}, {0.001, 0.05}, {0.005, 0.10}, {0.02, 0.20}};

  std::printf("== fleet Monte-Carlo yield vs fault severity ==\n");
  std::printf("(mnist-like MLP, %zu chips x %zu populations, MCA-64/paper, "
              "floor 90%% of baseline)\n\n",
              chips, points.size());

  struct Row {
    Point point;
    api::FleetReport fleet;
  };
  std::vector<Row> rows;
  for (const Point& point : points) {
    api::FleetOptions opt;
    opt.chips = chips;
    opt.images = 8;
    opt.timesteps = timesteps;
    opt.faults.stuck_off_rate = 0.75 * point.stuck_rate;
    opt.faults.stuck_on_rate = 0.25 * point.stuck_rate;
    opt.faults.programming_sigma = point.sigma;
    opt.faults.read_noise_sigma = 0.5 * point.sigma;
    rows.push_back(Row{point, api::run_fleet(opt)});

    const api::FleetReport& f = rows.back().fleet;
    std::printf("stuck %6.4f sigma %4.2f | yield %5.1f%% | acc p05/p50/p95 "
                "%.3f/%.3f/%.3f | uJ p50/p95 %.4f/%.4f\n",
                point.stuck_rate, point.sigma, 100.0 * f.yield, f.acc_p05,
                f.acc_p50, f.acc_p95, f.energy_p50_uj, f.energy_p95_uj);
  }

  std::ostringstream config;
  config << "{\"chips_per_point\": " << chips << ", \"images\": " << 8
         << ", \"timesteps\": " << timesteps
         << ", \"accuracy_floor\": 0.9, \"mca\": 64, "
         << "\"strategy\": \"paper\", \"seed\": 7}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const api::FleetReport& f = rows[i].fleet;
    metrics << "    {\"chips\": " << f.chips.size()
            << ", \"stuck_rate\": " << Table::num(rows[i].point.stuck_rate, 4)
            << ", \"sigma\": " << Table::num(rows[i].point.sigma, 2)
            << ", \"yield\": " << Table::num(f.yield, 6)
            << ", \"acc_p05\": " << Table::num(f.acc_p05, 9)
            << ", \"acc_p50\": " << Table::num(f.acc_p50, 9)
            << ", \"acc_p95\": " << Table::num(f.acc_p95, 9)
            << ", \"energy_p50_uj\": " << Table::num(f.energy_p50_uj, 9)
            << ", \"energy_p95_uj\": " << Table::num(f.energy_p95_uj, 9)
            << ", \"baseline_accuracy\": "
            << Table::num(f.baseline_accuracy, 9) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("bench_fault_yield", config.str(), metrics.str());
  return 0;
}
