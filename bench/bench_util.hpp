// Shared workload builder for the figure benches — a thin veneer over
// api::Pipeline.
//
// Every bench consumes the same artefact: a paper benchmark (Fig. 10 row)
// plus spike traces recorded by the functional simulator on the matching
// synthetic dataset.  Traces are independent of the architecture
// configuration, so one build serves every MCA size / event-driven mode,
// and identical traces feed every backend of a comparison.
//
// Environment knobs (all optional, for quick runs):
//   RESPARC_BENCH_IMAGES    images per benchmark      (default 3)
//   RESPARC_BENCH_TIMESTEPS presentation length       (default 32)
//   RESPARC_BENCH_THREADS   pipeline workers          (default all cores)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::bench {

/// The benches consume the API-level workload directly.
using api::Workload;

/// Number of images per benchmark (env RESPARC_BENCH_IMAGES, default 3).
std::size_t bench_images();

/// Presentation length in timesteps (env RESPARC_BENCH_TIMESTEPS, 32).
std::size_t bench_timesteps();

/// Pipeline workers (env RESPARC_BENCH_THREADS, default 0 = all cores).
std::size_t bench_threads();

/// Root seed every bench derives its random streams from (env
/// RESPARC_BENCH_SEED, default 7).  Benches must not seed Rng ad hoc:
/// draw per-purpose streams with stream_seed(bench_seed(), k) so one env
/// knob re-rolls every bench coherently and streams never collide.
std::uint64_t bench_seed();

/// Pipeline options pre-loaded with the bench environment knobs.
api::PipelineOptions bench_options(std::uint64_t seed = bench_seed(),
                                   double target_activity = 0.10);

/// Builds the workload for one Fig. 10 benchmark through api::Pipeline:
/// synthesises the matching dataset (downsampled for the SVHN/CIFAR MLPs),
/// initialises weights, calibrates thresholds to ~`target_activity` per
/// layer, and records the traces.  Deterministic in the options seed for
/// any thread count.
Workload make_workload(const snn::BenchmarkSpec& spec,
                       const api::PipelineOptions& options = bench_options());

/// All six paper benchmarks as ready workloads (paper row order).
std::vector<Workload> paper_workloads();

/// Writes `content` under bench_output/<name> next to the working
/// directory (best effort; failures are reported but not fatal).
void note_csv_written(const std::string& path, bool ok);

/// Commit hash recorded in trajectory JSON: RESPARC_GIT_COMMIT when set
/// (CI injects the SHA), "unknown" otherwise.
std::string bench_commit();

/// Renders the versioned bench-trajectory envelope documented in
/// bench/trajectory/README.md: {"bench", "schema_version", "commit",
/// "config": {...}, "metrics": {...}}.  `config_json` and `metrics_json`
/// are pre-rendered JSON objects (including their braces); the envelope
/// supplies everything else, so every tracked bench stays validatable by
/// tools/validate_trajectory.py.
std::string trajectory_envelope(const std::string& bench,
                                const std::string& config_json,
                                const std::string& metrics_json);

/// Directory tracked benches write their trajectory JSON into:
/// RESPARC_TRAJECTORY_DIR when set, otherwise "bench/trajectory" (created
/// on demand) — so a run from the repo root refreshes the committed
/// snapshots in place and nothing strays into the working directory.
std::string trajectory_dir();

/// Writes `<trajectory_dir()>/<bench>.json` with the rendered envelope
/// (trajectory_envelope) and reports the path via note_csv_written.
/// Returns false when the directory or file cannot be created.
bool write_trajectory(const std::string& bench, const std::string& config_json,
                      const std::string& metrics_json);

}  // namespace resparc::bench
