// Shared workload builder for the figure benches.
//
// Every bench consumes the same artefact: a paper benchmark (Fig. 10 row)
// plus spike traces recorded by the functional simulator on the matching
// synthetic dataset.  Traces are independent of the architecture
// configuration, so one build serves every MCA size / event-driven mode.
//
// Environment knobs (all optional, for quick runs):
//   RESPARC_BENCH_IMAGES    images per benchmark      (default 3)
//   RESPARC_BENCH_TIMESTEPS presentation length       (default 32)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "snn/benchmarks.hpp"
#include "snn/network.hpp"
#include "snn/trace.hpp"

namespace resparc::bench {

/// A benchmark plus recorded spike traces ready for the executors.
struct Workload {
  snn::BenchmarkSpec spec;
  snn::Network network;                 ///< calibrated random-weight SNN
  std::vector<snn::SpikeTrace> traces;  ///< one per presented image
  double mean_activity = 0.0;           ///< spikes/neuron/step over traces
};

/// Number of images per benchmark (env RESPARC_BENCH_IMAGES, default 3).
std::size_t bench_images();

/// Presentation length in timesteps (env RESPARC_BENCH_TIMESTEPS, 32).
std::size_t bench_timesteps();

/// Builds the workload for one Fig. 10 benchmark: synthesises the matching
/// dataset (downsampled for the SVHN/CIFAR MLPs), initialises weights,
/// calibrates thresholds to ~`target_activity` per layer, and records the
/// traces.  Deterministic in `seed`.
Workload make_workload(const snn::BenchmarkSpec& spec,
                       std::size_t images = bench_images(),
                       std::size_t timesteps = bench_timesteps(),
                       std::uint64_t seed = 7, double target_activity = 0.10);

/// All six paper benchmarks as ready workloads (paper row order).
std::vector<Workload> paper_workloads();

/// Writes `content` under bench_output/<name> next to the working
/// directory (best effort; failures are reported but not fatal).
void note_csv_written(const std::string& path, bool ok);

}  // namespace resparc::bench
