// Micro-benchmark — batched pipeline throughput vs thread count.
//
// Measures the two thread-pooled stages of api::Pipeline on the MNIST MLP
// benchmark: trace simulation (presentations/sec through Pipeline::run)
// and backend execution (traces/sec through Pipeline::execute on the
// RESPARC and CMOS backends).  Results go to stdout and to
// bench/trajectory/pipeline_throughput.json so future PRs can track the
// perf trajectory.
//
// Environment knobs:
//   RESPARC_BENCH_IMAGES    presentations per measurement (default 8)
//   RESPARC_BENCH_TIMESTEPS presentation length           (default 16)
//   RESPARC_BENCH_REPS      timing repetitions, min reported (default 5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "snn/benchmarks.hpp"

namespace {

using namespace resparc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t bench_reps() {
  if (const char* env = std::getenv("RESPARC_BENCH_REPS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 5;
}

/// Minimum wall time of fn() over `reps` runs — the stable statistic on
/// a shared/noisy machine.
template <typename Fn>
double min_seconds(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

struct Row {
  std::size_t threads = 0;
  double simulate_tps = 0.0;          ///< presentations simulated per second
  double execute_resparc_tps = 0.0;   ///< traces replayed per second
  double execute_resparc_packed_tps = 0.0;  ///< via the "+packed" batched path
  double execute_cmos_tps = 0.0;
};

}  // namespace

int main() {
  const std::size_t images =
      std::max<std::size_t>(bench::bench_images(), 8);
  const std::size_t timesteps =
      std::min<std::size_t>(bench::bench_timesteps(), 16);
  const std::size_t reps = bench_reps();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== pipeline throughput vs thread count ==\n");
  std::printf("(mnist-mlp, %zu presentations x %zu timesteps, %zu reps, "
              "%u hardware threads)\n\n",
              images, timesteps, reps, hw == 0 ? 1 : hw);

  const snn::BenchmarkSpec spec = snn::mnist_mlp();

  // One warm workload provides the calibrated network and the traces
  // every row replays.
  api::PipelineOptions opt;
  opt.images = images;
  opt.timesteps = timesteps;
  opt.threads = 1;
  const api::Workload warm = api::Pipeline(opt).benchmark(spec).run();

  const auto resparc = api::make_accelerator("resparc-64");
  const auto resparc_packed = api::make_accelerator("resparc-64+packed");
  const auto cmos = api::make_accelerator("cmos");
  resparc->load(warm.topology());
  resparc_packed->load(warm.topology());
  cmos->load(warm.topology());

  // The simulate rows re-run the workflow with the ALREADY-CALIBRATED
  // network (Pipeline::network), so the serial overhead left to subtract
  // is just dataset synthesis + the network copy — small and stable —
  // rather than threshold calibration, whose run-to-run noise used to
  // swamp the simulate stage itself.  Both sides of the subtraction are
  // best-of-reps minima.
  api::Pipeline sim_pipeline(opt);
  sim_pipeline.dataset(spec.dataset).network(warm.network);
  auto timed_run = [&](std::size_t threads, bool record) {
    sim_pipeline.mutable_options().threads = threads;
    sim_pipeline.mutable_options().record_traces = record;
    return min_seconds(reps, [&] { (void)sim_pipeline.run(); });
  };
  const double overhead_s = timed_run(1, false);

  // Traces are thread-count invariant (test-enforced), so every row
  // replays the one warm workload's traces — no per-row pipeline rebuild.
  std::vector<Row> rows;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Row row;
    row.threads = threads;

    const double simulate_s =
        std::max(timed_run(threads, true) - overhead_s, 1e-9);
    row.simulate_tps = static_cast<double>(warm.traces.size()) / simulate_s;

    row.execute_resparc_tps =
        static_cast<double>(warm.traces.size()) /
        min_seconds(reps, [&] {
          (void)api::Pipeline::execute(*resparc, warm.traces, threads);
        });

    row.execute_resparc_packed_tps =
        static_cast<double>(warm.traces.size()) /
        min_seconds(reps, [&] {
          (void)api::Pipeline::execute(*resparc_packed, warm.traces, threads);
        });

    row.execute_cmos_tps =
        static_cast<double>(warm.traces.size()) /
        min_seconds(reps, [&] {
          (void)api::Pipeline::execute(*cmos, warm.traces, threads);
        });

    rows.push_back(row);
    std::printf("threads %2zu: simulate %8.2f pres/s | execute resparc "
                "%8.2f traces/s | packed %8.2f traces/s | execute cmos "
                "%8.2f traces/s\n",
                row.threads, row.simulate_tps, row.execute_resparc_tps,
                row.execute_resparc_packed_tps, row.execute_cmos_tps);
  }

  std::ostringstream config;
  config << "{\"benchmark\": \"mnist-mlp\", \"presentations\": " << images
         << ", \"timesteps\": " << timesteps << ", \"reps\": " << reps
         << ", \"hardware_threads\": " << (hw == 0 ? 1 : hw) << "}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"threads\": " << r.threads
            << ", \"simulate_tps\": " << r.simulate_tps
            << ", \"execute_resparc_tps\": " << r.execute_resparc_tps
            << ", \"execute_resparc_packed_tps\": "
            << r.execute_resparc_packed_tps
            << ", \"execute_cmos_tps\": " << r.execute_cmos_tps << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("pipeline_throughput", config.str(), metrics.str());
  return 0;
}
