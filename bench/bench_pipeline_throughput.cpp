// Micro-benchmark — batched pipeline throughput vs thread count.
//
// Measures the two thread-pooled stages of api::Pipeline on the MNIST MLP
// benchmark: trace simulation (presentations/sec through Pipeline::run)
// and backend execution (traces/sec through Pipeline::execute on the
// RESPARC and CMOS backends).  Results go to stdout and to
// pipeline_throughput.json so future PRs can track the perf trajectory.
//
// Environment knobs:
//   RESPARC_BENCH_IMAGES    presentations per measurement (default 8)
//   RESPARC_BENCH_TIMESTEPS presentation length           (default 16)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "snn/benchmarks.hpp"

namespace {

using namespace resparc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Row {
  std::size_t threads = 0;
  double simulate_tps = 0.0;          ///< presentations simulated per second
  double execute_resparc_tps = 0.0;   ///< traces replayed per second
  double execute_cmos_tps = 0.0;
};

}  // namespace

int main() {
  const std::size_t images =
      std::max<std::size_t>(bench::bench_images(), 8);
  const std::size_t timesteps =
      std::min<std::size_t>(bench::bench_timesteps(), 16);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== pipeline throughput vs thread count ==\n");
  std::printf("(mnist-mlp, %zu presentations x %zu timesteps, %u hardware "
              "threads)\n\n",
              images, timesteps, hw == 0 ? 1 : hw);

  const snn::BenchmarkSpec spec = snn::mnist_mlp();

  // One warm workload gives the executors their traces; per-thread-count
  // runs rebuild it to time the simulation stage.
  api::PipelineOptions opt;
  opt.images = images;
  opt.timesteps = timesteps;
  opt.threads = 1;
  const api::Workload warm = api::Pipeline(opt).benchmark(spec).run();

  const auto resparc = api::make_accelerator("resparc-64");
  const auto cmos = api::make_accelerator("cmos");
  resparc->load(warm.topology());
  cmos->load(warm.topology());

  // Serial pipeline overhead (dataset synthesis, network init, threshold
  // calibration) is identical for every thread count; measure it once via
  // a record_traces=false run and subtract, so simulate_tps tracks only
  // the thread-pooled trace-simulation stage.
  opt.record_traces = false;
  auto overhead_start = Clock::now();
  (void)api::Pipeline(opt).benchmark(spec).run();
  const double overhead_s = seconds_since(overhead_start);
  opt.record_traces = true;

  std::vector<Row> rows;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Row row;
    row.threads = threads;

    opt.threads = threads;
    auto start = Clock::now();
    const api::Workload w = api::Pipeline(opt).benchmark(spec).run();
    const double simulate_s =
        std::max(seconds_since(start) - overhead_s, 1e-9);
    row.simulate_tps = static_cast<double>(w.traces.size()) / simulate_s;

    start = Clock::now();
    (void)api::Pipeline::execute(*resparc, w.traces, threads);
    row.execute_resparc_tps =
        static_cast<double>(w.traces.size()) / seconds_since(start);

    start = Clock::now();
    (void)api::Pipeline::execute(*cmos, w.traces, threads);
    row.execute_cmos_tps =
        static_cast<double>(w.traces.size()) / seconds_since(start);

    rows.push_back(row);
    std::printf("threads %2zu: simulate %8.2f pres/s | execute resparc "
                "%8.2f traces/s | execute cmos %8.2f traces/s\n",
                row.threads, row.simulate_tps, row.execute_resparc_tps,
                row.execute_cmos_tps);
  }

  std::ostringstream config;
  config << "{\"benchmark\": \"mnist-mlp\", \"presentations\": " << images
         << ", \"timesteps\": " << timesteps << ", \"hardware_threads\": "
         << (hw == 0 ? 1 : hw) << "}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"threads\": " << r.threads
            << ", \"simulate_tps\": " << r.simulate_tps
            << ", \"execute_resparc_tps\": " << r.execute_resparc_tps
            << ", \"execute_cmos_tps\": " << r.execute_cmos_tps << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  const std::string path = "pipeline_throughput.json";
  std::ofstream out(path);
  if (out)
    out << bench::trajectory_envelope("pipeline_throughput", config.str(),
                                      metrics.str());
  bench::note_csv_written(path, static_cast<bool>(out));
  return 0;
}
