// Bench — search-based mapping optimizer vs the one-shot heuristics.
//
// The headline trajectory of the search layer (src/compile/search,
// docs/compile.md): compile the paper-scale MNIST-CNN with greedy-pack
// (the strongest one-shot strategy), anneal and beam, then replay the
// same measured traces on every mapping under *event* NoC fidelity, so
// both axes the search optimises show up as measurements rather than
// model outputs:
//
//   * energy per classification (uJ/class) — the searched heterogeneous
//     MCA mixes must beat greedy-pack by >= 5% (the trajectory validator
//     enforces the floor);
//   * NoC stall cycles per classification — congestion on real switch
//     FIFOs; the searched placements must stall strictly less.
//
// The search budget honours RESPARC_SEARCH_BUDGET (annealing rounds /
// beam depth), which CI pins so the bench job stays bounded; results are
// deterministic in RESPARC_BENCH_SEED for any thread count.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "compile/search/search.hpp"
#include "core/config.hpp"
#include "noc/route.hpp"

namespace {

using namespace resparc;

struct Row {
  std::string strategy;
  double energy_uj = 0.0;
  double latency_ns = 0.0;
  double stall_cycles = 0.0;
  double stall_ns = 0.0;
  double utilization = 0.0;
  std::size_t mcas = 0;
  std::size_t neurocells = 0;
  std::size_t bus_boundaries = 0;
  std::size_t mixed_sizes = 0;  ///< layers tiled at a non-default MCA size
};

}  // namespace

int main() {
  std::cout << "== Bench: search-based mapping (anneal/beam vs greedy-pack) "
               "==\n\n";
  const snn::BenchmarkSpec spec = snn::mnist_cnn();
  const bench::Workload w = bench::make_workload(spec);
  const std::size_t mca = 64;
  const std::size_t budget =
      compile::search::SearchOptions::from_env().rounds;

  Table t({"Strategy", "Energy (uJ)", "Latency (ns)", "Stall cyc",
           "Utilisation", "MCAs", "NCs", "Bus bnd", "Mixed"});
  std::vector<Row> rows;

  for (const char* strategy : {"greedy-pack", "anneal", "beam"}) {
    // Event fidelity: real switch FIFOs, so stall cycles are measured
    // congestion, and the leakage term integrates over the stalled step.
    api::ResparcBackend backend(core::config_with_mca(mca), strategy,
                                snn::ExecutionMode::kDense,
                                noc::Fidelity::kEvent);
    backend.load(spec.topology);
    const core::Mapping& m = backend.mapping();
    const api::ExecutionReport r =
        api::Pipeline::execute(backend, w.traces, bench::bench_threads());

    Row row;
    row.strategy = strategy;
    row.energy_uj = r.energy_pj * 1e-6;
    row.latency_ns = r.latency_ns;
    row.stall_cycles = r.resparc->perf.cycles_stall;
    row.stall_ns = r.bucket_ns("noc_stall");
    row.utilization = m.utilization;
    row.mcas = m.total_mcas;
    row.neurocells = m.total_neurocells;
    row.bus_boundaries = backend.program().cost.bus_boundaries;
    for (std::size_t l = 0; l < m.layers.size(); ++l)
      if (m.layers[l].mca_size != 0) ++row.mixed_sizes;
    rows.push_back(row);

    t.add_row({row.strategy, Table::num(row.energy_uj, 3),
               Table::num(row.latency_ns, 1), Table::num(row.stall_cycles, 1),
               Table::num(row.utilization, 3), std::to_string(row.mcas),
               std::to_string(row.neurocells),
               std::to_string(row.bus_boundaries),
               std::to_string(row.mixed_sizes)});
  }
  t.print(std::cout);
  std::cout << "\nanneal/beam search per-layer MCA sizes, tile policies and "
               "NeuroCell\nalignment (docs/compile.md); greedy-pack is the "
               "strongest one-shot\nbaseline.  Energy and stalls are measured "
               "event-fidelity replays of\nidentical traces.\n";

  std::ostringstream config;
  config << "{\"benchmark\": \"" << spec.topology.name()
         << "\", \"mca\": " << mca
         << ", \"presentations\": " << bench::bench_images()
         << ", \"timesteps\": " << bench::bench_timesteps()
         << ", \"search_budget\": " << budget
         << ", \"noc\": \"event\"}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"strategy\": \"" << r.strategy
            << "\", \"energy_uj\": " << Table::num(r.energy_uj, 4)
            << ", \"latency_ns\": " << Table::num(r.latency_ns, 1)
            << ", \"stall_cycles\": " << Table::num(r.stall_cycles, 1)
            << ", \"stall_ns\": " << Table::num(r.stall_ns, 1)
            << ", \"utilization\": " << Table::num(r.utilization, 4)
            << ", \"mcas\": " << r.mcas
            << ", \"neurocells\": " << r.neurocells
            << ", \"bus_boundaries\": " << r.bus_boundaries
            << ", \"mixed_sizes\": " << r.mixed_sizes << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("bench_search_mapping", config.str(), metrics.str());
  return 0;
}
