// Fig. 12 — Energy breakdowns vs crossbar size.
//
// (a/c) RESPARC energy split into Neuron / Crossbar / Peripherals for MCA
// sizes 32, 64 and 128 on every benchmark; the paper's claims: MLP energy
// falls monotonically with MCA size, CNNs are cheapest at 64.
// (b/d) CMOS baseline split into Core / Memory Access / Memory Leakage;
// the paper's claims: MLPs are memory-dominated, CNNs compute-dominated.
// Every configuration is one make_accelerator name; the named breakdown
// buckets come straight from the unified ExecutionReport.
#include <iostream>
#include <string>

#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main() {
  using namespace resparc;
  std::cout << "== Fig. 12: energy breakdowns vs MCA size ==\n\n";

  Table ra({"Benchmark", "Config", "Neuron (uJ)", "Crossbar (uJ)",
            "Peripherals (uJ)", "Total (uJ)", "Norm."});
  Csv csv({"benchmark", "config", "neuron_uj", "crossbar_uj",
           "peripherals_uj", "total_uj"});

  const auto workloads = bench::paper_workloads();

  for (const auto& w : workloads) {
    double norm = 0.0;
    for (const std::size_t mca : {32u, 64u, 128u}) {
      const auto accel =
          api::make_accelerator("resparc-" + std::to_string(mca));
      accel->load(w.topology());
      const api::ExecutionReport r =
          api::Pipeline::execute(*accel, w.traces, bench::bench_threads());
      const double total = r.energy_pj * 1e-6;
      if (norm == 0.0) norm = total;  // normalise to the RESPARC-32 column
      ra.add_row({w.topology().name(), accel->name(),
                  Table::num(r.bucket_pj("neuron") * 1e-6, 3),
                  Table::num(r.bucket_pj("crossbar") * 1e-6, 3),
                  Table::num(r.bucket_pj("peripherals") * 1e-6, 3),
                  Table::num(total, 3), Table::num(total / norm, 2)});
      csv.add_row({w.topology().name(), accel->name(),
                   Table::num(r.bucket_pj("neuron") * 1e-6, 4),
                   Table::num(r.bucket_pj("crossbar") * 1e-6, 4),
                   Table::num(r.bucket_pj("peripherals") * 1e-6, 4),
                   Table::num(total, 4)});
    }
  }
  std::cout << "--- (a/c) RESPARC breakdown (per classification) ---\n";
  ra.print(std::cout);
  std::cout << "Paper: MLP energy decreases with MCA size (peripheral\n"
               "amortisation); CNNs are most efficient at RESPARC-64 —\n"
               "beyond it, non-utilised crosspoints dominate.\n\n";

  Table cb({"Benchmark", "Core (uJ)", "Mem access (uJ)", "Mem leakage (uJ)",
            "Total (uJ)", "Dominant"});
  for (const auto& w : workloads) {
    const auto baseline = api::make_accelerator("cmos");
    baseline->load(w.topology());
    const api::ExecutionReport r =
        api::Pipeline::execute(*baseline, w.traces, bench::bench_threads());
    const double core = r.bucket_pj("core") * 1e-6;
    const double acc = r.bucket_pj("memory_access") * 1e-6;
    const double leak = r.bucket_pj("memory_leakage") * 1e-6;
    // "Dominant" = the largest single bucket, matching how the paper's
    // stacked bars read.
    const std::string dominant =
        core >= acc && core >= leak
            ? "core"
            : (acc >= leak ? "memory access" : "memory leakage");
    cb.add_row({w.topology().name(), Table::num(core, 2),
                Table::num(acc, 2), Table::num(leak, 2),
                Table::num(r.energy_pj * 1e-6, 2), dominant});
    csv.add_row({w.topology().name(), "CMOS", Table::num(core, 4),
                 Table::num(acc, 4), Table::num(leak, 4),
                 Table::num(r.energy_pj * 1e-6, 4)});
  }
  std::cout << "--- (b/d) CMOS baseline breakdown (per classification) ---\n";
  cb.print(std::cout);
  std::cout << "Paper: MLPs are dominated by the memory component (weight\n"
               "storage is what RESPARC's in-memory crossbars eliminate);\n"
               "CNN cores dominate their memory-access term (weight reuse),\n"
               "so RESPARC's CNN win comes from cheap inner products.\n";
  bench::note_csv_written("fig12_breakdown.csv", csv.write("fig12_breakdown.csv"));
  return 0;
}
