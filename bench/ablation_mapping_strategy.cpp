// Ablation — mapping strategies across the compile layer.
//
// RESPARC's reconfigurability claim (section 3.1, Fig. 12c) makes the
// topology→fabric mapping a degree of freedom.  This ablation runs every
// registered compile::MappingStrategy (the one-shot "paper",
// "greedy-pack", "balanced" plus the search-based "anneal"/"beam") over
// an MLP and a CNN workload at MCA 32/64/128 and reports what each
// strategy trades: crossbar utilisation, deployed arrays/NeuroCells,
// serial-bus boundaries, and — from an event-fidelity executor replay of
// identical traces — measured energy per classification, replay latency
// and NoC stall cycles.  (An earlier revision reported simulate-path
// throughput here, which is mapping-independent by construction and was
// identical across strategies; latency and stalls are the quantities a
// mapping actually moves.)  Results go to stdout and to
// bench/trajectory/ablation_mapping_strategy.json for the trajectory.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "compile/strategy.hpp"
#include "core/config.hpp"
#include "noc/route.hpp"

namespace {

using namespace resparc;

struct Row {
  std::string benchmark;
  std::size_t mca = 0;
  std::string strategy;
  double utilization = 0.0;
  std::size_t mcas = 0;
  std::size_t neurocells = 0;
  std::size_t bus_boundaries = 0;
  double energy_uj = 0.0;
  double latency_ns = 0.0;
  double stall_cycles = 0.0;
};

}  // namespace

int main() {
  std::cout << "== Ablation: mapping strategies (compile layer) ==\n\n";

  const std::vector<std::string> strategies = compile::registered_strategies();

  Table t({"Benchmark", "MCA", "Strategy", "Utilisation", "MCAs", "NCs",
           "Bus bnd", "Energy (uJ)", "Latency (ns)", "Stall cyc"});
  std::vector<Row> rows;

  for (const auto& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
    const bench::Workload w = bench::make_workload(spec);
    for (const std::size_t mca : {32u, 64u, 128u}) {
      for (const std::string& strategy : strategies) {
        // Event fidelity: stall cycles are measured FIFO congestion and
        // the leakage term integrates over the stalled wall time, so the
        // replay exposes exactly what a placement costs.
        api::ResparcBackend backend(core::config_with_mca(mca), strategy,
                                    snn::ExecutionMode::kDense,
                                    noc::Fidelity::kEvent);
        backend.load(spec.topology);
        const core::Mapping& m = backend.mapping();
        const api::ExecutionReport r =
            api::Pipeline::execute(backend, w.traces, bench::bench_threads());

        Row row;
        row.benchmark = spec.topology.name();
        row.mca = mca;
        row.strategy = strategy;
        row.utilization = m.utilization;
        row.mcas = m.total_mcas;
        row.neurocells = m.total_neurocells;
        row.bus_boundaries = backend.program().cost.bus_boundaries;
        row.energy_uj = r.energy_pj * 1e-6;
        row.latency_ns = r.latency_ns;
        row.stall_cycles = r.resparc->perf.cycles_stall;
        rows.push_back(row);

        t.add_row({row.benchmark, std::to_string(mca), strategy,
                   Table::num(row.utilization, 3), std::to_string(row.mcas),
                   std::to_string(row.neurocells),
                   std::to_string(row.bus_boundaries),
                   Table::num(row.energy_uj, 3),
                   Table::num(row.latency_ns, 1),
                   Table::num(row.stall_cycles, 1)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\ngreedy-pack lifts CNN utilisation (shared-window conv tiles "
               "+ packed pool\nwindows) and cuts deployed arrays; balanced "
               "trades idle mPE slots for fewer\nserial-bus boundaries; "
               "anneal/beam search per-layer sizes and policies\n"
               "(docs/compile.md).  Energy, latency and stalls are "
               "event-fidelity replays\nof identical traces.\n";

  std::ostringstream config;
  config << "{\"benchmarks\": [\"mnist-mlp\", \"mnist-cnn\"], "
         << "\"mca_sizes\": [32, 64, 128], \"presentations\": "
         << bench::bench_images() << ", \"timesteps\": "
         << bench::bench_timesteps() << ", \"noc\": \"event\"}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"benchmark\": \"" << r.benchmark << "\", \"mca\": "
            << r.mca << ", \"strategy\": \"" << r.strategy
            << "\", \"utilization\": " << Table::num(r.utilization, 4)
            << ", \"mcas\": " << r.mcas << ", \"neurocells\": " << r.neurocells
            << ", \"bus_boundaries\": " << r.bus_boundaries
            << ", \"energy_uj\": " << Table::num(r.energy_uj, 4)
            << ", \"latency_ns\": " << Table::num(r.latency_ns, 1)
            << ", \"stall_cycles\": " << Table::num(r.stall_cycles, 1) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("ablation_mapping_strategy", config.str(), metrics.str());
  return 0;
}
