// Ablation — enhanced input sharing for CNN tiling (section 3.1.1).
//
// The paper argues that enumerating a CNN's connectivity across smaller
// MCAs "facilitates enhanced input-sharing that improves MCA utilization
// [and] reduces the number of mPEs required".  This ablation quantifies
// that claim: it maps every CNN benchmark with the baseline per-position
// tiling and with shared-window tiling, and reports arrays, utilisation
// and energy.  It uses the concrete api::ResparcBackend (not the erased
// registry handle) because it inspects the crossbar Mapping.
#include <iostream>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/config.hpp"

int main() {
  using namespace resparc;
  std::cout << "== Ablation: CNN input-sharing tiling (section 3.1.1) ==\n\n";

  Table t({"Benchmark", "MCA", "Tiling", "MCAs", "mPEs", "Utilisation",
           "Energy (uJ)"});
  Csv csv({"benchmark", "mca", "tiling", "mcas", "mpes", "utilization",
           "energy_uj"});

  for (const auto& spec : {snn::mnist_cnn(), snn::svhn_cnn(), snn::cifar_cnn()}) {
    const bench::Workload w = bench::make_workload(spec);
    for (const std::size_t mca : {32u, 64u}) {
      for (const bool enhanced : {false, true}) {
        core::ResparcConfig cfg = core::config_with_mca(mca);
        cfg.enhanced_input_sharing = enhanced;
        api::ResparcBackend backend(cfg);
        backend.load(spec.topology);
        const core::Mapping& m = backend.mapping();
        const api::ExecutionReport r =
            api::Pipeline::execute(backend, w.traces, bench::bench_threads());
        const std::string label = enhanced ? "shared-window" : "per-position";
        t.add_row({spec.topology.name(), std::to_string(mca), label,
                   std::to_string(m.total_mcas), std::to_string(m.total_mpes),
                   Table::num(m.utilization, 3),
                   Table::num(r.energy_pj * 1e-6, 3)});
        csv.add_row({spec.topology.name(), std::to_string(mca), label,
                     std::to_string(m.total_mcas), std::to_string(m.total_mpes),
                     Table::num(m.utilization, 4),
                     Table::num(r.energy_pj * 1e-6, 4)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nShared-window tiling needs fewer arrays and mPEs at equal\n"
               "or better utilisation — the quantified version of the\n"
               "paper's input-sharing argument.\n";
  bench::note_csv_written("ablation_input_sharing.csv",
                          csv.write("ablation_input_sharing.csv"));
  return 0;
}
