// Ablation — technology-aware MCA size selection (contribution #3).
//
// "RESPARC maps a given SNN topology to the most optimized MCA size for
// the given crossbar technology."  This bench filters candidate sizes by
// a device-reliability constraint (worst-case IR-drop attenuation) and
// then picks the energy optimum per benchmark, reporting the choice.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/techaware.hpp"

int main() {
  using namespace resparc;
  std::cout << "== Ablation: technology-aware MCA size selection ==\n\n";

  const std::vector<std::size_t> all_sizes{32, 64, 128, 256};
  const tech::Technology technology = tech::default_technology();
  // A resistive wire (15 ohm/segment) plus a 75% signal floor knocks out
  // the largest arrays — the paper's reliability constraint in action.
  const auto permitted =
      core::permissible_sizes(all_sizes, technology, 15.0, 0.75);

  std::cout << "Device-permissible sizes (wire IR-drop >= 75% signal): ";
  for (std::size_t n : permitted) std::cout << n << ' ';
  std::cout << "\n\n";

  Table t({"Benchmark", "Chosen N", "Energy @ chosen (uJ)", "Energy @ 32",
           "Energy @ max permitted", "Utilisation"});
  Csv csv({"benchmark", "chosen", "energy_uj", "utilization"});

  for (const auto& w : bench::paper_workloads()) {
    const core::TechAwareResult result = core::explore_mca_sizes(
        w.topology(), w.traces, core::default_config(), permitted);
    const auto& best = result.best();
    t.add_row({w.topology().name(), std::to_string(best.mca_size),
               Table::num(best.energy_pj * 1e-6, 3),
               Table::num(result.candidates.front().energy_pj * 1e-6, 3),
               Table::num(result.candidates.back().energy_pj * 1e-6, 3),
               Table::num(best.utilization, 3)});
    csv.add_row({w.topology().name(), std::to_string(best.mca_size),
                 Table::num(best.energy_pj * 1e-6, 4),
                 Table::num(best.utilization, 4)});
  }
  t.print(std::cout);
  std::cout << "\nMLPs pick the largest permitted array (peripheral\n"
               "amortisation); CNNs settle on an intermediate size where\n"
               "utilisation and peripheral cost balance.\n";
  bench::note_csv_written("ablation_techaware.csv",
                          csv.write("ablation_techaware.csv"));
  return 0;
}
