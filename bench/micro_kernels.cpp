// Micro-benchmarks of the shared kernel layer (common/kernels.hpp):
// naive scalar reference loops vs the blocked/vectorizable kernels, on
// paper-scale shapes.  Tracked in the bench trajectory
// (bench/trajectory/micro_kernels.json, docs/performance.md): each row
// reports the naive and kernel wall time and their ratio, so kernel
// regressions are visible across PRs and in CI.
//
// Environment knobs:
//   RESPARC_BENCH_REPS   timing repetitions per measurement (default 9;
//                        the minimum over reps is reported, which is the
//                        stable statistic on a noisy machine)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/kernels.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace {

using namespace resparc;
using Clock = std::chrono::steady_clock;

std::size_t bench_reps() {
  if (const char* env = std::getenv("RESPARC_BENCH_REPS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 9;
}

/// Minimum wall time of `fn()` over `reps` runs, in milliseconds.
template <typename Fn>
double min_ms(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    best = std::min(best, ms);
  }
  return best;
}

/// Defeats dead-code elimination of a result buffer.
volatile float g_sink_f = 0.0f;

struct Row {
  std::string kernel;
  std::size_t items = 0;  ///< arithmetic items (MACs/adds) per timed call
  double naive_ms = 0.0;
  double kernel_ms = 0.0;
  double speedup() const { return kernel_ms > 0.0 ? naive_ms / kernel_ms : 0.0; }
};

// ---------------------------------------------------------------- naive --
// Scalar reference loops: byte-for-byte the pre-kernel-layer inner loops,
// kept here as the baseline the kernels are measured against (and that
// tests/test_kernels.cpp verifies bit-for-bit equality with).

void naive_conv_forward(const float* in, std::size_t ic, std::size_t ih,
                        std::size_t iw, const Matrix& w, std::size_t oc_n,
                        std::size_t k, std::size_t pad, std::size_t oh,
                        std::size_t ow, float* out) {
  for (std::size_t oc = 0; oc < oc_n; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < ic; ++c) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                      static_cast<std::ptrdiff_t>(pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              acc += in[(c * ih + static_cast<std::size_t>(iy)) * iw +
                        static_cast<std::size_t>(ix)] *
                     w((c * k + ky) * k + kx, oc);
            }
          }
        }
        out[(oc * oh + oy) * ow + ox] = acc;
      }
    }
  }
}

void naive_matvec_in_major(const Matrix& w, const std::vector<float>& x,
                           std::vector<float>& out) {
  for (auto& v : out) v = 0.0f;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const float xv = x[r];
    if (xv == 0.0f) continue;
    const auto row = w.row(r);
    for (std::size_t c = 0; c < w.cols(); ++c) out[c] += xv * row[c];
  }
}

// ----------------------------------------------------------------- rows --

Row bench_conv_forward(std::size_t reps) {
  // The MNIST-CNN second conv layer (52ch 14x14 -> 64ch, 3x3 same): the
  // layer the ANN trainer spends its forward time in.
  const std::size_t ic = 52, ih = 14, iw = 14, oc = 64, k = 3, pad = 1;
  Rng rng(stream_seed(bench::bench_seed(), 0));
  std::vector<float> in(ic * ih * iw);
  for (auto& v : in) v = static_cast<float>(rng.uniform(0.0, 1.0));
  Matrix w(ic * k * k, oc);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.2));
  std::vector<float> out(oc * ih * iw, 0.0f);
  kernels::Scratch scratch;

  Row row;
  row.kernel = "conv_forward";
  row.items = out.size() * ic * k * k;
  row.naive_ms = min_ms(reps, [&] {
    naive_conv_forward(in.data(), ic, ih, iw, w, oc, k, pad, ih, iw,
                       out.data());
    g_sink_f = out[0];
  });
  row.kernel_ms = min_ms(reps, [&] {
    kernels::conv2d_forward(in.data(), ic, ih, iw, w.flat().data(), oc, k,
                            pad, ih, iw, out.data(), scratch);
    g_sink_f = out[0];
  });
  return row;
}

Row bench_matvec(std::size_t reps) {
  // MNIST-MLP first layer shape (784 -> 800), dense activations.
  const std::size_t rows = 784, cols = 800;
  Rng rng(stream_seed(bench::bench_seed(), 1));
  Matrix w(rows, cols);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.1));
  std::vector<float> x(rows);
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 1.0));
  std::vector<float> out(cols, 0.0f);

  Row row;
  row.kernel = "matvec_in_major";
  row.items = rows * cols;
  row.naive_ms = min_ms(reps, [&] {
    naive_matvec_in_major(w, x, out);
    g_sink_f = out[0];
  });
  row.kernel_ms = min_ms(reps, [&] {
    kernels::matvec_in_major(w.flat().data(), rows, cols, x.data(),
                             out.data());
    g_sink_f = out[0];
  });
  return row;
}

Row bench_row_accumulate(std::size_t reps) {
  // The dense simulate hot loop: ~10% active rows of an 800-wide layer
  // accumulated onto the current buffer (one presentation step's worth,
  // repeated to get above timer resolution).
  const std::size_t rows = 784, cols = 800, iters = 64;
  Rng rng(stream_seed(bench::bench_seed(), 2));
  Matrix w(rows, cols);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.1));
  std::vector<std::uint32_t> active;
  for (std::size_t r = 0; r < rows; ++r)
    if (rng.bernoulli(0.1)) active.push_back(static_cast<std::uint32_t>(r));
  std::vector<float> acc(cols, 0.0f);

  Row row;
  row.kernel = "row_accumulate";
  row.items = active.size() * cols * iters;
  row.naive_ms = min_ms(reps, [&] {
    for (std::size_t it = 0; it < iters; ++it) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (const std::uint32_t r : active) {
        const auto wrow = w.row(r);
        for (std::size_t c = 0; c < cols; ++c) acc[c] += wrow[c];
      }
    }
    g_sink_f = acc[0];
  });
  row.kernel_ms = min_ms(reps, [&] {
    for (std::size_t it = 0; it < iters; ++it) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      kernels::accumulate_rows(w.flat().data(), cols, cols, active,
                               acc.data());
    }
    g_sink_f = acc[0];
  });
  return row;
}

Row bench_masked_row_accumulate(std::size_t reps) {
  // The packed-datapath dense scatter (docs/performance.md): a sparse
  // spike word mask over a large layer.  The naive baseline is the
  // byte-scan the pre-packed engines effectively perform — test every
  // row's activity byte, accumulate the active ones.
  const std::size_t rows = 4096, cols = 800, iters = 16;
  Rng rng(stream_seed(bench::bench_seed(), 3));
  Matrix w(rows, cols);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.1));
  std::vector<std::uint8_t> bytes(rows, 0);
  std::vector<std::uint64_t> mask((rows + 63) / 64, 0);
  for (std::size_t r = 0; r < rows; ++r)
    if (rng.bernoulli(0.01)) {  // ~99% sparse: the event-driven regime
      bytes[r] = 1;
      mask[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
  std::vector<float> acc(cols, 0.0f);

  Row row;
  row.kernel = "masked_row_accumulate";
  row.items = rows * iters;  // rows *tested* per pass (the scan is the cost)
  row.naive_ms = min_ms(reps, [&] {
    for (std::size_t it = 0; it < iters; ++it) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::size_t r = 0; r < rows; ++r) {
        if (!bytes[r]) continue;
        const auto wrow = w.row(r);
        for (std::size_t c = 0; c < cols; ++c) acc[c] += wrow[c];
      }
    }
    g_sink_f = acc[0];
  });
  row.kernel_ms = min_ms(reps, [&] {
    for (std::size_t it = 0; it < iters; ++it) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      kernels::masked_row_accumulate(w.flat().data(), cols, cols, mask.data(),
                                     rows, acc.data());
    }
    g_sink_f = acc[0];
  });
  return row;
}

/// Defeats dead-code elimination of a popcount result.
volatile std::size_t g_sink_z = 0;

Row bench_popcount_dot(std::size_t reps) {
  // Binary spike x mask inner product, packed words vs a bit-at-a-time
  // scan (what per-neuron bookkeeping costs without the word datapath).
  const std::size_t bits = 1 << 20;
  const std::size_t words = bits / 64;
  Rng rng(stream_seed(bench::bench_seed(), 4));
  std::vector<std::uint64_t> a(words), b(words);
  for (auto& v : a) v = rng();
  for (auto& v : b) v = rng();

  Row row;
  row.kernel = "popcount_dot";
  row.items = bits;
  row.naive_ms = min_ms(reps, [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < bits; ++i)
      n += ((a[i >> 6] >> (i & 63)) & (b[i >> 6] >> (i & 63))) & 1u;
    g_sink_z = n;
  });
  row.kernel_ms = min_ms(reps, [&] {
    g_sink_z = kernels::popcount_dot(a.data(), b.data(), bits);
  });
  return row;
}

}  // namespace

int main() {
  const std::size_t reps = bench_reps();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== kernel micro-benchmarks (naive scalar vs kernel layer) ==\n");
  std::printf("(%zu reps, min reported; %u hardware threads)\n\n", reps,
              hw == 0 ? 1 : hw);

  std::vector<Row> rows;
  rows.push_back(bench_conv_forward(reps));
  rows.push_back(bench_matvec(reps));
  rows.push_back(bench_row_accumulate(reps));
  rows.push_back(bench_masked_row_accumulate(reps));
  rows.push_back(bench_popcount_dot(reps));

  for (const Row& r : rows)
    std::printf("%-16s %12zu items | naive %9.4f ms | kernel %9.4f ms | "
                "%5.2fx\n",
                r.kernel.c_str(), r.items, r.naive_ms, r.kernel_ms,
                r.speedup());

  std::ostringstream config;
  config << "{\"reps\": " << reps
         << ", \"hardware_threads\": " << (hw == 0 ? 1 : hw) << "}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"kernel\": \"" << r.kernel << "\", \"items\": "
            << r.items << ", \"naive_ms\": " << r.naive_ms
            << ", \"kernel_ms\": " << r.kernel_ms
            << ", \"speedup\": " << r.speedup() << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("micro_kernels", config.str(), metrics.str());
  return 0;
}
