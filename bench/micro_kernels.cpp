// Micro-benchmarks (google-benchmark) of the simulator's hot kernels:
// crossbar reads, functional-simulation steps, mapping, and trace replay.
// These guard the wall-clock budget of the figure benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/mapper.hpp"
#include "core/mca.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"
#include "tech/crossbar_model.hpp"

namespace {

using namespace resparc;

void BM_CrossbarReadCurrents(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  tech::CrossbarModel xbar(n, n, tech::Memristor{tech::pcm_params()});
  Matrix mags(n, n, 0.5f);
  xbar.program(mags);
  Rng rng(1);
  std::vector<std::uint8_t> spikes(n);
  for (auto& s : spikes) s = rng.bernoulli(0.1);
  std::vector<double> currents(n);
  for (auto _ : state) {
    xbar.read_currents(spikes, currents);
    benchmark::DoNotOptimize(currents.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_CrossbarReadCurrents)->Arg(32)->Arg(64)->Arg(128);

void BM_McaAccumulate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::Mca mca(n, tech::Memristor{tech::pcm_params()});
  Rng rng(2);
  Matrix weights(n, n);
  for (float& w : weights.flat()) w = static_cast<float>(rng.normal(0.0, 0.3));
  mca.program(weights, 0);
  snn::SpikeVector input(n);
  for (std::size_t i = 0; i < n; i += 7) input.set(i);
  std::vector<float> acc(n);
  for (auto _ : state) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    benchmark::DoNotOptimize(mca.accumulate(input, acc));
  }
}
BENCHMARK(BM_McaAccumulate)->Arg(64)->Arg(128);

void BM_FunctionalSimStep(benchmark::State& state) {
  // One full presentation of the MNIST MLP (paper scale) per iteration.
  const auto spec = snn::mnist_mlp();
  snn::Network net(spec.topology);
  Rng rng(3);
  net.init_random(rng, 1.0f);
  net.set_uniform_threshold(2.0);
  snn::SimConfig cfg;
  cfg.timesteps = static_cast<std::size_t>(state.range(0));
  cfg.record_trace = false;
  snn::Simulator sim(net, cfg);
  std::vector<float> img(784);
  for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 0.3));
  for (auto _ : state) {
    const auto result = sim.run(img, rng);
    benchmark::DoNotOptimize(result.total_spikes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FunctionalSimStep)->Arg(8)->Arg(32);

void BM_MapNetwork(benchmark::State& state) {
  const auto spec = snn::cifar_cnn();  // largest benchmark
  const auto cfg = core::config_with_mca(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const core::Mapping m = core::map_network(spec.topology, cfg);
    benchmark::DoNotOptimize(m.total_mcas);
  }
}
BENCHMARK(BM_MapNetwork)->Arg(32)->Arg(64)->Arg(128);

void BM_ExecutorReplay(benchmark::State& state) {
  const auto spec = snn::mnist_mlp();
  snn::Network net(spec.topology);
  Rng rng(4);
  net.init_random(rng, 1.0f);
  net.set_uniform_threshold(2.0);
  snn::SimConfig cfg;
  cfg.timesteps = 16;
  snn::Simulator sim(net, cfg);
  std::vector<float> img(784);
  for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 0.3));
  const snn::SpikeTrace trace = sim.run(img, rng).trace;
  const core::Mapping mapping =
      core::map_network(spec.topology, core::default_config());
  const core::Executor executor(spec.topology, mapping);
  for (auto _ : state) {
    const core::RunReport r = executor.run(trace);
    benchmark::DoNotOptimize(r.energy);
  }
}
BENCHMARK(BM_ExecutorReplay);

}  // namespace

BENCHMARK_MAIN();
