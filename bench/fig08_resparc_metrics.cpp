// Fig. 8 — RESPARC parameters and implementation metrics.
//
// Reproduces the paper's NeuroCell table: micro-architectural parameters
// (64-bit architecture, 4x4 NC, 16 mPEs / 9 switches, 4 MCAs per mPE) and
// the implementation-metric roll-up (area, power, gate count, frequency)
// obtained through the unified accelerator API, printed next to the
// paper's synthesis numbers.
#include <iostream>

#include "api/registry.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/config.hpp"

int main() {
  using namespace resparc;
  const core::ResparcConfig cfg = core::default_config();
  const api::AcceleratorMetrics m = api::make_accelerator("resparc")->metrics();

  std::cout << "== Fig. 8: RESPARC parameters and metrics (one NeuroCell) ==\n\n";

  Table params({"Micro-architectural parameter", "Value", "Paper"});
  params.add_row({"Architecture width", std::to_string(cfg.technology.flit_bits) + " bit", "64 bit"});
  params.add_row({"NC dimension", std::to_string(cfg.nc_dim) + "x" + std::to_string(cfg.nc_dim), "4x4"});
  params.add_row({"No. of mPE (switches)",
                  std::to_string(cfg.mpes_per_neurocell()) + " (" +
                      std::to_string(cfg.switches_per_neurocell()) + ")",
                  "16 (9)"});
  params.add_row({"No. of MCAs per mPE", std::to_string(cfg.mcas_per_mpe), "4"});
  params.print(std::cout);

  std::cout << '\n';
  Table metrics({"Metric", "Ours", "Paper"});
  metrics.add_row({"Feature size", "45 nm", "45 nm"});
  metrics.add_row({"Area (mm^2)", Table::num(m.area_mm2, 2), "0.29"});
  metrics.add_row({"Power (mW)", Table::num(m.power_mw, 1), "53.2"});
  metrics.add_row({"Gate count", Table::num(m.gate_count, 0), "67643"});
  metrics.add_row({"Frequency (MHz)", Table::num(m.frequency_mhz, 0), "200"});
  metrics.print(std::cout);

  Csv csv({"metric", "ours", "paper"});
  csv.add_row({"area_mm2", Table::num(m.area_mm2, 3), "0.29"});
  csv.add_row({"power_mw", Table::num(m.power_mw, 2), "53.2"});
  csv.add_row({"gate_count", Table::num(m.gate_count, 0), "67643"});
  csv.add_row({"frequency_mhz", Table::num(m.frequency_mhz, 0), "200"});
  bench::note_csv_written("fig08_resparc_metrics.csv",
                          csv.write("fig08_resparc_metrics.csv"));
  return 0;
}
