// Ml-NoC contention sweep — analytic vs event NoC fidelity across MCA
// sizes (docs/noc.md, docs/benchmarks.md).
//
// The MNIST CNN workload is traced once; the sweep then replays the same
// traces through RESPARC at MCA 64/128/256 under both NoC fidelities.
// Smaller arrays deploy more NeuroCells, which deepens the inter-cell
// H-tree and pushes more layer boundaries onto the serial global bus —
// the event model turns that into hop pipeline-fill and congestion stall
// cycles the flat analytic charges cannot see.  Rows report the deployed
// fabric (NeuroCells, bus boundaries, per-level hops), both latencies,
// the stall cycles and the event/analytic inflation; the committed JSON
// is the acceptance evidence that event fidelity separates the
// configurations (tools/validate_trajectory.py checks it).
//
// Latencies and hop counts are cycle-model outputs, not wall clock, so
// rows are deterministic for a given workload.
//
// Environment knobs:
//   RESPARC_BENCH_IMAGES    presentations per measurement (default 3)
//   RESPARC_BENCH_TIMESTEPS presentation length           (default 32)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "compile/compiler.hpp"
#include "core/config.hpp"
#include "noc/route.hpp"
#include "snn/benchmarks.hpp"

namespace {

using namespace resparc;

struct Row {
  std::size_t mca = 0;               ///< crossbar size N
  std::size_t neurocells = 0;        ///< NeuroCells deployed
  std::size_t bus_boundaries = 0;    ///< layer boundaries on the global bus
  double analytic_latency_ns = 0;    ///< pipelined latency, analytic NoC
  double event_latency_ns = 0;       ///< pipelined latency, event NoC
  double event_serial_ns = 0;        ///< end-to-end serial latency, event NoC
  double inflation = 0;              ///< event / analytic latency
  double stall_cycles = 0;           ///< congestion stalls per classification
  double tree_hops = 0;              ///< H-tree word-hops over the trace set
  double mesh_hops = 0;              ///< switch-mesh word-hops over the set
  double bus_words = 0;              ///< serial bus words over the trace set
  double analytic_energy_uj = 0;     ///< energy/classification, analytic
  double event_energy_uj = 0;        ///< energy/classification, event
};

api::ExecutionReport run_fidelity(const api::Workload& w, std::size_t mca,
                                  noc::Fidelity fidelity) {
  api::BackendOptions options;
  options.noc = fidelity;
  auto accel =
      api::make_accelerator("resparc-" + std::to_string(mca), options);
  accel->load(w.topology());
  return accel->execute(w.traces);
}

}  // namespace

int main() {
  std::printf("== Ml-NoC contention: analytic vs event fidelity ==\n");
  std::printf("(mnist-cnn, MCA 64/128/256; deterministic cycle-model "
              "outputs)\n\n");

  const api::Workload w = bench::make_workload(snn::mnist_cnn());

  const std::vector<std::size_t> sizes = {64, 128, 256};
  std::vector<Row> rows;
  for (const std::size_t mca : sizes) {
    const api::ExecutionReport analytic =
        run_fidelity(w, mca, noc::Fidelity::kAnalytic);
    const api::ExecutionReport event =
        run_fidelity(w, mca, noc::Fidelity::kEvent);
    const core::RunReport& ar = *analytic.resparc;
    const core::RunReport& er = *event.resparc;

    Row row;
    row.mca = mca;
    row.bus_boundaries = 0;
    {  // deployed fabric + routing summary from a fresh compile
      compile::Compiler compiler(core::config_with_mca(mca));
      const compile::CompiledProgram p = compiler.compile(w.topology());
      row.neurocells = p.mapping.total_neurocells;
      for (const noc::Route& r : p.routes.boundaries)
        if (r.uses_bus) ++row.bus_boundaries;
    }
    row.analytic_latency_ns = analytic.latency_ns;
    row.event_latency_ns = event.latency_ns;
    row.event_serial_ns = er.perf.latency_serial_ns();
    row.inflation = analytic.latency_ns > 0
                        ? event.latency_ns / analytic.latency_ns
                        : 0.0;
    row.stall_cycles = er.perf.cycles_stall;
    row.tree_hops = static_cast<double>(er.noc.tree.hops);
    row.mesh_hops = static_cast<double>(er.noc.mesh.hops);
    row.bus_words = static_cast<double>(er.noc.bus.words);
    row.analytic_energy_uj = ar.energy.total_pj() * 1e-6;
    row.event_energy_uj = er.energy.total_pj() * 1e-6;
    rows.push_back(row);

    std::printf(
        "MCA-%-3zu | NCs %4zu | bus bnd %zu | analytic %9.1f ns | event "
        "%9.1f ns (%.3fx) | stall %8.1f cy | tree hops %.0f\n",
        row.mca, row.neurocells, row.bus_boundaries, row.analytic_latency_ns,
        row.event_latency_ns, row.inflation, row.stall_cycles, row.tree_hops);
  }

  std::ostringstream config;
  config << "{\"benchmark\": \"mnist-cnn\", \"presentations\": "
         << bench::bench_images()
         << ", \"timesteps\": " << bench::bench_timesteps()
         << ", \"strategy\": \"paper\"}";
  std::ostringstream metrics;
  metrics << "{\"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    metrics << "    {\"mca\": " << r.mca
            << ", \"neurocells\": " << r.neurocells
            << ", \"bus_boundaries\": " << r.bus_boundaries
            << ", \"analytic_latency_ns\": "
            << Table::num(r.analytic_latency_ns, 1)
            << ", \"event_latency_ns\": " << Table::num(r.event_latency_ns, 1)
            << ", \"event_serial_ns\": " << Table::num(r.event_serial_ns, 1)
            << ", \"inflation\": " << Table::num(r.inflation, 4)
            << ", \"stall_cycles\": " << Table::num(r.stall_cycles, 1)
            << ", \"tree_hops\": " << Table::num(r.tree_hops, 0)
            << ", \"mesh_hops\": " << Table::num(r.mesh_hops, 0)
            << ", \"bus_words\": " << Table::num(r.bus_words, 0)
            << ", \"analytic_energy_uj\": "
            << Table::num(r.analytic_energy_uj, 4)
            << ", \"event_energy_uj\": " << Table::num(r.event_energy_uj, 4)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  metrics << "  ]}";

  bench::write_trajectory("bench_noc_contention", config.str(), metrics.str());
  return 0;
}
