// Fig. 9 — CMOS baseline parameters and implementation metrics.
//
// The baseline's micro-architecture (16 NUs, FIFO depth 32, 4-bit widths,
// 1 GHz) and its area/power/gate-count roll-up obtained through the
// unified accelerator API, printed against the paper's synthesis results.
#include <iostream>

#include "api/registry.hpp"
#include "bench_util.hpp"
#include "cmos/falcon.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main() {
  using namespace resparc;
  const cmos::FalconConfig cfg{};
  const api::AcceleratorMetrics m = api::make_accelerator("cmos")->metrics();

  std::cout << "== Fig. 9: CMOS baseline parameters and metrics ==\n\n";

  Table params({"Micro-architectural parameter", "Value", "Paper"});
  params.add_row({"NU count", std::to_string(cfg.neuron_units), "16"});
  params.add_row({"FIFO(s): Input (Weight)", "16 (1)", "16 (1)"});
  params.add_row({"FIFO depth", std::to_string(cfg.fifo_depth), "32"});
  params.add_row({"Width: FIFO (NU), bits",
                  std::to_string(cfg.nu_width_bits) + " (" +
                      std::to_string(cfg.nu_width_bits) + ")",
                  "4 (4)"});
  params.print(std::cout);

  std::cout << '\n';
  Table metrics({"Metric", "Ours", "Paper"});
  metrics.add_row({"Feature size", "45 nm", "45 nm"});
  metrics.add_row({"Area (mm^2)", Table::num(m.area_mm2, 2), "0.19"});
  metrics.add_row({"Power (mW)", Table::num(m.power_mw, 1), "35.1"});
  metrics.add_row({"Gate count", Table::num(m.gate_count, 0), "44798"});
  metrics.add_row({"Frequency (MHz)", Table::num(m.frequency_mhz, 0), "1000"});
  metrics.print(std::cout);

  Csv csv({"metric", "ours", "paper"});
  csv.add_row({"area_mm2", Table::num(m.area_mm2, 3), "0.19"});
  csv.add_row({"power_mw", Table::num(m.power_mw, 2), "35.1"});
  csv.add_row({"gate_count", Table::num(m.gate_count, 0), "44798"});
  csv.add_row({"frequency_mhz", Table::num(m.frequency_mhz, 0), "1000"});
  bench::note_csv_written("fig09_cmos_metrics.csv",
                          csv.write("fig09_cmos_metrics.csv"));
  return 0;
}
