// End-to-end digit-recognition pipeline — the paper's full workflow:
//
//   synthetic MNIST-like data -> offline ANN training (SGD) ->
//   Diehl weight/threshold balancing -> 4-bit device quantisation ->
//   spiking inference traces -> RESPARC vs CMOS energy & latency.
//
// The whole sequence is the Pipeline's train path; the architecture
// comparison is one Pipeline::compare call over the recorded traces.
//
//   ./mnist_pipeline
#include <cstdio>
#include <iostream>

#include "api/pipeline.hpp"
#include "snn/benchmarks.hpp"

int main() {
  using namespace resparc;

  api::PipelineOptions opt;
  opt.train = true;
  opt.train_images = 150;     // training split
  opt.images = 50;            // held-out test split, all traced
  opt.timesteps = 48;
  opt.seed = 7;
  opt.weight_bits = 4;        // 16-level PCM devices (paper section 4.2)
  opt.jitter_pixels = 1.0;
  opt.train_config = {.epochs = 30, .batch_size = 10, .learning_rate = 0.02};

  api::Workload w =
      api::Pipeline(opt)
          .dataset(snn::DatasetKind::kMnistLike)
          .topology(snn::small_mlp_topology(snn::DatasetKind::kMnistLike))
          .run();

  std::printf("dataset: %zu train / %zu test images\n", opt.train_images,
              w.test.size());
  std::printf("ANN trained: loss %.3f -> %.3f, test accuracy %.1f%%\n",
              w.training->epoch_loss.front(), w.training->epoch_loss.back(),
              100.0 * w.ann_test_accuracy);
  std::printf("4-bit SNN accuracy over %zu timesteps: %.1f%%\n\n",
              opt.timesteps, 100.0 * w.accuracy);

  // -- architecture comparison: identical traces through both backends ------
  const std::size_t replay = std::min<std::size_t>(w.traces.size(), 8);
  const std::vector<std::string> backends{"cmos", "resparc"};
  const api::ComparisonReport cmp = api::Pipeline::compare(
      w.topology(), std::span(w.traces.data(), replay), backends);
  cmp.print(std::cout);

  const api::ComparisonEntry& r = *cmp.find("resparc");
  std::printf("\nenergy gain %.0fx, speedup %.0fx\n", r.energy_gain,
              r.speedup);
  return 0;
}
