// End-to-end digit-recognition pipeline — the paper's full workflow:
//
//   synthetic MNIST-like data -> offline ANN training (SGD) ->
//   Diehl weight/threshold balancing -> 4-bit device quantisation ->
//   spiking inference traces -> RESPARC vs CMOS energy & latency.
//
//   ./mnist_pipeline
#include <cstdio>

#include "cmos/falcon.hpp"
#include "common/rng.hpp"
#include "core/resparc.hpp"
#include "data/synthetic.hpp"
#include "snn/benchmarks.hpp"
#include "snn/quantize.hpp"
#include "snn/simulator.hpp"
#include "train/convert.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace resparc;
  Rng rng(7);

  // -- data -----------------------------------------------------------------
  const data::Dataset ds = data::make_synthetic(
      snn::DatasetKind::kMnistLike,
      {.count = 200, .seed = 3, .noise = 0.03, .jitter_pixels = 1.0});
  const data::Dataset train_set = ds.take(150);
  const data::Dataset test_set = ds.drop(150);
  std::printf("dataset: %zu train / %zu test images (%zux%zu)\n",
              train_set.size(), test_set.size(), ds.shape.h, ds.shape.w);

  // -- offline training -------------------------------------------------------
  train::Ann ann(snn::small_mlp_topology(snn::DatasetKind::kMnistLike));
  ann.init_he(rng);
  const train::TrainReport report = train::train(
      ann, train_set, {.epochs = 30, .batch_size = 10, .learning_rate = 0.02},
      rng);
  std::printf("ANN trained: loss %.3f -> %.3f, test accuracy %.1f%%\n",
              report.epoch_loss.front(), report.epoch_loss.back(),
              100.0 * train::ann_accuracy(ann, test_set));

  // -- conversion + device quantisation ---------------------------------------
  snn::Network net = train::convert_to_snn(ann, train_set.images);
  snn::quantize_network(net, 4);  // 16-level PCM devices (paper section 4.2)

  snn::SimConfig cfg;
  cfg.timesteps = 48;
  snn::Simulator sim(net, cfg);

  std::size_t correct = 0;
  std::vector<snn::SpikeTrace> traces;
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    const snn::SimResult r = sim.run(test_set.images[i], rng);
    if (static_cast<int>(r.predicted_class) == test_set.labels[i]) ++correct;
    if (traces.size() < 8) traces.push_back(r.trace);
  }
  std::printf("4-bit SNN accuracy over %zu timesteps: %.1f%%\n",
              cfg.timesteps,
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(test_set.size()));

  // -- architecture comparison -------------------------------------------------
  core::ResparcChip chip(core::default_config());
  chip.load(net.topology());
  const core::RunReport r = chip.execute(traces);

  cmos::FalconAccelerator baseline(net.topology(), {});
  const cmos::CmosReport c = baseline.run_all(traces);

  std::printf(
      "\nRESPARC-64: %.2f nJ per classification, %.2f us latency\n"
      "CMOS:       %.2f nJ per classification, %.2f us latency\n"
      "energy gain %.0fx, speedup %.0fx\n",
      r.energy.total_pj() * 1e-3, r.perf.latency_pipelined_ns() * 1e-3,
      c.energy.total_pj() * 1e-3, c.latency_ns() * 1e-3,
      c.energy.total_pj() / r.energy.total_pj(),
      c.latency_ns() / r.perf.latency_pipelined_ns());
  return 0;
}
