// Quickstart: the 60-second tour of the RESPARC library.
//
// Builds a small spiking MLP, runs it on the behavioral NeuroCell —
// spikes through real crossbars, CCU current chains and zero-checking
// switches — verifies bit-exactness against the functional simulator,
// then maps the same network with the analytic chip model and prints the
// per-classification energy/latency report.
//
//   ./quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/neurocell.hpp"
#include "core/resparc.hpp"
#include "snn/quantize.hpp"
#include "snn/simulator.hpp"

int main() {
  using namespace resparc;

  // -- 1. a small spiking MLP with random weights -------------------------
  snn::Topology topo("quickstart", Shape3{1, 1, 96},
                     {snn::LayerSpec::dense(48), snn::LayerSpec::dense(10)});
  snn::Network net(topo);
  Rng rng(42);
  net.init_random(rng, 1.5f);
  net.layer(0).neuron.v_threshold = 0.4;
  net.layer(1).neuron.v_threshold = 0.4;

  // -- 2. run it on one behavioral NeuroCell ------------------------------
  core::NeuroCell cell(core::default_config());
  cell.load(net);
  std::printf("NeuroCell hosts the %s network on %zu mPEs\n",
              topo.summary().c_str(), cell.mpes_used());

  // Functional reference: the same network, quantised exactly like the
  // 4-bit PCM devices the cell programs.
  snn::Network reference = net;
  snn::quantize_network(reference, 4);
  snn::SimConfig cfg;
  cfg.timesteps = 24;
  cfg.encoder.poisson = false;
  snn::Simulator sim(reference, cfg);

  std::vector<float> image(96);
  for (auto& p : image) p = static_cast<float>(rng.uniform(0.0, 1.0));
  const snn::SimResult ref = sim.run(image, rng);

  std::size_t mismatches = 0;
  cell.reset();
  for (std::size_t t = 0; t < cfg.timesteps; ++t) {
    const snn::SpikeVector out = cell.step(ref.trace.layers[0][t]);
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out.get(i) != ref.trace.layers[2][t].get(i)) ++mismatches;
  }
  const auto counters = cell.counters();
  std::printf(
      "behavioral run: %zu crossbar reads, %zu skipped by zero-check,\n"
      "                %zu CCU transfers, %zu spikes, %zu spike mismatches "
      "vs functional sim\n",
      counters.mca_reads, counters.mca_skips, counters.ccu_transfers,
      counters.neuron_fires, mismatches);

  // -- 3. analytic chip model: energy and latency --------------------------
  core::ResparcChip chip(core::default_config());
  const core::Mapping& mapping = chip.load(topo);
  const core::RunReport report = chip.execute(ref.trace);
  std::printf(
      "\nmapping: %zu MCAs on %zu mPEs across %zu NeuroCell(s), "
      "utilisation %.0f%%\n",
      mapping.total_mcas, mapping.total_mpes, mapping.total_neurocells,
      100.0 * mapping.utilization);
  std::printf(
      "per classification: %.1f nJ  (neuron %.1f | crossbar %.1f | "
      "peripherals %.1f)\n",
      report.energy.total_pj() * 1e-3, report.energy.neuron_pj * 1e-3,
      report.energy.crossbar_pj * 1e-3, report.energy.peripherals_pj() * 1e-3);
  std::printf("latency: %.2f us pipelined (%.2f us single image)\n",
              report.perf.latency_pipelined_ns() * 1e-3,
              report.perf.latency_serial_ns() * 1e-3);
  return mismatches == 0 ? 0 : 1;
}
