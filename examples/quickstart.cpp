// Quickstart: the 60-second tour of the RESPARC library.
//
// One Pipeline call builds the whole workflow — synthetic MNIST-like
// data, a calibrated spiking MLP, batched spike-trace simulation — and
// one Pipeline::compare call replays the identical traces through the
// memristive RESPARC fabric and the digital CMOS baseline.
//
//   ./quickstart
#include <iostream>

#include "api/pipeline.hpp"
#include "snn/benchmarks.hpp"

int main() {
  using namespace resparc;

  api::PipelineOptions opt;
  opt.images = 4;       // presentations traced
  opt.timesteps = 24;   // steps per presentation
  opt.seed = 42;
  api::Workload w = api::Pipeline(opt).benchmark(snn::mnist_mlp()).run();
  std::cout << "workload: " << w.topology().summary() << " on "
            << w.traces.size() << " presentations, mean activity "
            << w.mean_activity << " spikes/neuron/step\n\n";

  // Backend keys accept a "/<strategy>" suffix selecting how the compile
  // layer maps the network onto the crossbars (docs/compile.md).
  const std::vector<std::string> backends{"cmos", "resparc-64",
                                          "resparc-64/greedy-pack"};
  const api::ComparisonReport cmp =
      api::Pipeline::compare(w.topology(), w.traces, backends);
  cmp.print(std::cout);

  const api::ComparisonEntry& resparc = *cmp.find("resparc-64");
  std::cout << "\nRESPARC-64 vs CMOS: " << resparc.energy_gain
            << "x energy gain, " << resparc.speedup << "x speedup\n";
  return resparc.energy_gain > 1.0 ? 0 : 1;
}
