// Event-driven computation demo (paper section 3.2).
//
// Shows the zero-check levers working on real spike statistics: MNIST-like
// images (black background, long zero runs) versus CIFAR-like images
// (dense colour, short runs), and the resulting energy difference on the
// same network shape.
//
//   ./event_driven_demo
#include <cstdio>

#include "common/rng.hpp"
#include "core/resparc.hpp"
#include "data/synthetic.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"
#include "snn/stats.hpp"

namespace {

using namespace resparc;

struct DemoResult {
  double zero32, zero64, zero128;  // all-zero packet fractions (input layer)
  double energy_on_uj, energy_off_uj;
  std::size_t mca_skips, bus_skips;
};

DemoResult run(snn::DatasetKind kind) {
  const data::SyntheticOptions opt{
      .count = 3, .seed = 21, .noise = 0.03, .jitter_pixels = 1.0};
  // The SVHN/CIFAR MLP benchmarks consume the 16x16x3 downsampled input.
  const data::Dataset ds = kind == snn::DatasetKind::kMnistLike
                               ? data::make_synthetic(kind, opt)
                               : data::make_synthetic_downsampled(kind, opt);
  const snn::Topology topo = snn::small_mlp_topology(kind);
  snn::Network net(topo);
  Rng rng(9);
  net.init_random(rng, 1.0f);
  snn::SimConfig cfg;
  cfg.timesteps = 32;
  snn::calibrate_thresholds(net, ds.images, cfg, rng, 0.10);
  snn::Simulator sim(net, cfg);

  DemoResult result{};
  std::vector<snn::SpikeTrace> traces;
  snn::PacketStats p32, p64, p128;
  for (const auto& img : ds.images) {
    traces.push_back(sim.run(img, rng).trace);
    for (auto [bits, stats] :
         {std::pair{32u, &p32}, {64u, &p64}, {128u, &p128}}) {
      const snn::PacketStats s =
          snn::layer_packet_stats(traces.back(), 0, bits);
      stats->packets += s.packets;
      stats->zero_packets += s.zero_packets;
    }
  }
  result.zero32 = p32.zero_fraction();
  result.zero64 = p64.zero_fraction();
  result.zero128 = p128.zero_fraction();

  core::ResparcConfig on = core::config_with_mca(32);
  core::ResparcConfig off = on;
  off.event_driven = false;
  core::ResparcChip chip_on(on), chip_off(off);
  chip_on.load(topo);
  chip_off.load(topo);
  const core::RunReport r_on = chip_on.execute(traces);
  const core::RunReport r_off = chip_off.execute(traces);
  result.energy_on_uj = r_on.energy.total_pj() * 1e-6;
  result.energy_off_uj = r_off.energy.total_pj() * 1e-6;
  result.mca_skips = r_on.events.mca_skips;
  result.bus_skips = r_on.events.bus_skips;
  return result;
}

}  // namespace

int main() {
  std::printf("== event-driven computation on RESPARC-32 ==\n\n");
  for (auto kind : {snn::DatasetKind::kMnistLike, snn::DatasetKind::kCifarLike}) {
    const DemoResult r = run(kind);
    std::printf("%s-like input:\n", snn::to_string(kind).c_str());
    std::printf("  all-zero packet fraction: %4.1f%% @32b, %4.1f%% @64b, %4.1f%% @128b\n",
                100 * r.zero32, 100 * r.zero64, 100 * r.zero128);
    std::printf("  zero-checks skipped %zu crossbar reads and %zu bus words\n",
                r.mca_skips, r.bus_skips);
    std::printf("  energy: %.3f uJ with event-drivenness, %.3f uJ without "
                "(%.1f%% saved)\n\n",
                r.energy_on_uj, r.energy_off_uj,
                100.0 * (r.energy_off_uj - r.energy_on_uj) / r.energy_off_uj);
  }
  std::printf(
      "Sparse (MNIST-like) inputs produce many skippable packets; dense\n"
      "colour images few — the texture behind the paper's Fig. 13.\n");
  return 0;
}
