// Event-driven computation demo (paper section 3.2).
//
// Shows the zero-check levers working on real spike statistics: MNIST-like
// images (black background, long zero runs) versus CIFAR-like images
// (dense colour, short runs), and the resulting energy difference on the
// same network shape.  The workload comes from one Pipeline call; the
// on/off pair differs only in BackendOptions.
//
//   ./event_driven_demo
#include <cstdio>

#include "api/pipeline.hpp"
#include "snn/benchmarks.hpp"
#include "snn/stats.hpp"

namespace {

using namespace resparc;

struct DemoResult {
  double zero32, zero64, zero128;  // all-zero packet fractions (input layer)
  double energy_on_uj, energy_off_uj;
  std::size_t mca_skips, bus_skips;
};

DemoResult run(snn::DatasetKind kind) {
  api::PipelineOptions opt;
  opt.images = 3;
  opt.timesteps = 32;
  opt.seed = 21;
  opt.jitter_pixels = 1.0;
  const api::Workload w = api::Pipeline(opt)
                              .dataset(kind)
                              .topology(snn::small_mlp_topology(kind))
                              .run();

  DemoResult result{};
  snn::PacketStats p32, p64, p128;
  for (const auto& trace : w.traces) {
    for (auto [bits, stats] :
         {std::pair{32u, &p32}, {64u, &p64}, {128u, &p128}}) {
      const snn::PacketStats s = snn::layer_packet_stats(trace, 0, bits);
      stats->packets += s.packets;
      stats->zero_packets += s.zero_packets;
    }
  }
  result.zero32 = p32.zero_fraction();
  result.zero64 = p64.zero_fraction();
  result.zero128 = p128.zero_fraction();

  api::BackendOptions off;
  off.resparc.event_driven = false;
  const auto accel_on = api::make_accelerator("resparc-32");
  const auto accel_off = api::make_accelerator("resparc-32", off);
  accel_on->load(w.topology());
  accel_off->load(w.topology());
  const api::ExecutionReport r_on = accel_on->execute(w.traces);
  const api::ExecutionReport r_off = accel_off->execute(w.traces);
  result.energy_on_uj = r_on.energy_pj * 1e-6;
  result.energy_off_uj = r_off.energy_pj * 1e-6;
  result.mca_skips = r_on.resparc->events.mca_skips;
  result.bus_skips = r_on.resparc->events.bus_skips;
  return result;
}

}  // namespace

int main() {
  std::printf("== event-driven computation on RESPARC-32 ==\n\n");
  for (auto kind : {snn::DatasetKind::kMnistLike, snn::DatasetKind::kCifarLike}) {
    const DemoResult r = run(kind);
    std::printf("%s-like input:\n", snn::to_string(kind).c_str());
    std::printf("  all-zero packet fraction: %4.1f%% @32b, %4.1f%% @64b, %4.1f%% @128b\n",
                100 * r.zero32, 100 * r.zero64, 100 * r.zero128);
    std::printf("  zero-checks skipped %zu crossbar reads and %zu bus words\n",
                r.mca_skips, r.bus_skips);
    std::printf("  energy: %.3f uJ with event-drivenness, %.3f uJ without "
                "(%.1f%% saved)\n\n",
                r.energy_on_uj, r.energy_off_uj,
                100.0 * (r.energy_off_uj - r.energy_on_uj) / r.energy_off_uj);
  }
  std::printf(
      "Sparse (MNIST-like) inputs produce many skippable packets; dense\n"
      "colour images few — the texture behind the paper's Fig. 13.\n");
  return 0;
}
