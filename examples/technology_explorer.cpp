// Technology explorer — the paper's "technology-aware mapping" in action.
//
// For two memristive technologies (PCM, Ag-Si) this example filters the
// candidate MCA sizes by a wire-reliability constraint, maps the MNIST
// benchmarks at every permitted size, and reports the energy-optimal
// choice per network (paper contribution #3).  Traces come from one
// Pipeline call per benchmark; the size exploration itself is the
// core::explore_mca_sizes analysis.
//
//   ./technology_explorer
#include <cstdio>
#include <vector>

#include "api/pipeline.hpp"
#include "core/techaware.hpp"
#include "snn/benchmarks.hpp"

int main() {
  using namespace resparc;
  const std::vector<std::size_t> sizes{32, 64, 128, 256};

  for (const tech::Technology& technology :
       {tech::pcm_technology(), tech::agsi_technology()}) {
    // Ag-Si's higher resistance tolerates more wire drop than PCM's 20k
    // on-state; the same wiring therefore permits larger Ag-Si arrays.
    const auto permitted =
        core::permissible_sizes(sizes, technology, 15.0, 0.75);
    std::printf("technology %s: permitted MCA sizes {", technology.name.c_str());
    for (std::size_t n : permitted) std::printf(" %zu", n);
    std::printf(" }\n");

    for (const auto& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
      api::PipelineOptions opt;
      opt.images = 2;
      opt.timesteps = 24;
      opt.seed = 11;
      const api::Workload w = api::Pipeline(opt).benchmark(spec).run();

      core::ResparcConfig base = core::default_config();
      base.technology = technology;
      const core::TechAwareResult result =
          core::explore_mca_sizes(spec.topology, w.traces, base, permitted);
      std::printf("  %-10s ->", spec.topology.name().c_str());
      for (const auto& c : result.candidates)
        std::printf("  N%-3zu %8.3f uJ (util %4.1f%%)", c.mca_size,
                    c.energy_pj * 1e-6, 100.0 * c.utilization);
      std::printf("  => pick N%zu\n", result.best().mca_size);
    }
  }
  std::printf(
      "\nThe chip picks the largest reliable array for dense MLPs and an\n"
      "intermediate size for CNNs — 'technology-aware' mapping (section 1).\n");
  return 0;
}
