// Technology explorer — the paper's "technology-aware mapping" in action.
//
// For two memristive technologies (PCM, Ag-Si) this example filters the
// candidate MCA sizes by a wire-reliability constraint, maps the MNIST
// benchmarks at every permitted size, and reports the energy-optimal
// choice per network (paper contribution #3).
//
//   ./technology_explorer
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/techaware.hpp"
#include "data/synthetic.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"

namespace {

using namespace resparc;

std::vector<snn::SpikeTrace> make_traces(const snn::BenchmarkSpec& spec) {
  const data::Dataset ds = data::make_synthetic(
      spec.dataset, {.count = 2, .seed = 11, .noise = 0.03, .jitter_pixels = 1.0});
  snn::Network net(spec.topology);
  Rng rng(5);
  net.init_random(rng, 1.0f);
  snn::SimConfig cfg;
  cfg.timesteps = 24;
  snn::calibrate_thresholds(net, ds.images, cfg, rng, 0.10);
  snn::Simulator sim(net, cfg);
  std::vector<snn::SpikeTrace> traces;
  for (const auto& img : ds.images) traces.push_back(sim.run(img, rng).trace);
  return traces;
}

}  // namespace

int main() {
  const std::vector<std::size_t> sizes{32, 64, 128, 256};

  for (const tech::Technology& technology :
       {tech::pcm_technology(), tech::agsi_technology()}) {
    // Ag-Si's higher resistance tolerates more wire drop than PCM's 20k
    // on-state; the same wiring therefore permits larger Ag-Si arrays.
    const auto permitted =
        core::permissible_sizes(sizes, technology, 15.0, 0.75);
    std::printf("technology %s: permitted MCA sizes {", technology.name.c_str());
    for (std::size_t n : permitted) std::printf(" %zu", n);
    std::printf(" }\n");

    for (const auto& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
      const auto traces = make_traces(spec);
      core::ResparcConfig base = core::default_config();
      base.technology = technology;
      const core::TechAwareResult result =
          core::explore_mca_sizes(spec.topology, traces, base, permitted);
      std::printf("  %-10s ->", spec.topology.name().c_str());
      for (const auto& c : result.candidates)
        std::printf("  N%-3zu %8.3f uJ (util %4.1f%%)", c.mca_size,
                    c.energy_pj * 1e-6, 100.0 * c.utilization);
      std::printf("  => pick N%zu\n", result.best().mca_size);
    }
  }
  std::printf(
      "\nThe chip picks the largest reliable array for dense MLPs and an\n"
      "intermediate size for CNNs — 'technology-aware' mapping (section 1).\n");
  return 0;
}
