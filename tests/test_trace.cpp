// Unit tests for packed spike vectors and traces (snn/trace.hpp).
#include "snn/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace resparc::snn {
namespace {

TEST(SpikeVector, SetAndGet) {
  SpikeVector v(100);
  EXPECT_FALSE(v.get(63));
  v.set(63);
  v.set(64);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(65));
}

TEST(SpikeVector, WordCountRoundsUp) {
  EXPECT_EQ(SpikeVector(1).word_count(), 1u);
  EXPECT_EQ(SpikeVector(64).word_count(), 1u);
  EXPECT_EQ(SpikeVector(65).word_count(), 2u);
  EXPECT_EQ(SpikeVector(0).word_count(), 0u);
}

TEST(SpikeVector, CountPopulation) {
  SpikeVector v(130);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_EQ(v.count(), 3u);
  EXPECT_FALSE(v.none());
}

TEST(SpikeVector, NoneOnEmpty) {
  SpikeVector v(70);
  EXPECT_TRUE(v.none());
}

TEST(SpikeVector, FromBytesMatches) {
  std::vector<std::uint8_t> bytes{1, 0, 0, 1, 1};
  const SpikeVector v = SpikeVector::from_bytes(bytes);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(3));
  EXPECT_TRUE(v.get(4));
  EXPECT_EQ(v.count(), 3u);
}

TEST(SpikeVector, CountRangeWithinWord) {
  SpikeVector v(64);
  v.set(3);
  v.set(10);
  v.set(20);
  EXPECT_EQ(v.count_range(0, 64), 3u);
  EXPECT_EQ(v.count_range(4, 20), 1u);   // only bit 10
  EXPECT_EQ(v.count_range(10, 11), 1u);
  EXPECT_EQ(v.count_range(11, 20), 0u);
}

TEST(SpikeVector, CountRangeAcrossWords) {
  SpikeVector v(200);
  v.set(63);
  v.set(64);
  v.set(127);
  v.set(128);
  EXPECT_EQ(v.count_range(63, 129), 4u);
  EXPECT_EQ(v.count_range(64, 128), 2u);
  EXPECT_EQ(v.count_range(0, 200), 4u);
}

TEST(SpikeVector, CountRangeClampsEnd) {
  SpikeVector v(10);
  v.set(9);
  EXPECT_EQ(v.count_range(5, 1000), 1u);
  EXPECT_EQ(v.count_range(10, 20), 0u);
  EXPECT_EQ(v.count_range(7, 7), 0u);
}

TEST(SpikeVector, NoneInRange) {
  SpikeVector v(128);
  v.set(100);
  EXPECT_TRUE(v.none_in_range(0, 100));
  EXPECT_FALSE(v.none_in_range(100, 101));
  EXPECT_TRUE(v.none_in_range(101, 128));
}

TEST(SpikeVector, TrailingBitsStayZero) {
  SpikeVector v(65);
  v.set(64);
  // Only one bit of the second word may be set; count must be exact.
  EXPECT_EQ(v.count(), 1u);
  EXPECT_EQ(v.words().size(), 2u);
  EXPECT_EQ(v.words()[1], 1u);
}

// Regression for the packed datapath's tail invariant: a full word
// stored into the last (partial) word must have its out-of-range bits
// masked BEFORE the store, or stale bits leak into count() /
// append_active() / words() consumers.
TEST(SpikeVector, SetWordMasksTailBits) {
  SpikeVector v(70);  // 6 valid bits in word 1
  v.set_word(1, ~std::uint64_t{0});
  EXPECT_EQ(v.words()[1], 0x3fu);
  EXPECT_EQ(v.count(), 6u);
  std::vector<std::uint32_t> active;
  v.append_active(active);
  ASSERT_EQ(active.size(), 6u);
  EXPECT_EQ(active.front(), 64u);
  EXPECT_EQ(active.back(), 69u);

  // A full word within range stores unmasked.
  v.set_word(0, ~std::uint64_t{0});
  EXPECT_EQ(v.words()[0], ~std::uint64_t{0});
  EXPECT_EQ(v.count(), 70u);

  // Exactly-full tail word: no masking either.
  SpikeVector full(128);
  full.set_word(1, ~std::uint64_t{0});
  EXPECT_EQ(full.count(), 64u);
}

TEST(SpikeVector, WindowMatchesBitScan) {
  SpikeVector v(150);
  for (std::size_t i = 0; i < 150; i += 7) v.set(i);
  for (std::size_t begin : {0u, 1u, 63u, 64u, 65u, 100u, 140u, 149u}) {
    const std::uint64_t w = v.window(begin);
    for (std::size_t j = 0; j < 64; ++j) {
      const std::size_t i = begin + j;
      const bool expected = i < v.size() && v.get(i);
      EXPECT_EQ((w >> j) & 1u, expected ? 1u : 0u)
          << "begin=" << begin << " j=" << j;
    }
  }
  // Past the end: all zero.
  EXPECT_EQ(v.window(192), 0u);
}

TEST(SpikeTrace, ActivityAndCounts) {
  SpikeTrace trace;
  trace.layers.resize(2);
  for (int t = 0; t < 4; ++t) {
    SpikeVector a(10), b(10);
    if (t % 2 == 0) a.set(0);
    b.set(1);
    b.set(2);
    trace.layers[0].push_back(a);
    trace.layers[1].push_back(b);
  }
  EXPECT_EQ(trace.timesteps(), 4u);
  EXPECT_EQ(trace.layer_count(), 2u);
  EXPECT_EQ(trace.layer_spike_count(0), 2u);
  EXPECT_EQ(trace.layer_spike_count(1), 8u);
  EXPECT_DOUBLE_EQ(trace.layer_activity(0), 2.0 / 40.0);
  EXPECT_DOUBLE_EQ(trace.layer_activity(1), 8.0 / 40.0);
}

}  // namespace
}  // namespace resparc::snn
