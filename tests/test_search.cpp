// Contract tests of the search-based mapping strategies
// (src/compile/search, docs/compile.md): thread-count determinism of the
// searched programs, the heterogeneous-MCA verifier invariants the
// search relies on (exact RV-* codes), bit-for-bit engine parity on
// mixed-size chips, and the SearchOptions sanitisation/env seams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "api/backends.hpp"
#include "api/registry.hpp"
#include "common/rng.hpp"
#include "compile/compiler.hpp"
#include "compile/program.hpp"
#include "compile/search/search.hpp"
#include "compile/strategy.hpp"
#include "core/config.hpp"
#include "snn/benchmarks.hpp"
#include "snn/fuzz.hpp"
#include "snn/simulator.hpp"
#include "verify/verifier.hpp"

namespace resparc {
namespace {

using compile::CompiledProgram;
using compile::Compiler;
using compile::search::SearchOptions;

std::string serialized(const CompiledProgram& program) {
  std::ostringstream os;
  program.save(os);
  return os.str();
}

/// Registers an anneal strategy under `name` with `options` and compiles
/// `topology` with it at the default chip configuration.
CompiledProgram compile_anneal(const std::string& name,
                               const SearchOptions& options,
                               const snn::Topology& topology) {
  compile::register_strategy(name, [options] {
    return compile::search::make_anneal_strategy(options);
  });
  return Compiler(core::default_config()).compile(topology, name);
}

// ------------------------------------------------------------ determinism --

// The searched program must be bit-identical for any thread count: all
// random draws come from SplitMix64 streams of the seed, candidates are
// scored into pre-sized slots, and every reduction runs sequentially.
TEST(SearchDeterminism, AnnealIsByteIdenticalAcrossThreadCounts) {
  const snn::Topology& topology = snn::mnist_cnn().topology;
  std::vector<std::string> blobs;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    SearchOptions opt;  // defaults, env-independent
    opt.threads = threads;
    blobs.push_back(serialized(compile_anneal(
        "test-anneal-t" + std::to_string(threads), opt, topology)));
  }
  EXPECT_EQ(blobs[0], blobs[1]) << "threads=1 vs threads=4";
  EXPECT_EQ(blobs[0], blobs[2]) << "threads=1 vs threads=8";
}

TEST(SearchDeterminism, BeamIsByteIdenticalAcrossThreadCounts) {
  const snn::Topology& topology = snn::mnist_cnn().topology;
  std::vector<std::string> blobs;
  for (const std::size_t threads : {1u, 8u}) {
    SearchOptions opt;
    opt.threads = threads;
    compile::register_strategy(
        "test-beam-t" + std::to_string(threads),
        [opt] { return compile::search::make_beam_strategy(opt); });
    blobs.push_back(serialized(Compiler(core::default_config())
        .compile(topology, "test-beam-t" + std::to_string(threads))));
  }
  EXPECT_EQ(blobs[0], blobs[1]);
}

// Same seed -> same program, different seed -> (for this workload) a
// search that still verifies clean; the seed is the only entropy source.
TEST(SearchDeterminism, RepeatedCompilesAreIdentical) {
  const snn::Topology& topology = snn::mnist_mlp().topology;
  SearchOptions opt;
  const std::string a =
      serialized(compile_anneal("test-anneal-rep", opt, topology));
  const std::string b =
      serialized(compile_anneal("test-anneal-rep2", opt, topology));
  EXPECT_EQ(a, b);
}

// ------------------------------------------------- heterogeneous programs --

// The paper-scale CNN search must actually exercise heterogeneous MCA
// mixes (per-layer sizes away from the chip default) and the result must
// verify clean against the topology.  Default options are deterministic,
// so this pins the headline behaviour, not a lucky run.
TEST(SearchHeterogeneous, SearchedCnnProgramMixesSizesAndVerifies) {
  const snn::BenchmarkSpec spec = snn::mnist_cnn();
  const CompiledProgram program =
      compile_anneal("test-anneal-hetero", SearchOptions{}, spec.topology);
  std::size_t mixed = 0;
  for (const auto& lm : program.mapping.layers)
    if (lm.mca_size != 0) ++mixed;
  EXPECT_GE(mixed, 1u) << "search found no heterogeneous sizes";
  verify::VerifyOptions options;
  options.topology = &spec.topology;
  const verify::VerifyReport report = verify::verify_program(program, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// A mixed-size program must round-trip through the blob format with the
// per-layer sizes intact (serialization v3 carries mca_size per layer).
TEST(SearchHeterogeneous, MixedSizeProgramRoundTripsThroughTheBlob) {
  const snn::BenchmarkSpec spec = snn::mnist_cnn();
  const CompiledProgram program =
      compile_anneal("test-anneal-rt", SearchOptions{}, spec.topology);
  std::istringstream is(serialized(program));
  const CompiledProgram reparsed =
      CompiledProgram::load(is, core::default_config());
  ASSERT_EQ(reparsed.mapping.layers.size(), program.mapping.layers.size());
  for (std::size_t l = 0; l < program.mapping.layers.size(); ++l) {
    EXPECT_EQ(reparsed.mapping.layers[l].mca_size,
              program.mapping.layers[l].mca_size) << "layer " << l;
    EXPECT_EQ(reparsed.mapping.layer_mca_size(l),
              program.mapping.layer_mca_size(l)) << "layer " << l;
  }
}

// --------------------------------------------------- verifier invariants --

// Hand-built damage: an out-of-range per-layer size must be caught with
// the exact capacity code, both on the program object and through the
// serialized-blob lint path.
TEST(SearchVerifier, OutOfRangeLayerSizeIsCaught) {
  const CompiledProgram base = Compiler(core::default_config())
      .compile(snn::mnist_mlp().topology, "paper");
  for (const std::size_t bad : {4u, 2048u}) {
    CompiledProgram program = base;
    program.mapping.layers[0].mca_size = bad;
    const verify::VerifyReport report = verify::verify_program(program);
    EXPECT_TRUE(report.has("RV-CAP-MCA-SIZE"))
        << "size " << bad << "\n" << report.to_string();
    // The same damage written to a blob is a lint finding, not a crash.
    const verify::VerifyReport blob_report =
        verify::verify_blob(serialized(program), core::default_config());
    EXPECT_TRUE(blob_report.has("RV-CAP-MCA-SIZE")) << "size " << bad;
  }
}

// Two array sizes inside one NeuroCell violate the fabric's peripheral
// pitch (one mPE hosts one size).  Damage a layer that shares a cell
// with its neighbour and demand the exact code.
TEST(SearchVerifier, MixedSizesInOneNeuroCellAreCaught) {
  CompiledProgram program = Compiler(core::default_config())
      .compile(snn::mnist_mlp().topology, "paper");
  const auto& layers = program.mapping.layers;
  std::size_t victim = layers.size();
  for (std::size_t l = 0; l + 1 < layers.size(); ++l)
    if (layers[l + 1].first_nc <= layers[l].last_nc) victim = l + 1;
  ASSERT_LT(victim, layers.size())
      << "paper placement no longer shares NeuroCells; rebuild the test";
  program.mapping.layers[victim].mca_size = 32;
  const verify::VerifyReport report = verify::verify_program(program);
  EXPECT_TRUE(report.has("RV-CAP-NC-MIXED-SIZE")) << report.to_string();
  const verify::VerifyReport blob_report =
      verify::verify_blob(serialized(program), core::default_config());
  EXPECT_TRUE(blob_report.has("RV-CAP-NC-MIXED-SIZE"));
}

// ------------------------------------------------------- engine parity --

// Differential sweep over random legal workloads: the searched
// (potentially mixed-size) program must replay bit-for-bit identically
// through the dense, sparse and packed engines — the same parity the
// homogeneous fuzz layer enforces, now over heterogeneous chips.
TEST(SearchDifferential, MixedSizeProgramsReplayIdenticallyOnAllEngines) {
  constexpr std::uint64_t kSweep = 6;
  SearchOptions opt;
  opt.rounds = 4;
  opt.proposals = 4;
  opt.elites = 3;
  opt.calibration_steps = 4;
  opt.polish = 1;
  compile::register_strategy("test-search-fuzz", [opt] {
    return compile::search::make_anneal_strategy(opt);
  });

  std::size_t mixed_cases = 0;
  for (std::uint64_t seed = 0; seed < kSweep; ++seed) {
    const snn::FuzzCase c = snn::make_fuzz_case(seed);
    const snn::Network net = snn::make_fuzz_network(c);
    snn::SimConfig cfg;
    cfg.timesteps = c.timesteps;
    cfg.encoder = c.encoder;
    cfg.record_trace = true;
    snn::Simulator sim(net, cfg);
    Rng rng(c.seed ^ 0x5ea2c4f11ull);
    const std::vector<snn::SpikeTrace> traces = {sim.run(c.image, rng).trace};

    const std::string base =
        "resparc-" + std::to_string(c.mca_size) + "/test-search-fuzz";
    const auto dense = api::make_accelerator(base);
    dense->load(c.topology);
    const api::ExecutionReport ref = dense->execute(traces);
    for (const auto& lm :
         dynamic_cast<const api::ResparcBackend&>(*dense).mapping().layers)
      if (lm.mca_size != 0) {
        ++mixed_cases;
        break;
      }
    for (const char* suffix : {"+sparse", "+packed"}) {
      const auto accel = api::make_accelerator(base + suffix);
      accel->load(c.topology);
      const api::ExecutionReport r = accel->execute(traces);
      EXPECT_EQ(r.energy_pj, ref.energy_pj) << c.summary() << suffix;
      EXPECT_EQ(r.latency_ns, ref.latency_ns) << c.summary() << suffix;
    }
  }
  // The sweep must actually exercise heterogeneous mixes somewhere, or
  // the parity claim above is vacuous for mixed-size chips.
  EXPECT_GE(mixed_cases, 1u);
}

// ------------------------------------------------------------- options --

// Sanitisation: garbage sizes are dropped, the chip's own size is always
// a candidate, and zero counts are clamped — a degenerate SearchOptions
// still compiles a clean program instead of throwing.
TEST(SearchOptionsSeam, DegenerateOptionsStillCompileClean) {
  SearchOptions opt;
  opt.sizes = {1, 4096};  // all outside [8, 1024]: dropped
  opt.rounds = 0;
  opt.proposals = 0;
  opt.elites = 0;
  opt.calibration_steps = 0;
  opt.polish = 0;
  opt.activity = -3.0;
  const CompiledProgram program =
      compile_anneal("test-anneal-degenerate", opt, snn::mnist_mlp().topology);
  const verify::VerifyReport report = verify::verify_program(program);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(program.strategy, "anneal");
}

// The env seams the bench/CI jobs steer the search with.
TEST(SearchOptionsSeam, FromEnvReadsBudgetAndSeed) {
  ASSERT_EQ(setenv("RESPARC_SEARCH_BUDGET", "5", 1), 0);
  ASSERT_EQ(setenv("RESPARC_BENCH_SEED", "99", 1), 0);
  const SearchOptions opt = SearchOptions::from_env();
  EXPECT_EQ(opt.rounds, 5u);
  EXPECT_EQ(opt.seed, 99u);
  ASSERT_EQ(unsetenv("RESPARC_SEARCH_BUDGET"), 0);
  ASSERT_EQ(unsetenv("RESPARC_BENCH_SEED"), 0);
  const SearchOptions defaults = SearchOptions::from_env();
  EXPECT_EQ(defaults.rounds, SearchOptions{}.rounds);
  EXPECT_EQ(defaults.seed, SearchOptions{}.seed);
}

}  // namespace
}  // namespace resparc
