// Unit tests for the ResparcChip facade and Fig. 8 metrics (core/resparc.hpp).
#include "core/resparc.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "snn/simulator.hpp"

namespace resparc::core {
namespace {

using snn::LayerSpec;
using snn::Topology;

Topology small_topo() {
  return Topology("chip", Shape3{1, 1, 64},
                  {LayerSpec::dense(64), LayerSpec::dense(10)});
}

snn::SpikeTrace make_trace(const Topology& topo) {
  snn::Network net(topo);
  Rng rng(1);
  net.init_random(rng, 1.0f);
  std::vector<std::vector<float>> images{std::vector<float>(64, 0.5f)};
  snn::SimConfig cfg;
  cfg.timesteps = 8;
  snn::calibrate_thresholds(net, images, cfg, rng, 0.1);
  snn::Simulator sim(net, cfg);
  return sim.run(images[0], rng).trace;
}

TEST(ResparcChip, LoadThenExecute) {
  ResparcChip chip(default_config());
  EXPECT_FALSE(chip.loaded());
  const Topology topo = small_topo();
  const Mapping& m = chip.load(topo);
  EXPECT_TRUE(chip.loaded());
  EXPECT_GT(m.total_mcas, 0u);
  const RunReport r = chip.execute(make_trace(topo));
  EXPECT_GT(r.energy.total_pj(), 0.0);
}

TEST(ResparcChip, ExecuteWithoutLoadThrows) {
  ResparcChip chip(default_config());
  snn::SpikeTrace t;
  EXPECT_THROW(chip.execute(t), ConfigError);
  EXPECT_THROW(chip.mapping(), ConfigError);
}

TEST(ResparcChip, ReloadReplacesNetwork) {
  ResparcChip chip(default_config());
  chip.load(small_topo());
  const std::size_t mcas1 = chip.mapping().total_mcas;
  const Topology bigger("b", Shape3{1, 1, 256},
                        {LayerSpec::dense(256), LayerSpec::dense(10)});
  chip.load(bigger);
  EXPECT_GT(chip.mapping().total_mcas, mcas1);
}

TEST(Fig8Metrics, MatchesPaperStructure) {
  const NeuroCellMetrics m = neurocell_metrics(default_config());
  EXPECT_EQ(m.mpe_count, 16u);      // Fig. 8: 16 mPEs
  EXPECT_EQ(m.switch_count, 9u);    // Fig. 8: 9 switches
  EXPECT_EQ(m.mcas_per_mpe, 4u);    // Fig. 8: 4 MCAs per mPE
  EXPECT_DOUBLE_EQ(m.frequency_mhz, 200.0);  // Fig. 8: 200 MHz
}

TEST(Fig8Metrics, AreaPowerGatesInPaperBallpark) {
  // Paper Fig. 8: 0.29 mm^2, 53.2 mW, 67643 gates.  Our roll-up must land
  // in the same decade (constants are analytic, not synthesis output).
  const NeuroCellMetrics m = neurocell_metrics(default_config());
  EXPECT_GT(m.area_mm2, 0.05);
  EXPECT_LT(m.area_mm2, 1.0);
  EXPECT_GT(m.power_mw, 10.0);
  EXPECT_LT(m.power_mw, 200.0);
  EXPECT_GT(m.gate_count, 20000.0);
  EXPECT_LT(m.gate_count, 200000.0);
}

TEST(Fig8Metrics, PowerScalesWithMcaCount) {
  ResparcConfig more = default_config();
  more.mcas_per_mpe = 8;
  EXPECT_GT(neurocell_metrics(more).power_mw,
            neurocell_metrics(default_config()).power_mw);
}

}  // namespace
}  // namespace resparc::core
