// Unit tests for the trace-driven RESPARC executor (core/executor.hpp).
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "snn/simulator.hpp"

namespace resparc::core {
namespace {

using snn::LayerSpec;
using snn::Topology;

/// Builds a small random net and returns traces from the functional sim.
struct Fixture {
  Fixture(std::size_t inputs, std::size_t hidden, double activity = 0.1)
      : topo("fx", Shape3{1, 1, inputs},
             {LayerSpec::dense(hidden), LayerSpec::dense(10)}),
        net(topo) {
    Rng rng(1);
    net.init_random(rng, 1.0f);
    std::vector<std::vector<float>> images;
    for (int i = 0; i < 3; ++i) {
      std::vector<float> img(inputs);
      for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
      images.push_back(std::move(img));
    }
    snn::SimConfig cfg;
    cfg.timesteps = 16;
    snn::calibrate_thresholds(net, images, cfg, rng, activity);
    snn::Simulator sim(net, cfg);
    for (const auto& img : images) traces.push_back(sim.run(img, rng).trace);
  }
  Topology topo;
  snn::Network net;
  std::vector<snn::SpikeTrace> traces;
};

TEST(Executor, ProducesPositiveEnergyAndCycles) {
  Fixture fx(64, 64);
  const Mapping m = map_network(fx.topo, default_config());
  Executor ex(fx.topo, m);
  const RunReport r = ex.run(fx.traces[0]);
  EXPECT_GT(r.energy.total_pj(), 0.0);
  EXPECT_GT(r.energy.crossbar_pj, 0.0);
  EXPECT_GT(r.energy.peripherals_pj(), 0.0);
  EXPECT_GT(r.perf.cycles_pipelined, 0.0);
  EXPECT_GE(r.perf.cycles_serial, r.perf.cycles_pipelined);
  EXPECT_EQ(r.classifications, 1u);
}

TEST(Executor, EventDrivenNeverIncreasesEnergy) {
  Fixture fx(128, 64, 0.05);
  ResparcConfig on = default_config();
  ResparcConfig off = default_config();
  off.event_driven = false;
  const Mapping m_on = map_network(fx.topo, on);
  const Mapping m_off = map_network(fx.topo, off);
  const RunReport r_on = Executor(fx.topo, m_on).run_all(fx.traces);
  const RunReport r_off = Executor(fx.topo, m_off).run_all(fx.traces);
  EXPECT_LE(r_on.energy.total_pj(), r_off.energy.total_pj());
  EXPECT_GT(r_on.events.mca_skips + r_on.events.bus_skips, 0u);
  EXPECT_EQ(r_off.events.mca_skips, 0u);
  EXPECT_EQ(r_off.events.bus_skips, 0u);
}

TEST(Executor, SilentInputProducesNoCrossbarEnergy) {
  Fixture fx(64, 32);
  // All-zero trace: build one by hand.
  snn::SpikeTrace silent;
  silent.layers.resize(3);
  for (std::size_t l = 0; l < 3; ++l) {
    const std::size_t n = l == 0 ? 64 : (l == 1 ? 32 : 10);
    for (int t = 0; t < 4; ++t) silent.layers[l].emplace_back(n);
  }
  const Mapping m = map_network(fx.topo, default_config());
  const RunReport r = Executor(fx.topo, m).run(silent);
  EXPECT_DOUBLE_EQ(r.energy.crossbar_pj, 0.0);
  EXPECT_EQ(r.events.mca_activations, 0u);
  EXPECT_GT(r.events.mca_skips, 0u);
}

TEST(Executor, EnergyScalesWithTimesteps) {
  Fixture fx(64, 64);
  // Double the trace by concatenation.
  snn::SpikeTrace doubled = fx.traces[0];
  for (std::size_t l = 0; l < doubled.layers.size(); ++l)
    for (const auto& v : fx.traces[0].layers[l]) doubled.layers[l].push_back(v);
  const Mapping m = map_network(fx.topo, default_config());
  Executor ex(fx.topo, m);
  const double e1 = ex.run(fx.traces[0]).energy.total_pj();
  const double e2 = ex.run(doubled).energy.total_pj();
  EXPECT_NEAR(e2 / e1, 2.0, 0.25);  // leakage makes it slightly superlinear
}

TEST(Executor, RunAllAveragesPerClassification) {
  Fixture fx(64, 64);
  const Mapping m = map_network(fx.topo, default_config());
  Executor ex(fx.topo, m);
  const RunReport all = ex.run_all(fx.traces);
  EXPECT_EQ(all.classifications, fx.traces.size());
  double sum = 0.0;
  for (const auto& t : fx.traces) sum += ex.run(t).energy.total_pj();
  EXPECT_NEAR(all.energy.total_pj(), sum / 3.0, sum * 1e-9);
}

TEST(Executor, CcuTransfersOnlyWhenFanInSpansMpes) {
  // fan-in 64 on MCA-64: one slice, no CCU; fan-in 512: 8 slices -> CCU.
  Fixture small(64, 32);
  Fixture large(512, 32);
  const RunReport rs =
      Executor(small.topo, map_network(small.topo, default_config()))
          .run(small.traces[0]);
  const RunReport rl =
      Executor(large.topo, map_network(large.topo, default_config()))
          .run(large.traces[0]);
  EXPECT_EQ(rs.events.ccu_transfers, 0u);
  EXPECT_GT(rl.events.ccu_transfers, 0u);
}

TEST(Executor, RejectsMismatchedTrace) {
  Fixture fx(64, 64);
  const Mapping m = map_network(fx.topo, default_config());
  Executor ex(fx.topo, m);
  snn::SpikeTrace bad;
  bad.layers.resize(2);  // too few layers
  bad.layers[0].emplace_back(64);
  bad.layers[1].emplace_back(64);
  EXPECT_THROW(ex.run(bad), ConfigError);
}

TEST(Executor, EnergyBreakdownSumsToTotal) {
  Fixture fx(100, 50);
  const Mapping m = map_network(fx.topo, default_config());
  const RunReport r = Executor(fx.topo, m).run(fx.traces[0]);
  const auto& e = r.energy;
  EXPECT_NEAR(e.total_pj(),
              e.neuron_pj + e.crossbar_pj + e.buffer_pj + e.control_pj +
                  e.comm_pj + e.leakage_pj,
              1e-9);
}

TEST(Executor, SmallerMcaMorePeripheralShare) {
  // Fig. 12(a) mechanism: peripheral share of total energy grows as the
  // crossbar shrinks.
  Fixture fx(512, 256);
  auto share = [&](std::size_t n) {
    const Mapping m = map_network(fx.topo, config_with_mca(n));
    const RunReport r = Executor(fx.topo, m).run_all(fx.traces);
    return r.energy.peripherals_pj() / r.energy.total_pj();
  };
  EXPECT_GT(share(32), share(128));
}

}  // namespace
}  // namespace resparc::core
