// Differential fuzz sweep: every execution engine and replay path must
// agree bit-for-bit on random legal workloads (api/differential.hpp,
// docs/execution.md).
//
// Two layers of coverage:
//   * a random sweep over kSweepCount seeds (RESPARC_FUZZ_COUNT=N in the
//     environment widens it for soak runs without a rebuild);
//   * the pinned regression corpus (tests/data/corpus/seeds.txt) —
//     hand-picked feature mixes and any seed that ever exposed a bug.
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/differential.hpp"
#include "api/registry.hpp"
#include "common/rng.hpp"
#include "snn/fuzz.hpp"
#include "snn/simulator.hpp"

namespace resparc {
namespace {

constexpr std::uint64_t kSweepCount = 200;

std::uint64_t sweep_count() {
  if (const char* env = std::getenv("RESPARC_FUZZ_COUNT")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return kSweepCount;
}

/// Seeds from tests/data/corpus/seeds.txt ('#' starts a comment).
std::vector<std::uint64_t> corpus_seeds() {
  const std::string path =
      std::string(RESPARC_SOURCE_DIR) + "/tests/data/corpus/seeds.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing corpus file: " << path;
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    seeds.push_back(std::strtoull(line.c_str() + first, nullptr, 10));
  }
  return seeds;
}

TEST(Differential, RandomSweepAllPathsAgree) {
  const std::uint64_t count = sweep_count();
  std::size_t spiking_cases = 0;
  for (std::uint64_t seed = 0; seed < count; ++seed) {
    const snn::FuzzCase c = snn::make_fuzz_case(seed);
    const api::DifferentialResult r = api::check_differential(c);
    ASSERT_TRUE(r.ok) << r.detail;
    // Track that the sweep exercises real activity, not a vacuous
    // all-silent agreement.
    if (c.encoder.max_rate > 0.5) ++spiking_cases;
  }
  EXPECT_GT(spiking_cases, count / 4);
}

TEST(Differential, RegressionCorpusAgrees) {
  const std::vector<std::uint64_t> seeds = corpus_seeds();
  ASSERT_FALSE(seeds.empty());
  for (const std::uint64_t seed : seeds) {
    const snn::FuzzCase c = snn::make_fuzz_case(seed);
    const api::DifferentialResult r = api::check_differential(c);
    ASSERT_TRUE(r.ok) << "corpus " << r.detail;
  }
}

// Fault injection freezes its per-cell state at program time, so the
// dense, sparse and packed replay paths must stay bit-for-bit identical
// on faulted chips exactly as they are on pristine ones.  A smaller
// sweep than the pristine one: every seed costs a compile per engine.
TEST(Differential, FaultedReplayEnginesAgree) {
  constexpr std::uint64_t kFaultSweep = 10;
  for (std::uint64_t seed = 0; seed < kFaultSweep; ++seed) {
    const snn::FuzzCase c = snn::make_fuzz_case(seed);
    const snn::Network net = snn::make_fuzz_network(c);
    snn::SimConfig cfg;
    cfg.timesteps = c.timesteps;
    cfg.encoder = c.encoder;
    cfg.record_trace = true;
    snn::Simulator sim(net, cfg);
    Rng rng(c.seed ^ 0xd1ffe8e47ull);
    const std::vector<snn::SpikeTrace> traces = {sim.run(c.image, rng).trace};

    api::BackendOptions options;
    options.resparc.faults.enabled = true;
    options.resparc.faults.chip_seed = seed + 1;
    options.resparc.faults.stuck_off_rate = 0.01;
    options.resparc.faults.stuck_on_rate = 0.005;
    options.resparc.faults.programming_sigma = 0.1;
    options.resparc.faults.read_noise_sigma = 0.05;
    // Keep every mPE placeable: this sweep checks engine agreement, not
    // the repair pass, and random fuzz topologies need the whole chip.
    options.resparc.faults.failed_density = 1.0;

    const std::string base = "resparc-" + std::to_string(c.mca_size);
    const auto dense = api::make_accelerator(base, options);
    dense->load(c.topology);
    const api::ExecutionReport ref = dense->execute(traces);
    ASSERT_TRUE(ref.faults.has_value()) << c.summary();
    for (const char* suffix : {"+packed", "+sparse"}) {
      const auto accel = api::make_accelerator(base + suffix, options);
      accel->load(c.topology);
      const api::ExecutionReport r = accel->execute(traces);
      EXPECT_EQ(r.energy_pj, ref.energy_pj) << c.summary() << suffix;
      EXPECT_EQ(r.latency_ns, ref.latency_ns) << c.summary() << suffix;
      ASSERT_TRUE(r.faults.has_value()) << c.summary() << suffix;
      EXPECT_EQ(r.faults->stuck_off_cells, ref.faults->stuck_off_cells)
          << c.summary() << suffix;
      EXPECT_EQ(r.faults->stuck_on_cells, ref.faults->stuck_on_cells)
          << c.summary() << suffix;
    }
  }
}

// The generator itself must be deterministic — a corpus seed that
// expanded differently across builds would silently change the test.
TEST(Differential, FuzzCaseGenerationIsDeterministic) {
  const snn::FuzzCase a = snn::make_fuzz_case(42);
  const snn::FuzzCase b = snn::make_fuzz_case(42);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.thresholds, b.thresholds);
  EXPECT_EQ(a.topology.layers().size(), b.topology.layers().size());
}

// Distinct seeds must explore distinct workloads (the generator isn't
// collapsing its random stream).
TEST(Differential, SeedsDiversify) {
  std::vector<std::string> summaries;
  for (std::uint64_t seed = 0; seed < 16; ++seed)
    summaries.push_back(snn::make_fuzz_case(seed).summary());
  std::size_t distinct = 0;
  for (std::size_t i = 1; i < summaries.size(); ++i)
    if (summaries[i] != summaries[0]) ++distinct;
  EXPECT_GT(distinct, 12u);
}

// A fuzz case must produce actual spikes end to end (guards against the
// whole differential layer passing on silent networks).
TEST(Differential, CasesProduceSpikes) {
  std::size_t live = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const snn::FuzzCase c = snn::make_fuzz_case(seed);
    const snn::Network net = snn::make_fuzz_network(c);
    snn::SimConfig cfg;
    cfg.timesteps = c.timesteps;
    cfg.encoder = c.encoder;
    snn::Simulator sim(net, cfg);
    Rng rng(c.seed);
    if (sim.run(c.image, rng).total_spikes > 0) ++live;
  }
  EXPECT_GT(live, 10u);
}

}  // namespace
}  // namespace resparc
