// Unit tests for the IF neuron population (snn/neuron.hpp).
#include "snn/neuron.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace resparc::snn {
namespace {

TEST(IfNeuron, AccumulatesBelowThreshold) {
  IfPopulation pop(1, {.v_threshold = 1.0});
  std::vector<float> current{0.4f};
  std::vector<std::uint8_t> spikes(1);
  EXPECT_EQ(pop.step(current, spikes), 0u);
  EXPECT_EQ(spikes[0], 0);
  EXPECT_FLOAT_EQ(pop.membrane(0), 0.4f);
}

TEST(IfNeuron, FiresAtThreshold) {
  IfPopulation pop(1, {.v_threshold = 1.0});
  std::vector<float> current{1.0f};
  std::vector<std::uint8_t> spikes(1);
  EXPECT_EQ(pop.step(current, spikes), 1u);
  EXPECT_EQ(spikes[0], 1);
}

TEST(IfNeuron, SubtractiveResetKeepsRemainder) {
  IfPopulation pop(1, {.v_threshold = 1.0, .subtractive_reset = true});
  std::vector<float> current{1.3f};
  std::vector<std::uint8_t> spikes(1);
  pop.step(current, spikes);
  EXPECT_NEAR(pop.membrane(0), 0.3f, 1e-6f);
}

TEST(IfNeuron, HardResetDiscardsRemainder) {
  IfPopulation pop(1, {.v_threshold = 1.0, .subtractive_reset = false});
  std::vector<float> current{1.7f};
  std::vector<std::uint8_t> spikes(1);
  pop.step(current, spikes);
  EXPECT_FLOAT_EQ(pop.membrane(0), 0.0f);
}

TEST(IfNeuron, RateProportionalToDrive) {
  // Subtractive reset: long-run rate = drive / threshold.
  IfPopulation pop(1, {.v_threshold = 1.0});
  std::vector<float> current{0.25f};
  std::vector<std::uint8_t> spikes(1);
  int fired = 0;
  for (int t = 0; t < 400; ++t) {
    pop.step(current, spikes);
    fired += spikes[0];
  }
  EXPECT_EQ(fired, 100);
}

TEST(IfNeuron, LeakReducesMembrane) {
  IfPopulation pop(1, {.v_threshold = 10.0, .leak_per_step = 0.1});
  std::vector<float> current{0.3f};
  std::vector<std::uint8_t> spikes(1);
  pop.step(current, spikes);
  EXPECT_NEAR(pop.membrane(0), 0.2f, 1e-6f);
  // Leak cannot take the membrane negative.
  std::vector<float> none{0.0f};
  for (int t = 0; t < 10; ++t) pop.step(none, spikes);
  EXPECT_GE(pop.membrane(0), 0.0f);
}

TEST(IfNeuron, ResetClearsState) {
  IfPopulation pop(2, {.v_threshold = 5.0});
  std::vector<float> current{1.0f, 2.0f};
  std::vector<std::uint8_t> spikes(2);
  pop.step(current, spikes);
  pop.reset();
  EXPECT_FLOAT_EQ(pop.membrane(0), 0.0f);
  EXPECT_FLOAT_EQ(pop.membrane(1), 0.0f);
}

TEST(IfNeuron, IndependentNeurons) {
  IfPopulation pop(3, {.v_threshold = 1.0});
  std::vector<float> current{1.2f, 0.2f, 0.0f};
  std::vector<std::uint8_t> spikes(3);
  EXPECT_EQ(pop.step(current, spikes), 1u);
  EXPECT_EQ(spikes[0], 1);
  EXPECT_EQ(spikes[1], 0);
  EXPECT_EQ(spikes[2], 0);
}

TEST(IfNeuron, ShapeMismatchThrows) {
  IfPopulation pop(2, {});
  std::vector<float> current{1.0f};
  std::vector<std::uint8_t> spikes(2);
  EXPECT_THROW(pop.step(current, spikes), ShapeError);
}

TEST(IfNeuron, NegativeDriveNeverFires) {
  IfPopulation pop(1, {.v_threshold = 0.5});
  std::vector<float> current{-0.3f};
  std::vector<std::uint8_t> spikes(1);
  for (int t = 0; t < 20; ++t) EXPECT_EQ(pop.step(current, spikes), 0u);
  EXPECT_LT(pop.membrane(0), 0.0f);
}

}  // namespace
}  // namespace resparc::snn
