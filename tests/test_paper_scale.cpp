// Paper-scale mapping assertions: static facts of mapping all six Fig. 10
// benchmarks onto the fabric at every evaluated MCA size.  These run the
// mapper only (no traces), so they are fast despite the network sizes.
#include <gtest/gtest.h>

#include "core/mapper.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::core {
namespace {

class PaperScaleMapping
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {
 protected:
  static const snn::BenchmarkSpec& spec(int index) {
    static const auto all = snn::paper_benchmarks();
    return all[static_cast<std::size_t>(index)];
  }
};

TEST_P(PaperScaleMapping, CapacityAccounting) {
  const auto [mca, bench] = GetParam();
  const auto& b = spec(bench);
  const Mapping m = map_network(b.topology, config_with_mca(mca));

  // Every layer's arrays fit its mPE allocation with 4 MCAs per mPE.
  for (const auto& lm : m.layers) {
    EXPECT_GE(lm.mpe_count * 4, lm.mca_count);
    EXPECT_LT((lm.mpe_count - 1) * 4, lm.mca_count);
  }
  // The chip can never hold more synapses than crosspoints.
  EXPECT_LE(b.topology.synapse_count(), m.total_mcas * mca * mca);
  // NeuroCell packing: 16 mPEs per cell.
  EXPECT_GE(m.total_neurocells * 16, m.total_mpes);
}

TEST_P(PaperScaleMapping, MuxDegreeMatchesFanIn) {
  const auto [mca, bench] = GetParam();
  const auto& b = spec(bench);
  const Mapping m = map_network(b.topology, config_with_mca(mca));
  for (std::size_t l = 0; l < m.layers.size(); ++l) {
    const auto& li = b.topology.layers()[l];
    const auto& lm = m.layers[l];
    if (li.spec.kind == snn::LayerKind::kDense || li.fan_in > mca) {
      EXPECT_EQ(lm.mux_degree, (li.fan_in + mca - 1) / mca)
          << b.topology.name() << " layer " << l;
    } else {
      EXPECT_EQ(lm.mux_degree, 1u);
    }
    // Serial integration cycles: ceil(degree / 4 concurrent currents).
    EXPECT_EQ(lm.mux_cycles, (lm.mux_degree + 3) / 4);
  }
}

TEST_P(PaperScaleMapping, EveryGroupWithinArrayBounds) {
  const auto [mca, bench] = GetParam();
  const auto& b = spec(bench);
  const Mapping m = map_network(b.topology, config_with_mca(mca));
  for (const auto& lm : m.layers) {
    for (const auto& g : lm.groups) {
      EXPECT_GT(g.mca_count, 0u);
      EXPECT_LE(g.rows_used, mca);
      EXPECT_LE(g.cols_used, g.mca_count * mca);
      EXPECT_LE(g.synapses, g.mca_count * mca * mca);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllSizes, PaperScaleMapping,
    ::testing::Combine(::testing::Values(32u, 64u, 128u),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

TEST(PaperScaleMapping, MlpChipFitsExpectedBudget) {
  // MNIST MLP at MCA-64: 13x13 + 13x13 + 13x1 arrays (dense tile grids).
  const Mapping m =
      map_network(snn::mnist_mlp().topology, config_with_mca(64));
  EXPECT_EQ(m.total_mcas, 13u * 13u + 13u * 13u + 13u);
  EXPECT_EQ(m.total_neurocells, 6u);  // 351 MCAs -> 88 mPEs -> 6 NCs
}

TEST(PaperScaleMapping, CnnNeedsFarMoreArraysPerSynapse) {
  // The utilisation gap between MLPs and CNNs at paper scale (the root of
  // the Fig. 11 gain difference).
  const Mapping mlp =
      map_network(snn::mnist_mlp().topology, config_with_mca(64));
  const Mapping cnn =
      map_network(snn::mnist_cnn().topology, config_with_mca(64));
  const double mlp_cost = static_cast<double>(mlp.total_mcas) /
                          static_cast<double>(snn::mnist_mlp().topology.synapse_count());
  const double cnn_cost = static_cast<double>(cnn.total_mcas) /
                          static_cast<double>(snn::mnist_cnn().topology.synapse_count());
  EXPECT_GT(cnn_cost, 1.5 * mlp_cost);
}

TEST(PaperScaleMapping, EnhancedSharingShrinksCnnFootprint) {
  ResparcConfig enhanced = config_with_mca(64);
  enhanced.enhanced_input_sharing = true;
  const Mapping base =
      map_network(snn::mnist_cnn().topology, config_with_mca(64));
  const Mapping shared = map_network(snn::mnist_cnn().topology, enhanced);
  EXPECT_LT(shared.total_mcas, base.total_mcas);
  EXPECT_GE(shared.utilization, base.utilization);
}

}  // namespace
}  // namespace resparc::core
