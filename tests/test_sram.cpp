// Unit tests for CACTI-lite (tech/sram.hpp).
#include "tech/sram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::tech {
namespace {

TEST(Sram, ReadEnergyGrowsWithCapacity) {
  double prev = 0.0;
  for (std::size_t kb : {32u, 64u, 256u, 1024u}) {
    SramModel sram{{.capacity_bytes = kb * 1024, .word_bits = 64}};
    EXPECT_GT(sram.read_energy_pj(), prev);
    prev = sram.read_energy_pj();
  }
}

TEST(Sram, SqrtCapacityScaling) {
  SramModel a{{.capacity_bytes = 64 * 1024, .word_bits = 64}};
  SramModel b{{.capacity_bytes = 256 * 1024, .word_bits = 64}};
  EXPECT_NEAR(b.read_energy_pj() / a.read_energy_pj(), 2.0, 1e-9);
}

TEST(Sram, AnchorPoint32KB) {
  // CACTI 6.0 anchor: ~10 pJ per 64-bit read at 32 KB (see sram.cpp).
  SramModel sram{{.capacity_bytes = 32 * 1024, .word_bits = 64}};
  EXPECT_NEAR(sram.read_energy_pj(), 10.0, 1.0);
}

TEST(Sram, WidthScalesLinearly) {
  SramModel narrow{{.capacity_bytes = 64 * 1024, .word_bits = 32}};
  SramModel wide{{.capacity_bytes = 64 * 1024, .word_bits = 128}};
  EXPECT_NEAR(wide.read_energy_pj() / narrow.read_energy_pj(), 4.0, 1e-9);
}

TEST(Sram, WritesCostMoreThanReads) {
  SramModel sram{{.capacity_bytes = 64 * 1024, .word_bits = 64}};
  EXPECT_GT(sram.write_energy_pj(), sram.read_energy_pj());
}

TEST(Sram, LeakageLinearInCapacity) {
  SramModel a{{.capacity_bytes = 512 * 1024, .word_bits = 64}};
  SramModel b{{.capacity_bytes = 1024 * 1024, .word_bits = 64}};
  EXPECT_NEAR(b.leakage_w() / a.leakage_w(), 2.0, 1e-9);
}

TEST(Sram, LeakageDerateApplies) {
  SramModel full{{.capacity_bytes = 1024 * 1024, .word_bits = 64,
                  .leakage_derate = 1.0}};
  SramModel lowleak{{.capacity_bytes = 1024 * 1024, .word_bits = 64,
                     .leakage_derate = 0.3}};
  EXPECT_NEAR(lowleak.leakage_w() / full.leakage_w(), 0.3, 1e-9);
}

TEST(Sram, AreaIncludesPeriphery) {
  SramModel tiny{{.capacity_bytes = 1024, .word_bits = 64}};
  EXPECT_GT(tiny.area_mm2(), 0.004);  // fixed periphery floor
}

TEST(Sram, RejectsBadConfig) {
  EXPECT_THROW(SramModel({.capacity_bytes = 16, .word_bits = 64}), ConfigError);
  EXPECT_THROW(SramModel({.capacity_bytes = 4096, .word_bits = 4}), ConfigError);
  EXPECT_THROW(SramModel({.capacity_bytes = 4096, .word_bits = 64,
                          .leakage_derate = 0.0}),
               ConfigError);
}

}  // namespace
}  // namespace resparc::tech
