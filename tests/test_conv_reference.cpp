// Cross-implementation equivalence: the event-driven scatter propagation
// in snn::Simulator and the gather-style dense forward in train::Ann are
// written independently; on binary inputs with identical weights they
// must produce identical layer drive.  This is the strongest correctness
// anchor for the convolution/pool arithmetic.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "train/ann.hpp"

namespace resparc {
namespace {

using snn::LayerKind;
using snn::LayerSpec;
using snn::Topology;

/// One-step drive comparison: present a binary image for a single
/// timestep with huge thresholds (nothing fires), then compare the
/// membrane potentials against the ANN's linear pre-activations.
void expect_drive_matches(const Topology& topo, std::uint64_t seed) {
  snn::Network net(topo);
  train::Ann ann(topo);
  Rng rng(seed);
  ann.init_he(rng);
  for (std::size_t l = 0; l < topo.layer_count(); ++l) {
    net.layer(l).weights = ann.weights(l);
    net.layer(l).neuron.v_threshold = 1e9;  // never fire
  }

  // Binary input (0/1 pixels) so rate encoding at max_rate=1 is exact in
  // one deterministic step.
  std::vector<float> image(topo.input_shape().size());
  Rng img_rng(seed + 99);
  for (auto& p : image) p = img_rng.bernoulli(0.4) ? 1.0f : 0.0f;

  snn::SimConfig cfg;
  cfg.timesteps = 1;
  cfg.encoder.poisson = false;
  snn::Simulator sim(net, cfg);
  const snn::SimResult result = sim.run(image, rng);

  // First layer drive == ANN layer-0 pre-activation on the same binary
  // input.  (Deterministic encoder with phase 0.5 emits a spike in step 0
  // exactly for pixels with intensity 1.0 — verify that first.)
  for (std::size_t i = 0; i < image.size(); ++i)
    ASSERT_EQ(result.trace.layers[0][0].get(i), image[i] == 1.0f);

  // Recompute the first-layer drive via the simulator's own state is not
  // exposed; instead compare spike-free membrane == ANN pre-activation by
  // re-running with thresholds that never fire and reading the ANN side.
  const train::ForwardPass pass = ann.forward(image);
  // The ANN applies ReLU on hidden layers, so only the FIRST layer's
  // linear output is directly comparable; deeper layers see different
  // inputs (no spikes flowed).  Layer 0 comparison is exact:
  snn::Network probe(topo);
  probe.layer(0).weights = ann.weights(0);
  probe.layer(0).neuron.v_threshold = 1e9;
  // drive = sum of weights over active inputs; compute directly:
  std::vector<float> drive(topo.layers()[0].neurons, 0.0f);
  {
    snn::SimConfig one;
    one.timesteps = 1;
    one.encoder.poisson = false;
    snn::Simulator s2(probe, one);
    std::vector<float> samples;
    s2.observe_currents(image, rng, 0, samples);
    ASSERT_EQ(samples.size(), drive.size());
    for (std::size_t i = 0; i < drive.size(); ++i) drive[i] = samples[i];
  }
  // ANN pre-activation of layer 0 equals post-activation when no ReLU is
  // applied... the recorded activations are post-ReLU for hidden layers,
  // so compare only where the value is positive, and check clamped zeros
  // correspond to non-positive drive.
  const auto& ann_out = pass.activations[1];
  const bool relu_applied =
      topo.layer_count() > 1 && topo.layers()[0].spec.kind != LayerKind::kAvgPool;
  for (std::size_t i = 0; i < drive.size(); ++i) {
    if (!relu_applied || ann_out[i] > 0.0f) {
      EXPECT_NEAR(drive[i], ann_out[i], 1e-4f) << "neuron " << i;
    } else {
      EXPECT_LE(drive[i], 1e-6f) << "neuron " << i;
    }
  }
}

struct ShapeCase {
  const char* name;
  Topology topo;
};

class ConvReference : public ::testing::TestWithParam<int> {};

TEST_P(ConvReference, ScatterEqualsGather) {
  const int which = GetParam();
  switch (which) {
    case 0:
      expect_drive_matches(
          Topology("dense", Shape3{1, 1, 40}, {LayerSpec::dense(17)}), 1);
      break;
    case 1:
      expect_drive_matches(
          Topology("conv-same", Shape3{3, 9, 9},
                   {LayerSpec::conv(5, 3, true), LayerSpec::dense(4)}),
          2);
      break;
    case 2:
      expect_drive_matches(
          Topology("conv-valid", Shape3{2, 11, 11},
                   {LayerSpec::conv(4, 5, false), LayerSpec::dense(3)}),
          3);
      break;
    case 3:
      expect_drive_matches(
          Topology("pool", Shape3{4, 8, 8}, {LayerSpec::avg_pool(2)}), 4);
      break;
    case 4:
      expect_drive_matches(
          Topology("conv-k7", Shape3{1, 14, 14},
                   {LayerSpec::conv(6, 7, true), LayerSpec::dense(2)}),
          5);
      break;
    case 5:
      expect_drive_matches(
          Topology("wide-dense", Shape3{1, 4, 64}, {LayerSpec::dense(90)}), 6);
      break;
    default:
      FAIL();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvReference, ::testing::Range(0, 6));

TEST(ConvReference, MultiStepRateConsistency) {
  // Over T deterministic steps with subtractive reset, a single dense
  // neuron's spike count equals floor of accumulated drive / threshold.
  Topology topo("rate", Shape3{1, 1, 8}, {LayerSpec::dense(1)});
  snn::Network net(topo);
  for (std::size_t r = 0; r < 8; ++r) net.layer(0).weights(r, 0) = 0.11f;
  net.layer(0).neuron.v_threshold = 1.0;
  snn::SimConfig cfg;
  cfg.timesteps = 50;
  cfg.encoder.poisson = false;
  snn::Simulator sim(net, cfg);
  Rng rng(7);
  std::vector<float> image(8, 1.0f);  // all inputs spike every step
  const snn::SimResult r = sim.run(image, rng);
  // drive per step = 8 * 0.11 = 0.88 -> after 50 steps: floor(44.0) spikes.
  EXPECT_EQ(r.output_spike_counts[0], 44u);
}

}  // namespace
}  // namespace resparc
