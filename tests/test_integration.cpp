// Integration tests: the paper's headline shapes on reduced-scale runs.
// These are the cheap, always-on versions of the claims the benches
// reproduce at paper scale (see bench/ and docs/architecture.md).
#include <gtest/gtest.h>

#include "cmos/falcon.hpp"
#include "common/rng.hpp"
#include "core/resparc.hpp"
#include "data/synthetic.hpp"
#include "snn/benchmarks.hpp"
#include "snn/quantize.hpp"
#include "snn/simulator.hpp"
#include "snn/stats.hpp"
#include "train/convert.hpp"
#include "train/trainer.hpp"

namespace resparc {
namespace {

using core::ResparcChip;
using core::RunReport;
using snn::DatasetKind;

/// Shared medium fixture: small MLP and CNN with realistic traces from the
/// synthetic datasets.
class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mlp_traces_ = build(DatasetKind::kMnistLike, /*cnn=*/false, &mlp_topo_);
    cnn_traces_ = build(DatasetKind::kMnistLike, /*cnn=*/true, &cnn_topo_);
  }

  static std::vector<snn::SpikeTrace> build(DatasetKind kind, bool cnn,
                                            std::optional<snn::Topology>* out) {
    const snn::Topology topo =
        cnn ? snn::small_cnn_topology(kind) : snn::small_mlp_topology(kind);
    out->emplace(topo);
    snn::Network net(topo);
    Rng rng(11);
    net.init_random(rng, 1.0f);
    const data::Dataset ds = data::make_synthetic(
        kind, {.count = 4, .seed = 3, .noise = 0.03, .jitter_pixels = 1.0});
    snn::SimConfig cfg;
    cfg.timesteps = 16;
    snn::calibrate_thresholds(net, ds.images, cfg, rng, 0.10);
    snn::Simulator sim(net, cfg);
    std::vector<snn::SpikeTrace> traces;
    for (const auto& img : ds.images) traces.push_back(sim.run(img, rng).trace);
    return traces;
  }

  static RunReport run_resparc(const snn::Topology& topo,
                               std::span<const snn::SpikeTrace> traces,
                               std::size_t mca) {
    ResparcChip chip(core::config_with_mca(mca));
    chip.load(topo);
    return chip.execute(traces);
  }

  static cmos::CmosReport run_cmos(const snn::Topology& topo,
                                   std::span<const snn::SpikeTrace> traces) {
    cmos::FalconAccelerator acc(topo, {});
    return acc.run_all(traces);
  }

  static std::optional<snn::Topology> mlp_topo_;
  static std::optional<snn::Topology> cnn_topo_;
  static std::vector<snn::SpikeTrace> mlp_traces_;
  static std::vector<snn::SpikeTrace> cnn_traces_;
};

std::optional<snn::Topology> PaperShapes::mlp_topo_;
std::optional<snn::Topology> PaperShapes::cnn_topo_;
std::vector<snn::SpikeTrace> PaperShapes::mlp_traces_;
std::vector<snn::SpikeTrace> PaperShapes::cnn_traces_;

TEST_F(PaperShapes, ResparcBeatsCmosOnEnergy) {
  // Fig. 11 headline: RESPARC wins on energy for both topologies.
  const RunReport r_mlp = run_resparc(*mlp_topo_, mlp_traces_, 64);
  const auto c_mlp = run_cmos(*mlp_topo_, mlp_traces_);
  EXPECT_LT(r_mlp.energy.total_pj(), c_mlp.energy.total_pj());

  const RunReport r_cnn = run_resparc(*cnn_topo_, cnn_traces_, 64);
  const auto c_cnn = run_cmos(*cnn_topo_, cnn_traces_);
  EXPECT_LT(r_cnn.energy.total_pj(), c_cnn.energy.total_pj());
}

TEST_F(PaperShapes, MlpGainExceedsCnnGain) {
  // Fig. 11: MLP energy gains (hundreds-x) dwarf CNN gains (tens-x).
  const double mlp_gain =
      run_cmos(*mlp_topo_, mlp_traces_).energy.total_pj() /
      run_resparc(*mlp_topo_, mlp_traces_, 64).energy.total_pj();
  const double cnn_gain =
      run_cmos(*cnn_topo_, cnn_traces_).energy.total_pj() /
      run_resparc(*cnn_topo_, cnn_traces_, 64).energy.total_pj();
  EXPECT_GT(mlp_gain, cnn_gain);
}

TEST_F(PaperShapes, ResparcFasterPerClassification) {
  const RunReport r = run_resparc(*mlp_topo_, mlp_traces_, 64);
  const auto c = run_cmos(*mlp_topo_, mlp_traces_);
  EXPECT_LT(r.perf.latency_pipelined_ns(), c.latency_ns());
}

TEST_F(PaperShapes, EventDrivenSavingsLargerForSmallMca) {
  // Fig. 13: zero-check savings are biggest at MCA-32 — smaller input
  // slices are far more likely to be all-zero, so more reads are elided
  // (the figure plots both configurations on one normalised energy axis;
  // the bar gap, i.e. the absolute saving, grows as the MCA shrinks).
  auto savings = [&](std::size_t mca) {
    core::ResparcConfig on = core::config_with_mca(mca);
    core::ResparcConfig off = on;
    off.event_driven = false;
    ResparcChip chip_on(on), chip_off(off);
    chip_on.load(*mlp_topo_);
    chip_off.load(*mlp_topo_);
    const double e_on = chip_on.execute(mlp_traces_).energy.total_pj();
    const double e_off = chip_off.execute(mlp_traces_).energy.total_pj();
    return e_off - e_on;
  };
  EXPECT_GT(savings(32), savings(128));
}

TEST_F(PaperShapes, QuantisedAccuracySaturatesAtFourBits) {
  // Fig. 14(a) on a trained small MLP: 4-bit accuracy within a few points
  // of 8-bit; 1-bit clearly worse.
  const data::Dataset ds = data::make_synthetic(
      DatasetKind::kMnistLike,
      {.count = 140, .seed = 5, .noise = 0.03, .jitter_pixels = 1.0});
  const data::Dataset train_set = ds.take(110);
  const data::Dataset test_set = ds.drop(110);
  train::Ann ann(snn::small_mlp_topology(DatasetKind::kMnistLike));
  Rng rng(6);
  ann.init_he(rng);
  train::train(ann, train_set,
               {.epochs = 30, .batch_size = 10, .learning_rate = 0.02}, rng);
  const snn::Network base = train::convert_to_snn(ann, train_set.images);

  snn::SimConfig cfg;
  cfg.timesteps = 48;
  cfg.record_trace = false;
  auto acc_at = [&](int bits) {
    snn::Network q = base;
    snn::quantize_network(q, bits);
    return snn::evaluate_accuracy(q, cfg, test_set.images, test_set.labels,
                                  rng);
  };
  const double a1 = acc_at(1);
  const double a4 = acc_at(4);
  const double a8 = acc_at(8);
  EXPECT_GE(a4, a8 - 0.12);  // 4-bit comparable to 8-bit (paper 5.4)
  EXPECT_LT(a1, a8 + 1e-9);  // 1-bit no better than 8-bit
  EXPECT_GT(a8, 0.5);        // the pipeline actually learned
}

TEST_F(PaperShapes, ResparcEnergyFlatCmosEnergyRisingWithBits) {
  // Fig. 14(b): crossbar reads are analog (bit-independent); the digital
  // baseline pays for precision in memory and datapath.
  std::vector<double> resparc_e, cmos_e;
  for (int bits : {1, 2, 4, 8}) {
    core::ResparcConfig rc = core::config_with_mca(64);
    rc.technology.memristor.bits = bits;
    ResparcChip chip(rc);
    chip.load(*mlp_topo_);
    resparc_e.push_back(chip.execute(mlp_traces_).energy.total_pj());
    cmos::FalconConfig cc;
    cc.weight_bits = bits;
    cmos_e.push_back(
        cmos::FalconAccelerator(*mlp_topo_, cc).run_all(mlp_traces_).energy.total_pj());
  }
  // RESPARC: within 5% across the sweep.
  for (double e : resparc_e) EXPECT_NEAR(e / resparc_e[0], 1.0, 0.05);
  // CMOS: strictly increasing.
  for (std::size_t i = 1; i < cmos_e.size(); ++i)
    EXPECT_GT(cmos_e[i], cmos_e[i - 1]);
}

TEST_F(PaperShapes, MnistInputZeroFractionHigh) {
  // Fig. 13's driver: MNIST-like inputs produce many all-zero packets.
  const snn::PacketStats s =
      snn::layer_packet_stats(mlp_traces_[0], 0, 32);
  EXPECT_GT(s.zero_fraction(), 0.15);
}

}  // namespace
}  // namespace resparc
