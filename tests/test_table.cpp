// Unit tests for the Table and Csv emitters.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"

namespace resparc {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, FactorAppendsX) {
  EXPECT_EQ(Table::factor(12.34, 1), "12.3x");
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"h"});
  t.add_row({"looooooong"});
  t.add_row({"s"});
  std::ostringstream os;
  t.print(os);
  // Every line between rules must have the same length.
  std::istringstream is(os.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Csv, WritesEscapedContent) {
  Csv csv({"k", "v"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside", "line\nbreak"});
  const std::string path = "/tmp/resparc_test_csv.csv";
  ASSERT_TRUE(csv.write(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"quote\"\"inside\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, FailsGracefullyOnBadPath) {
  Csv csv({"a"});
  EXPECT_FALSE(csv.write("/nonexistent_dir_xyz/file.csv"));
}

}  // namespace
}  // namespace resparc
