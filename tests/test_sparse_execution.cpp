// Tests of the sparse, spike-event-driven execution engine
// (snn/sparse_engine.hpp, docs/execution.md):
//   * dense-vs-sparse bit-for-bit parity across every bundled topology
//     shape (MLP and CNN, with and without executor event_driven);
//   * ActivityTrace accumulation and round-trip serialization;
//   * the all-zero-input regression: under the event-driven executor an
//     empty trace must be (almost) free — every array skipped, nothing
//     transferred, zero cycles;
//   * the "+<mode>" registry suffix and its error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "snn/activity.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"

namespace resparc {
namespace {

using api::BackendOptions;
using api::Pipeline;
using api::PipelineOptions;
using api::Workload;

void expect_traces_equal(const snn::SpikeTrace& a, const snn::SpikeTrace& b) {
  ASSERT_EQ(a.layer_count(), b.layer_count());
  ASSERT_EQ(a.timesteps(), b.timesteps());
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (std::size_t t = 0; t < a.timesteps(); ++t) {
      const auto wa = a.layers[l][t].words();
      const auto wb = b.layers[l][t].words();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        ASSERT_EQ(wa[i], wb[i]) << "layer " << l << " step " << t;
    }
  }
}

Workload run_workload(const snn::Topology& topology, snn::DatasetKind kind,
                      snn::ExecutionMode mode, std::size_t images = 2,
                      std::size_t timesteps = 8) {
  PipelineOptions opt;
  opt.images = images;
  opt.timesteps = timesteps;
  opt.seed = 11;
  opt.threads = 1;
  opt.execution = mode;
  return Pipeline(opt).dataset(kind).topology(topology).run();
}

// ------------------------------------------------- dense/sparse parity ----

class SparseParity
    : public ::testing::TestWithParam<std::pair<const char*, snn::Topology>> {};

TEST_P(SparseParity, TracesAreBitForBitIdentical) {
  const snn::Topology& topo = GetParam().second;
  const Workload dense =
      run_workload(topo, snn::DatasetKind::kMnistLike, snn::ExecutionMode::kDense);
  const Workload sparse =
      run_workload(topo, snn::DatasetKind::kMnistLike, snn::ExecutionMode::kSparse);

  ASSERT_EQ(dense.traces.size(), sparse.traces.size());
  for (std::size_t i = 0; i < dense.traces.size(); ++i)
    expect_traces_equal(dense.traces[i], sparse.traces[i]);
  EXPECT_EQ(dense.predicted, sparse.predicted);
  EXPECT_DOUBLE_EQ(dense.accuracy, sparse.accuracy);
  EXPECT_DOUBLE_EQ(dense.mean_activity, sparse.mean_activity);
}

TEST_P(SparseParity, ExecutorReportsMatchInBothEventDrivenModes) {
  const snn::Topology& topo = GetParam().second;
  const Workload w =
      run_workload(topo, snn::DatasetKind::kMnistLike, snn::ExecutionMode::kSparse);

  for (const bool event_driven : {true, false}) {
    BackendOptions opt;
    opt.resparc.event_driven = event_driven;
    const auto dense = api::make_accelerator("resparc-64", opt);
    const auto sparse = api::make_accelerator("resparc-64+sparse", opt);
    dense->load(topo);
    sparse->load(topo);
    const api::ExecutionReport rd = dense->execute(w.traces);
    const api::ExecutionReport rs = sparse->execute(w.traces);

    // Sparse execution adds timestep resolution, never different totals.
    EXPECT_DOUBLE_EQ(rd.energy_pj, rs.energy_pj) << "event_driven=" << event_driven;
    EXPECT_DOUBLE_EQ(rd.latency_ns, rs.latency_ns);
    ASSERT_TRUE(rd.resparc.has_value());
    ASSERT_TRUE(rs.resparc.has_value());
    EXPECT_EQ(rd.resparc->events.mca_activations,
              rs.resparc->events.mca_activations);
    EXPECT_EQ(rd.resparc->events.mca_skips, rs.resparc->events.mca_skips);
    EXPECT_EQ(rd.resparc->events.bus_words, rs.resparc->events.bus_words);
    EXPECT_EQ(rd.resparc->events.neuron_fires, rs.resparc->events.neuron_fires);

    EXPECT_FALSE(rd.events.has_value());
    ASSERT_TRUE(rs.events.has_value());

    // The stream is the same record at timestep resolution: its totals
    // must reproduce the aggregated counters exactly.
    const core::StepEvents total = rs.events->total();
    EXPECT_EQ(total.mca_reads, rs.resparc->events.mca_activations);
    EXPECT_EQ(total.mca_skips, rs.resparc->events.mca_skips);
    EXPECT_EQ(total.words_sent, rs.resparc->events.bus_words +
                                    rs.resparc->events.switch_flits);
    std::size_t layer_fires = 0;
    for (std::size_t s = 1; s < rs.events->stages(); ++s)
      layer_fires += rs.events->stage_total(s).neuron_fires;
    EXPECT_EQ(layer_fires, rs.resparc->events.neuron_fires);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BundledTopologies, SparseParity,
    ::testing::Values(
        std::pair<const char*, snn::Topology>{
            "small_mlp", snn::small_mlp_topology(snn::DatasetKind::kMnistLike)},
        std::pair<const char*, snn::Topology>{
            "small_cnn", snn::small_cnn_topology(snn::DatasetKind::kMnistLike)}),
    [](const auto& info) { return std::string(info.param.first); });

// Paper-scale shapes, one image each, so the parity claim covers the
// exact benchmark topologies too (conv sliced + windowed + pool paths).
TEST(SparseParityPaperScale, MnistMlpAndCnn) {
  for (const snn::BenchmarkSpec& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
    const Workload dense = run_workload(spec.topology, spec.dataset,
                                        snn::ExecutionMode::kDense, 1, 6);
    const Workload sparse = run_workload(spec.topology, spec.dataset,
                                         snn::ExecutionMode::kSparse, 1, 6);
    ASSERT_EQ(dense.traces.size(), sparse.traces.size());
    for (std::size_t i = 0; i < dense.traces.size(); ++i)
      expect_traces_equal(dense.traces[i], sparse.traces[i]);
  }
}

// Leaky populations fall back to the dense neuron update inside the
// sparse engine; the result must still be identical.
TEST(SparseParity, LeakyNetworkFallsBackBitForBit) {
  snn::Network net(snn::small_mlp_topology(snn::DatasetKind::kMnistLike));
  Rng init(3);
  net.init_random(init, 1.0f);
  net.set_uniform_threshold(0.8);
  for (std::size_t l = 0; l < net.layer_count(); ++l)
    net.layer(l).neuron.leak_per_step = 0.01;

  PipelineOptions opt;
  opt.images = 2;
  opt.timesteps = 8;
  opt.threads = 1;
  Workload dense = Pipeline(opt)
                       .dataset(snn::DatasetKind::kMnistLike)
                       .network(net)
                       .run();
  opt.execution = snn::ExecutionMode::kSparse;
  Workload sparse = Pipeline(opt)
                        .dataset(snn::DatasetKind::kMnistLike)
                        .network(net)
                        .run();
  ASSERT_EQ(dense.traces.size(), sparse.traces.size());
  for (std::size_t i = 0; i < dense.traces.size(); ++i)
    expect_traces_equal(dense.traces[i], sparse.traces[i]);
}

// ------------------------------------------------------- activity trace ----

TEST(ActivityTrace, AccumulatesAndMatchesMeanActivity) {
  const Workload w =
      run_workload(snn::small_mlp_topology(snn::DatasetKind::kMnistLike),
                   snn::DatasetKind::kMnistLike, snn::ExecutionMode::kSparse, 3);
  ASSERT_EQ(w.activity.presentations, w.traces.size());
  ASSERT_EQ(w.activity.layer_count(), w.traces.front().layer_count());
  EXPECT_NEAR(w.activity.mean_activity(), w.mean_activity, 1e-12);
  EXPECT_GT(w.activity.layers[0].total_spikes(), 0u);
  EXPECT_GE(w.activity.input_sparsity(), 0.0);
  EXPECT_LE(w.activity.input_sparsity(), 1.0);
}

TEST(ActivityTrace, RoundTripsThroughSerialization) {
  const Workload w =
      run_workload(snn::small_cnn_topology(snn::DatasetKind::kMnistLike),
                   snn::DatasetKind::kMnistLike, snn::ExecutionMode::kSparse, 2);
  std::stringstream ss;
  w.activity.save(ss);
  const snn::ActivityTrace loaded = snn::ActivityTrace::load(ss);

  ASSERT_EQ(loaded.presentations, w.activity.presentations);
  ASSERT_EQ(loaded.layer_count(), w.activity.layer_count());
  for (std::size_t l = 0; l < loaded.layer_count(); ++l) {
    EXPECT_EQ(loaded.layers[l].neurons, w.activity.layers[l].neurons);
    ASSERT_EQ(loaded.layers[l].spikes_per_step,
              w.activity.layers[l].spikes_per_step);
  }
  EXPECT_DOUBLE_EQ(loaded.mean_activity(), w.activity.mean_activity());
}

TEST(ActivityTrace, RejectsMalformedStreams) {
  std::stringstream bad_magic("not-an-activity-trace v1\n");
  EXPECT_THROW(snn::ActivityTrace::load(bad_magic), snn::ActivityError);

  std::stringstream bad_version("resparc-activity-trace v999\n");
  EXPECT_THROW(snn::ActivityTrace::load(bad_version), snn::ActivityError);

  std::stringstream truncated(
      "resparc-activity-trace v1\npresentations 1\nlayers 2\nlayer 4 2 1");
  EXPECT_THROW(snn::ActivityTrace::load(truncated), snn::ActivityError);
}

TEST(ActivityTrace, RejectsMismatchedAccumulation) {
  const Workload mlp =
      run_workload(snn::small_mlp_topology(snn::DatasetKind::kMnistLike),
                   snn::DatasetKind::kMnistLike, snn::ExecutionMode::kDense, 1);
  const Workload cnn =
      run_workload(snn::small_cnn_topology(snn::DatasetKind::kMnistLike),
                   snn::DatasetKind::kMnistLike, snn::ExecutionMode::kDense, 1);
  snn::ActivityTrace acc = snn::ActivityTrace::from_trace(mlp.traces.front());
  EXPECT_THROW(acc.add(cnn.traces.front()), snn::ActivityError);
}

// ------------------------------------------- all-zero-input regression ----

// With the event-driven levers on, a presentation that never spikes must
// cost (almost) nothing: every MCA skipped, nothing staged, transferred
// or integrated, zero cycles.  This pins the executor's zero-activity
// floor so event accounting can never silently regress into charging
// idle hardware.
TEST(ZeroInputRegression, EmptyTraceIsAlmostFree) {
  const snn::Topology topo =
      snn::small_cnn_topology(snn::DatasetKind::kMnistLike);
  const std::size_t T = 6;
  snn::SpikeTrace empty;
  empty.layers.resize(topo.layer_count() + 1);
  empty.layers[0].assign(T, snn::SpikeVector(topo.input_shape().size()));
  for (std::size_t l = 0; l < topo.layer_count(); ++l)
    empty.layers[l + 1].assign(T, snn::SpikeVector(topo.layers()[l].neurons));

  const auto accel = api::make_accelerator("resparc-64+sparse");
  accel->load(topo);
  const api::ExecutionReport r = accel->execute(empty);
  ASSERT_TRUE(r.resparc.has_value());
  const core::EventCounts& ev = r.resparc->events;

  EXPECT_EQ(ev.mca_activations, 0u);
  EXPECT_EQ(ev.bus_words, 0u);
  EXPECT_EQ(ev.switch_flits, 0u);
  EXPECT_EQ(ev.sram_reads, 0u);
  EXPECT_EQ(ev.sram_writes, 0u);
  EXPECT_EQ(ev.neuron_fires, 0u);
  EXPECT_EQ(ev.neuron_integrations, 0u);
  EXPECT_EQ(ev.ccu_transfers, 0u);
  EXPECT_EQ(ev.buffer_bits, 0u);

  // Every array of every layer is skipped on every step.
  const auto* backend = dynamic_cast<const api::ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(ev.mca_skips, backend->mapping().total_mcas * T);

  // No stage ever advances: zero cycles, zero latency, zero leakage
  // window — and the recorded event stream is idle in every cell.
  EXPECT_DOUBLE_EQ(r.resparc->perf.cycles_pipelined, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.resparc->energy.crossbar_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.resparc->energy.neuron_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.resparc->energy.buffer_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.resparc->energy.comm_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.resparc->energy.leakage_pj, 0.0);
  ASSERT_TRUE(r.events.has_value());
  for (std::size_t t = 0; t < r.events->timesteps(); ++t)
    for (std::size_t s = 0; s < r.events->stages(); ++s)
      EXPECT_TRUE(r.events->at(t, s).idle()) << "t=" << t << " stage=" << s;
}

// ------------------------------------------------------ registry suffix ----

TEST(RegistryModes, SparseSuffixSelectsSparseExecution) {
  const auto accel = api::make_accelerator("resparc-64+sparse");
  const auto* backend = dynamic_cast<const api::ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->execution(), snn::ExecutionMode::kSparse);
  EXPECT_EQ(accel->name(), "RESPARC-64+sparse");
}

TEST(RegistryModes, StrategyAndModeSuffixesCompose) {
  const auto accel = api::make_accelerator("resparc-128/greedy-pack+sparse");
  const auto* backend = dynamic_cast<const api::ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->execution(), snn::ExecutionMode::kSparse);
  EXPECT_EQ(backend->strategy(), "greedy-pack");
  EXPECT_EQ(backend->config().mca_size, 128u);
  EXPECT_EQ(accel->name(), "RESPARC-128/greedy-pack+sparse");
}

TEST(RegistryModes, DenseSuffixIsTheDefaultMode) {
  const auto accel = api::make_accelerator("resparc-64+dense");
  const auto* backend = dynamic_cast<const api::ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->execution(), snn::ExecutionMode::kDense);
  EXPECT_EQ(accel->name(), "RESPARC-64");
}

TEST(RegistryModes, OptionsSelectTheModeWithoutASuffix) {
  BackendOptions opt;
  opt.execution = snn::ExecutionMode::kSparse;
  const auto accel = api::make_accelerator("resparc-64", opt);
  const auto* backend = dynamic_cast<const api::ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->execution(), snn::ExecutionMode::kSparse);
}

TEST(RegistryModes, UnknownModeIsRejectedWithTheModeList) {
  try {
    api::make_accelerator("resparc-64+bogus");
    FAIL() << "expected BackendError";
  } catch (const api::BackendError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("dense"), std::string::npos);
    EXPECT_NE(what.find("sparse"), std::string::npos);
  }
  EXPECT_THROW(api::make_accelerator("resparc-64+"), api::BackendError);
}

TEST(RegistryModes, BackendsWithoutModeSupportRejectTheSuffix) {
  EXPECT_THROW(api::make_accelerator("cmos+sparse"), api::BackendError);
}

}  // namespace
}  // namespace resparc
