// Unit tests for the hierarchical mapper (core/mapper.hpp) — the heart of
// the paper's section 3.1 reconfigurability story.
#include "core/mapper.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "noc/route.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::core {
namespace {

using snn::LayerSpec;
using snn::Topology;

ResparcConfig cfg(std::size_t n) { return config_with_mca(n); }

// ---------------------------------------------------------------------------
// Dense layers
// ---------------------------------------------------------------------------

TEST(MapperDense, SmallLayerFitsOneMca) {
  Topology t("d", Shape3{1, 1, 32}, {LayerSpec::dense(16)});
  const Mapping m = map_network(t, cfg(64));
  ASSERT_EQ(m.layers.size(), 1u);
  EXPECT_EQ(m.layers[0].mca_count, 1u);
  EXPECT_EQ(m.layers[0].mux_degree, 1u);
  EXPECT_EQ(m.layers[0].mux_cycles, 1u);
  EXPECT_EQ(m.layers[0].ccu_transfers_per_neuron, 0u);
}

TEST(MapperDense, TileGridCounts) {
  // 784 x 800 dense on 64x64 MCAs: 13 row slices x 13 column groups.
  Topology t("d", Shape3{1, 1, 784}, {LayerSpec::dense(800)});
  const Mapping m = map_network(t, cfg(64));
  EXPECT_EQ(m.layers[0].groups.size(), 13u);
  EXPECT_EQ(m.layers[0].mca_count, 13u * 13u);
  EXPECT_EQ(m.layers[0].mux_degree, 13u);
  // ceil(13/4) = 4 serial integration cycles; 3 CCU transfers per neuron.
  EXPECT_EQ(m.layers[0].mux_cycles, 4u);
  EXPECT_EQ(m.layers[0].ccu_transfers_per_neuron, 3u);
}

TEST(MapperDense, ExactFitNoWaste) {
  Topology t("d", Shape3{1, 1, 128}, {LayerSpec::dense(128)});
  const Mapping m = map_network(t, cfg(64));
  EXPECT_EQ(m.layers[0].mca_count, 4u);
  EXPECT_DOUBLE_EQ(m.layers[0].utilization, 1.0);
}

TEST(MapperDense, FanInExactlyNIsOneSliceNoMux) {
  // Edge case: fan_in == N must not spill into a second (empty) row slice.
  Topology t("d", Shape3{1, 1, 64}, {LayerSpec::dense(64)});
  const Mapping m = map_network(t, cfg(64));
  const LayerMapping& lm = m.layers[0];
  ASSERT_EQ(lm.groups.size(), 1u);
  EXPECT_EQ(lm.groups[0].slice.begin, 0u);
  EXPECT_EQ(lm.groups[0].slice.end, 64u);
  EXPECT_EQ(lm.groups[0].rows_used, 64u);
  EXPECT_EQ(lm.mca_count, 1u);
  EXPECT_EQ(lm.mux_degree, 1u);
  EXPECT_EQ(lm.mux_cycles, 1u);
  EXPECT_EQ(lm.ccu_transfers_per_neuron, 0u);
  EXPECT_DOUBLE_EQ(lm.utilization, 1.0);
}

TEST(MapperDense, FanInOnePastNAddsASlice) {
  Topology t("d", Shape3{1, 1, 65}, {LayerSpec::dense(64)});
  const Mapping m = map_network(t, cfg(64));
  const LayerMapping& lm = m.layers[0];
  ASSERT_EQ(lm.groups.size(), 2u);
  EXPECT_EQ(lm.groups[1].rows_used, 1u);  // the one overflow row
  EXPECT_EQ(lm.mca_count, 2u);
  EXPECT_EQ(lm.mux_degree, 2u);
}

TEST(MapperDense, MlpUtilizationHigh) {
  // The paper's premise: MLPs utilise MCAs nearly fully (section 5.1).
  const auto b = snn::mnist_mlp();
  const Mapping m = map_network(b.topology, cfg(64));
  EXPECT_GT(m.utilization, 0.85);
}

// ---------------------------------------------------------------------------
// Convolution layers
// ---------------------------------------------------------------------------

TEST(MapperConv, PerPositionTilesByDefault) {
  // Paper-baseline policy: each MCA's columns are the output channels of
  // one spatial position; rows shared only within that receptive field.
  Topology t("c", Shape3{1, 12, 12}, {LayerSpec::conv(8, 3, true)});
  const Mapping m = map_network(t, cfg(64));
  const LayerMapping& lm = m.layers[0];
  EXPECT_EQ(lm.mux_degree, 1u);
  EXPECT_EQ(lm.groups.size(), 144u);  // one group per output position
  EXPECT_EQ(lm.mca_count, 144u);      // 8 channels fit one array's columns
  // Single-channel 3x3 conv wastes most of a 64x64 array.
  EXPECT_LT(lm.utilization, 0.05);
}

TEST(MapperConv, EnhancedInputSharingPacksWindows) {
  // Section 3.1.1's improvement: adjacent output positions share rows.
  Topology t("c", Shape3{1, 12, 12}, {LayerSpec::conv(8, 3, true)});
  ResparcConfig enhanced = cfg(64);
  enhanced.enhanced_input_sharing = true;
  const Mapping m = map_network(t, enhanced);
  const LayerMapping& lm = m.layers[0];
  // Window of 6x6 outputs needs (6+2)^2 = 64 rows: exactly fits.
  EXPECT_EQ(lm.groups.size(), 4u);  // 12/6 x 12/6 windows
  EXPECT_LT(lm.mca_count, 144u);    // strictly fewer arrays than baseline
  // Utilisation improves by the shared-window factor.
  const Mapping base = map_network(t, cfg(64));
  EXPECT_GT(lm.utilization, base.utilization);
}

TEST(MapperConv, EnhancedSharingNeverIncreasesMcas) {
  for (const auto& b : snn::paper_benchmarks()) {
    if (!b.topology.is_convolutional()) continue;
    for (std::size_t n : {32u, 64u, 128u}) {
      ResparcConfig enhanced = cfg(n);
      enhanced.enhanced_input_sharing = true;
      EXPECT_LE(map_network(b.topology, enhanced).total_mcas,
                map_network(b.topology, cfg(n)).total_mcas)
          << b.topology.name() << " N=" << n;
    }
  }
}

TEST(MapperConv, SlicedLargeFanIn) {
  // 52-channel 3x3 conv: fan_in = 468 > 64 -> im2col slices, channels share.
  Topology t("c", Shape3{52, 14, 14}, {LayerSpec::conv(64, 3, true)});
  const Mapping m = map_network(t, cfg(64));
  const LayerMapping& lm = m.layers[0];
  EXPECT_EQ(lm.mux_degree, 8u);  // ceil(468/64)
  EXPECT_EQ(lm.groups.size(), 14u);  // one per output row band
  // All 64 output channels share rows -> high utilisation.
  EXPECT_GT(lm.utilization, 0.8);
}

TEST(MapperConv, UtilizationPeaksAtIntermediateSize) {
  // Fig. 12(c) mechanism: growing the MCA beyond the receptive-field span
  // wastes crosspoints on sparse conv connectivity.
  const auto b = snn::mnist_cnn();
  const double u32 = map_network(b.topology, cfg(32)).utilization;
  const double u64 = map_network(b.topology, cfg(64)).utilization;
  const double u128 = map_network(b.topology, cfg(128)).utilization;
  EXPECT_GT(u32, u128);  // small arrays utilise sparse connectivity better
  EXPECT_GT(u64, u128);
}

TEST(MapperConv, CnnUtilizationBelowMlp) {
  const double mlp =
      map_network(snn::mnist_mlp().topology, cfg(64)).utilization;
  const double cnn =
      map_network(snn::mnist_cnn().topology, cfg(64)).utilization;
  EXPECT_LT(cnn, mlp);
}

TEST(MapperConv, WindowSpanHelper) {
  EXPECT_EQ(conv_window_input_span(1, 3), 3u);
  EXPECT_EQ(conv_window_input_span(6, 3), 8u);
  EXPECT_EQ(conv_window_input_span(4, 5), 8u);
}

// ---------------------------------------------------------------------------
// Pooling layers
// ---------------------------------------------------------------------------

TEST(MapperPool, BlockDiagonalPacking) {
  Topology t("p", Shape3{4, 8, 8}, {LayerSpec::avg_pool(2)});
  const Mapping m = map_network(t, cfg(64));
  const LayerMapping& lm = m.layers[0];
  // 4 channels x 4 output rows of 4 outputs; 16 outputs/MCA capacity.
  EXPECT_EQ(lm.groups.size(), 16u);
  EXPECT_EQ(lm.mux_degree, 1u);
  // Disjoint windows cannot share rows: utilisation is very low.
  EXPECT_LT(lm.utilization, 0.10);
}

TEST(MapperPool, WindowLargerThanArrayTimeMultiplexes) {
  // Edge case: p^2 > N.  An 8x8 pool window (64 rows) on a 32x32 array
  // must slice each window over ceil(64/32) = 2 time-multiplexed partials
  // instead of silently pretending it fits.
  Topology t("p", Shape3{2, 16, 16}, {LayerSpec::avg_pool(8)});
  const Mapping m = map_network(t, cfg(32));
  const LayerMapping& lm = m.layers[0];
  // 2 channels x 2 output rows of 2 outputs; 2 slices per output.
  ASSERT_EQ(lm.groups.size(), 4u);
  EXPECT_EQ(lm.mux_degree, 2u);
  EXPECT_EQ(lm.mux_cycles, 1u);  // both partials fit one mPE's 4 MCAs
  for (const auto& g : lm.groups) {
    EXPECT_EQ(g.mca_count, 4u);   // 2 outputs x 2 slices
    EXPECT_EQ(g.rows_used, 32u);  // full slices
    EXPECT_EQ(g.synapses, 2u * 64u);
  }
  EXPECT_EQ(lm.mca_count, 16u);
  // 8 outputs x 64 synapses over 16 arrays of 1024 cells.
  EXPECT_DOUBLE_EQ(lm.utilization, 512.0 / (16.0 * 1024.0));
}

TEST(MapperPool, WindowExactlyArraySizeIsOneSlice) {
  // p^2 == N sits right on the boundary: one slice, one output per MCA.
  Topology t("p", Shape3{1, 16, 16}, {LayerSpec::avg_pool(8)});
  const Mapping m = map_network(t, cfg(64));
  const LayerMapping& lm = m.layers[0];
  EXPECT_EQ(lm.mux_degree, 1u);
  EXPECT_EQ(lm.mca_count, 4u);  // 4 outputs, 1 per array
  EXPECT_DOUBLE_EQ(lm.utilization, 4.0 * 64.0 / (4.0 * 64.0 * 64.0));
}

TEST(MapperPool, SlicesAreContiguous) {
  Topology t("p", Shape3{2, 4, 4}, {LayerSpec::avg_pool(2)});
  const Mapping m = map_network(t, cfg(32));
  for (const auto& g : m.layers[0].groups) {
    EXPECT_EQ(g.slice.kind, SliceKind::kContiguous);
    EXPECT_EQ(g.slice.end - g.slice.begin, 2u * 4u);  // p rows of width 4
  }
}

// ---------------------------------------------------------------------------
// Cross-cutting properties
// ---------------------------------------------------------------------------

class MapperConservation
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(MapperConservation, SynapsesExactlyPreserved) {
  // Property: the mapper must place every synapse exactly once, for every
  // benchmark and every MCA size (the mapper itself throws on mismatch;
  // this asserts the totals are consistent end to end).
  const auto [mca, bench] = GetParam();
  const auto all = snn::paper_benchmarks();
  const auto& topo = all[static_cast<std::size_t>(bench)].topology;
  const Mapping m = map_network(topo, cfg(mca));
  std::size_t total = 0;
  for (const auto& lm : m.layers) {
    std::size_t layer_syn = 0;
    for (const auto& g : lm.groups) layer_syn += g.synapses;
    EXPECT_EQ(layer_syn, topo.layers()[lm.layer].synapses);
    total += layer_syn;
  }
  EXPECT_EQ(total, topo.synapse_count());
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllSizes, MapperConservation,
    ::testing::Combine(::testing::Values(32u, 64u, 128u),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

TEST(Mapper, McaCountFallsWithSizeForMlp) {
  // Larger crossbars absorb the same synapses in fewer arrays (the
  // peripheral-energy argument of Fig. 12(a)).
  const auto& topo = snn::mnist_mlp().topology;
  const std::size_t n32 = map_network(topo, cfg(32)).total_mcas;
  const std::size_t n64 = map_network(topo, cfg(64)).total_mcas;
  const std::size_t n128 = map_network(topo, cfg(128)).total_mcas;
  EXPECT_GT(n32, n64);
  EXPECT_GT(n64, n128);
}

TEST(Mapper, McasPackIntoMpesAndNeurocells) {
  const auto& topo = snn::mnist_mlp().topology;
  const Mapping m = map_network(topo, cfg(64));
  std::size_t mpes = 0;
  for (const auto& lm : m.layers) {
    EXPECT_EQ(lm.mpe_count, (lm.mca_count + 3) / 4);
    mpes += lm.mpe_count;
  }
  EXPECT_EQ(m.total_mpes, mpes);
  EXPECT_EQ(m.total_neurocells, (mpes + 15) / 16);
}

TEST(Mapper, LayerPlacementIsSequential) {
  const auto& topo = snn::mnist_mlp().topology;
  const Mapping m = map_network(topo, cfg(64));
  std::size_t expected_start = 0;
  for (const auto& lm : m.layers) {
    EXPECT_EQ(lm.first_mpe, expected_start);
    expected_start += lm.mpe_count;
    EXPECT_LE(lm.first_nc, lm.last_nc);
  }
}

TEST(Mapper, InputBoundaryAlwaysUsesBus) {
  const Mapping m = map_network(snn::mnist_mlp().topology, cfg(64));
  EXPECT_TRUE(m.boundary_uses_bus(0));
}

TEST(Mapper, SingleNcNetworkUsesSwitchesInternally) {
  // A tiny MLP fits in one NeuroCell: internal boundaries avoid the bus.
  Topology t("tiny", Shape3{1, 1, 64},
             {LayerSpec::dense(64), LayerSpec::dense(10)});
  const Mapping m = map_network(t, cfg(64));
  EXPECT_EQ(m.total_neurocells, 1u);
  EXPECT_FALSE(m.boundary_uses_bus(1));
}

TEST(Mapper, MultiNcBoundariesUseBus) {
  const Mapping m = map_network(snn::mnist_mlp().topology, cfg(64));
  ASSERT_GT(m.total_neurocells, 1u);
  EXPECT_TRUE(m.boundary_uses_bus(1));
}

TEST(Mapper, InputBroadcastUsesBusEvenOnSingleNcNetworks) {
  // l = 0 is the SRAM input broadcast: always a bus transfer, no matter
  // how small the deployed fabric is.
  Topology t("tiny", Shape3{1, 1, 32}, {LayerSpec::dense(10)});
  const Mapping m = map_network(t, cfg(64));
  EXPECT_EQ(m.total_neurocells, 1u);
  EXPECT_TRUE(m.boundary_uses_bus(0));
}

TEST(Mapper, SingleNcEveryInternalBoundaryAvoidsBus) {
  // Three layers inside one NeuroCell: every internal boundary stays on
  // the switch mesh while l = 0 is still the bus.
  Topology t("tiny3", Shape3{1, 1, 64},
             {LayerSpec::dense(32), LayerSpec::dense(32),
              LayerSpec::dense(10)});
  const Mapping m = map_network(t, cfg(64));
  ASSERT_EQ(m.total_neurocells, 1u);
  EXPECT_TRUE(m.boundary_uses_bus(0));
  for (std::size_t l = 1; l < m.layers.size(); ++l)
    EXPECT_FALSE(m.boundary_uses_bus(l)) << "boundary " << l;
}

TEST(Mapper, FinalLayerEgressIsABusRouteInTheRouteTable) {
  // boundary_uses_bus is only defined for l < layer_count (the transfer
  // INTO layer l); the final-layer egress is the routing pass's extra
  // boundary, and it always leaves on the bus — single-NC or not.
  for (const auto& spec : {snn::mnist_mlp(), snn::mnist_cnn()}) {
    const Mapping m = map_network(spec.topology, cfg(64));
    const noc::RouteTable routes = noc::compute_routes(m);
    ASSERT_EQ(routes.size(), spec.topology.layer_count() + 1);
    EXPECT_TRUE(routes.at(spec.topology.layer_count()).uses_bus);
  }
  Topology tiny("tiny", Shape3{1, 1, 32}, {LayerSpec::dense(10)});
  const Mapping single = map_network(tiny, cfg(64));
  EXPECT_TRUE(noc::compute_routes(single).at(1).uses_bus);
}

TEST(Mapper, LayerSpanningBoundaryDecisionUsesEndpointCells) {
  // A boundary avoids the bus only when BOTH layers sit entirely in one
  // and the same NeuroCell; a source layer spilling across cells forces
  // the bus even if the destination starts in the same cell.
  const Mapping m = map_network(snn::cifar_mlp().topology, cfg(64));
  for (std::size_t l = 1; l < m.layers.size(); ++l) {
    const auto& src = m.layers[l - 1];
    const auto& dst = m.layers[l];
    const bool both_in_one_cell = src.first_nc == src.last_nc &&
                                  dst.first_nc == dst.last_nc &&
                                  src.last_nc == dst.first_nc;
    EXPECT_EQ(m.boundary_uses_bus(l), !both_in_one_cell) << "boundary " << l;
  }
}

TEST(Mapper, UtilizationNeverExceedsOne) {
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    const Mapping m = map_network(snn::svhn_cnn().topology, cfg(n));
    for (const auto& lm : m.layers) EXPECT_LE(lm.utilization, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace resparc::core
