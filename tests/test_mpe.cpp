// Unit tests for the behavioral mPE (core/mpe.hpp).
#include "core/mpe.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::core {
namespace {

tech::Memristor device() { return tech::Memristor{tech::pcm_params()}; }

TEST(Mpe, CapacityEnforced) {
  Mpe mpe(8, 2, device());
  mpe.add_mca(Matrix(8, 8), 0);
  mpe.add_mca(Matrix(8, 8), 8);
  EXPECT_THROW(mpe.add_mca(Matrix(8, 8), 16), ConfigError);
  EXPECT_EQ(mpe.mca_count(), 2u);
}

TEST(Mpe, HostNeuronsBounds) {
  Mpe mpe(8, 4, device());
  EXPECT_THROW(mpe.host_neurons(0, {}), ConfigError);
  EXPECT_THROW(mpe.host_neurons(9, {}), ConfigError);
  mpe.host_neurons(8, {});
  EXPECT_TRUE(mpe.hosts_neurons());
  EXPECT_EQ(mpe.neuron_count(), 8u);
}

TEST(Mpe, HelperHasNoNeurons) {
  Mpe mpe(8, 4, device());
  EXPECT_FALSE(mpe.hosts_neurons());
  EXPECT_THROW(mpe.fire(), ConfigError);
}

TEST(Mpe, LocalIntegrationFiresNeuron) {
  Mpe mpe(4, 4, device());
  Matrix w(1, 1, std::vector<float>{1.0f});
  mpe.add_mca(w, 0, 1.0f);
  mpe.host_neurons(1, {.v_threshold = 1.0});
  snn::SpikeVector in(1);
  in.set(0);
  mpe.begin_step();
  mpe.integrate_local(in);
  const auto spikes = mpe.fire();
  EXPECT_TRUE(spikes.get(0));
  EXPECT_EQ(mpe.counters().mca_reads, 1u);
  EXPECT_EQ(mpe.counters().neuron_fires, 1u);
}

TEST(Mpe, SilentInputSkipsRead) {
  Mpe mpe(4, 4, device());
  mpe.add_mca(Matrix(4, 4, 1.0f), 0);
  mpe.host_neurons(4, {.v_threshold = 1.0});
  mpe.begin_step();
  mpe.integrate_local(snn::SpikeVector(4));
  EXPECT_EQ(mpe.counters().mca_skips, 1u);
  EXPECT_EQ(mpe.counters().mca_reads, 0u);
  EXPECT_DOUBLE_EQ(mpe.crossbar_energy_pj(), 0.0);
}

TEST(Mpe, ExternalCurrentsCombine) {
  // Fig. 4's C_ext path: external partial currents add to local ones.
  Mpe mpe(4, 4, device());
  Matrix w(1, 1, std::vector<float>{0.5f});
  mpe.add_mca(w, 0, 1.0f);
  mpe.host_neurons(1, {.v_threshold = 1.0});
  snn::SpikeVector in(1);
  in.set(0);
  mpe.begin_step();
  mpe.integrate_local(in);             // +8/15 (0.5 quantised at 4 bits)
  std::vector<float> ext{0.6f};        // external partial
  mpe.integrate_external(ext);         // total > 1 -> fires
  EXPECT_TRUE(mpe.fire().get(0));
}

TEST(Mpe, BeginStepClearsAccumulator) {
  Mpe mpe(4, 4, device());
  Matrix w(1, 1, std::vector<float>{1.0f});
  mpe.add_mca(w, 0, 1.0f);
  snn::SpikeVector in(1);
  in.set(0);
  mpe.begin_step();
  mpe.integrate_local(in);
  EXPECT_GT(mpe.currents()[0], 0.0f);
  mpe.begin_step();
  EXPECT_FLOAT_EQ(mpe.currents()[0], 0.0f);
}

TEST(Mpe, ResetClearsCountersAndMembranes) {
  Mpe mpe(4, 4, device());
  Matrix w(1, 1, std::vector<float>{1.0f});
  mpe.add_mca(w, 0, 1.0f);
  mpe.host_neurons(1, {.v_threshold = 10.0});
  snn::SpikeVector in(1);
  in.set(0);
  mpe.begin_step();
  mpe.integrate_local(in);
  mpe.fire();
  mpe.reset();
  EXPECT_EQ(mpe.counters().mca_reads, 0u);
  EXPECT_EQ(mpe.counters().neuron_fires, 0u);
}

TEST(Mpe, CcuSendCounts) {
  Mpe mpe(4, 4, device());
  mpe.send_currents();
  mpe.send_currents();
  EXPECT_EQ(mpe.counters().ccu_out, 2u);
}

}  // namespace
}  // namespace resparc::core
