// Unit tests for the SGD trainer (train/trainer.hpp).
#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"

namespace resparc::train {
namespace {

using data::Dataset;
using data::SyntheticOptions;
using snn::DatasetKind;
using snn::LayerSpec;
using snn::Topology;

Dataset tiny_mnist(std::size_t n, std::uint64_t seed) {
  return data::make_synthetic(DatasetKind::kMnistLike,
                              {.count = n, .seed = seed, .noise = 0.03,
                               .jitter_pixels = 1.0});
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const Dataset ds = tiny_mnist(60, 1);
  Ann ann(Topology("t", Shape3{1, 28, 28},
                   {LayerSpec::dense(48), LayerSpec::dense(10)}));
  Rng rng(1);
  ann.init_he(rng);
  const TrainReport rep =
      train(ann, ds, {.epochs = 5, .batch_size = 10, .learning_rate = 0.05},
            rng);
  ASSERT_EQ(rep.epoch_loss.size(), 5u);
  EXPECT_LT(rep.epoch_loss.back(), rep.epoch_loss.front());
}

TEST(Trainer, LearnsSeparableSyntheticDigits) {
  const Dataset ds = tiny_mnist(120, 2);
  Ann ann(Topology("t2", Shape3{1, 28, 28},
                   {LayerSpec::dense(64), LayerSpec::dense(10)}));
  Rng rng(2);
  ann.init_he(rng);
  const TrainReport rep =
      train(ann, ds, {.epochs = 20, .batch_size = 12, .learning_rate = 0.02},
            rng);
  EXPECT_GT(rep.final_accuracy, 0.85);
}

TEST(Trainer, GeneralisesToHeldOutSamples) {
  const Dataset all = tiny_mnist(160, 3);
  const Dataset train_set = all.take(120);
  const Dataset test_set = all.drop(120);
  Ann ann(Topology("t3", Shape3{1, 28, 28},
                   {LayerSpec::dense(64), LayerSpec::dense(10)}));
  Rng rng(3);
  ann.init_he(rng);
  train(ann, train_set,
        {.epochs = 20, .batch_size = 12, .learning_rate = 0.02}, rng);
  EXPECT_GT(ann_accuracy(ann, test_set), 0.7);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const Dataset ds = tiny_mnist(40, 4);
  auto run_once = [&]() {
    Ann ann(Topology("t4", Shape3{1, 28, 28},
                     {LayerSpec::dense(16), LayerSpec::dense(10)}));
    Rng rng(7);
    ann.init_he(rng);
    train(ann, ds, {.epochs = 2, .batch_size = 8}, rng);
    return ann.weights(0)(0, 0);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Trainer, RejectsEmptyDataset) {
  Dataset empty;
  Ann ann(Topology("t5", Shape3{1, 1, 2}, {LayerSpec::dense(2)}));
  Rng rng(5);
  EXPECT_THROW(train(ann, empty, {}, rng), ConfigError);
  EXPECT_THROW(ann_accuracy(ann, empty), ConfigError);
}

TEST(Trainer, RejectsZeroBatch) {
  const Dataset ds = tiny_mnist(10, 6);
  Ann ann(Topology("t6", Shape3{1, 28, 28}, {LayerSpec::dense(10)}));
  Rng rng(6);
  EXPECT_THROW(train(ann, ds, {.batch_size = 0}, rng), ConfigError);
}

}  // namespace
}  // namespace resparc::train
