// ProgramCache concurrency (docs/serving.md): the generation-checked
// corrupt-eviction path and the atomic tmp-file + rename persist must
// keep the eviction accounting exact — one physical corruption is one
// eviction no matter how many readers trip over it, and concurrent
// writers can never make a reader observe a torn blob as a spurious
// corruption.  The suite name matches the CI TSan filter (ci.yml), so
// every interleaving here runs under ThreadSanitizer too.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "serve/program_cache.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::serve {
namespace {

class ProgramCacheRace : public ::testing::Test {
 protected:
  static const snn::Topology& topology() {
    static const snn::Topology topo =
        snn::small_mlp_topology(snn::DatasetKind::kMnistLike);
    return topo;
  }
  static core::ResparcConfig config() { return core::config_with_mca(64); }

  static std::string scratch_dir(const std::string& name) {
    const std::string dir =
        ::testing::TempDir() + "resparc_cache_race_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }
};

// Many readers hitting one corrupt blob simultaneously: every caller
// must get a valid program and the eviction is counted exactly once
// (the generation check collapses the duplicate evictions).
TEST_F(ProgramCacheRace, SimultaneousCorruptReadsEvictOnce) {
  const std::string dir = scratch_dir("evict_once");
  ProgramCache warm({.directory = dir});
  warm.get_or_compile(config(), topology(), "paper");
  const std::string path = warm.blob_path(
      compile::program_cache_key(config(), topology(), "paper"));
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ofstream out(path, std::ios::trunc);
    out << "RESPARC-PROGRAM v1\ntampered\n";
  }

  ProgramCache cache({.directory = dir});
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const compile::CompiledProgram>> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[t] = cache.get_or_compile(config(), topology(), "paper");
    });
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_NE(got[t], nullptr) << "thread " << t;
  EXPECT_EQ(cache.stats().corrupt_evictions, 1u);
  EXPECT_FALSE(cache.last_corruption_code().empty());

  // The recompile re-persisted a good blob: a cold cache rehydrates it.
  ProgramCache fresh({.directory = dir});
  EXPECT_NO_THROW(fresh.rehydrate(config(), topology(), "paper"));
  EXPECT_EQ(fresh.stats().corrupt_evictions, 0u);
}

// Independent caches over one shared directory (two servers, or a
// restart racing a live server), all compiling/persisting/rehydrating
// the same key at once.  The persist path writes a uniquely named temp
// file and renames it into place, so no interleaving can surface a torn
// blob — an eviction here means a reader observed one.
TEST_F(ProgramCacheRace, ConcurrentPersistNeverTearsAReader) {
  const std::string dir = scratch_dir("atomic_persist");
  ProgramCache a({.directory = dir});
  ProgramCache b({.directory = dir});

  constexpr std::size_t kIterations = 4;
  auto churn = [&](ProgramCache& cache) {
    for (std::size_t i = 0; i < kIterations; ++i) {
      // Cold memory every round: each call probes the shared blob (or
      // compiles and persists it) while the other three threads do the
      // same.
      cache.clear_memory();
      EXPECT_NE(cache.get_or_compile(config(), topology(), "paper"),
                nullptr);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] { churn(a); });
    threads.emplace_back([&] { churn(b); });
  }
  for (auto& th : threads) th.join();

  // Every observed blob was either absent (recompile) or complete: a
  // torn read would have been counted as a corruption.
  EXPECT_EQ(a.stats().corrupt_evictions, 0u);
  EXPECT_EQ(b.stats().corrupt_evictions, 0u);
  // The surviving blob is valid: a cold cache rehydrates it.
  ProgramCache fresh({.directory = dir});
  EXPECT_NO_THROW(fresh.rehydrate(config(), topology(), "paper"));
}

}  // namespace
}  // namespace resparc::serve
